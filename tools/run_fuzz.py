#!/usr/bin/env python
"""Drive a differential-fuzzing campaign from the command line.

Runs seeded random programs through both diff axes — chip versus the
reference interpreter, and decode-cache-on versus decode-cache-off —
and exits non-zero on any divergence.  The default invocation is the
fixed-seed smoke run the test suite wires in as a tier-1 check::

    python tools/run_fuzz.py --seed 0 --cases 50

The acceptance bar for the fuzzing PR is the longer run::

    python tools/run_fuzz.py --seed 0 --cases 200

See ``docs/FUZZING.md`` for the scenario space and what a divergence
report means.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for p in (REPO_ROOT, REPO_ROOT / "src"):
    if str(p) not in sys.path:
        sys.path.insert(0, str(p))

from repro.fuzz import SCENARIOS, run_campaign  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0, the smoke seed)")
    parser.add_argument("--cases", type=int, default=50)
    parser.add_argument("--scenario", default=None, choices=SCENARIOS,
                        help="pin every case to one scenario")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report divergences without minimizing them")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the final summary")
    args = parser.parse_args(argv)

    report = run_campaign(seed=args.seed, cases=args.cases,
                          scenario=args.scenario,
                          shrink=not args.no_shrink,
                          log=None if args.quiet else print)
    print(report.summary())
    for failure in report.failures:
        if failure.regression_test:
            print("\n# paste into tests/machine/test_fuzz_regressions.py:")
            print(failure.regression_test)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
