#!/usr/bin/env python
"""Drive a differential-fuzzing campaign from the command line.

Runs seeded random programs through every diff axis — chip versus the
reference interpreter, decode-cache on/off, data-fast-path on/off, and
uninterrupted versus snapshot/restore-replayed — and exits non-zero on
any divergence.  The default invocation is the fixed-seed smoke run the
test suite wires in as a tier-1 check::

    python tools/run_fuzz.py --seed 0 --cases 50

The acceptance bar for the fuzzing PR is the longer run::

    python tools/run_fuzz.py --seed 0 --cases 200

On a red run, every failure is written out as a self-contained artifact
directory under ``--crashes`` (default ``crashes/``): a replayable
``dump.json`` (``python -m repro replay`` takes it directly), the
program source, a paste-ready regression test, and — when the failing
axis captured one — the machine snapshot itself.  CI uploads the
directory so a divergence on a runner is debuggable locally.

See ``docs/FUZZING.md`` for the scenario space and what a divergence
report means.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for p in (REPO_ROOT, REPO_ROOT / "src"):
    if str(p) not in sys.path:
        sys.path.insert(0, str(p))

from repro.fuzz import (SCENARIOS, run_campaign,  # noqa: E402
                        write_failure_artifacts)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0, the smoke seed)")
    parser.add_argument("--cases", type=int, default=50)
    parser.add_argument("--scenario", default=None, choices=SCENARIOS,
                        help="pin every case to one scenario")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report divergences without minimizing them")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the final summary")
    parser.add_argument("--crashes", default="crashes", metavar="DIR",
                        help="directory for per-failure artifacts "
                             "(default: crashes/; only written on failure)")
    args = parser.parse_args(argv)

    report = run_campaign(seed=args.seed, cases=args.cases,
                          scenario=args.scenario,
                          shrink=not args.no_shrink,
                          log=None if args.quiet else print)
    print(report.summary())
    for failure in report.failures:
        if failure.regression_test:
            print("\n# paste into tests/machine/test_fuzz_regressions.py:")
            print(failure.regression_test)
    if report.failures and args.crashes:
        for crash_dir in write_failure_artifacts(report, args.crashes):
            print(f"crash artifacts: {crash_dir}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
