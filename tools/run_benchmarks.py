#!/usr/bin/env python
"""Run the repo's benchmark suite and record a machine-readable baseline.

Times the E2 (LEA checks), E5 (multithreading) and E9 (context switch)
experiment kernels, the cycle-loop, data-stream, superblock and
tracing-overhead microbenchmarks, the E5 counter snapshot, the
multi-tenant service-traffic run
(``benchmarks/bench_service_traffic.py``), and the E17 nine-scheme
battleground (``benchmarks/bench_e17_compartmentalization.py``), and
writes everything to ``BENCH_pr10.json`` at the repo root.

Every benchmark runs ``--warmup`` unrecorded passes followed by
``--trials`` recorded passes; numeric results are reported as
``{"median": ..., "iqr": ..., "q1": ..., "q3": ..., "n": ...}`` so a
baseline captures run-to-run spread instead of a single noisy sample
(simulated cycle counts are deterministic — their IQR is 0 by
construction, which is itself a useful invariant).  Non-numeric values
(booleans, nested tables) are taken from the last trial.

Usage::

    python tools/run_benchmarks.py [--out BENCH_pr10.json] [--quick]
                                   [--trials N] [--warmup M]
                                   [--baseline BENCH_pr10.json]

``--quick`` shrinks every workload for CI smoke runs; the cross-checks
and the cycles-equal assertions still apply, only the sizes change.

``--baseline`` compares the freshly recorded run against a previous
baseline file and exits nonzero on a statistically significant
regression: a gated metric's new median falling more than
``max(3 x IQR, 25%)`` below the baseline's median.  Speedup ratios
(same-run on/off pairs) are gated unconditionally — they are machine-
and workload-size-independent; absolute throughputs are only gated when
both runs used the same workload sizes (the ``--quick`` flag matches),
since a quick CI run and a full baseline are not comparable.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for p in (REPO_ROOT, REPO_ROOT / "src"):
    if str(p) not in sys.path:
        sys.path.insert(0, str(p))

from repro import __version__  # noqa: E402
from repro.experiments import e2_lea_checks as e2  # noqa: E402
from repro.experiments import e5_multithreading as e5  # noqa: E402
from repro.experiments import e9_context_switch as e9  # noqa: E402
from repro.machine.chip import ChipConfig, RunReason  # noqa: E402
from repro.sim.api import Simulation  # noqa: E402

from benchmarks.bench_cycle_loop import measure as cycle_loop_measure  # noqa: E402
from benchmarks.bench_data_stream import measure as data_stream_measure  # noqa: E402
from benchmarks.bench_e17_compartmentalization import measure as e17_measure  # noqa: E402
from benchmarks.bench_parallel_mesh import measure as parallel_mesh_measure  # noqa: E402
from benchmarks.bench_service_traffic import measure as service_traffic_measure  # noqa: E402
from benchmarks.bench_superblock import measure as superblock_measure  # noqa: E402
from benchmarks.bench_trace_overhead import measure as trace_overhead_measure  # noqa: E402


def timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


# -- repeated trials -------------------------------------------------------

def aggregate(trials: list[dict]) -> dict:
    """Fold per-trial dicts into one: numeric keys become median + IQR
    (quartile spread), everything else is the last trial's value."""
    out: dict = {}
    for key in trials[-1]:
        values = [t[key] for t in trials if key in t]
        if len(values) == len(trials) and all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in values):
            if len(values) >= 2:
                q1, _, q3 = statistics.quantiles(values, n=4)
            else:
                q1 = q3 = float(values[0])
            out[key] = {
                "median": statistics.median(values),
                "iqr": q3 - q1,
                "q1": q1,
                "q3": q3,
                "n": len(values),
            }
        else:
            out[key] = values[-1]
    return out


def run_trials(fn, trials: int, warmup: int, check=None) -> dict:
    """``warmup`` unrecorded passes, then ``trials`` recorded ones;
    ``check`` (if given) asserts each trial's invariants."""
    for _ in range(warmup):
        result = fn()
        if check is not None:
            check(result)
    results = []
    for _ in range(max(trials, 1)):
        result = fn()
        if check is not None:
            check(result)
        results.append(result)
    return aggregate(results)


def median_of(aggregated: dict, key: str):
    value = aggregated[key]
    return value["median"] if isinstance(value, dict) and "median" in value \
        else value


# -- the benchmarks --------------------------------------------------------

def bench_e2(samples: int = 512) -> dict:
    results, wall = timed(e2.sweep_all_lengths, samples)
    return {"wall_s": wall, "segment_lengths": len(results),
            "all_exact": all(r.exact for r in results)}


def bench_e5(iterations: int = 150) -> dict:
    points, wall = timed(e5.sweep, (1, 2, 4), iterations)
    total_cycles = sum(p.cycles for p in points)
    return {"wall_s": wall, "points": len(points),
            "total_cycles": total_cycles,
            "cycles_per_s": total_cycles / wall}


def bench_e9() -> dict:
    table, wall = timed(e9.switch_cost_table)
    return {"wall_s": wall, "schemes": table}


def counter_snapshot_e5(iterations: int = 500) -> dict:
    """One representative E5 run through the facade: the counter
    snapshot, cross-checked against the chip's raw statistics."""
    sim = Simulation(ChipConfig(memory_bytes=4 * 1024 * 1024,
                                threads_per_cluster=4))
    source = e5.WORKER.format(iterations=iterations)
    for t in range(4):
        data = sim.allocate(4096, eager=True)
        sim.spawn(source, domain=t + 1, cluster=0,
                  regs={1: data.word}, stack_bytes=0)
    result, wall = timed(sim.run, 5_000_000)
    assert result.reason == RunReason.HALTED, result.reason
    snap = sim.snapshot()

    chip = sim.chip
    per_cluster_issued = sum(
        snap[f"cluster{i}.issued"] for i in range(len(chip.clusters)))
    checks = {
        "issued_bundles_match_clusters":
            snap["chip.issued_bundles"] == per_cluster_issued,
        "stats_match_snapshot":
            snap["chip.issued_bundles"] == chip.stats.issued_bundles
            and snap["chip.cycles"] == chip.stats.cycles,
        "fetches_match_issues":
            snap["fetch.hits"] + snap["fetch.misses"]
            == chip.stats.issued_bundles,
    }
    assert all(checks.values()), checks
    return {"wall_s": wall, "cycles": result.cycles,
            "cycles_per_s": result.cycles / wall,
            "cross_checks": checks, "counters": snap}


# -- baseline regression gate ----------------------------------------------

#: (benchmark, key, workload_dependent).  Speedup ratios pair an on- and
#: an off-run from the *same* trial on the same machine, so they stay
#: comparable across hosts and workload sizes and are always gated.
#: Absolute throughputs (cycles/s, requests/s) and the simulated
#: req/kcycle figure depend on the workload size, so they are gated only
#: when both runs used the same sizes (``quick`` flags match).
GATED_METRICS = (
    ("cycle_loop", "speedup", False),
    ("data_stream", "speedup", False),
    ("superblock", "alu_speedup", False),
    ("superblock", "worker_speedup", False),
    ("e5_multithreading", "cycles_per_s", True),
    ("data_stream", "fast_cycles_per_s", True),
    ("service_traffic", "throughput_rpk", True),
    ("service_traffic", "requests_per_s", True),
    # wall-clock speedup of the sharded engine depends on host cores as
    # well as workload size, so it is gated like-for-like only
    ("parallel_mesh", "strong_speedup_2", True),
    ("parallel_mesh", "strong_speedup_4", True),
    ("parallel_mesh", "weak_efficiency_2", True),
    # E17 scheme ratios are deterministic cycle counts, but their
    # magnitudes depend on the captured trace's size and mix, so they
    # are gated like-for-like only
    ("e17_compartmentalization", "rel_paged", True),
    ("e17_compartmentalization", "rel_asid", True),
)

#: a metric regresses when its new median drops below the baseline's
#: median by more than max(3 x IQR, 25%): three quartile spreads of
#: run-to-run noise, with a relative floor for metrics whose IQR
#: happens to be tiny.  The floor is wide enough that a quick CI run's
#: slightly-lower ratios pass against a full-run baseline, while a
#: genuine collapse of a speed knob (speedup falling toward 1x) fails.
REL_TOL = 0.25


def _stat(table: dict, bench: str, key: str) -> tuple[float, float] | None:
    """(median, iqr) of one recorded metric, or None if absent."""
    value = table.get("benchmarks", {}).get(bench, {}).get(key)
    if isinstance(value, dict) and "median" in value:
        return float(value["median"]), float(value.get("iqr", 0.0))
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value), 0.0
    return None


def compare_to_baseline(payload: dict,
                        baseline: dict) -> tuple[list[str], list[str]]:
    """Compare the fresh ``payload`` against a ``baseline`` file's
    contents; returns (regressions, skipped) message lists."""
    regressions, skipped = [], []
    same_workload = payload.get("quick") == baseline.get("quick")
    for bench, key, workload_dependent in GATED_METRICS:
        if workload_dependent and not same_workload:
            skipped.append(f"{bench}.{key}: workload sizes differ "
                           f"(quick vs full run)")
            continue
        base = _stat(baseline, bench, key)
        new = _stat(payload, bench, key)
        if base is None or new is None:
            which = "baseline" if base is None else "current run"
            skipped.append(f"{bench}.{key}: not recorded in the {which}")
            continue
        base_median, base_iqr = base
        new_median, new_iqr = new
        allowance = max(3.0 * max(base_iqr, new_iqr),
                        REL_TOL * base_median)
        if new_median < base_median - allowance:
            regressions.append(
                f"{bench}.{key}: {new_median:,.4g} vs baseline "
                f"{base_median:,.4g} (allowed drop {allowance:,.4g} = "
                f"max(3xIQR, {REL_TOL:.0%}))")
    return regressions, skipped


def check_baseline(payload: dict, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    regressions, skipped = compare_to_baseline(payload, baseline)
    print(f"comparing against baseline {baseline_path} "
          f"(version {baseline.get('version', '?')}) ...")
    for message in skipped:
        print(f"  skipped  {message}")
    if regressions:
        for message in regressions:
            print(f"  REGRESSED {message}")
        print(f"{len(regressions)} significant regression(s) vs baseline")
        return 1
    print("  no significant regressions")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_pr10.json"))
    parser.add_argument("--quick", action="store_true",
                        help="shrink every workload for CI smoke runs")
    parser.add_argument("--trials", type=int, default=3,
                        help="recorded passes per benchmark (median + "
                             "IQR reported)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="unrecorded warmup passes per benchmark")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="previous baseline JSON to gate against; "
                             "exit nonzero on a significant regression")
    args = parser.parse_args(argv)
    q = args.quick
    trials, warmup = args.trials, args.warmup

    print(f"({trials} trials after {warmup} warmup pass(es) each)")

    print("running e2 (LEA checks) ...")
    r_e2 = run_trials(lambda: bench_e2(64 if q else 512), trials, warmup)
    print(f"  {median_of(r_e2, 'wall_s'):.3f}s median")

    print("running e5 (multithreading sweep) ...")
    r_e5 = run_trials(lambda: bench_e5(30 if q else 150), trials, warmup)
    print(f"  {median_of(r_e5, 'wall_s'):.3f}s median, "
          f"{median_of(r_e5, 'cycles_per_s'):,.0f} cycles/s")

    print("running e9 (context switch) ...")
    r_e9 = run_trials(bench_e9, trials, warmup)
    print(f"  {median_of(r_e9, 'wall_s'):.3f}s median")

    print("running cycle-loop microbenchmark ...")
    r_loop = run_trials(
        lambda: cycle_loop_measure(iterations=300 if q else 2000),
        trials, warmup,
        check=lambda r: (_require(r["cycles_equal"],
                                  "cycle-loop timing models diverged")))
    print(f"  {median_of(r_loop, 'speedup'):.2f}x over the pre-rework loop "
          f"({median_of(r_loop, 'new_cycles_per_s'):,.0f} vs "
          f"{median_of(r_loop, 'legacy_cycles_per_s'):,.0f} cycles/s)")

    print("running data-stream microbenchmark ...")
    r_stream = run_trials(
        lambda: data_stream_measure(1000 if q else 6000), trials, warmup,
        check=lambda r: (
            _require(r["cycles_equal"],
                     "data fast path changed the timing model"),
            _require(r["cross_checks_pass"], r["cross_checks"])))
    print(f"  {median_of(r_stream, 'speedup'):.2f}x with the data fast "
          f"path on ({median_of(r_stream, 'fast_cycles_per_s'):,.0f} vs "
          f"{median_of(r_stream, 'slow_cycles_per_s'):,.0f} cycles/s)")

    print("running superblock microbenchmark ...")
    r_sb = run_trials(
        lambda: superblock_measure(800 if q else 4000), trials, warmup,
        check=lambda r: (
            _require(r["cycles_equal"],
                     "superblocks changed the timing model"),
            _require(r["counters_equal"],
                     "superblocks changed the counters")))
    print(f"  alu {median_of(r_sb, 'alu_speedup'):.2f}x, "
          f"worker {median_of(r_sb, 'worker_speedup'):.2f}x, "
          f"stream {median_of(r_sb, 'stream_speedup'):.2f}x with "
          f"superblocks on (cycles and counters identical)")

    print("running tracing-overhead microbenchmark ...")
    r_trace = run_trials(
        lambda: trace_overhead_measure(500 if q else 3000), trials, warmup,
        check=lambda r: _require(r["cycles_equal"],
                                 "tracing changed the timing model"))
    print(f"  default {median_of(r_trace, 'default_overhead'):+.1%}, "
          f"requests {median_of(r_trace, 'requests_overhead'):+.1%}, "
          f"timeseries {median_of(r_trace, 'timeseries_overhead'):+.1%} "
          f"(vs chunked), "
          f"traced {median_of(r_trace, 'traced_overhead'):+.1%} vs disabled")

    print("running service-traffic benchmark ...")
    r_serve = run_trials(
        lambda: service_traffic_measure(
            requests=300 if q else 2000, tenants=50 if q else 200,
            nodes=2 if q else 4),
        trials, warmup,
        check=lambda r: (
            _require(r["all_completed"], "open-loop run did not drain"),
            _require(r["clean"], "service errors or wrong results"),
            _require(r["enter_exact"],
                     "enter_roundtrip diverged from gateway calls")))
    print(f"  {median_of(r_serve, 'throughput_rpk'):.1f} req/kcycle, "
          f"p50 {median_of(r_serve, 'latency_p50')} / "
          f"p99 {median_of(r_serve, 'latency_p99')} cycles latency, "
          f"{median_of(r_serve, 'requests_per_s'):,.0f} requests/s wall")

    print("running parallel-mesh scaling sweep ...")
    r_par = run_trials(
        lambda: parallel_mesh_measure(
            requests=120 if q else 400, tenants=24 if q else 48,
            side=2 if q else 4,
            workers_list=(1, 2) if q else (1, 2, 4)),
        trials, warmup,
        check=lambda r: (
            _require(r["cycles_equal"],
                     "worker count changed the simulated run"),
            _require(r["reports_equal"],
                     "worker count changed the service report"),
            _require(r["clean"], "service errors or wrong results")))
    top = 4 if not q else 2
    print(f"  {median_of(r_par, 'cycles')} simulated cycles at every "
          f"worker count; strong "
          f"{median_of(r_par, f'strong_speedup_{top}'):.2f}x, weak "
          f"efficiency {median_of(r_par, f'weak_efficiency_{top}'):.2f} "
          f"at {top} workers on {median_of(r_par, 'cores'):.0f} core(s)")

    print("running e17 (nine-scheme battleground) ...")
    r_e17 = run_trials(
        lambda: {k: v for k, v in e17_measure(
            requests=200 if q else 1000, tenants=20 if q else 100
        ).items() if k != "result"},
        trials, warmup,
        check=lambda r: (
            _require(r["schemes"] == 9, "battleground must field nine"),
            _require(r["same_trace"], "schemes diverged on the trace"),
            _require(r["capstone_revoke_cheapest"],
                     "Capstone revocation not cheapest"),
            _require(r["capacity_smallest"],
                     "Capacity footprint not smallest")))
    print(f"  paged {median_of(r_e17, 'rel_paged'):.2f}x, asid "
          f"{median_of(r_e17, 'rel_asid'):.2f}x, capstone "
          f"{median_of(r_e17, 'rel_capstone'):.2f}x, capacity "
          f"{median_of(r_e17, 'rel_capacity'):.2f}x guarded cycles; "
          f"capstone revoke {median_of(r_e17, 'capstone_revoke'):.0f} vs "
          f"paged {median_of(r_e17, 'paged_revoke'):.0f} cycles")

    print("taking the E5 counter snapshot ...")
    r_snap = run_trials(
        lambda: counter_snapshot_e5(100 if q else 500), trials, warmup)
    print("  counter cross-checks passed")

    payload = {
        "version": __version__,
        "quick": q,
        "trials": trials,
        "warmup": warmup,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": {
            "e2_lea_checks": r_e2,
            "e5_multithreading": r_e5,
            "e9_context_switch": r_e9,
            "cycle_loop": r_loop,
            "data_stream": r_stream,
            "superblock": r_sb,
            "trace_overhead": r_trace,
            "service_traffic": r_serve,
            "parallel_mesh": r_par,
            "e17_compartmentalization": r_e17,
            "e5_counter_snapshot": r_snap,
        },
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    if args.baseline is not None:
        return check_baseline(payload, args.baseline)
    return 0


def _require(condition, message) -> None:
    assert condition, message


if __name__ == "__main__":
    sys.exit(main())
