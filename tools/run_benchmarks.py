#!/usr/bin/env python
"""Run the PR's benchmark suite and record a machine-readable baseline.

Times the E2 (LEA checks), E5 (multithreading) and E9 (context switch)
experiment kernels plus the cycle-loop, data-stream and
tracing-overhead microbenchmarks (``benchmarks/bench_cycle_loop.py``,
``benchmarks/bench_data_stream.py``,
``benchmarks/bench_trace_overhead.py``), takes a perf-counter snapshot
of a representative E5 run, cross-checks the counter file against
``ChipStats``, and writes everything to ``BENCH_pr5.json`` at the repo
root.

Usage::

    python tools/run_benchmarks.py [--out BENCH_pr5.json] [--quick]

``--quick`` shrinks every workload for CI smoke runs; the cross-checks
and the cycles-equal assertions still apply, only the sizes change.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for p in (REPO_ROOT, REPO_ROOT / "src"):
    if str(p) not in sys.path:
        sys.path.insert(0, str(p))

from repro import __version__  # noqa: E402
from repro.experiments import e2_lea_checks as e2  # noqa: E402
from repro.experiments import e5_multithreading as e5  # noqa: E402
from repro.experiments import e9_context_switch as e9  # noqa: E402
from repro.machine.chip import ChipConfig, RunReason  # noqa: E402
from repro.sim.api import Simulation  # noqa: E402

from benchmarks.bench_cycle_loop import measure as cycle_loop_measure  # noqa: E402
from benchmarks.bench_data_stream import measure as data_stream_measure  # noqa: E402
from benchmarks.bench_trace_overhead import measure as trace_overhead_measure  # noqa: E402


def timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def bench_e2(samples: int = 512) -> dict:
    results, wall = timed(e2.sweep_all_lengths, samples)
    return {"wall_s": wall, "segment_lengths": len(results),
            "all_exact": all(r.exact for r in results)}


def bench_e5(iterations: int = 150) -> dict:
    points, wall = timed(e5.sweep, (1, 2, 4), iterations)
    total_cycles = sum(p.cycles for p in points)
    return {"wall_s": wall, "points": len(points),
            "total_cycles": total_cycles,
            "cycles_per_s": total_cycles / wall}


def bench_e9() -> dict:
    table, wall = timed(e9.switch_cost_table)
    return {"wall_s": wall, "schemes": table}


def counter_snapshot_e5(iterations: int = 500) -> dict:
    """One representative E5 run through the facade: the counter
    snapshot, cross-checked against the chip's raw statistics."""
    sim = Simulation(ChipConfig(memory_bytes=4 * 1024 * 1024,
                                threads_per_cluster=4))
    source = e5.WORKER.format(iterations=iterations)
    for t in range(4):
        data = sim.allocate(4096, eager=True)
        sim.spawn(source, domain=t + 1, cluster=0,
                  regs={1: data.word}, stack_bytes=0)
    result, wall = timed(sim.run, 5_000_000)
    assert result.reason == RunReason.HALTED, result.reason
    snap = sim.snapshot()

    chip = sim.chip
    per_cluster_issued = sum(
        snap[f"cluster{i}.issued"] for i in range(len(chip.clusters)))
    checks = {
        "issued_bundles_match_clusters":
            snap["chip.issued_bundles"] == per_cluster_issued,
        "stats_match_snapshot":
            snap["chip.issued_bundles"] == chip.stats.issued_bundles
            and snap["chip.cycles"] == chip.stats.cycles,
        "fetches_match_issues":
            snap["fetch.hits"] + snap["fetch.misses"]
            == chip.stats.issued_bundles,
    }
    assert all(checks.values()), checks
    return {"wall_s": wall, "cycles": result.cycles,
            "cycles_per_s": result.cycles / wall,
            "cross_checks": checks, "counters": snap}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_pr5.json"))
    parser.add_argument("--quick", action="store_true",
                        help="shrink every workload for CI smoke runs")
    args = parser.parse_args(argv)
    q = args.quick

    print("running e2 (LEA checks) ...")
    r_e2 = bench_e2(64 if q else 512)
    print(f"  {r_e2['wall_s']:.3f}s")
    print("running e5 (multithreading sweep) ...")
    r_e5 = bench_e5(30 if q else 150)
    print(f"  {r_e5['wall_s']:.3f}s, {r_e5['cycles_per_s']:,.0f} cycles/s")
    print("running e9 (context switch) ...")
    r_e9 = bench_e9()
    print(f"  {r_e9['wall_s']:.3f}s")
    print("running cycle-loop microbenchmark ...")
    r_loop = cycle_loop_measure(iterations=300 if q else 2000)
    print(f"  {r_loop['speedup']:.2f}x over the pre-rework loop "
          f"({r_loop['new_cycles_per_s']:,.0f} vs "
          f"{r_loop['legacy_cycles_per_s']:,.0f} cycles/s)")
    assert r_loop["cycles_equal"], "cycle-loop timing models diverged"
    print("running data-stream microbenchmark ...")
    r_stream = data_stream_measure(1000 if q else 6000)
    print(f"  {r_stream['speedup']:.2f}x with the data fast path on "
          f"({r_stream['fast_cycles_per_s']:,.0f} vs "
          f"{r_stream['slow_cycles_per_s']:,.0f} cycles/s)")
    assert r_stream["cycles_equal"], "data fast path changed the timing model"
    assert r_stream["cross_checks_pass"], r_stream["cross_checks"]
    print("running tracing-overhead microbenchmark ...")
    r_trace = trace_overhead_measure(500 if q else 3000)
    print(f"  default {r_trace['default_overhead']:+.1%}, traced "
          f"{r_trace['traced_overhead']:+.1%} vs disabled "
          f"({r_trace['traced_events']} events)")
    assert r_trace["cycles_equal"], "tracing changed the timing model"
    print("taking the E5 counter snapshot ...")
    r_snap = counter_snapshot_e5(100 if q else 500)
    print("  counter cross-checks passed")

    payload = {
        "version": __version__,
        "quick": q,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": {
            "e2_lea_checks": r_e2,
            "e5_multithreading": r_e5,
            "e9_context_switch": r_e9,
            "cycle_loop": r_loop,
            "data_stream": r_stream,
            "trace_overhead": r_trace,
            "e5_counter_snapshot": r_snap,
        },
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
