#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md by running every experiment.

Usage:  python tools/generate_experiments_md.py [output-path]

Every number in EXPERIMENTS.md comes from this script, so the document
can always be reproduced from a clean checkout.  Runtime is a couple of
minutes (E5 and E9 run the cycle-level simulator).

The ``SECTIONS`` registry at the bottom is the single source of truth
for the document: the header's summary counts, the index, and the
section order are all derived from it, so adding an experiment is one
registry entry — the index cannot drift from the body.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.experiments import (
    ablations,
    e1_pointer_format,
    e2_lea_checks,
    e3_subsystem_call,
    e4_two_way,
    e5_multithreading,
    e6_tag_overhead,
    e7_fragmentation,
    e8_sharing,
    e9_context_switch,
    e10_segmentation,
    e11_captable,
    e12_sfi,
    e13_revocation_gc,
    e14_sparse_capabilities,
    e15_multinode,
    e17_compartmentalization,
)


def e1_section() -> str:
    rows = e1_pointer_format.format_table()
    budget = e1_pointer_format.bit_budget()
    lines = [
        "## E1 — Figure 1: guarded-pointer format",
        "",
        "**Paper:** a 64-bit word (plus one tag bit) encodes a 4-bit permission,",
        "a 6-bit log2 segment length and a 54-bit address; segments are",
        "power-of-two sized and aligned, so base/offset fall out of masking.",
        "",
        f"**Measured:** bit budget {budget} (= 64 bits exactly); "
        f"{len(rows)} representative pointers plus 2048-sample random "
        "round-trips decode to identical fields.  Examples:",
        "",
        "| pointer | perm | len | word | segment |",
        "|---|---|---|---|---|",
    ]
    for r in rows:
        lines.append(f"| {r.description} | {r.perm} | {r.seglen} | "
                     f"`{r.word_hex}` | `[{r.segment_base:#x}, "
                     f"+{r.segment_size:#x})` |")
    lines.append("")
    lines.append("**Verdict: reproduced** — the format is bit-exact and lossless.")
    return "\n".join(lines)


def e2_section() -> str:
    sweeps = e2_lea_checks.sweep_all_lengths(512)
    total = sum(s.attempts for s in sweeps)
    lines = [
        "## E2 — Figure 2: LEA pointer derivation",
        "",
        "**Paper:** LEA adds an offset to a pointer; a masked comparator",
        "faults any derivation whose fixed segment bits change.",
        "",
        f"**Measured:** {total} random derivations across segment lengths "
        f"{[s.seglen for s in sweeps]}: every sweep is *exact* — accepted "
        "iff in-segment (accepted + faulted = attempts at every length).",
        "",
        "| seglen | attempts | in-segment | accepted | faulted |",
        "|---|---|---|---|---|",
    ]
    for s in sweeps:
        lines.append(f"| {s.seglen} | {s.attempts} | {s.in_segment} | "
                     f"{s.accepted} | {s.faulted} |")
    lines.append("")
    lines.append("**Verdict: reproduced** — the comparator admits exactly the "
                 "legal derivations.")
    return "\n".join(lines)


def e3_section() -> str:
    c = e3_subsystem_call.compare()
    return "\n".join([
        "## E3 — Figure 3: one-way protected subsystem call",
        "",
        "**Paper:** entering a protected subsystem is a jump through an",
        "enter pointer — no kernel, no tables; the subsystem loads its",
        "private pointers from its own code segment after entry.",
        "",
        "**Measured** (cycle-level simulator, same service three ways):",
        "",
        "| variant | total cycles | overhead vs inline |",
        "|---|---|---|",
        f"| inline (no boundary) | {c.inline} | 0 |",
        f"| enter pointer (Fig. 3) | {c.enter} | {c.enter_overhead} |",
        f"| kernel trap | {c.trap} | {c.trap_overhead} |",
        "",
        f"The protected call adds {c.enter_overhead} cycles — a handful of",
        f"instructions — and is **{c.speedup_vs_trap:.1f}× cheaper** than the",
        "trap-mediated equivalent.",
        "",
        "**Verdict: reproduced** — protected entry without kernel",
        "intervention, at near-inline cost.",
    ])


def e4_section() -> str:
    points = e4_two_way.sweep(8)
    marginal = e4_two_way.marginal_cost_per_pointer(points)
    lines = [
        "## E4 — Figure 4: two-way protection (return segments)",
        "",
        "**Paper:** the caller encapsulates its domain in a return segment:",
        "store live pointers, wipe registers, pass only an enter pointer;",
        "the segment's trampoline restores state on return.",
        "",
        "**Measured** (call cycles vs live pointers encapsulated):",
        "",
        "| live pointers | cycles |",
        "|---|---|",
    ]
    for p in points:
        lines.append(f"| {p.save_slots} | {p.cycles} |")
    lines += [
        "",
        f"Marginal cost ≈ {marginal:.1f} cycles per encapsulated pointer",
        "(one ST before the call, one LD in the trampoline).  The register",
        "round-trip is verified: every saved pointer returns bit-identical,",
        "and a malicious subsystem reading the return segment faults.",
        "",
        "**Verdict: reproduced.**",
    ]
    return "\n".join(lines)


def e5_section() -> str:
    points = e5_multithreading.sweep((1, 2, 4), iterations=150)
    lines = [
        "## E5 — Figure 5 / §3: multithreading across protection domains",
        "",
        "**Paper:** guarded pointers enable zero-cost context switching, so",
        "threads from different protection domains interleave cycle-by-cycle;",
        "machines without them (Alewife, Tera) restricted resident threads to",
        "one domain.",
        "",
        "**Measured** (one cluster, each thread its own domain):",
        "",
        "| config | threads | cycles | utilization | switch stalls |",
        "|---|---|---|---|---|",
    ]
    for p in points:
        lines.append(f"| {p.config} | {p.threads} | {p.cycles} | "
                     f"{p.utilization:.3f} | {p.switch_stalls} |")
    util = e5_multithreading.utilization_by_config(points)
    lines += [
        "",
        f"Guarded utilization stays ≈{util['guarded'][4]:.2f} as domains are",
        f"added; an 8-cycle-drain conventional machine falls to "
        f"{util['conventional'][4]:.2f}, and adding TLB/cache flushes to "
        f"{util['conventional+flush'][4]:.2f}.",
        "",
        "**Verdict: reproduced** — the shape (flat vs collapsing) matches §1/§3.",
    ]
    return "\n".join(lines)


def e6_section() -> str:
    check = e6_tag_overhead.paper_claim_check()
    inv = e6_tag_overhead.inventory()
    lines = [
        "## E6 — §4.1: hardware costs",
        "",
        "**Paper:** one tag bit per word ⇒ \"a 1.5% increase in the amount of",
        "memory\"; checking needs only a permission decoder, an opcode decoder",
        "and a masked comparator — no tables, no lookaside buffers.",
        "",
        f"**Measured:** tag overhead = {check['measured']:.4%} (exactly 1/64;",
        f"the paper rounds down — ratio to claim {check['ratio_to_claim']:.3f}).",
        "",
        "Protection-hardware inventory (from the baselines actually built here):",
        "",
        "| scheme | tag bits/word | extra lookaside buffers | per-bank replication | tables in memory | lookup on critical path |",
        "|---|---|---|---|---|---|",
    ]
    for h in inv:
        lines.append(f"| {h.scheme} | {h.tag_bits_per_word} | "
                     f"{h.lookaside_buffers} | {h.ports_scale_with_banks} | "
                     f"{h.tables_in_memory} | {h.checks_on_critical_path} |")
    lines += ["", "**Verdict: reproduced** (the 1.5% is the paper's rounding "
              "of 1.5625%)."]
    return "\n".join(lines)


def e7_section() -> str:
    table = e7_fragmentation.internal_fragmentation_table(10_000)
    check = e7_fragmentation.closed_form_check()
    churn = e7_fragmentation.external_fragmentation(order=16, steps=3000,
                                                    seeds=(0, 1, 2))
    buddy_final = sum(r.final_fragmentation for r in churn["buddy"]) / 3
    naive_final = sum(r.final_fragmentation for r in churn["no-coalesce"]) / 3
    lines = [
        "## E7 — §4.2: fragmentation",
        "",
        "**Paper:** power-of-two segments cause internal fragmentation (but",
        "little *physical* waste, since frames are allocated page-by-page) and",
        "external fragmentation that \"a buddy system … can be used to reduce\".",
        "",
        "**Measured — internal** (granted/requested; worst case 2.0):",
        "",
        "| distribution | factor | physical waste |",
        "|---|---|---|",
    ]
    for r in table:
        lines.append(f"| {r.distribution} | {r.overhead_factor:.3f} | "
                     f"{r.physical_waste:.2%} |")
    lines += [
        "",
        f"Closed form for uniform-in-binade sizes: 4/3 ≈ 1.333; measured "
        f"{check['measured']:.4f}.",
        "",
        "**Measured — external** (identical churn, drain at end):",
        f"buddy post-drain fragmentation **{buddy_final:.2f}** (always fully",
        f"coalesces) vs no-coalescing strawman **{naive_final:.2f}**; the",
        "strawman also refuses large allocations the buddy system satisfies.",
        "",
        "**Verdict: reproduced** — both halves of the §4.2 argument hold.",
    ]
    return "\n".join(lines)


def e8_section() -> str:
    grid = e8_sharing.entries_grid()
    cache_rows = e8_sharing.in_cache_sharing((1, 2, 4, 8), 2000)
    lines = [
        "## E8 — §5.1: the cost of sharing",
        "",
        "**Paper:** paging needs n×m page-table entries for n shared pages",
        "among m processes, and ASID synonyms forbid in-cache sharing;",
        "guarded pointers share with one pointer per process and share cache",
        "lines directly.",
        "",
        "**Measured — protection state:**",
        "",
        "| pages | processes | paged PTEs | guarded pointers | ratio |",
        "|---|---|---|---|---|",
    ]
    for r in grid:
        lines.append(f"| {r.pages} | {r.processes} | {r.paged_entries} | "
                     f"{r.guarded_entries} | {r.ratio:.0f}× |")
    lines += [
        "",
        "**Measured — in-cache sharing** (same shared-region trace):",
        "",
        "| processes | guarded misses | ASID misses |",
        "|---|---|---|",
    ]
    for r in cache_rows:
        lines.append(f"| {r.processes} | {r.guarded_misses} | {r.asid_misses} |")
    lines += ["", "**Verdict: reproduced** — n×m vs m, and synonym misses "
              "scale with sharer count."]
    return "\n".join(lines)


def e9_section() -> str:
    table = e9_context_switch.switch_cost_table()
    results = e9_context_switch.sweep(quanta=(1, 10, 100, 1000),
                                      refs_per_process=3000)
    schemes = [row.scheme for row in results[0].rows]
    lines = [
        "## E9 — §5.1/§3: context-switch cost across schemes",
        "",
        "**Paper:** separate-address-space paging must flush TLB and virtual",
        "cache per switch; ASIDs/Domain-Page/page-groups cheapen the switch",
        "but pay elsewhere; guarded pointers do zero protection work.",
        "",
        "**Measured — pure per-switch work (cycles):**",
        "",
        "| scheme | cycles/switch |",
        "|---|---|",
    ] + [f"| {s} | {c} |" for s, c in table.items()] + [
        "",
        "**Measured — total cycles relative to guarded pointers** (4",
        "processes, working-set workload, quantum = references per slice):",
        "",
        "| quantum | " + " | ".join(schemes) + " |",
        "|" + "---|" * (len(schemes) + 1),
    ]
    for qr in results:
        cells = " | ".join(f"{qr.relative(s):.2f}" for s in schemes)
        lines.append(f"| {qr.quantum} | {cells} |")
    fine = results[0]
    lines += [
        "",
        f"At quantum 1 the flush design costs {fine.relative('paged-separate'):.1f}×",
        "guarded pointers; every scheme converges toward it as quanta grow,",
        "matching the paper's argument that the problem is *fine-grained*",
        "domain interleaving.",
        "",
        "**Verdict: reproduced.**",
    ]
    return "\n".join(lines)


def e10_section() -> str:
    rows = e10_segmentation.latency_vs_segments(refs=6000)
    rigid = e10_segmentation.rigidity_table()
    lines = [
        "## E10 — §5.2: segmentation",
        "",
        "**Paper:** segmentation needs two serial translation levels (segment",
        "+offset before the cache) and fixes the segment/offset split,",
        "limiting segment count and size; guarded pointers float the split.",
        "",
        "**Measured — latency** (cycles/access, descriptor cache of 16):",
        "",
        "| live segments | guarded | segmentation | slowdown | descriptor miss rate |",
        "|---|---|---|---|---|",
    ]
    for r in rows:
        lines.append(f"| {r.segments} | {r.guarded_cpa:.2f} | "
                     f"{r.segmentation_cpa:.2f} | {r.slowdown:.2f}× | "
                     f"{r.descriptor_miss_rate:.1%} |")
    lines += ["", "**Rigidity** (paper's own examples):", "",
              "| system | max segments | max segment size |", "|---|---|---|"]
    for r in rigid:
        lines.append(f"| {r.system} | {r.max_segments} | {r.max_segment_bytes} |")
    lines += ["", "**Verdict: reproduced** — always ≥1 extra cycle per access, "
              "worse past the descriptor cache; flexibility table matches §5.2."]
    return "\n".join(lines)


def e11_section() -> str:
    rows = e11_captable.latency_vs_objects(refs=6000)
    lines = [
        "## E11 — §5.3: table-based capabilities",
        "",
        "**Paper:** System/38- and i432-style capabilities translate twice",
        "(capability→virtual, virtual→physical); that latency \"has prevented",
        "traditional capabilities from becoming a widely-used protection",
        "method\".  Guarded pointers remove the first level.",
        "",
        "**Measured** (capability cache of 32 entries):",
        "",
        "| live objects | guarded cyc/acc | captable cyc/acc | slowdown | capcache miss |",
        "|---|---|---|---|---|",
    ]
    for r in rows:
        lines.append(f"| {r.live_objects} | {r.guarded_cpa:.2f} | "
                     f"{r.captable_cpa:.2f} | {r.slowdown:.2f}× | "
                     f"{r.capcache_miss_rate:.1%} |")
    lines += ["", "**Verdict: reproduced** — parity while the capability cache "
              "holds, diverging as the object working set grows."]
    return "\n".join(lines)


def e12_section() -> str:
    rows = e12_sfi.overhead_sweep(refs=8000)
    lines = [
        "## E12 — §5.4: software fault isolation",
        "",
        "**Paper:** SFI inserts check instructions before unprovable",
        "stores/jumps (loads too, for full isolation), paid on every dynamic",
        "execution; and it only protects code produced by the safe toolchain.",
        "",
        "**Measured** (overhead vs guarded pointers on a working-set",
        "workload, 30% writes):",
        "",
        "| mode | statically safe | overhead | inserted instructions |",
        "|---|---|---|---|",
    ]
    for r in rows:
        mode = "full isolation" if r.check_reads else "sandboxing"
        lines.append(f"| {mode} | {r.safe_fraction:.0%} | {r.overhead:.1%} | "
                     f"{r.check_instructions} |")
    lines += ["", "**Verdict: reproduced** — overhead scales with dynamic",
              "unproven references and vanishes only if the compiler can prove",
              "nearly everything; the enforcement gap is qualitative and",
              "recorded in the bench output."]
    return "\n".join(lines)


def e13_section() -> str:
    rev = e13_revocation_gc.revocation_costs()
    gc = e13_revocation_gc.gc_scaling()
    lines = [
        "## E13 — §4.3: revocation, relocation and address-space GC",
        "",
        "**Paper:** revoking a capability either unmaps the segment's pages",
        "(cheap, page-granular) or sweeps all of memory overwriting copies",
        "(expensive); address space must be garbage collected, which tags make",
        "tractable (pointers are self-identifying).",
        "",
        "**Measured — revocation:**",
        "",
        "| segment | unmap ops (pages) | sweep cost (words) | ratio |",
        "|---|---|---|---|",
    ]
    for r in rev:
        lines.append(f"| {r.segment_bytes} B | {r.unmap_pages} | "
                     f"{r.sweep_words} | {r.sweep_to_unmap_ratio:.0f}× |")
    lines += [
        "",
        "The sweep found and overwrote every planted copy "
        f"({rev[0].copies_overwritten}/{rev[0].copies_overwritten}),",
        "registers included.",
        "",
        "**Measured — GC scaling** (half of segments reachable):",
        "",
        "| segments | words scanned | freed | bytes freed |",
        "|---|---|---|---|",
    ]
    for r in gc:
        lines.append(f"| {r.segments} | {r.words_scanned} | "
                     f"{r.segments_freed} | {r.bytes_freed} |")
    lines += ["", "**Verdict: reproduced** — the cost asymmetry that drives",
              "§4.3's design advice is plainly visible."]
    return "\n".join(lines)


def e14_section() -> str:
    attacks = e14_sparse_capabilities.shrink_comparison(
        live_objects=1 << 16, guesses=2_000_000)
    guarded = e14_sparse_capabilities.guarded_attack(guesses=100_000)
    lines = [
        "## E14 — §4.2: the address-space opportunity cost",
        "",
        "**Paper:** Amoeba-style systems hide software capabilities in a",
        "sparse virtual address space, \"a strategy which becomes less",
        "attractive if the virtual address space shrinks by a factor of",
        "1000\" — but \"this particular use … can be replaced by the",
        "capability mechanism provided by guarded pointers.\"",
        "",
        "**Measured** (Monte-Carlo forgery, 2M guesses against 65 536 live",
        "objects):",
        "",
        "| space | hits | expected hits |",
        "|---|---|---|",
    ]
    for bits, a in attacks.items():
        lines.append(f"| {bits}-bit | {a.hits} | {a.expected_hits:.2f} |")
    lines += [
        "",
        f"Shrinking 64→54 bits raises the expected hit rate exactly "
        f"{e14_sparse_capabilities.shrink_factor()}× (the paper's factor of",
        f"1000).  The same brute force against guarded pointers scores "
        f"{guarded.successes}/{guarded.guesses}: every fabricated word is a "
        "TagFault, so the tag bit replaces sparsity outright.",
        "",
        "**Verdict: reproduced** — both the cost and the paper's answer to it.",
    ]
    return "\n".join(lines)


def e15_section() -> str:
    points = e15_multinode.latency_vs_distance()
    locality = e15_multinode.protection_stays_local(attempts=8)
    lines = [
        "## E15 — §3 (extension): guarded pointers across the mesh",
        "",
        "**Paper:** the M-Machine's nodes share the 54-bit global address",
        "space over a 3-D mesh; the paper asserts but does not evaluate",
        "this.  Extension experiment on our multicomputer model:",
        "",
        "| hops to home | load stall cycles | mesh messages |",
        "|---|---|---|",
    ]
    for p in points:
        lines.append(f"| {p.hops} | {p.stall_cycles} | {p.messages} |")
    lines += [
        "",
        f"Denied remote stores: {locality.denied_remote_stores}/8, using "
        f"{locality.network_messages} network messages and "
        f"{locality.remote_protection_state_bytes} bytes of protection state",
        "at the home node — checks run at issue, so protection cost is",
        "completely independent of distance.",
        "",
        "**Verdict: mechanism validated** (no paper numbers to compare).",
    ]
    return "\n".join(lines)


def e16_section() -> str:
    from benchmarks.bench_service_traffic import measure

    r = measure(requests=1000, tenants=200, nodes=4)
    lines = [
        "## E16 — §2.3 + §3 (extension): multi-tenant service under "
        "open-loop traffic",
        "",
        "**Paper:** enter pointers make cross-domain calls cheap enough",
        "to build servers from protected subsystems (§2.3), and nodes",
        "share one guarded address space (§3).  Extension experiment:",
        "hundreds of tenants — each a Figure-3 gateway over a private KV",
        "table — share a 4-node mesh with *no* isolation mechanism but",
        "guarded pointers, under an open-loop Poisson/Zipf workload",
        "(`repro serve`, docs/SERVICE.md):",
        "",
        "| metric | value |",
        "|---|---|",
        f"| workload | {r['workload']} |",
        f"| completed / errors / wrong results | {r['completed']} / "
        f"{r['errors']} / {r['wrong_results']} |",
        f"| throughput | {r['throughput_rpk']:.1f} req/kcycle |",
        f"| latency p50 / p99 / p999 (cycles, arrival to halt) | "
        f"{r['latency_p50']} / {r['latency_p99']} / {r['latency_p999']} |",
        f"| enter round trips | {r['enter_roundtrips']} "
        f"(= completed requests exactly) |",
        "",
        "Every request is exactly one protection-domain round trip — no",
        "kernel instructions on the data path, and the per-request",
        "protection cost is independent of tenant count because the",
        "capability *is* the pointer.",
        "",
        "**Verdict: mechanism validated** (no paper numbers to compare);",
        "`BENCH_pr10.json` records median + IQR across trials.",
    ]
    return "\n".join(lines)


def e17_section() -> str:
    s = e17_compartmentalization.study(requests=1000, tenants=100)
    base = s.report("guarded-pointers")
    lines = [
        "## E17 — modern battleground: the compartmentalization "
        "trade-off study",
        "",
        "**Paper:** §5 scores guarded pointers against 1994's rivals on",
        "cross-domain call cost alone.  Modern compartmentalization",
        "studies score on three axes — call cost, revocation cost, and",
        "memory overhead at scale — and the capability successors of the",
        "2020s (Capstone's linear/revocable capabilities, Capacity's",
        "MACed pointers, uninitialized capabilities) each move the",
        "trade-off somewhere the 1994 design did not.  Extension",
        "experiment: the E16 service's protection-level event stream",
        f"({s.meta['events']} events from {s.meta['completed']} requests",
        f"over {s.meta['tenants']} tenants), captured once and replayed",
        "bit-identically through all nine schemes, with the hottest",
        f"tenant (domain {s.meta['victim']}) bulk-revoked halfway through",
        "— `repro compare` prints the same tables (docs/BASELINES.md).",
        "",
        "| scheme | cycles | vs guarded | cyc/call | cyc/access | "
        "revoke cycles | post-revoke faults |",
        "|---|---|---|---|---|---|---|",
    ]
    for r in s.reports:
        lines.append(
            f"| {r.scheme} | {r.total_cycles} | "
            f"{r.total_cycles / base.total_cycles:.2f}× | "
            f"{r.cycles_per_call:.2f} | {r.cycles_per_access:.2f} | "
            f"{r.revoke_cycles} | {r.post_revoke_faults} |")
    counts = sorted(next(iter(s.overhead.values())))
    lines += [
        "",
        "Protection-metadata bytes at 10/100/1000 tenants:",
        "",
        "| scheme | " + " | ".join(f"@{n}" for n in counts) + " |",
        "|---|" + "---|" * len(counts),
    ]
    for scheme, row in s.overhead.items():
        lines.append(f"| {scheme} | "
                     + " | ".join(str(row[n]) for n in counts) + " |")
    capstone = s.report("capstone-linear")
    capacity = s.report("capacity-mac")
    uninit = s.report("uninit-caps")
    lines += [
        "",
        "The §5 result survives the modern workload (paged "
        f"{s.relative_cycles('paged-separate'):.2f}×, ASID "
        f"{s.relative_cycles('paged-asid'):.2f}× guarded cycles), and",
        "each successor's trade is visible in one row: Capstone buys",
        f"O(1) revocation ({capstone.revoke_cycles} cycles, no kernel,",
        "vs ~90 for every table-walking scheme) by paying "
        f"{capstone.extras['linear_moves']} linear moves on hand-offs "
        f"({capstone.cycles_per_call:.1f} cyc/call where guarded pays 0);",
        "Capacity buys the smallest footprint "
        f"({capacity.memory_bytes} B at {s.meta['tenants']} tenants — no "
        "tag bits, keys only) by paying MAC verification "
        f"({capacity.extras['mac_verifies']} verifies, "
        f"{capacity.extras['mac_signs']} re-signs); uninitialized",
        f"capabilities ride guarded's numbers "
        f"({s.relative_cycles('uninit-caps'):.2f}×) while saving the "
        f"zero-fill of {uninit.extras['zero_fill_words_saved']} "
        "first-written words.",
        "",
        "**Verdict: mechanism validated** (no paper numbers to compare) —",
        "the 1994 design still wins the call-cost axis outright; its",
        "successors trade that edge for revocation or memory, never",
        "getting all three.",
    ]
    return "\n".join(lines)


def ablations_section() -> str:
    banks = ablations.bank_sweep(iterations=120)
    translation = ablations.translation_position()
    sensitivity = ablations.cost_sensitivity(refs_per_process=1500)
    restrict = ablations.restrict_hardware_vs_gateway()
    lines = [
        "## Ablations — removing one design ingredient at a time",
        "",
        "**A1 — cache banking (§3).**",
        "",
        "| banks | cycles | bank conflicts |",
        "|---|---|---|",
    ]
    for p in banks:
        lines.append(f"| {p.banks} | {p.cycles} | {p.bank_conflicts} |")
    lines += [
        "",
        "**A2 — translation position (§5.1).**",
        "",
        "| memory path | cycles/access | TLB probes |",
        "|---|---|---|",
    ]
    for p in translation:
        lines.append(f"| {p.scheme} | {p.cycles_per_access:.2f} | "
                     f"{p.tlb_probes} |")
    lines += [
        "",
        "**A3 — cost-model sensitivity of E9.**",
        "",
        "| variant | flush-paging / guarded |",
        "|---|---|",
    ]
    for p in sensitivity:
        lines.append(f"| {p.variant} | {p.paged_over_guarded:.2f} |")
    lines += [
        "",
        "**A4 — hardware RESTRICT vs the M-Machine's gateway emulation",
        "(§2.2).**  One instruction "
        f"({restrict.hardware_cycles} cycles) vs a protected call "
        f"({restrict.gateway_cycles} cycles): "
        f"{restrict.emulation_factor:.0f}× — 'not completely necessary' is",
        "true, but frequent restriction wants the instructions.",
    ]
    overcommit = ablations.overcommit_sweep()
    lines += [
        "",
        "**A5 — paging beneath segments (§4.2): graceful overcommit.**",
        "",
        "| touched/physical | cycles | evictions |",
        "|---|---|---|",
    ]
    for p in overcommit:
        lines.append(f"| {p.overcommit:.1f} | {p.cycles} | {p.evictions} |")
    lines += ["", "over-committed virtual space degrades into eviction "
              "latency instead of failing."]
    return "\n".join(lines)


#: the document, in order: (id, kind, hook, section function).  ``kind``
#: drives the summary counts ("paper" claims vs "extension" validations
#: vs the ablation block); ``hook`` is the one-line index entry.  The
#: header's summary, the index, and the body are all generated from
#: this list — append here and everything stays consistent.
SECTIONS = [
    ("E1", "paper", "Figure 1 — pointer format round-trips", e1_section),
    ("E2", "paper", "Figure 2 — LEA masked-comparator exactness", e2_section),
    ("E3", "paper", "Figure 3 — enter-pointer call vs inline vs trap",
     e3_section),
    ("E4", "paper", "Figure 4 — two-way protection cost", e4_section),
    ("E5", "paper", "Figure 5/§3 — multithreading across domains",
     e5_section),
    ("E6", "paper", "§4.1 — tag overhead, hardware inventory", e6_section),
    ("E7", "paper", "§4.2 — fragmentation, buddy coalescing", e7_section),
    ("E8", "paper", "§5.1 — sharing: n×m entries vs m pointers",
     e8_section),
    ("E9", "paper", "§5.1/§3 — context-switch cost vs quantum",
     e9_section),
    ("E10", "paper", "§5.2 — segmentation latency + rigidity",
     e10_section),
    ("E11", "paper", "§5.3 — capability-table indirection", e11_section),
    ("E12", "paper", "§5.4 — SFI dynamic check overhead", e12_section),
    ("E13", "paper", "§4.3 — revocation unmap vs sweep; GC", e13_section),
    ("E14", "paper", "§4.2 — sparse capabilities vs the tag bit",
     e14_section),
    ("E15", "extension", "§3 — guarded pointers across the mesh",
     e15_section),
    ("E16", "extension", "§2.3+§3 — multi-tenant service under load",
     e16_section),
    ("E17", "extension", "modern battleground — nine schemes, three axes",
     e17_section),
    ("A1–A5", "ablations", "removing one design ingredient at a time",
     ablations_section),
]


def header() -> str:
    """The document head — summary counts and index derived from
    ``SECTIONS``, so they cannot drift from the body."""
    papers = [s for s in SECTIONS if s[1] == "paper"]
    extensions = [s for s in SECTIONS if s[1] == "extension"]
    lines = [
        "# EXPERIMENTS — paper claims vs. measured results",
        "",
        "Reproduction of *Hardware Support for Fast Capability-based "
        "Addressing*",
        "(Carter, Keckler & Dally, ASPLOS 1994).  The paper is an "
        "architecture",
        "paper: its five figures are mechanisms and its quantitative "
        "claims live",
        "in §4–§5, so each experiment below reproduces one mechanism or "
        "claim",
        "(the mapping is DESIGN.md §4).  Absolute cycle counts depend on "
        "the cost",
        "model in `repro/sim/costs.py` (printed by every benchmark); the "
        "claims",
        "checked here are *shapes* — who wins, by what growth law, where "
        "the",
        "crossovers sit.",
        "",
        "**Regenerate this file:** `python tools/generate_experiments_md.py`",
        "**Run the benches:** `pytest benchmarks/ --benchmark-only`",
        "",
        f"Summary: **{len(papers)}/{len(papers)} paper-claim experiments "
        f"reproduce** ({papers[0][0]}–{papers[-1][0]}), plus "
        f"{len(extensions)} mechanism-validation extensions "
        f"({', '.join(s[0] for s in extensions)}) and the design "
        "ablations (A1–A5).",
        "",
        "| # | experiment |",
        "|---|---|",
    ]
    for sid, _, hook, _fn in SECTIONS:
        lines.append(f"| {sid} | {hook} |")
    return "\n".join(lines)


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("EXPERIMENTS.md")
    sections = [header()]
    for sid, _, _, fn in SECTIONS:
        print(f"running {sid} ...", flush=True)
        sections.append(fn())
    out.write_text("\n\n".join(sections) + "\n")
    print(f"wrote {out} ({out.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
