#!/usr/bin/env python3
"""Quickstart: guarded pointers in five minutes.

Walks the paper's core mechanism end to end:

1. forge a pointer (privileged), decode its fields (Figure 1);
2. derive pointers with LEA — and watch the masked comparator fault an
   out-of-segment derivation (Figure 2);
3. restrict rights and shrink segments in user mode (RESTRICT/SUBSEG);
4. run a real program on the M-Machine simulator, with the hardware
   enforcing every access.

Run:  python examples/quickstart.py
"""

from repro.core import (
    BoundsFault,
    GuardedPointer,
    Permission,
    PermissionFault,
    TagFault,
    check_load,
    check_store,
    lea,
    restrict,
    subseg,
)
from repro.sim.api import Simulation


def section(title):
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main():
    section("1. The pointer format (Figure 1)")
    # The kernel would use SETPTR for this; GuardedPointer.make is the
    # library's privileged forge.
    p = GuardedPointer.make(Permission.READ_WRITE, seglen=12, address=0x4000_0123)
    print(f"pointer word : {p.word.value:#018x} (+ tag bit)")
    print(f"permission   : {p.permission.name}")
    print(f"segment      : [{p.segment_base:#x}, {p.segment_limit:#x}) "
          f"({p.segment_size} bytes)")
    print(f"offset       : {p.offset:#x}")

    section("2. Checked pointer arithmetic (Figure 2)")
    q = lea(p.word, 0x100)
    print(f"lea +0x100   : address {q.address:#x} — fine, still in segment")
    try:
        lea(p.word, 1 << 13)
    except BoundsFault as e:
        print(f"lea +0x2000  : BoundsFault — {e}")

    section("3. User-mode rights restriction")
    ro = restrict(p.word, Permission.READ_ONLY)
    print(f"restrict -> {ro.permission.name}; loads ok: "
          f"{check_load(ro.word) is not None}")
    try:
        check_store(ro.word)
    except PermissionFault as e:
        print(f"store via read-only pointer: PermissionFault — {e}")
    small = subseg(p.word, 4)
    print(f"subseg -> 16-byte segment at {small.segment_base:#x}")
    try:
        restrict(ro.word, Permission.READ_WRITE)
    except Exception as e:
        print(f"amplification attempt: {type(e).__name__} — {e}")

    section("4. Forgery is impossible in user mode")
    as_int = p.as_integer()
    print(f"pointer bits as integer: {as_int.value:#x} (tag cleared)")
    try:
        check_load(as_int)
    except TagFault as e:
        print(f"using the integer as an address: TagFault — {e}")

    section("5. A program on the M-Machine (Section 3)")
    sim = Simulation(memory_bytes=2 * 1024 * 1024)
    data = sim.allocate(4096)
    thread = sim.spawn("""
        ; sum the first 8 words of the segment in r1
        movi r2, 8        ; counter
        movi r3, 0        ; sum
        mov  r4, r1       ; cursor (a guarded pointer)
        movi r6, 1
    init:
        beq r2, summed
        st r6, r4, 0      ; fill with 1s while we're here
        lea r4, r4, 8
        subi r2, r2, 1
        br init
    summed:
        movi r2, 8
        mov r4, r1
    loop:
        beq r2, done
        ld r5, r4, 0
        add r3, r3, r5
        lea r4, r4, 8
        subi r2, r2, 1
        br loop
    done:
        halt
    """, regs={1: data.word})
    result = sim.run()
    print(f"machine ran {result.cycles} cycles, "
          f"{result.issued_bundles} bundles, reason={result.reason}")
    print(f"sum computed by the program: {thread.regs.read(3).value}")
    print(f"demand-paged frames: {sim.kernel.stats.demand_pages}")
    snap = sim.snapshot()
    print(f"fetch cache: {snap['fetch.hits']} hits / "
          f"{snap['fetch.misses']} misses")

    section("6. And the hardware catches a stray store")
    t2 = sim.spawn("""
        movi r2, 99
        st r2, r1, 4096   ; one byte past the segment
        halt
    """, regs={1: data.word})
    sim.run()
    print(f"thread state: {t2.state.name}")
    print(f"fault: {t2.fault}")


if __name__ == "__main__":
    main()
