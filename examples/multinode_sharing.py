#!/usr/bin/env python3
"""Guarded pointers across a multicomputer (paper §3).

The M-Machine is a mesh multicomputer whose nodes share one 54-bit
global address space.  Because the capability lives *in the pointer*,
protection needs no distributed bookkeeping whatsoever:

* node 1 dereferences a pointer homed on node 0 — the permission and
  bounds checks run on node 1's execution units before the request ever
  touches the mesh;
* a read-only pointer refuses a remote store *without a single network
  message*;
* a pointer stored into another node's memory comes back still tagged —
  capabilities travel the machine like ordinary data.

The whole machine sits behind the one :class:`repro.Simulation`
facade: ``Simulation.mesh(...)`` (or ``Simulation(nodes=N)``) gives
the same ``load``/``allocate``/``spawn``/``run`` surface as a single
node, with a ``node=`` keyword to place things — a workload written
against the facade runs unchanged on 1 node or 16.

Run:  python examples/multinode_sharing.py
"""

from repro.core.operations import restrict
from repro.core.permissions import Permission
from repro.core.word import TaggedWord
from repro.machine.network import MeshShape
from repro.machine.thread import ThreadState
from repro.sim.api import Simulation


def main():
    sim = Simulation.mesh(MeshShape(2, 2, 1),
                          memory_bytes=4 * 1024 * 1024,
                          arena_order=24)
    print(f"machine: {sim.nodes} nodes "
          f"({sim.shape.x}x{sim.shape.y}x{sim.shape.z} mesh), one "
          f"{1 << 54:,}-byte global address space")
    print(f"each node homes {sim.partition.span():,} bytes\n")

    # node 0 owns a table; hands a read-only pointer to node 3's tenant
    table = sim.allocate(4096, node=0, eager=True)
    paddr = sim.chips[0].page_table.walk(table.segment_base)
    sim.chips[0].memory.store_word(paddr, TaggedWord.integer(2026))
    table_ro = restrict(table.word, Permission.READ_ONLY)

    print("-- node 3 reads node 0's table through a read-only pointer --")
    reader = sim.load("""
        ld r2, r1, 0
        halt
    """, node=3)
    # spawn() places the thread on the entry pointer's home node (3)
    t = sim.spawn(reader, regs={1: table_ro.word}, stack_bytes=0)
    result = sim.run()
    hops = sim.shape.hops(3, 0)
    print(f"   value read: {t.regs.read(2).value} "
          f"({hops} hops each way, {t.stats.stall_cycles} stall cycles)")
    print(f"   mesh traffic so far: {sim.network.stats.messages} messages")

    print("\n-- node 3 tries to *write* the table --")
    writer = sim.load("""
        movi r2, 0
        st r2, r1, 0
        halt
    """, node=3)
    before = sim.network.stats.messages
    t2 = sim.spawn(writer, regs={1: table_ro.word}, stack_bytes=0)
    sim.run()
    print(f"   thread: {t2.state.name} ({type(t2.fault.cause).__name__}) — "
          f"checked at issue on node 3")
    print(f"   mesh messages sent for the attempt: "
          f"{sim.network.stats.messages - before} (zero: the check needs "
          f"no remote state)")

    print("\n-- capabilities travel as data: node 1 mails node 2 a pointer --")
    mailbox = sim.allocate(4096, node=2, eager=True)
    gift = sim.allocate(4096, node=1, eager=True)
    paddr = sim.chips[1].page_table.walk(gift.segment_base)
    sim.chips[1].memory.store_word(paddr, TaggedWord.integer(555))
    sender = sim.load("""
        st r2, r1, 0       ; put the pointer in node 2's mailbox
        halt
    """, node=1)
    receiver = sim.load("""
    wait:
        ld r3, r1, 0       ; poll the mailbox
        isptr r4, r3
        beq r4, wait
        ld r5, r3, 0       ; dereference the received capability
        halt
    """, node=2)
    sim.spawn(sender, regs={1: mailbox.word, 2: gift.word}, stack_bytes=0)
    t3 = sim.spawn(receiver, regs={1: mailbox.word}, stack_bytes=0)
    sim.run(max_cycles=200_000)
    # (the deliberately-faulted writer above still sits in its slot, so
    # judge by the receiver thread itself)
    assert t3.state is ThreadState.HALTED, t3.fault
    print(f"   node 2 received a tagged pointer and read {t3.regs.read(5).value} "
          f"through it (data homed on node 1)")
    print(f"\nmesh totals: {sim.network.stats.messages} messages, "
          f"mean {sim.network.stats.mean_hops:.1f} hops")

    assert t.regs.read(2).value == 2026
    assert t2.state is ThreadState.FAULTED
    assert t3.regs.read(5).value == 555


if __name__ == "__main__":
    main()
