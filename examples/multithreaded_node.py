#!/usr/bin/env python3
"""A full MAP node: 16 threads, 8 protection domains, zero-cost switching.

Recreates the scenario §1 says traditional protection cannot handle:
threads from *different* protection domains interleaved cycle by cycle
on the same clusters.  Eight "tenants" each run two worker threads that
stream through a private segment and consult a shared read-only
configuration segment; every tenant gets the shared pointer RESTRICTed
to read-only.

Shows:
* all 4 clusters × 4 thread slots busy across 8 domains;
* the shared config is readable by everyone, writable by no one but
  the owner (a write attempt faults);
* the same workload on a 'conventional' configuration (domain-switch
  drain + flushes) to show why the M-Machine needed guarded pointers.

Run:  python examples/multithreaded_node.py
"""

from repro.core.operations import lea, restrict
from repro.core.permissions import Permission
from repro.core.word import TaggedWord
from repro.machine.chip import ChipConfig, MAPChip
from repro.machine.thread import ThreadState
from repro.runtime.kernel import Kernel

TENANTS = 8
THREADS_PER_TENANT = 2
ITERATIONS = 120

#: work over a cache-resident private scratch line (r1), mixing in the
#: shared config word (r2 is a read-only pointer every tenant received)
WORKER = f"""
    movi r3, {ITERATIONS}
    ld r6, r2, 0          ; read shared config (read-only pointer)
loop:
    beq r3, done
    ld r4, r1, 0          | addi r5, r5, 1
    st r5, r1, 8
    add r5, r5, r6
    subi r3, r3, 1
    br loop
done:
    halt
"""


def build_node(config: ChipConfig):
    kernel = Kernel(MAPChip(config))
    # one shared, owner-writable config segment
    config_rw = kernel.allocate_segment(4096, eager=True)
    paddr = kernel.chip.page_table.walk(config_rw.segment_base)
    kernel.chip.memory.store_word(paddr, TaggedWord.integer(7))
    config_ro = restrict(config_rw.word, Permission.READ_ONLY)

    threads = []
    index = 0
    for tenant in range(TENANTS):
        entry = kernel.load_program(WORKER)
        for worker in range(THREADS_PER_TENANT):
            private = kernel.allocate_segment(64 * 1024)
            # stagger each thread's hot line so the (power-of-two
            # aligned) segments don't all collide in one cache set —
            # the usual allocator/page-colouring countermeasure
            scratch = lea(private.word, (index * 17 % 512) * 64)
            threads.append(kernel.spawn(
                entry, domain=tenant + 1,
                regs={1: scratch.word, 2: config_ro.word},
                stack_bytes=0,
            ))
            index += 1
    return kernel, config_rw, config_ro, threads


def run_and_report(label: str, config: ChipConfig):
    kernel, config_rw, config_ro, threads = build_node(config)
    result = kernel.run(max_cycles=2_000_000)
    halted = sum(1 for t in threads if t.state is ThreadState.HALTED)
    stalls = sum(c.switch_stall_cycles for c in kernel.chip.clusters)
    print(f"{label:<14} cycles={result.cycles:>7}  "
          f"bundles={result.issued_bundles:>6}  "
          f"utilization={result.utilization:.3f}  "
          f"domain-switch stalls={stalls}")
    assert halted == len(threads), result.reason
    return kernel, config_ro, result


def main():
    print(f"{TENANTS} tenants x {THREADS_PER_TENANT} threads, "
          f"{TENANTS} protection domains, 4 clusters\n")

    guarded_cfg = ChipConfig(memory_bytes=16 * 1024 * 1024)
    conventional_cfg = ChipConfig(memory_bytes=16 * 1024 * 1024,
                                  domain_switch_penalty=8,
                                  flush_on_domain_switch=True)

    kernel, config_ro, guarded = run_and_report("guarded", guarded_cfg)
    _, _, conventional = run_and_report("conventional", conventional_cfg)

    print(f"\nconventional machine needs "
          f"{conventional.cycles / guarded.cycles:.1f}x the cycles to "
          f"interleave these domains — the M-Machine's reason for "
          f"guarded pointers (§1, §3).")

    print("\n-- tenant tries to scribble on the shared config --")
    vandal = kernel.load_program("""
        movi r3, 0
        st r3, r2, 0
        halt
    """)
    t = kernel.spawn(vandal, regs={2: config_ro.word}, stack_bytes=0)
    kernel.run()
    print(f"   {t.state.name}: {type(t.fault.cause).__name__} — "
          f"read-only means read-only, even for cached, shared data")


if __name__ == "__main__":
    main()
