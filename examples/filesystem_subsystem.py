#!/usr/bin/env python3
"""A file system as an unprivileged protected subsystem (paper §2.3).

The paper's motivating example: "Modules of an operating system, e.g.
the filesystem, can be implemented as unprivileged protected subsystems
that contain pointers to appropriate data structures."

This example builds a tiny file system whose block table lives in a
private segment.  Clients hold only an *enter* pointer to the service:

* they can call ``read_block(n)`` through the gateway and get data back;
* they cannot read or write the block table directly;
* they cannot jump into the middle of the service;
* and nothing here required the kernel after installation — the whole
  protection boundary is two guarded pointers.

Run:  python examples/filesystem_subsystem.py
"""

from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord
from repro.machine.chip import ChipConfig, MAPChip
from repro.machine.thread import ThreadState
from repro.runtime.kernel import Kernel
from repro.runtime.subsystem import ProtectedSubsystem

BLOCKS = 16
BLOCK_WORDS = 8

#: The service: r3 = block number in, r11 = first word of block out.
#: Its private block-table pointer lives in its own code segment and is
#: loaded only after entry converts the enter pointer to an execute
#: pointer (Figure 3B→3C).
FS_SERVICE = f"""
entry:
    getip r10, blocktable
    ld r10, r10, 0          ; the private block-table pointer
    shli r4, r3, 6          ; block number -> byte offset (64 B blocks)
    lear r4, r10, r4        ; pointer to the block (bounds checked!)
    ld r11, r4, 0           ; read the block's first word
    movi r10, 0             ; wipe private pointers before returning
    movi r4, 0
    jmp r15                 ; back to the caller (Figure 3D)
blocktable:
    .word 0
"""


def build_filesystem(kernel: Kernel):
    """Install the service and format the 'disk'."""
    table = kernel.allocate_segment(BLOCKS * BLOCK_WORDS * 8, eager=True)
    # format: block n's first word holds 1000 + n
    for block in range(BLOCKS):
        vaddr = table.segment_base + block * BLOCK_WORDS * 8
        paddr = kernel.chip.page_table.walk(vaddr)
        kernel.chip.memory.store_word(paddr, TaggedWord.integer(1000 + block))
    service = ProtectedSubsystem.install(kernel, FS_SERVICE,
                                         data={"blocktable": table})
    return service, table


def main():
    kernel = Kernel(MAPChip(ChipConfig(memory_bytes=4 * 1024 * 1024)))
    fs, table = build_filesystem(kernel)
    print("file system installed:")
    print(f"  clients hold      : {fs.enter!r}")
    print(f"  private table at  : [{table.segment_base:#x}, {table.segment_limit:#x})")

    print("\n-- a well-behaved client reads block 5 --")
    client = kernel.load_program("""
        movi r3, 5          ; block number
        getip r15, ret
        jmp r1              ; call the file system
    ret:
        halt
    """)
    t = kernel.spawn(client, regs={1: fs.enter.word})
    result = kernel.run()
    print(f"   returned word: {t.regs.read(11).value} "
          f"(expected {1000 + 5}); machine: {result.reason}, "
          f"{result.cycles} cycles")

    print("\n-- a malicious client tries to read the table directly --")
    snoop = kernel.load_program("""
        ld r2, r1, 0        ; enter pointers confer no read right
        halt
    """)
    t2 = kernel.spawn(snoop, regs={1: fs.enter.word})
    kernel.run()
    print(f"   thread: {t2.state.name} — {type(t2.fault.cause).__name__}: "
          f"{t2.fault.cause}")

    print("\n-- another tries to jump past the entry checks --")
    vault = kernel.load_program("""
        lea r2, r1, 48      ; enter pointers cannot be modified either
        halt
    """)
    t3 = kernel.spawn(vault, regs={1: fs.enter.word})
    kernel.run()
    print(f"   thread: {t3.state.name} — {type(t3.fault.cause).__name__}: "
          f"{t3.fault.cause}")

    print("\n-- and one tries an out-of-range block number --")
    wild = kernel.load_program("""
        movi r3, 99         ; only 16 blocks exist
        getip r15, ret
        jmp r1
    ret:
        halt
    """)
    t4 = kernel.spawn(wild, regs={1: fs.enter.word})
    kernel.run()
    print(f"   thread: {t4.state.name} — the service's own LEAR bounds "
          f"check caught it: {type(t4.fault.cause).__name__}")

    print("\nNo kernel was involved in any call — the boundary is pure "
          "guarded pointers.")
    assert t.regs.read(11).value == 1005
    assert t2.state is ThreadState.FAULTED
    assert t3.state is ThreadState.FAULTED
    assert t4.state is ThreadState.FAULTED


if __name__ == "__main__":
    main()
