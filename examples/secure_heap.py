#!/usr/bin/env python3
"""A memory-safe heap, unforgeable keys, and address-space GC.

Three smaller systems the paper sketches, built on the library:

1. **Bounds-checked malloc** — every allocation is a SUBSEG-derived
   pointer whose segment is exactly the object, so heap overruns fault
   in hardware rather than corrupting the neighbour (§2.2).
2. **Key pointers** — unforgeable, unalterable identifiers (§2.1): a
   ticket service hands out keys; holders can neither mint nor modify
   them, only present them.
3. **Address-space GC** — pointers are self-identifying via the tag
   bit, so unreachable segments can be found and recycled (§4.3).

Run:  python examples/secure_heap.py
"""

from repro.core import (
    BoundsFault,
    GuardedPointer,
    Permission,
    PermissionFault,
    check_load,
    lea,
    restrict,
)
from repro.machine.chip import ChipConfig, MAPChip
from repro.runtime.gc import AddressSpaceGC
from repro.runtime.kernel import Kernel
from repro.runtime.malloc import Heap


def section(title):
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def demo_heap(kernel):
    section("1. Bounds-checked malloc")
    arena = kernel.allocate_segment(64 * 1024)
    heap = Heap(arena, min_chunk=16)
    a = heap.allocate(100)   # gets a 128-byte chunk
    b = heap.allocate(40)    # gets a 64-byte chunk
    print(f"a: {a.segment_size:>4}-byte object at {a.segment_base:#x}")
    print(f"b: {b.segment_size:>4}-byte object at {b.segment_base:#x}")
    end = lea(a.word, a.segment_size - 1)
    print(f"last byte of a reachable: {end.address:#x}")
    try:
        lea(a.word, a.segment_size)
    except BoundsFault:
        print("one past the end: BoundsFault — overruns cannot reach b")
    heap.free(b)
    heap.free(a)
    print(f"freed; heap reports {heap.live_allocations} live, "
          f"{heap.free_bytes} bytes free")


def demo_keys(kernel):
    section("2. Unforgeable keys (§2.1)")
    # the ticket service derives a KEY pointer naming a unique segment
    ticket_seg = kernel.allocate_segment(1)  # a one-byte segment: pure name
    ticket = restrict(ticket_seg.word, Permission.KEY)
    print(f"issued ticket: {ticket!r}")
    for attempt, op in [
        ("modify it (LEA)", lambda: lea(ticket.word, 0)),
        ("read through it", lambda: check_load(ticket.word)),
        ("upgrade it", lambda: restrict(ticket.word, Permission.READ_ONLY)),
    ]:
        try:
            op()
            print(f"  {attempt}: unexpectedly allowed!")
        except Exception as e:
            print(f"  {attempt}: {type(e).__name__}")
    # equality of the underlying word is the authentication check
    presented = GuardedPointer.from_word(ticket.word)
    print(f"service validates a presented ticket by word equality: "
          f"{presented.word == ticket.word}")
    forged = GuardedPointer.make(Permission.KEY, 0, ticket.address)
    print(f"(a privileged forge CAN mint one — which is why SETPTR is "
          f"privileged: {forged.word == ticket.word})")


def demo_gc(kernel):
    section("3. Address-space garbage collection (§4.3)")
    keep = kernel.allocate_segment(8192, eager=True)
    lost_a = kernel.allocate_segment(8192, eager=True)
    lost_b = kernel.allocate_segment(4096, eager=True)
    # 'keep' is held in a running thread's register; the others are not
    spinner = kernel.load_program("loop:\n  br loop")
    kernel.spawn(spinner, regs={1: keep.word}, stack_bytes=0)
    before = len(kernel.segments)
    gc = AddressSpaceGC(kernel)
    stats = gc.collect()
    print(f"segments before: {before}, after: {len(kernel.segments)}")
    print(f"scanned {stats.words_scanned} words, found "
          f"{stats.pointers_found} pointers, freed "
          f"{stats.segments_freed} segments ({stats.bytes_freed} bytes)")
    assert kernel.segment_of(keep.segment_base) is not None
    assert kernel.segment_of(lost_a.segment_base) is None
    assert kernel.segment_of(lost_b.segment_base) is None
    print("reachable segment survived; unreachable address space recycled")


def main():
    kernel = Kernel(MAPChip(ChipConfig(memory_bytes=8 * 1024 * 1024)))
    demo_heap(kernel)
    demo_keys(kernel)
    demo_gc(kernel)


if __name__ == "__main__":
    main()
