#!/usr/bin/env python3
"""Live process migration with zero capability fixups (repro.persist).

The paper's protection state is *the pointers a process holds* — 64
bits + tag each, naming places in one global address space (§1, §2).
So moving a live process to another node of the multicomputer is pure
data movement: ship its pages and its register files, update the
page-granular home map, and every pointer it held still works
bit-for-bit unchanged.  No capability table is rewritten, because none
exists.

This demo makes the strongest version of that point:

* a *ticket service* is installed on node 0 as a protected subsystem —
  its counter lives in a private segment clients cannot read;
* a client process on node 0 holds only the service's **enter**
  pointer, and takes ticket #1 locally;
* mid-run, the process is migrated to node 1 — the service itself is
  ``pin``-ned and stays home;
* the client resumes on node 1 and takes ticket #2 **through the same
  enter pointer**, now a cross-mesh protected call, with the pointer's
  bits untouched by the move.

Run:  PYTHONPATH=src python examples/migrate_process.py
"""

from repro.core.pointer import GuardedPointer
from repro.machine.network import MeshShape
from repro.machine.thread import ThreadState
from repro.runtime.process import ProcessManager
from repro.runtime.subsystem import ProtectedSubsystem
from repro.sim.api import Simulation

#: Small pages so the tiny demo segments are page-sized and can move
#: (sub-page segments share their page and refuse to migrate — §4.3).
PAGE = 256

#: The service: returns the next ticket number in r11.  Its counter
#: pointer is patched into the code segment at install time; callers
#: hold an enter pointer and can neither read the counter nor jump
#: past the entry sequence.
TICKET_SERVICE = """
entry:
    getip r10, counter
    ld r10, r10, 0      ; the private counter pointer
    ld r11, r10, 0      ; current count
    addi r11, r11, 1
    st r11, r10, 0      ; bump it
    movi r10, 0         ; wipe the private pointer before returning
    jmp r15
counter:
    .word 0
"""

#: The client: take a ticket, spin for a while (the migration window),
#: take another, halt.  r1 = enter pointer, r5/r6 = the two tickets.
CLIENT = """
entry:
    getip r15, ret1
    jmp r1              ; first call — service is local
ret1:
    addi r5, r11, 0     ; save ticket #1
    movi r3, 2000
spin:
    subi r3, r3, 1      ; window for the migration to land in
    bne r3, spin
    getip r15, ret2
    jmp r1              ; second call — service is now a node away
ret2:
    addi r6, r11, 0     ; save ticket #2
    halt
"""


def read_counter(sim: Simulation, counter: GuardedPointer) -> int:
    kernel = sim.kernels[0]
    physical = kernel.chip.page_table.walk(counter.segment_base)
    return kernel.chip.memory.load_word(physical).value


def main() -> None:
    # the unified facade: a mesh with the single-node API surface
    sim = Simulation.mesh(MeshShape(2, 1, 1), page_bytes=PAGE,
                          arena_order=24)
    kernel0 = sim.kernels[0]

    counter = kernel0.allocate_segment(PAGE, eager=True)
    service = ProtectedSubsystem.install(kernel0, TICKET_SERVICE,
                                         data={"counter": counter})
    manager = ProcessManager(kernel0)
    process = manager.create(CLIENT)
    thread = process.start(regs={1: service.enter.word})
    enter_before = thread.regs.read(1)

    print("ticket service installed on node 0:")
    print(f"  clients hold       : {service.enter!r}")
    print(f"  private counter at : {counter.segment_base:#x}")

    print("\n-- the client takes ticket #1 on node 0 --")
    sim.run(max_cycles=600)
    assert thread.regs.read(5).value == 1, "first call should have landed"
    assert thread.regs.read(6).value == 0, "second call should be pending"
    print(f"   ticket #1 = {thread.regs.read(5).value}; the client is "
          f"mid-spin at cycle {sim.now}")

    print("\n-- migrate the process to node 1 (service pinned home) --")
    report = sim.migrate(process, destination=1, pin=(service.enter,))
    print(f"   moved {len(report.segments_moved)} segments, "
          f"{report.pages_shipped} pages, {report.threads_moved} thread; "
          f"departed cycle {report.departed_cycle}, "
          f"resumes at {report.arrival_cycle}")
    print(f"   capability fixups performed: 0 (there is nothing to fix)")

    print("\n-- the client resumes on node 1 and takes ticket #2 --")
    result = sim.run()
    enter_after = thread.regs.read(1)
    print(f"   {result.reason} after {result.cycles} cycles")
    print(f"   ticket #2 = {thread.regs.read(6).value} — a protected "
          f"cross-mesh call through the migrated enter pointer")
    print(f"   enter pointer before: {enter_before.value:#018x} "
          f"tag={enter_before.tag}")
    print(f"   enter pointer after : {enter_after.value:#018x} "
          f"tag={enter_after.tag}")
    print(f"   service counter (still on node 0): "
          f"{read_counter(sim, counter)}")

    assert thread.state is ThreadState.HALTED, thread.fault
    assert thread.scheduler.chip is sim.chips[1], "thread should run on node 1"
    assert thread.regs.read(5).value == 1
    assert thread.regs.read(6).value == 2
    assert (enter_after.value, enter_after.tag) == \
        (enter_before.value, enter_before.tag)
    assert report.threads_moved == 1 and report.pages_shipped >= 1
    assert read_counter(sim, counter) == 2
    print("\nThe process changed nodes; not one pointer changed value.")


if __name__ == "__main__":
    main()
