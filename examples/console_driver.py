#!/usr/bin/env python3
"""An I/O driver as an unprivileged protected subsystem (paper §2.3).

"Even an I/O driver can be implemented as an unprivileged protected
subsystem by protecting access to the read/write pointer of a
memory-mapped I/O device."

This example builds exactly that:

1. a memory-mapped console device is wired into a physical page;
2. the only capability for it — a read/write pointer — is sealed inside
   an **unprivileged** driver subsystem's code segment;
3. clients print by calling the driver through an enter pointer (the
   driver also sanitises the input: policy lives with the capability);
4. a client that fabricates the device's address gets a TagFault —
   knowing *where* the device lives is worthless without the pointer.

No privileged code runs after setup.  Run:
    python examples/console_driver.py
"""

from repro.machine.chip import ChipConfig, MAPChip
from repro.machine.devices import ConsoleDevice, map_device
from repro.machine.thread import ThreadState
from repro.runtime.kernel import Kernel
from repro.runtime.subsystem import ProtectedSubsystem

DRIVER = """
entry:
    ; r3 = character to print, r15 = return IP
    getip r10, device
    ld r10, r10, 0       ; the ONLY pointer to the console
    andi r3, r3, 0xff    ; driver policy: one byte per call
    st r3, r10, 0        ; DATA register
    movi r10, 0          ; never leak the device capability
    jmp r15
device:
    .word 0
"""


def main():
    kernel = Kernel(MAPChip(ChipConfig(memory_bytes=2 * 1024 * 1024)))
    console = ConsoleDevice()
    mmio = map_device(kernel, console)
    driver = ProtectedSubsystem.install(kernel, DRIVER, data={"device": mmio})
    print(f"console device mapped at virtual {mmio.segment_base:#x}")
    print(f"driver installed; clients hold: {driver.enter!r}\n")

    message = "Hello, M-Machine!"
    print(f"-- client prints {message!r} through the driver --")
    stores = "\n".join(f"""
        movi r3, {ord(ch)}
        getip r15, ret{i}
        jmp r1
    ret{i}:
        nop""" for i, ch in enumerate(message))
    client = kernel.load_program(f"{stores}\nhalt")
    kernel.spawn(client, regs={1: driver.enter.word}, stack_bytes=0)
    result = kernel.run()
    print(f"   machine: {result.reason}, {result.cycles} cycles")
    print(f"   console output: {console.text!r}")

    print("\n-- a rogue client knows the device address and pokes it --")
    rogue = kernel.load_program("""
        movi r2, 88
        st r2, r4, 0
        halt
    """)
    t = kernel.spawn(rogue, regs={1: driver.enter.word,
                                  4: mmio.segment_base},  # an integer!
                     stack_bytes=0)
    kernel.run()
    print(f"   thread: {t.state.name} ({type(t.fault.cause).__name__}) — "
          f"an address is not a capability")
    print(f"   console output unchanged: {console.text!r}")

    assert console.text == message
    assert t.state is ThreadState.FAULTED


if __name__ == "__main__":
    main()
