"""Whole-machine images: save and load simulations and multicomputers.

:mod:`repro.persist.state` knows how to freeze one node's pieces; this
module assembles them into the payloads the container format
(:mod:`repro.persist.snapshot`) carries, and rebuilds live machines
from them:

* ``simulation`` — one :class:`~repro.sim.api.Simulation` (chip +
  kernel + optional swap manager);
* ``multicomputer`` — every node of a
  :class:`~repro.machine.multicomputer.Multicomputer`, plus the mesh's
  timing state and the migration forwarding map.

Loading builds a *fresh* machine from the snapshot's recorded
architectural configuration and restores state into it.  Keyword
overrides on load may change the simulator speed knobs
(``decode_cache``, ``data_fast_path``, ``idle_fast_forward``,
``superblock``) — they
alter zero cycles, which the determinism tests prove by running the
same image to identical digests with each knob flipped both ways.
Architectural overrides are rejected by the restore path.

What does **not** come back by itself: trap handlers, custom fault
handlers and jump auditors are code, not state — re-register them
after load.  The demand-paging fault handler and (when the snapshot
recorded a swap manager) the LRU evictor are machine structure, so the
load path does re-wire those.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.persist.snapshot import (SnapshotError, read_snapshot,
                                    write_snapshot)
from repro.persist.state import (capture_chip, capture_kernel, capture_swap,
                                 restore_chip_state, restore_kernel_state,
                                 restore_swap_state)

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.multicomputer import Multicomputer
    from repro.runtime.kernel import Kernel
    from repro.sim.api import Simulation


# -- one node (chip + kernel + optional swap) ---------------------------

def capture_node(kernel: "Kernel") -> dict:
    return {
        "chip": capture_chip(kernel.chip),
        "kernel": capture_kernel(kernel),
        "swap": capture_swap(kernel.swap) if kernel.swap is not None else None,
    }


def restore_node(kernel: "Kernel", state: dict) -> None:
    restore_chip_state(kernel.chip, state["chip"])
    restore_kernel_state(kernel, state["kernel"])
    if state["swap"] is not None:
        swap = kernel.swap
        if swap is None:
            from repro.runtime.swap import SwapManager

            swap = SwapManager(kernel)  # wires the evicting fault handler
        restore_swap_state(swap, state["swap"])


# -- single-node simulations --------------------------------------------

def capture_simulation(sim: "Simulation") -> dict:
    return {"kind": "simulation", "node": capture_node(sim.kernel)}


def restore_simulation(payload: dict, **overrides) -> "Simulation":
    from repro.machine.chip import ChipConfig
    from repro.sim.api import Simulation

    if payload.get("kind") != "simulation":
        raise SnapshotError(
            f"expected a simulation snapshot, got {payload.get('kind')!r}")
    config = ChipConfig(**payload["node"]["chip"]["config"])
    if overrides:
        config = replace(config, **overrides)
    sim = Simulation(config)
    restore_node(sim.kernel, payload["node"])
    return sim


def save_simulation(sim: "Simulation", path: str | Path) -> Path:
    return write_snapshot(capture_simulation(sim), path)


def load_simulation(path: str | Path, **overrides) -> "Simulation":
    return restore_simulation(read_snapshot(path), **overrides)


# -- multicomputers -------------------------------------------------------

def capture_multicomputer(machine: "Multicomputer") -> dict:
    return {
        "kind": "multicomputer",
        "shape": {"x": machine.shape.x, "y": machine.shape.y,
                  "z": machine.shape.z},
        "hop_cycles": machine.network.hop_cycles,
        "interface_cycles": machine.network.interface_cycles,
        "arena_order": machine.arena_order,
        "network": machine.network.capture_state(),
        "page_homes": sorted(machine._page_homes.items()),
        # the window engine's machine half: barrier position, per-node
        # sequence counters and any traffic still queued mid-window
        # (per-node mirror/exported/pending state rides in each chip)
        "windows": machine.windows_state(),
        "nodes": [capture_node(kernel) for kernel in machine.kernels],
    }


def restore_multicomputer_state(machine: "Multicomputer",
                                state: dict) -> None:
    shape = state["shape"]
    if (shape["x"], shape["y"], shape["z"]) != (
            machine.shape.x, machine.shape.y, machine.shape.z):
        raise SnapshotError("snapshot mesh shape differs from machine's")
    if len(state["nodes"]) != len(machine.kernels):
        raise SnapshotError("snapshot node count differs from machine's")
    machine.network.restore_state(state["network"])
    machine._page_homes = {int(p): int(n) for p, n in state["page_homes"]}
    for kernel, node_state in zip(machine.kernels, state["nodes"]):
        restore_node(kernel, node_state)
    # after the chips: the fallback barrier anchor reads chip clocks
    machine.restore_windows_state(state.get("windows"))


def restore_multicomputer(payload: dict, **overrides) -> "Multicomputer":
    from repro.machine.chip import ChipConfig
    from repro.machine.multicomputer import Multicomputer
    from repro.machine.network import MeshShape

    if payload.get("kind") != "multicomputer":
        raise SnapshotError(
            f"expected a multicomputer snapshot, got {payload.get('kind')!r}")
    config = ChipConfig(**payload["nodes"][0]["chip"]["config"])
    if overrides:
        config = replace(config, **overrides)
    shape = payload["shape"]
    machine = Multicomputer(
        shape=MeshShape(shape["x"], shape["y"], shape["z"]),
        chip_config=config,
        hop_cycles=payload["hop_cycles"],
        interface_cycles=payload["interface_cycles"],
        arena_order=payload["arena_order"],
    )
    restore_multicomputer_state(machine, payload)
    return machine


def save_multicomputer(machine: "Multicomputer", path: str | Path) -> Path:
    return write_snapshot(capture_multicomputer(machine), path)


def load_multicomputer(path: str | Path, **overrides) -> "Multicomputer":
    return restore_multicomputer(read_snapshot(path), **overrides)


# -- kind-dispatching conveniences ----------------------------------------

def load_machine(path: str | Path, **overrides):
    """Load whatever the file holds: a :class:`Simulation` for
    ``simulation`` images, a :class:`Multicomputer` for
    ``multicomputer`` ones."""
    payload = read_snapshot(path)
    kind = payload.get("kind")
    if kind == "simulation":
        return restore_simulation(payload, **overrides)
    if kind == "multicomputer":
        return restore_multicomputer(payload, **overrides)
    raise SnapshotError(f"cannot load a machine from a {kind!r} snapshot")
