"""Snapshot/restore, deterministic replay and process migration.

Three layers, bottom to top:

* :mod:`repro.persist.snapshot` — the on-disk container (magic, header,
  CRC, compressed canonical JSON);
* :mod:`repro.persist.state` / :mod:`repro.persist.image` — capturing
  and rebuilding machines (one chip, a simulation, a multicomputer);
* :mod:`repro.persist.delta`, :mod:`repro.persist.migrate`,
  :mod:`repro.persist.replay` — what the base layers enable:
  O(dirty-pages) checkpoints, live cross-node process migration, and
  replayable crash dumps for the differential fuzzer.

The reason any of this is *simple* is the paper's thesis: protection
lives inside guarded pointers, so serialising the words serialises the
capabilities, and a restored or migrated machine needs no fixup pass.
"""

from repro.persist.delta import (DeltaChainError, DeltaCheckpointer,
                                 chain_paths, load_chain)
from repro.persist.image import (capture_multicomputer, capture_node,
                                 capture_simulation, load_machine,
                                 load_multicomputer, load_simulation,
                                 restore_multicomputer,
                                 restore_multicomputer_state, restore_node,
                                 restore_simulation, save_multicomputer,
                                 save_simulation)
from repro.persist.migrate import (MigrationError, MigrationReport,
                                   MigrationService)
from repro.persist.replay import (dump_snapshot_bytes, read_crash_dump,
                                  replay_crash, state_digest,
                                  write_crash_dump)
from repro.persist.snapshot import (SnapshotChecksumError, SnapshotError,
                                    SnapshotFormatError,
                                    SnapshotVersionError, canonical_json,
                                    decode_snapshot, encode_snapshot,
                                    read_header, read_snapshot,
                                    write_snapshot)
from repro.persist.state import (SPEED_KNOBS, capture_chip,
                                 restore_chip_state, threads_by_tid)

__all__ = [
    "SPEED_KNOBS",
    "DeltaChainError",
    "DeltaCheckpointer",
    "MigrationError",
    "MigrationReport",
    "MigrationService",
    "SnapshotChecksumError",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotVersionError",
    "canonical_json",
    "capture_chip",
    "capture_multicomputer",
    "capture_node",
    "capture_simulation",
    "chain_paths",
    "decode_snapshot",
    "dump_snapshot_bytes",
    "encode_snapshot",
    "load_chain",
    "load_machine",
    "load_multicomputer",
    "load_simulation",
    "read_crash_dump",
    "read_header",
    "read_snapshot",
    "replay_crash",
    "restore_chip_state",
    "restore_multicomputer",
    "restore_multicomputer_state",
    "restore_node",
    "restore_simulation",
    "save_multicomputer",
    "save_simulation",
    "state_digest",
    "threads_by_tid",
    "write_crash_dump",
    "write_snapshot",
]
