"""Live process migration between multicomputer nodes.

The experiment this module exists for is the paper's central claim
pushed to its logical extreme: a process's entire protection state is
the guarded pointers it holds (§1, §2), so moving the process to
another node means moving *bits* — page contents and register files —
and **nothing else**.  There is no capability table to rewrite, no
per-process page-table to rebuild, no descriptor registers to reload:
after migration every pointer the process held — data pointers, its
stack pointer, **enter** pointers into protected subsystems it never
could read — still works, bit-for-bit unchanged, because a guarded
pointer's meaning is carried entirely in its own 64 bits + tag and in
the single global address space those bits name.

What actually moves:

* **pages** — each mapped page of the process's segments is read out of
  the source node's frames, unmapped there (revocation semantics: any
  straggler access faults and is forwarded to the new home), installed
  in a fresh frame on the destination, and *rehomed* in the
  multicomputer's forwarding map
  (:meth:`~repro.machine.multicomputer.Multicomputer.rehome_page`) —
  the one page-granular translation artifact migration touches;
* **swapped pages** — backing-store entries move store-to-store (the
  page stays swapped out; tags travel with the words);
* **untouched pages** — nothing to copy; they are rehomed so the
  destination kernel demand-maps them on first touch;
* **threads** — frozen (removed from their source clusters), carried
  with registers, pending deferred writes and fault state intact, and
  re-installed in destination cluster slots, blocked until the mesh
  delivers the last page.

Which segments move: by default the service *discovers* the process's
working set by scanning its threads' register files for tagged words —
guarded pointers are self-identifying, so no OS bookkeeping is needed
to enumerate what a process can reach — plus the entry segment and the
process's published segment list.  Segments named in ``pin`` stay on
the source node (a protected subsystem can stay home while its caller
migrates: the caller's enter pointer keeps working remotely).

Address-space bookkeeping: virtual addresses do not change (that is
the point), so the *allocator* ownership of a migrated segment's range
stays with its static home partition — only the
:class:`~repro.runtime.kernel.Segment` records move, because the
destination kernel's demand pager consults them.  Freeing a migrated
segment goes through its origin kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.pointer import GuardedPointer
from repro.machine.thread import ThreadState
from repro.persist.state import threads_by_tid

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.multicomputer import Multicomputer
    from repro.runtime.process import Process


class MigrationError(Exception):
    """The process cannot be moved as requested."""


@dataclass
class MigrationReport:
    """What one migration moved, and when the process resumed."""

    domain: int
    source: int
    destination: int
    departed_cycle: int
    arrival_cycle: int
    segments_moved: list[int] = field(default_factory=list)  # segment bases
    pages_shipped: int = 0      # resident pages copied over the mesh
    swapped_shipped: int = 0    # backing-store pages moved store-to-store
    pages_rehomed: int = 0      # forwarding-map entries written
    threads_moved: int = 0


class MigrationService:
    """Moves live processes between the nodes of one multicomputer."""

    def __init__(self, machine: "Multicomputer"):
        self.machine = machine

    # -- working-set discovery -----------------------------------------

    def reachable_segments(self, process: "Process") -> list[int]:
        """Bases of the source-kernel segments the process can name:
        its entry segment, its published segment list, and every
        segment a tagged word in any of its threads' register files
        points into.  The tag bit makes pointers self-identifying —
        this sweep needs no per-process OS tables."""
        kernel = process.kernel
        bases: dict[int, None] = {}  # insertion-ordered set

        def note(pointer: GuardedPointer) -> None:
            segment = kernel.segment_of(pointer.address)
            if segment is not None:
                bases.setdefault(segment.base)

        note(process.entry)
        for pointer in process.segments:
            note(pointer)
        for thread in process.threads:
            regs, _ = thread.regs.snapshot()
            for word in regs:
                if word.tag:
                    note(GuardedPointer.from_word(word))
        return list(bases)

    # -- the move -------------------------------------------------------

    def migrate(self, process: "Process", destination: int,
                pin: Iterable[GuardedPointer] = ()) -> MigrationReport:
        """Freeze ``process``, ship its segments and threads to node
        ``destination``, and resume it there.  Segments whose base
        matches a ``pin`` pointer stay home (their pointers keep
        working remotely)."""
        machine = self.machine
        if not 0 <= destination < len(machine.chips):
            raise MigrationError(f"no node {destination} in this machine")
        source_kernel = process.kernel
        dest_kernel = machine.kernels[destination]
        source = source_kernel.chip.node_id
        if source == destination:
            raise MigrationError("process is already on that node")
        for thread in process.threads:
            if thread.scheduler is None:
                raise MigrationError(
                    f"thread {thread.tid} is not resident on a cluster")
            if thread.scheduler.chip is not source_kernel.chip:
                raise MigrationError(
                    f"thread {thread.tid} does not run on the process's node")

        pinned = {p.segment_base for p in pin}
        bases = [b for b in self.reachable_segments(process)
                 if b not in pinned]
        page_bytes = source_kernel.chip.page_table.page_bytes
        for base in bases:
            if source_kernel.segments[base].size < page_bytes:
                raise MigrationError(
                    f"segment at {base:#x} is smaller than a page; it "
                    f"shares its page with neighbours and cannot migrate "
                    f"alone (the granularity mismatch of §4.3)")

        chips = machine.chips
        departed = chips[source].now
        report = MigrationReport(domain=process.domain, source=source,
                                 destination=destination,
                                 departed_cycle=departed,
                                 arrival_cycle=departed,
                                 segments_moved=list(bases))

        # 1. freeze: pull every thread out of its source cluster.  The
        # register files go quiet; nothing can touch the segments while
        # the pages are in flight (the simulator moves them atomically
        # between cycles anyway — the freeze models the protocol).
        dest_tids = threads_by_tid(dest_kernel.chip)
        for thread in process.threads:
            if thread.tid in dest_tids:
                raise MigrationError(
                    f"destination node already runs a thread with tid "
                    f"{thread.tid}")
            thread.scheduler.remove_thread(thread)

        # 2. ship pages
        arrival = departed
        src_table = source_kernel.chip.page_table
        src_memory = source_kernel.chip.memory
        dst_table = dest_kernel.chip.page_table
        dst_memory = dest_kernel.chip.memory
        src_swap = source_kernel.swap
        dst_swap = dest_kernel.swap
        words_per_page = page_bytes // 8
        for base in bases:
            segment = source_kernel.segments[base]
            for page in range(base // page_bytes,
                              (base + segment.size) // page_bytes):
                if src_table.is_mapped(page):
                    physical = src_table.walk(page * page_bytes)
                    words = [src_memory.load_word(physical + i * 8)
                             for i in range(words_per_page)]
                    # unmap fires the machine-wide invalidation hooks,
                    # so stale decoded bundles die on every node
                    src_table.unmap(page)
                    if src_swap is not None:
                        src_swap._resident.pop(page, None)
                    translation = dst_table.map(page)
                    for i, word in enumerate(words):
                        dst_memory.store_word(
                            translation.physical_address + i * 8, word)
                    if dst_swap is not None:
                        dst_swap._resident[page] = True
                    arrival = machine.network.deliver(source, destination,
                                                      departed)
                    report.pages_shipped += 1
                elif src_swap is not None and page in src_swap._store:
                    words = src_swap._store.pop(page)
                    if dst_swap is not None:
                        # stays swapped out; faults in on the new node
                        dst_swap._store[page] = words
                    else:
                        # destination has no backing store: materialise
                        translation = dst_table.map(page)
                        for i, word in enumerate(words):
                            dst_memory.store_word(
                                translation.physical_address + i * 8, word)
                    arrival = machine.network.deliver(source, destination,
                                                      departed)
                    report.swapped_shipped += 1
                machine.rehome_page(page, destination)
                report.pages_rehomed += 1
            # belt and braces for code segments: the unmap hooks above
            # already flushed, but a fully swapped-out segment unmaps
            # nothing, and its decoded bundles must not survive the move.
            # The machine is quiesced, so dropping the range on every
            # node synchronously is exact (no window traffic to order
            # against).
            for chip in machine.chips:
                chip._invalidate_decoded_range_local(base, segment.size)
            dest_kernel.segments[base] = source_kernel.segments.pop(base)

        # 3. ship the thread state (one message, after the pages)
        arrival = max(arrival,
                      machine.network.deliver(source, destination, departed))

        # 4. resume on the destination: install each thread in the
        # emptiest cluster, blocked until the mesh delivered everything
        dest_chip = dest_kernel.chip
        for thread in process.threads:
            cluster = min(dest_chip.clusters, key=lambda c: c.active_count)
            cluster.add_thread(thread)
            if thread._state is ThreadState.READY:
                thread.block_until(arrival)
            elif thread._state is ThreadState.BLOCKED:
                thread.wake_at = max(thread.wake_at, arrival)
            report.threads_moved += 1
            dest_chip._next_tid = max(dest_chip._next_tid, thread.tid + 1)

        process.kernel = dest_kernel
        report.arrival_cycle = arrival
        counters = source_kernel.chip.counters
        counters.incr("migrate.processes")
        counters.incr("migrate.pages", report.pages_shipped)
        counters.incr("migrate.threads", report.threads_moved)
        counters.incr("migrate.cycles", arrival - departed)
        obs = source_kernel.chip.obs
        if obs.enabled:
            obs.emit("migrate.begin", departed, domain=process.domain,
                     src=source, dst=destination,
                     segments=len(report.segments_moved))
            obs.emit("migrate.ship", departed, dur=arrival - departed,
                     pages=report.pages_shipped,
                     swapped=report.swapped_shipped)
            obs.emit("migrate.resume", arrival,
                     threads=report.threads_moved)
        return report
