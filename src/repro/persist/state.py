"""Capturing and restoring one MAP node's complete state.

The dividing line between what is captured and what is rebuilt follows
the simulator's timing-transparency contract:

* **captured exactly** — everything a cycle count can depend on: the
  tagged memory image, the frame free list (its *order* decides which
  frame the next map picks), the page table, the TLB's resident set in
  LRU order, every cache bank's line lists and busy cycles, the single
  external-port busy cycle, each cluster's round-robin cursor / drain
  state / domain history, and every thread's architectural state
  (registers with tags, FP registers as IEEE-754 bit patterns, pending
  deferred writes, wake cycle, fault record);
* **dropped and re-warmed** — the decoded-bundle cache, the superblock
  node cache, the LEA memo, the load/store check memos and the cache's
  translation line memo.  They are pure functions of pointer bits and
  the page table, change zero cycles by contract (the fuzzer's
  on-vs-off axes police that continuously), and so a restored machine
  replays cycle-identically whether or not they were present at
  capture time.

Capture *also* resets those memos on the live machine.  The memo
hit/miss tallies (``fetch.*``, ``mem.check_memo_*``,
``cache.xlate_memo_*``) are architectural counter state and are
captured exactly; if the live machine kept its warm memos past the
capture point while a restored twin re-warmed from cold, those tallies
would silently diverge between two otherwise bit-identical machines.
Clearing both sides at the snapshot boundary makes capture the common
reset point: live-after-capture and restored-from-capture re-warm
identically, so full counter-snapshot equality holds with no
"modulo memo tallies" carve-out.

Nothing here touches pointers: a guarded pointer's protection state is
its 64 bits plus the tag, so serialising words *is* serialising
capabilities — the restore path has no fixup pass because the
architecture gives it nothing to fix up (§2).

Callable state cannot be captured: trap handlers, fault-handler chains
and jump auditors are re-attached by the layer that rebuilds the
machine (:mod:`repro.persist.image`), and machines with MMIO devices
attached are refused outright.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import TYPE_CHECKING

from repro.core.exceptions import GuardedPointerFault, PageFault
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord
from repro.machine.faults import FaultRecord, TrapFault
from repro.machine.registers import float_to_word, word_to_float
from repro.machine.thread import Thread, ThreadState
from repro.persist.snapshot import SnapshotError

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.chip import MAPChip
    from repro.runtime.kernel import Kernel
    from repro.runtime.swap import SwapManager

#: ChipConfig fields that change simulator speed but zero cycles; a
#: snapshot restores onto a machine with *any* setting of these.
SPEED_KNOBS = frozenset({"decode_cache", "data_fast_path",
                         "idle_fast_forward", "superblock"})

#: purely observational ChipConfig fields (no architectural or timing
#: effect), equally exempt from the restore shape check
OBS_KNOBS = frozenset({"flight_capacity"})


def config_dict(config) -> dict:
    return asdict(config)


def check_architecture(snapshot_config: dict, config) -> None:
    """Refuse to restore onto a machine whose *architectural* shape
    differs from the snapshot's.  Speed knobs are exempt — restoring a
    fast-path image onto a slow-path machine (and vice versa) is the
    determinism test's whole point."""
    live = config_dict(config)
    for name, value in snapshot_config.items():
        if name in SPEED_KNOBS or name in OBS_KNOBS:
            continue
        if name not in live or live[name] != value:
            raise SnapshotError(
                f"snapshot was taken on a machine with {name}={value!r}, "
                f"this machine has {name}={live.get(name)!r}")


# -- fault records ------------------------------------------------------

def _fault_registry() -> dict[str, type]:
    """Every concrete fault class, found by walking the architectural
    fault hierarchy (so new fault types persist without registration)."""
    registry: dict[str, type] = {}
    stack: list[type] = [GuardedPointerFault]
    while stack:
        cls = stack.pop()
        registry[cls.__name__] = cls
        stack.extend(cls.__subclasses__())
    return registry


def encode_fault_cause(cause: GuardedPointerFault) -> dict:
    encoded: dict = {"type": type(cause).__name__, "message": str(cause)}
    if isinstance(cause, TrapFault):
        encoded["code"] = cause.code
    if isinstance(cause, PageFault):
        encoded["vaddr"] = cause.vaddr
    return encoded


def decode_fault_cause(encoded: dict) -> GuardedPointerFault:
    cls = _fault_registry().get(encoded["type"])
    if cls is None or cls is GuardedPointerFault:
        # a fault type this build does not know: degrade to the base
        # class rather than refuse the whole image
        return GuardedPointerFault(encoded["message"])
    if issubclass(cls, TrapFault):
        return cls(int(encoded["code"]))
    if issubclass(cls, PageFault):
        return cls(int(encoded["vaddr"]), encoded["message"])
    return cls(encoded["message"])


def encode_fault_record(record: FaultRecord) -> dict:
    return {
        "thread_id": record.thread_id,
        "cycle": record.cycle,
        "cause": encode_fault_cause(record.cause),
        "opcode_name": record.opcode_name,
        "ip_address": record.ip_address,
    }


def decode_fault_record(encoded: dict) -> FaultRecord:
    return FaultRecord(
        thread_id=int(encoded["thread_id"]),
        cycle=int(encoded["cycle"]),
        cause=decode_fault_cause(encoded["cause"]),
        opcode_name=encoded["opcode_name"],
        ip_address=int(encoded["ip_address"]),
    )


# -- threads ------------------------------------------------------------

def _encode_pending(pending: list) -> list:
    """Deferred register writes: integer-bank values keep their tag,
    FP-bank values become IEEE-754 bit patterns (NaN-safe)."""
    encoded = []
    for bank, index, value in pending:
        if bank == "r":
            encoded.append(["r", index, value.value, value.tag])
        else:
            encoded.append(["f", index, float_to_word(value).value])
    return encoded


def _decode_pending(encoded: list) -> list:
    pending = []
    for entry in encoded:
        if entry[0] == "r":
            pending.append(("r", int(entry[1]),
                            TaggedWord(int(entry[2]), bool(entry[3]))))
        else:
            pending.append(("f", int(entry[1]),
                            word_to_float(TaggedWord(int(entry[2])))))
    return pending


def encode_thread(thread: Thread) -> dict:
    regs, fregs = thread.regs.snapshot()
    return {
        "tid": thread.tid,
        "ip": thread.ip.word.value,
        "domain": thread.domain,
        "state": thread._state.value,
        "wake_at": thread.wake_at,
        "regs": [[w.value, w.tag] for w in regs],
        "fregs": [float_to_word(f).value for f in fregs],
        "pending_writes": _encode_pending(thread.pending_writes),
        "fault": (encode_fault_record(thread.fault)
                  if thread.fault is not None else None),
        "stats": vars(thread.stats).copy(),
    }


def decode_thread(encoded: dict) -> Thread:
    """Rebuild a thread, unplaced (no scheduler).  The caller installs
    it into a cluster slot and accounts its state."""
    ip = GuardedPointer.from_word(TaggedWord(int(encoded["ip"]), tag=True))
    thread = Thread(tid=int(encoded["tid"]), ip=ip,
                    domain=int(encoded["domain"]))
    thread._state = ThreadState(encoded["state"])
    thread.wake_at = int(encoded["wake_at"])
    for index, (value, tag) in enumerate(encoded["regs"]):
        thread.regs.write(index, TaggedWord(int(value), bool(tag)))
    for index, bits in enumerate(encoded["fregs"]):
        thread.regs.write_f(index, word_to_float(TaggedWord(int(bits))))
    thread.pending_writes = _decode_pending(encoded["pending_writes"])
    if encoded["fault"] is not None:
        thread.fault = decode_fault_record(encoded["fault"])
    for name, value in encoded["stats"].items():
        setattr(thread.stats, name, value)
    return thread


# -- the trace hub --------------------------------------------------------

def capture_obs(obs) -> dict:
    """The hub's accumulated observability state: every histogram's
    exact contents, the flight-recorder ring, and the in-flight
    enter-call stacks.  All of it feeds counter snapshots (``hist.*``,
    ``flight.*``) or future ``enter.return`` durations, so a restored
    machine must carry it to stay counter-identical with the live one —
    and the parallel engine ships it back from the workers the same
    way."""
    return {
        "histograms": [[name, {"count": h.count, "total": h.total,
                               "max": h.max, "buckets": list(h._buckets),
                               "sums": list(h._sums)}]
                       for name, h in sorted(obs.histograms.items())],
        "flight": obs.flight.dump(),
        "enter_stack": [[tid, list(stack)]
                        for tid, stack in sorted(obs._enter_stack.items())
                        if stack],
    }


def restore_obs(chip: "MAPChip", state: dict | None) -> None:
    """Inverse of :func:`capture_obs` onto ``chip.obs``.  Histograms the
    snapshot knows but the hub does not (late-wired ones, like the
    service's ``request_latency``) are created and wired into the
    chip's counter file, exactly as their original creator did."""
    from repro.obs.hub import load_flight

    obs = chip.obs
    if state is None:  # pre-windows image: start observability cold
        for histogram in obs.histograms.values():
            histogram.reset()
        obs.flight.clear()
        obs._enter_stack = {}
        return
    captured = dict((name, data) for name, data in state["histograms"])
    for name in list(obs.histograms) + [n for n in captured
                                        if n not in obs.histograms]:
        histogram = obs.histograms.get(name)
        if histogram is None:
            histogram = obs.add_histogram(name)
            prefix = f"hist.{name}"
            if not chip.counters.has_source(prefix):
                chip.counters.add_source(prefix, histogram.as_counters)
        data = captured.get(name)
        if data is None:
            histogram.reset()
            continue
        histogram.count = int(data["count"])
        histogram.total = int(data["total"])
        histogram.max = int(data["max"])
        histogram._buckets = [int(b) for b in data["buckets"]]
        if "sums" in data:
            histogram._sums = [int(s) for s in data["sums"]]
        else:
            # pre-sum snapshot: reconstruct the legacy upper-bound
            # sums so old images keep reporting their old percentiles
            from repro.obs.histogram import _OVERFLOW
            histogram._sums = [
                b * (histogram.max if k == _OVERFLOW else (1 << k) - 1)
                if k else 0
                for k, b in enumerate(histogram._buckets)]
    flight = obs.flight
    flight.clear()
    for event in load_flight(state["flight"]):
        flight.append(event)
    flight.total = int(state["flight"]["total"])
    obs._enter_stack = {int(tid): [int(c) for c in stack]
                        for tid, stack in state["enter_stack"]}


# -- the chip -------------------------------------------------------------

def _reset_functional_memos(chip: "MAPChip") -> None:
    """Raw-clear every functional memo (no invalidation counters bump:
    this is a snapshot boundary, not an architectural invalidation).
    Called on both sides of the boundary — by capture on the live
    machine and by restore on the target — so the two re-warm from the
    same cold state and their memo tallies stay bit-identical."""
    chip._decode_cache.clear()
    chip._sb_nodes.clear()
    if chip._lea_cache is not None:
        chip._lea_cache.clear()
    if chip._load_check_memo is not None:
        chip._load_check_memo.clear()
    if chip._store_check_memo is not None:
        chip._store_check_memo.clear()
    if chip.cache._xlate is not None:
        chip.cache._xlate.clear()


def capture_chip(chip: "MAPChip") -> dict:
    """The complete architectural + timing state of one node.

    Capturing resets the live machine's functional memos (see the
    module docstring): the snapshot is the common cold-start point from
    which the live machine and any restored twin re-warm identically."""
    if chip.memory._devices:
        raise SnapshotError(
            "cannot snapshot a machine with MMIO devices attached: "
            "device state lives outside tagged memory")
    clusters = []
    for cluster in chip.clusters:
        pending_slot = None
        if cluster._pending is not None:
            pending_slot = cluster.slots.index(cluster._pending)
        clusters.append({
            "next_slot": cluster._next_slot,
            "last_domain": cluster.last_domain,
            "stall_until": cluster._stall_until,
            "pending_slot": pending_slot,
            "issued_cycles": cluster.issued_cycles,
            "idle_cycles": cluster.idle_cycles,
            "switch_stall_cycles": cluster.switch_stall_cycles,
            "slots": [encode_thread(t) if t is not None else None
                      for t in cluster.slots],
        })
    state = {
        "config": config_dict(chip.config),
        "now": chip.now,
        "next_tid": chip._next_tid,
        "memory": chip.memory.dump_words(),
        "frames": chip.frames.capture_state(),
        "page_table": chip.page_table.capture_state(),
        "tlb": chip.tlb.capture_state(),
        "cache": chip.cache.capture_state(),
        "clusters": clusters,
        "fault_log": [encode_fault_record(r) for r in chip.fault_log],
        "counter_events": chip.counters.capture_events(),
        "stats": vars(chip.stats).copy(),
        "fetch": {"hits": chip.fetch_hits, "misses": chip.fetch_misses,
                  "invalidations": chip.decode_invalidations},
        "check_memo": {"hits": chip.check_memo_hits,
                       "misses": chip.check_memo_misses},
        # windowed-mesh per-node state (empty off a mesh): the
        # remote-code mirror, the words this node exported to remote
        # fetchers, and in-flight remote-load register bindings
        "windows": {
            "mirror": [[vaddr, None if pair is None else list(pair)]
                       for vaddr, pair in sorted(chip._remote_mirror.items())],
            "exported": sorted(chip._exported_code),
            "pending": [[seq, list(binding)]
                        for seq, binding in sorted(chip._remote_pending.items())],
        },
        "obs": capture_obs(chip.obs),
    }
    _reset_functional_memos(chip)
    return state


def restore_chip_state(chip: "MAPChip", state: dict) -> None:
    """Overwrite ``chip``'s state with a captured image.

    The chip must have the snapshot's architectural shape (speed knobs
    may differ, see :data:`SPEED_KNOBS`).  Fault handlers, jump
    auditors and router wiring are left exactly as the caller set them
    — they are code, not state.
    """
    check_architecture(state["config"], chip.config)
    if chip.memory._devices:
        raise SnapshotError("cannot restore over attached MMIO devices")
    if len(state["clusters"]) != len(chip.clusters):
        raise SnapshotError("snapshot cluster count differs from chip's")

    chip.memory.load_words(state["memory"])
    chip.frames.restore_state(state["frames"])
    # restore_state does not fire invalidation hooks; the memo flushes
    # below do exactly what the hooks would have
    chip.page_table.restore_state(state["page_table"])
    chip.tlb.restore_state(state["tlb"])
    chip.cache.restore_state(state["cache"])

    # drop every functional memo — they re-warm without a cycle's skew,
    # from the same cold state capture left on the live machine
    _reset_functional_memos(chip)

    chip._ready_count = 0
    chip._runnable_count = 0
    for cluster, cstate in zip(chip.clusters, state["clusters"]):
        if len(cstate["slots"]) != len(cluster.slots):
            raise SnapshotError("snapshot slot count differs from cluster's")
        cluster.slots = [None] * len(cluster.slots)
        cluster._n_ready = cluster._n_blocked = 0
        cluster._n_faulted = cluster._n_halted = 0
        for index, tstate in enumerate(cstate["slots"]):
            if tstate is None:
                continue
            thread = decode_thread(tstate)
            cluster.slots[index] = thread
            cluster._count(thread._state, +1)
            thread.scheduler = cluster
        cluster._next_slot = int(cstate["next_slot"])
        cluster.last_domain = (None if cstate["last_domain"] is None
                               else int(cstate["last_domain"]))
        cluster._stall_until = int(cstate["stall_until"])
        cluster._pending = (None if cstate["pending_slot"] is None
                            else cluster.slots[int(cstate["pending_slot"])])
        cluster.issued_cycles = int(cstate["issued_cycles"])
        cluster.idle_cycles = int(cstate["idle_cycles"])
        cluster.switch_stall_cycles = int(cstate["switch_stall_cycles"])

    chip.fault_log = [decode_fault_record(r) for r in state["fault_log"]]
    chip.counters.restore_events(state["counter_events"])
    for name, value in state["stats"].items():
        setattr(chip.stats, name, value)
    chip.fetch_hits = int(state["fetch"]["hits"])
    chip.fetch_misses = int(state["fetch"]["misses"])
    chip.decode_invalidations = int(state["fetch"]["invalidations"])
    chip.check_memo_hits = int(state["check_memo"]["hits"])
    chip.check_memo_misses = int(state["check_memo"]["misses"])
    windows = state.get("windows")  # tolerate pre-windows images
    if windows is None:
        chip._remote_mirror = {}
        chip._exported_code = set()
        chip._remote_pending = {}
    else:
        chip._remote_mirror = {
            int(vaddr): None if pair is None else (int(pair[0]), bool(pair[1]))
            for vaddr, pair in windows["mirror"]}
        chip._exported_code = {int(v) for v in windows["exported"]}
        chip._remote_pending = {
            int(seq): (int(b[0]), b[1], int(b[2]))
            for seq, b in windows["pending"]}
    restore_obs(chip, state.get("obs"))
    chip.now = int(state["now"])
    chip._next_tid = int(state["next_tid"])


def threads_by_tid(chip: "MAPChip") -> dict[int, Thread]:
    """Resolve threads after a restore (object identity does not
    survive a snapshot; tids do)."""
    return {t.tid: t for cluster in chip.clusters
            for t in cluster.slots if t is not None}


# -- the kernel -----------------------------------------------------------

def capture_kernel(kernel: "Kernel") -> dict:
    """Virtual-arena and segment bookkeeping.  Trap handlers are code
    and are not captured; re-register them after restore."""
    return {
        "arena": kernel.allocator.capture_state(),
        "segments": [[segment.block.base, segment.block.order,
                      segment.pointer.word.value]
                     for _, segment in sorted(kernel.segments.items())],
        "stats": vars(kernel.stats).copy(),
    }


def restore_kernel_state(kernel: "Kernel", state: dict) -> None:
    from repro.mem.allocator import Block
    from repro.runtime.kernel import Segment

    kernel.allocator.restore_state(state["arena"])
    kernel.segments = {}
    for base, order, word in state["segments"]:
        pointer = GuardedPointer.from_word(TaggedWord(int(word), tag=True))
        kernel.segments[int(base)] = Segment(Block(int(base), int(order)),
                                             pointer)
    for name, value in state["stats"].items():
        setattr(kernel.stats, name, value)


# -- the swap manager ------------------------------------------------------

def capture_swap(swap: "SwapManager") -> dict:
    """Backing store (tags included — a swapped-out pointer is still a
    pointer), residency LRU order, and parameters."""
    return {
        "reserve_frames": swap.reserve_frames,
        "swap_cycles": swap.swap_cycles,
        "stats": vars(swap.stats).copy(),
        "store": [[page, [[w.value, w.tag] for w in words]]
                  for page, words in sorted(swap._store.items())],
        "resident": list(swap._resident.keys()),
    }


def restore_swap_state(swap: "SwapManager", state: dict) -> None:
    from collections import OrderedDict

    swap.reserve_frames = int(state["reserve_frames"])
    swap.swap_cycles = int(state["swap_cycles"])
    for name, value in state["stats"].items():
        setattr(swap.stats, name, value)
    swap._store = {
        int(page): [TaggedWord(int(v), bool(t)) for v, t in words]
        for page, words in state["store"]
    }
    swap._resident = OrderedDict((int(p), True) for p in state["resident"])
