"""The snapshot container format: versioned, checksummed, replayable.

A snapshot file is a complete, self-describing machine image.  Because
protection lives *inside* guarded pointers (§2), freezing a machine is
nothing more than serialising its words and registers: there is no
capability table, segment table or per-process translation state to
re-derive on restore, so a restored pointer is a working pointer with
zero fixups.  This module owns only the *container*; what goes inside
it is the business of :mod:`repro.persist.image`.

Layout of a ``.snap`` file::

    MAPSNAP1                              8-byte magic
    {"format":...,"version":...,...}\\n    one-line canonical-JSON header
    <zlib-compressed canonical JSON>      the payload

The header carries the format name, format version, the payload kind
(``simulation`` / ``chip`` / ``multicomputer`` / ``delta``), the
payload's uncompressed length, and a CRC-32 of the uncompressed payload
bytes.  Readers verify magic, version, length and checksum before
handing the payload to anyone — a truncated or bit-flipped image is
rejected loudly, never restored quietly.

Versioning policy: ``VERSION`` bumps on any payload-schema change that
an old reader cannot ignore.  Readers accept exactly their own version
(the format is a reproduction artifact, not an archival one); the error
message names both versions so a mismatch is a one-line diagnosis.

Everything inside the payload is JSON with two rules that make images
byte-stable and diffable:

* canonical encoding — sorted keys, no whitespace, ``allow_nan=False``
  (floats such as FP register files are stored as 64-bit IEEE-754 bit
  patterns, so NaN and the infinities survive exactly);
* pure data — no pickled code.  Callables (trap handlers, fault hooks,
  MMIO devices) are structurally unsnapshotable and must be re-attached
  by the software that loads the image; capture refuses machines whose
  state it cannot fully describe (e.g. attached MMIO devices).
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

MAGIC = b"MAPSNAP1"
FORMAT = "map-snapshot"
VERSION = 1

#: payload kinds the image layer writes; readers use this to dispatch
KINDS = ("simulation", "chip", "multicomputer", "delta")


class SnapshotError(Exception):
    """Base class for every snapshot read/write failure."""


class SnapshotFormatError(SnapshotError):
    """Not a snapshot file, or a structurally broken one."""


class SnapshotVersionError(SnapshotError):
    """The file's format version differs from this reader's."""


class SnapshotChecksumError(SnapshotError):
    """The payload does not match its recorded checksum/length."""


def canonical_json(value) -> bytes:
    """The one true byte encoding: sorted keys, no whitespace, finite
    floats only.  Both the checksum and the on-disk bytes use this, so
    identical machine state always produces identical files."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False).encode("utf-8")


def encode_snapshot(payload: dict) -> bytes:
    """Serialise a payload dict into the container bytes."""
    kind = payload.get("kind")
    if kind not in KINDS:
        raise SnapshotFormatError(f"unknown payload kind: {kind!r}")
    body = canonical_json(payload)
    header = {
        "format": FORMAT,
        "version": VERSION,
        "kind": kind,
        "length": len(body),
        "crc32": zlib.crc32(body) & 0xFFFFFFFF,
    }
    return MAGIC + canonical_json(header) + b"\n" + zlib.compress(body, 6)


def decode_snapshot(blob: bytes) -> dict:
    """Parse and verify container bytes; returns the payload dict."""
    if not blob.startswith(MAGIC):
        raise SnapshotFormatError("not a MAP snapshot (bad magic)")
    rest = blob[len(MAGIC):]
    newline = rest.find(b"\n")
    if newline < 0:
        raise SnapshotFormatError("truncated snapshot: no header line")
    try:
        header = json.loads(rest[:newline])
    except ValueError as e:
        raise SnapshotFormatError(f"unreadable snapshot header: {e}") from None
    if header.get("format") != FORMAT:
        raise SnapshotFormatError(
            f"not a {FORMAT} file (format={header.get('format')!r})")
    if header.get("version") != VERSION:
        raise SnapshotVersionError(
            f"snapshot is format version {header.get('version')}, "
            f"this reader is version {VERSION}")
    try:
        body = zlib.decompress(rest[newline + 1:])
    except zlib.error as e:
        raise SnapshotChecksumError(f"corrupt snapshot body: {e}") from None
    if len(body) != header.get("length"):
        raise SnapshotChecksumError(
            f"payload is {len(body)} bytes, header says {header.get('length')}")
    if (zlib.crc32(body) & 0xFFFFFFFF) != header.get("crc32"):
        raise SnapshotChecksumError("payload checksum mismatch")
    payload = json.loads(body)
    if payload.get("kind") != header.get("kind"):
        raise SnapshotFormatError("header kind disagrees with payload kind")
    return payload


def read_header(blob_or_path: bytes | str | Path) -> dict:
    """The header alone (cheap: no payload decompression)."""
    if isinstance(blob_or_path, (str, Path)):
        with open(blob_or_path, "rb") as f:
            blob = f.read(4096)
    else:
        blob = blob_or_path
    if not blob.startswith(MAGIC):
        raise SnapshotFormatError("not a MAP snapshot (bad magic)")
    rest = blob[len(MAGIC):]
    newline = rest.find(b"\n")
    if newline < 0:
        raise SnapshotFormatError("truncated snapshot: no header line")
    try:
        return json.loads(rest[:newline])
    except ValueError as e:
        raise SnapshotFormatError(f"unreadable snapshot header: {e}") from None


def write_snapshot(payload: dict, path: str | Path) -> Path:
    """Encode and write atomically (write-then-rename, so a crash mid-
    save never leaves a half image at ``path``)."""
    path = Path(path)
    blob = encode_snapshot(payload)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(blob)
    tmp.replace(path)
    return path


def read_snapshot(path: str | Path) -> dict:
    return decode_snapshot(Path(path).read_bytes())
