"""Replayable crash dumps for the differential fuzzer.

When the fuzzer's replay axis finds a divergence — a machine that,
snapshotted mid-run and restored, does not finish bit-identically to
the uninterrupted run — the two integers that regenerate the case are
not enough to *debug* it: the interesting artifact is the machine
image at the divergence point.  A **crash dump** packages everything
in one JSON file:

* the full :class:`~repro.fuzz.generator.FuzzCase` (seed, scenario,
  program source, FP registers as IEEE-754 bit patterns, scenario
  meta), so ``repro replay dump.json`` re-runs every diff axis;
* the divergence (axis, kind, detail, bundle index);
* when the failing axis produced one, the machine snapshot itself
  (base64 of the container bytes), restorable with
  ``repro restore`` / :func:`repro.persist.image.load_machine` for
  post-mortem inspection.

``tools/run_fuzz.py --crashes DIR`` writes one dump per failure; CI
uploads the directory as an artifact on red runs.
"""

from __future__ import annotations

import base64
import hashlib
import json
from pathlib import Path

from repro.persist.snapshot import SnapshotFormatError, canonical_json

DUMP_KIND = "replay-crash"
DUMP_VERSION = 1


def state_digest(payload) -> str:
    """SHA-256 over the canonical JSON encoding — the identity of a
    machine state, stable across processes and platforms."""
    return hashlib.sha256(canonical_json(payload)).hexdigest()


def _float_bits(value: float) -> int:
    import struct

    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _bits_float(bits: int) -> float:
    import struct

    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def encode_case(case) -> dict:
    """A FuzzCase as pure JSON (floats become bit patterns: generated
    FP state includes the infinities)."""
    return {
        "seed": case.seed,
        "scenario": case.scenario,
        "source": case.source,
        "fregs": [[index, _float_bits(value)]
                  for index, value in sorted(case.fregs.items())],
        "meta": case.meta,
    }


def decode_case(encoded: dict):
    from repro.fuzz.generator import FuzzCase

    return FuzzCase(
        seed=int(encoded["seed"]),
        scenario=encoded["scenario"],
        source=encoded["source"],
        fregs={int(i): _bits_float(int(b)) for i, b in encoded["fregs"]},
        meta=encoded["meta"],
    )


def write_crash_dump(divergence, path: str | Path) -> Path:
    """One self-contained dump for a
    :class:`~repro.fuzz.differ.Divergence` (snapshot included when the
    failing axis captured one)."""
    path = Path(path)
    dump = {
        "kind": DUMP_KIND,
        "version": DUMP_VERSION,
        "divergence": {
            "axis": divergence.axis,
            "kind": divergence.kind,
            "detail": divergence.detail,
            "bundle_index": divergence.bundle_index,
        },
        "case": encode_case(divergence.case),
        "snapshot_b64": (base64.b64encode(divergence.snapshot).decode("ascii")
                         if divergence.snapshot is not None else None),
        # flight-recorder dump from the misbehaving chip, when the axis
        # captured one (load with repro.obs.load_flight)
        "flight": divergence.flight,
    }
    path.write_text(json.dumps(dump, sort_keys=True, indent=2) + "\n",
                    encoding="utf-8")
    return path


def read_crash_dump(path: str | Path) -> dict:
    dump = json.loads(Path(path).read_text(encoding="utf-8"))
    if dump.get("kind") != DUMP_KIND:
        raise SnapshotFormatError(
            f"not a {DUMP_KIND} dump (kind={dump.get('kind')!r})")
    if dump.get("version") != DUMP_VERSION:
        raise SnapshotFormatError(
            f"dump is version {dump.get('version')}, "
            f"this reader is version {DUMP_VERSION}")
    return dump


def dump_snapshot_bytes(dump: dict) -> bytes | None:
    """The embedded machine snapshot's container bytes, if any."""
    encoded = dump.get("snapshot_b64")
    return base64.b64decode(encoded) if encoded else None


def replay_crash(path: str | Path, log=None) -> list:
    """Re-run a dump's case through every diff axis; returns the
    divergences observed *now* (empty = the bug no longer reproduces)."""
    from repro.fuzz.runner import run_case

    dump = read_crash_dump(path)
    case = decode_case(dump["case"])
    if log:
        d = dump["divergence"]
        log(f"replaying seed={case.seed} scenario={case.scenario} "
            f"(recorded: [{d['axis']}] {d['kind']})")
    return run_case(case)
