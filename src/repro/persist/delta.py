"""Delta snapshots: O(dirty pages) checkpoints over one base image.

A full snapshot serialises every word in use; for a long-running
machine that is almost all of DRAM, every time.  A
:class:`DeltaCheckpointer` writes the full image **once** and then, at
each checkpoint, only

* the physical pages written since the previous checkpoint, and
* the machine's non-memory state (registers, page table, TLB, cache
  timing, kernel bookkeeping — all small and cheap to re-serialise).

Dirty pages are tracked where every write already funnels:
:meth:`~repro.mem.tagged_memory.TaggedMemory.store_word` marks the
written physical page, so CPU stores, kernel loads, GC sweeps, swap
traffic and remote mesh stores are all caught by construction.  The
checkpointer additionally piggybacks on the page table's
push-invalidation hooks — the same hooks that keep the decoded-bundle
cache and TLB coherent — conservatively re-marking an unmapped page's
frame, so translation churn (swap-out, revocation, segment free) can
never leave a frame's bytes unrecorded even if a future memory path
wrote below :meth:`store_word`.

Each delta records the base image's digest and its parent delta's
digest, forming a hash chain: :func:`load_chain` refuses to apply a
delta out of order, against the wrong base, or over a gap.  Restoring
replays the chain in memory — base words, then each delta's pages in
sequence — and hands the final payload to the ordinary restore path,
so a delta-restored machine is indistinguishable from a full-snapshot
restore (the round-trip tests assert digest equality).
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.persist.image import capture_simulation, restore_simulation
from repro.persist.replay import state_digest
from repro.persist.snapshot import (SnapshotError, read_snapshot,
                                    write_snapshot)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.api import Simulation

BASE_NAME = "base.snap"
DELTA_PATTERN = "delta-{:04d}.snap"


class DeltaChainError(SnapshotError):
    """A delta does not follow from the base/parent it was applied to."""


class DeltaCheckpointer:
    """Incremental checkpoints of a single-node simulation.

    ::

        ckpt = DeltaCheckpointer(sim, "checkpoints/")   # writes base.snap
        ...run...
        ckpt.checkpoint()                               # delta-0001.snap
        ...run...
        ckpt.checkpoint()                               # delta-0002.snap

        sim2 = load_chain("checkpoints/")               # state at delta 2
    """

    def __init__(self, sim: "Simulation", directory: str | Path):
        self.sim = sim
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        chip = sim.chip
        self._page_bytes = chip.config.page_bytes
        self._words_per_page = self._page_bytes // 8
        chip.memory.enable_dirty_tracking(self._page_bytes)
        chip.page_table.add_invalidation_hook(self._on_unmap)
        chip.memory.drain_dirty_pages()  # the base image covers history
        base_payload = capture_simulation(sim)
        self.base_path = write_snapshot(base_payload, self.directory / BASE_NAME)
        self.base_digest = state_digest(base_payload)
        self._parent_digest = self.base_digest
        self.sequence = 0
        # Shadow of the translations as of the last checkpoint: the
        # unmap hook fires *after* the page table forgets the frame, so
        # this is how the hook still knows which physical page backed
        # the revoked virtual page.  (Pages mapped since the last
        # checkpoint aren't in the shadow, but their frames were
        # necessarily written through store_word — which marked them.)
        self._shadow = dict(chip.page_table._map)

    def _on_unmap(self, virtual_page: int) -> None:
        """Conservatively re-mark the unmapped page's backing frame:
        revocation and swap-out must never let a frame's bytes slip
        between two checkpoints even if some future memory path mutated
        them below :meth:`store_word`."""
        frame = self._shadow.pop(virtual_page, None)
        if frame is not None:
            memory = self.sim.chip.memory
            if memory._dirty_pages is not None:
                memory._dirty_pages.add(frame // self._page_bytes)

    def checkpoint(self) -> Path:
        """Write one delta: the pages dirtied since the last checkpoint
        plus the machine's complete non-memory state."""
        chip = self.sim.chip
        payload = capture_simulation(self.sim)
        payload["node"]["chip"]["memory"] = []  # pages carry the words
        dirty = sorted(chip.memory.drain_dirty_pages())
        self.sequence += 1
        delta = {
            "kind": "delta",
            "sequence": self.sequence,
            "base": self.base_digest,
            "parent": self._parent_digest,
            "page_bytes": self._page_bytes,
            "pages": [[page, [[v, t] for v, t in
                              chip.memory.page_words(page, self._page_bytes)]]
                      for page in dirty],
            "machine": payload,
        }
        path = write_snapshot(
            delta, self.directory / DELTA_PATTERN.format(self.sequence))
        self._parent_digest = state_digest(delta)
        self._shadow = dict(chip.page_table._map)
        return path


def chain_paths(directory: str | Path) -> tuple[Path, list[Path]]:
    """The base image and the ordered delta files in a checkpoint
    directory."""
    directory = Path(directory)
    base = directory / BASE_NAME
    if not base.exists():
        raise DeltaChainError(f"no {BASE_NAME} in {directory}")
    deltas = sorted(directory.glob("delta-*.snap"))
    return base, deltas


def load_chain(directory: str | Path, upto: int | None = None,
               **overrides) -> "Simulation":
    """Rebuild the simulation at the chain's tip (or at delta ``upto``).

    Every link is verified: each delta must name the base image's
    digest and its immediate parent's digest, and sequence numbers must
    be dense from 1.
    """
    base_path, delta_paths = chain_paths(directory)
    base = read_snapshot(base_path)
    if base.get("kind") != "simulation":
        raise DeltaChainError(
            f"base image is a {base.get('kind')!r} snapshot")
    base_digest = state_digest(base)
    # sparse physical image: word index -> [value, tag]
    memory = {int(i): [v, t] for i, v, t in base["node"]["chip"]["memory"]}
    payload = base
    parent = base_digest
    expected = 1
    for path in delta_paths:
        if upto is not None and expected > upto:
            break
        delta = read_snapshot(path)
        if delta.get("kind") != "delta":
            raise DeltaChainError(f"{path.name} is not a delta snapshot")
        if delta["sequence"] != expected:
            raise DeltaChainError(
                f"{path.name} is delta {delta['sequence']}, expected "
                f"{expected} (missing or reordered link)")
        if delta["base"] != base_digest:
            raise DeltaChainError(
                f"{path.name} belongs to a different base image")
        if delta["parent"] != parent:
            raise DeltaChainError(
                f"{path.name} does not follow the previous link "
                f"(hash chain broken)")
        words_per_page = delta["page_bytes"] // 8
        for page, words in delta["pages"]:
            first = int(page) * words_per_page
            for offset, (value, tag) in enumerate(words):
                index = first + offset
                if value or tag:
                    memory[index] = [int(value), bool(tag)]
                else:
                    memory.pop(index, None)
        payload = delta["machine"]
        parent = state_digest(delta)
        expected += 1
    if upto is not None and expected <= upto:
        raise DeltaChainError(
            f"chain ends at delta {expected - 1}, requested {upto}")
    payload["node"]["chip"]["memory"] = [
        [index, value, tag] for index, (value, tag) in sorted(memory.items())]
    return restore_simulation(payload, **overrides)
