"""Log2-bucket latency histograms for the perf-counter file.

A flat counter can say *how many* remote accesses happened; the
paper-style claims ("a protection-domain crossing costs a handful of
cycles, not a kernel trap") need *distributions*.  :class:`Histogram`
records values into power-of-two buckets — bucket ``k`` holds values
whose ``bit_length()`` is ``k``, i.e. ``[2**(k-1), 2**k)``, with bucket
0 holding exactly 0 — which makes ``add`` a few integer operations on
the simulator's per-load path, and p50/p95 answerable at snapshot time
without keeping samples.

Percentiles are *sum-interpolated*: each bucket tracks the sum of its
samples alongside the count, and a percentile is linearly interpolated
inside its covering bucket over the tightest uniform range consistent
with that bucket's mean.  A single-sample bucket reports the sample
exactly; a full bucket errs by at most half the bucket width — versus
the naive bucket upper bound, which overstates by up to 2x near bucket
edges.  Memory stays constant (two ints per bucket).

Histograms register with :class:`~repro.machine.counters.PerfCounters`
as pull sources (``hist.<name>.*``), so every counter snapshot carries
the distributions and :func:`~repro.machine.counters.merge_snapshots`
sums them across nodes bucket by bucket (``sum<K>`` keys sum just like
``bucket<K>`` counts, so interpolation survives the merge).
"""

from __future__ import annotations

#: bucket count: bucket 0 holds zeros, buckets 1..63 hold bit_length
#: 1..63, bucket 64 is the overflow bucket for anything wider.
_OVERFLOW = 64
BUCKETS = _OVERFLOW + 1


def _interpolate(index: int, count: int, total: int, rank: float,
                 maximum: int) -> float:
    """The estimated value at 1-based ``rank`` within bucket ``index``
    holding ``count`` samples that sum to ``total``.

    The samples are modelled as uniformly spread over the tightest
    subrange ``[a, b]`` of the bucket whose midpoint matches the bucket
    mean — so a constant-valued bucket stays centred on its value and a
    single-sample bucket is reported exactly.  When the recorded sums
    are the legacy upper-bound reconstruction (``count * hi``), the
    range degenerates to the upper bound and the old behaviour falls
    out unchanged.
    """
    if index == 0:
        return 0.0
    if count == 1:
        return float(total)
    lo = 1 << (index - 1)
    if index == _OVERFLOW:
        hi = maximum if maximum > lo else lo
    else:
        hi = (1 << index) - 1
    mean = total / count
    a = max(lo, 2.0 * mean - hi)
    b = min(hi, 2.0 * mean - lo)
    if b < a:  # inconsistent sums (bad merge input): fall back to mean
        a = b = mean
    rank = min(max(rank, 0.5), float(count))
    return a + (b - a) * (rank - 0.5) / count


class Histogram:
    """Fixed-size log2 histogram of non-negative integer values."""

    __slots__ = ("name", "count", "total", "max", "_buckets", "_sums")

    def __init__(self, name: str):
        self.name = name
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.max = 0
        self._buckets = [0] * BUCKETS
        self._sums = [0] * BUCKETS

    def add(self, value: int) -> None:
        """Record one value.  Negative values clamp to 0 (they cannot
        occur for latencies; the clamp keeps a bad caller observable in
        bucket 0 instead of raising on a hot path)."""
        if value < 0:
            value = 0
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        index = value.bit_length()
        if index >= _OVERFLOW:
            index = _OVERFLOW
        self._buckets[index] += 1
        self._sums[index] += value

    # -- queries --------------------------------------------------------

    def percentile(self, fraction: float) -> int:
        """The sum-interpolated value covering ``fraction`` of the
        recorded values (clamped by the true max); 0 when empty."""
        if self.count == 0:
            return 0
        need = fraction * self.count
        seen = 0
        for index, bucket in enumerate(self._buckets):
            if not bucket:
                continue
            if seen + bucket >= need:
                value = _interpolate(index, bucket, self._sums[index],
                                     need - seen, self.max)
                return min(round(value), self.max)
            seen += bucket
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> list[tuple[int, int]]:
        """Non-empty buckets as ``(upper_bound, count)`` pairs (the
        overflow bucket reports the true max as its bound)."""
        out = []
        for index, bucket in enumerate(self._buckets):
            if not bucket:
                continue
            if index == 0:
                upper = 0
            elif index == _OVERFLOW:
                upper = self.max
            else:
                upper = (1 << index) - 1
            out.append((upper, bucket))
        return out

    def as_counters(self) -> dict[str, int | float]:
        """This histogram's view for
        :class:`~repro.machine.counters.PerfCounters` — summary
        statistics plus the non-empty buckets (``bucket<K>`` = count of
        values with ``bit_length() == K``, ``sum<K>`` = their sum)."""
        out: dict[str, int | float] = {
            "count": self.count,
            "total": self.total,
            "mean": round(self.mean, 6),
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
            "max": self.max,
        }
        for index, bucket in enumerate(self._buckets):
            if bucket:
                out[f"bucket{index}"] = bucket
                out[f"sum{index}"] = self._sums[index]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"p50={self.percentile(0.5)}, max={self.max})")


def percentile_from_snapshot(snapshot: dict, prefix: str,
                             fraction: float) -> int:
    """A percentile recomputed from the ``bucket<K>``/``sum<K>`` counts
    under ``<prefix>.`` in a counter snapshot.

    Percentiles in *merged* multicomputer snapshots are per-node sums
    and therefore meaningless; bucket counts and sums, by contrast, sum
    correctly across nodes — so a machine-wide percentile must come
    from the merged buckets, which is exactly what this computes (the
    service load driver's latency report uses it).  Interpolation
    matches :meth:`Histogram.percentile`; snapshots predating the
    ``sum<K>`` keys fall back to the bucket upper bound.  Clamped by
    the summed ``max`` (a per-node sum, so a loose bound; single-node
    snapshots reproduce the histogram's own percentile exactly)."""
    buckets: dict[int, int] = {}
    sums: dict[int, int] = {}
    bucket_prefix = f"{prefix}.bucket"
    sum_prefix = f"{prefix}.sum"
    for key, value in snapshot.items():
        if key.startswith(bucket_prefix):
            buckets[int(key[len(bucket_prefix):])] = value
        elif key.startswith(sum_prefix):
            sums[int(key[len(sum_prefix):])] = value
    count = sum(buckets.values())
    if not count:
        return 0
    maximum = int(snapshot.get(f"{prefix}.max", 0))
    need = fraction * count
    seen = 0
    for index in sorted(buckets):
        bucket = buckets[index]
        if not bucket:
            continue
        if seen + bucket >= need:
            if index == 0:
                return 0
            # legacy snapshots carry no sums: reconstruct the old
            # upper-bound behaviour (mean pinned to the bucket top)
            upper = maximum if index == _OVERFLOW else (1 << index) - 1
            total = sums.get(index, bucket * upper)
            value = _interpolate(index, bucket, total, need - seen,
                                 maximum)
            value = round(value)
            return min(value, maximum) if maximum else value
        seen += bucket
    return maximum
