"""Log2-bucket latency histograms for the perf-counter file.

A flat counter can say *how many* remote accesses happened; the
paper-style claims ("a protection-domain crossing costs a handful of
cycles, not a kernel trap") need *distributions*.  :class:`Histogram`
records values into power-of-two buckets — bucket ``k`` holds values
whose ``bit_length()`` is ``k``, i.e. ``[2**(k-1), 2**k)``, with bucket
0 holding exactly 0 — which makes ``add`` a few integer operations on
the simulator's per-load path, and p50/p95 answerable at snapshot time
without keeping samples.

Percentiles are bucket-resolution: the reported value is the bucket's
inclusive upper bound, clamped by the true maximum.  That is exact for
the quantities these histograms watch (cache hit latencies are
constants; the interesting information is which *regime* the tail sits
in), and it keeps memory constant.

Histograms register with :class:`~repro.machine.counters.PerfCounters`
as pull sources (``hist.<name>.*``), so every counter snapshot carries
the distributions and :func:`~repro.machine.counters.merge_snapshots`
sums them across nodes bucket by bucket.
"""

from __future__ import annotations

#: bucket count: bucket 0 holds zeros, buckets 1..63 hold bit_length
#: 1..63, bucket 64 is the overflow bucket for anything wider.
_OVERFLOW = 64
BUCKETS = _OVERFLOW + 1


class Histogram:
    """Fixed-size log2 histogram of non-negative integer values."""

    __slots__ = ("name", "count", "total", "max", "_buckets")

    def __init__(self, name: str):
        self.name = name
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.max = 0
        self._buckets = [0] * BUCKETS

    def add(self, value: int) -> None:
        """Record one value.  Negative values clamp to 0 (they cannot
        occur for latencies; the clamp keeps a bad caller observable in
        bucket 0 instead of raising on a hot path)."""
        if value < 0:
            value = 0
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        index = value.bit_length()
        self._buckets[index if index < _OVERFLOW else _OVERFLOW] += 1

    # -- queries --------------------------------------------------------

    def percentile(self, fraction: float) -> int:
        """The smallest bucket upper bound covering ``fraction`` of the
        recorded values (clamped by the true max); 0 when empty."""
        if self.count == 0:
            return 0
        need = fraction * self.count
        seen = 0
        for index, bucket in enumerate(self._buckets):
            seen += bucket
            if seen >= need and bucket:
                if index == 0:
                    return 0
                if index == _OVERFLOW:  # unbounded bucket: report max
                    return self.max
                return min((1 << index) - 1, self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> list[tuple[int, int]]:
        """Non-empty buckets as ``(upper_bound, count)`` pairs (the
        overflow bucket reports the true max as its bound)."""
        out = []
        for index, bucket in enumerate(self._buckets):
            if not bucket:
                continue
            if index == 0:
                upper = 0
            elif index == _OVERFLOW:
                upper = self.max
            else:
                upper = (1 << index) - 1
            out.append((upper, bucket))
        return out

    def as_counters(self) -> dict[str, int | float]:
        """This histogram's view for
        :class:`~repro.machine.counters.PerfCounters` — summary
        statistics plus the non-empty buckets (``bucket<K>`` = count of
        values with ``bit_length() == K``)."""
        out: dict[str, int | float] = {
            "count": self.count,
            "total": self.total,
            "mean": round(self.mean, 6),
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
            "max": self.max,
        }
        for index, bucket in enumerate(self._buckets):
            if bucket:
                out[f"bucket{index}"] = bucket
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"p50={self.percentile(0.5)}, max={self.max})")


def percentile_from_snapshot(snapshot: dict, prefix: str,
                             fraction: float) -> int:
    """A bucket-resolution percentile recomputed from the ``bucket<K>``
    counts under ``<prefix>.`` in a counter snapshot.

    Percentiles in *merged* multicomputer snapshots are per-node sums
    and therefore meaningless; bucket counts, by contrast, sum
    correctly across nodes — so a machine-wide percentile must come
    from the merged buckets, which is exactly what this computes (the
    service load driver's latency report uses it).  Clamped by the
    summed ``max`` (itself a per-node sum, so only used for the
    overflow bucket's bound, mirroring :meth:`Histogram.percentile`'s
    max-clamp only loosely; single-node snapshots reproduce the
    histogram's own percentile exactly)."""
    buckets = {}
    for key, value in snapshot.items():
        if key.startswith(f"{prefix}.bucket"):
            buckets[int(key[len(prefix) + len(".bucket"):])] = value
    count = sum(buckets.values())
    if not count:
        return 0
    maximum = int(snapshot.get(f"{prefix}.max", 0))
    need = fraction * count
    seen = 0
    for index in sorted(buckets):
        seen += buckets[index]
        if seen >= need:
            if index == 0:
                return 0
            if index == _OVERFLOW:
                return maximum
            upper = (1 << index) - 1
            return min(upper, maximum) if maximum else upper
    return maximum
