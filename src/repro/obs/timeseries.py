"""Windowed time-series telemetry: the counters, on a time axis.

A counter snapshot is a single integral — it says nothing about *when*
the misses happened or whether throughput sagged mid-run.
:class:`TimeseriesSampler` turns the per-node
:class:`~repro.machine.counters.PerfCounters` files into per-window
deltas: the driver polls it at its drain points, and whenever the
clock has crossed the next window boundary the sampler snapshots every
node's counters, diffs them against the previous boundary, and records
one row (throughput, hit rates, in-flight depth, per-window latency
percentiles from the windowed ``bucket<K>``/``sum<K>`` histogram
deltas).

Unlike ``Simulation.trace()`` this works on the **sharded engine**:
counters are pulled per node over RPC (the worker ``counters`` verb)
and merged with
:func:`~repro.machine.counters.merge_snapshots` — sampling happens at
the driver's deterministic drain points, which land on the same cycles
on both engines, so the emitted series is byte-identical lockstep vs
``workers=N``.  Windows close at the first poll at-or-past the
boundary, so a row can span more than ``window`` cycles (the ``start``
/``end`` columns make that exact); sampling reads counters only — it
never changes machine state, and the trace-overhead benchmark holds it
to bit-identical cycles.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.machine.counters import merge_snapshots
from repro.obs.histogram import percentile_from_snapshot

#: the CSV column order (also the row-dict key order)
COLUMNS = ("window", "start", "end", "cycles", "completed",
           "throughput_rpk", "inflight", "cache_hit_rate",
           "tlb_hit_rate", "remote_reads", "p50", "p99")

#: the histogram each window's latency percentiles come from
_LATENCY = "hist.request_latency"


def _rate(hits: int, misses: int) -> float:
    total = hits + misses
    return round(hits / total, 6) if total else 0.0


class TimeseriesSampler:
    """Per-window counter deltas for one run (build via
    ``Simulation.timeseries(window)``, poll from the driver loop, call
    :meth:`finish` when the run ends)."""

    def __init__(self, sim, window: int):
        if window <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.window = int(window)
        self.rows: list[dict] = []
        self._last_cycle = sim.now
        self._last = merge_snapshots(sim.counters_per_node())
        self._boundary = self._last_cycle + self.window
        self._finished = False

    # -- sampling --------------------------------------------------------

    def poll(self, now: int | None = None, *, inflight: int = 0) -> None:
        """Close a window if ``now`` has reached the next boundary.
        Call from deterministic points (the driver's reap loop) —
        sampling cycles must match across engines for the series to."""
        if self._finished:
            return
        if now is None:
            now = self.sim.now
        if now >= self._boundary and now > self._last_cycle:
            self._close(now, inflight)

    def finish(self, *, inflight: int = 0) -> list[dict]:
        """Close the final partial window (if the clock moved since the
        last boundary) and freeze the series.  Idempotent."""
        if not self._finished:
            now = self.sim.now
            if now > self._last_cycle:
                self._close(now, inflight)
            self._finished = True
        return self.rows

    def _close(self, now: int, inflight: int) -> None:
        snap = merge_snapshots(self.sim.counters_per_node())
        last = self._last

        def delta(key: str) -> int:
            return int(snap.get(key, 0)) - int(last.get(key, 0))

        window_hist = {}
        for key, value in snap.items():
            if not key.startswith(_LATENCY + "."):
                continue
            stat = key[len(_LATENCY) + 1:]
            if stat.startswith(("bucket", "sum")) or stat in ("count",
                                                              "total"):
                window_hist[key] = value - last.get(key, 0)
            else:
                window_hist[key] = value
        cycles = now - self._last_cycle
        completed = delta(f"{_LATENCY}.count")
        row = {
            "window": len(self.rows),
            "start": self._last_cycle,
            "end": now,
            "cycles": cycles,
            "completed": completed,
            "throughput_rpk": round(1000.0 * completed / cycles, 6)
            if cycles else 0.0,
            "inflight": inflight,
            "cache_hit_rate": _rate(delta("cache.hits"),
                                    delta("cache.misses")),
            "tlb_hit_rate": _rate(delta("tlb.hits"), delta("tlb.misses")),
            "remote_reads": delta("router.remote_reads"),
            "p50": percentile_from_snapshot(window_hist, _LATENCY, 0.50),
            "p99": percentile_from_snapshot(window_hist, _LATENCY, 0.99),
        }
        self.rows.append(row)
        self._last = snap
        self._last_cycle = now
        # boundaries stay on the original grid; a long idle gap closes
        # as one wide row and the next boundary lands after `now`
        while self._boundary <= now:
            self._boundary += self.window

    # -- serialization ---------------------------------------------------

    def as_dict(self) -> dict:
        return {"window_cycles": self.window, "windows": list(self.rows)}

    def write_json(self, path) -> "Path":
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2,
                                   sort_keys=True) + "\n",
                        encoding="utf-8")
        return path

    def to_csv(self) -> str:
        lines = [",".join(COLUMNS)]
        for row in self.rows:
            lines.append(",".join(str(row[c]) for c in COLUMNS))
        return "\n".join(lines) + "\n"

    def write_csv(self, path) -> "Path":
        path = Path(path)
        path.write_text(self.to_csv(), encoding="utf-8")
        return path
