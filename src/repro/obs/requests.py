"""Request-scoped tracing: who made the p99 slow, and where it went.

The service report (:mod:`repro.service.driver`) says *how slow* the
tail is; this module says *why*.  A :class:`RequestTraceRecorder`
rides along with the load driver — the driver tells it about every
admission and retirement (cheap, driver-side bookkeeping), while
span-level machine events (cache fills, TLB walks, router hops,
faults, enter crossings, migration) stream into per-node sinks
attached with ``hot=False``, so the per-bundle path stays dark and
superblock turbo stays engaged.  On the sharded engine the sinks live
in the worker processes (plus the coordinator, which owns the mesh
network and the serial migration path) and drain over RPC.

:func:`assemble_tail` then folds the records and events into the
slowest-K requests, each decomposed along its critical path into named
components that **sum exactly** to its arrival→halt latency:

* ``queueing`` — scheduled arrival to admission (waiting for a slot);
* ``gateway_entry`` — admission to the request thread's first
  ``enter.call`` (spawn-to-gateway prologue);
* ``migration_stall`` / ``fault_residency`` / ``remote`` /
  ``miss_fill`` — cycles of the request's window covered by
  ``migrate.ship``, the thread's own ``fault.dispatch`` residencies,
  ``router.hop`` spans sourced at its node, and cache/TLB miss spans
  on its node;
* ``execute`` — the residual.

Overlapping spans are attributed once, in that priority order (a miss
fill during a migration stall counts as migration stall).  Miss and
router spans carry no thread identity — the hardware fills a line, it
does not know for whom — so those two components are node-level
attributions: cycles where *the request's node* was eating misses or
mesh latency during the request's window.  ``docs/OBSERVABILITY.md``
§"Reading a request trace" walks a real decomposition.

Everything here is deterministic: records come from the driver's
admission order, events are sorted by a canonical key, so the same
seed produces byte-identical ``--explain-tail`` JSON on the lockstep
and the sharded engine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.obs.events import EVENT_NAMES, TraceEvent, encode_event

#: decomposition components, in report order; they sum (with queueing)
#: to each request's arrival -> halt latency
COMPONENTS = ("queueing", "gateway_entry", "execute", "miss_fill",
              "fault_residency", "remote", "migration_stall")

#: claim priority inside the admission -> halt window (highest first);
#: ``execute`` is the residual and ``queueing`` lives before the window
_PRIORITY = ("migration_stall", "fault_residency", "remote", "miss_fill",
             "gateway_entry")


def sort_events(events) -> list[TraceEvent]:
    """The canonical engine-independent event order: the lockstep and
    sharded engines emit the same event *multiset* but interleave
    collection differently; this total order makes the two streams
    byte-identical."""
    return sorted(events, key=lambda e: (
        e.cycle, e.node, e.name,
        json.dumps(encode_event(e), sort_keys=True)))


@dataclass
class RequestRecord:
    """One admitted request, as the driver saw it."""

    req: int            #: admission serial (schedule order)
    tenant: int
    op: int
    key: int
    node: int           #: ingress node
    tid: int
    arrival: int        #: scheduled arrival cycle
    admitted: int       #: cycle the request thread was spawned
    halted_at: int | None = None
    state: str | None = None

    @property
    def latency(self) -> int | None:
        return (self.halted_at - self.arrival
                if self.halted_at is not None else None)


class RequestTraceRecorder:
    """Collects per-request records and span-level machine events for
    one load-driver run (build via ``Simulation.record_requests()``,
    hand to the driver, call :meth:`finish` after the run)."""

    def __init__(self, sim):
        self.sim = sim
        self.records: dict[int, RequestRecord] = {}
        self._live: dict[tuple[int, int], int] = {}
        self._collector = sim.span_collector()
        self._events: list[TraceEvent] | None = None

    def admit(self, serial: int, request, node: int, tid: int,
              cycle: int) -> None:
        """The driver admitted ``request`` as thread ``tid`` on
        ``node`` at ``cycle``; also lands a ``request.admit`` instant
        in the node's event stream / flight recorder."""
        self.records[serial] = RequestRecord(
            req=serial, tenant=request.tenant, op=request.op,
            key=request.key, node=node, tid=tid,
            arrival=request.arrival, admitted=cycle)
        self._live[(node, tid)] = serial
        self.sim.emit(node, "request.admit", cycle, tid=tid, req=serial,
                      tenant=request.tenant, op=request.op)

    def done(self, node: int, tid: int, halted_at: int | None,
             state: str) -> None:
        """The request running as ``(node, tid)`` retired."""
        serial = self._live.pop((node, tid), None)
        if serial is None:
            return
        record = self.records[serial]
        record.halted_at = halted_at
        record.state = state
        if halted_at is not None:
            self.sim.emit(node, "request.done", halted_at, tid=tid,
                          dur=max(halted_at - record.admitted, 0),
                          req=serial, tenant=record.tenant, state=state)

    def finish(self) -> list[TraceEvent]:
        """Detach every sink and return the machine events in canonical
        order.  ``request.*`` instants are dropped (the records carry
        the same facts exactly), and so are hot-class events: a sink
        receives whatever the hub emits, so when a full trace session
        runs alongside, per-bundle events would leak in and make the
        tail payload depend on which *other* observers were attached.
        Idempotent."""
        if self._events is None:
            drained = self._collector.drain()
            self._events = sort_events(
                e for e in drained
                if not e.name.startswith("request.")
                and EVENT_NAMES.get(e.name, ("hot",))[0] != "hot")
        return self._events

    def explain_tail(self, k: int) -> dict:
        """The slowest-``k`` decomposition (see :func:`assemble_tail`)."""
        return assemble_tail(self.records, self.finish(), k)


class LockstepSpanCollector:
    """Span-level sinks on every hub of an in-process machine."""

    def __init__(self, hubs):
        self._hubs = list(hubs)
        self._sinks: list[list] = [[] for _ in self._hubs]
        for hub, sink in zip(self._hubs, self._sinks):
            hub.attach(sink, hot=False)
        self._drained: list[TraceEvent] | None = None

    def drain(self) -> list[TraceEvent]:
        if self._drained is None:
            events: list[TraceEvent] = []
            for hub, sink in zip(self._hubs, self._sinks):
                hub.detach(sink)
                events.extend(sink)
            self._drained = events
        return self._drained


# -- critical-path assembly ---------------------------------------------

def _free_parts(span: tuple[int, int],
                claimed: list[list[int]]) -> list[tuple[int, int]]:
    """Parts of ``span`` not covered by the merged, sorted ``claimed``
    interval list."""
    start, end = span
    parts: list[tuple[int, int]] = []
    for c_start, c_end in claimed:
        if c_end <= start:
            continue
        if c_start >= end:
            break
        if c_start > start:
            parts.append((start, c_start))
        start = max(start, c_end)
        if start >= end:
            break
    if start < end:
        parts.append((start, end))
    return parts


def _merge(intervals) -> list[list[int]]:
    merged: list[list[int]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return merged


def _component_spans(record: RequestRecord,
                     events: list[TraceEvent]) -> dict[str, list]:
    """Raw candidate intervals per component, clipped to the request's
    admission -> halt window."""
    lo, hi = record.admitted, record.halted_at
    spans: dict[str, list] = {name: [] for name in _PRIORITY}

    def clip(cycle: int, dur: int):
        start, end = max(cycle, lo), min(cycle + dur, hi)
        return (start, end) if start < end else None

    first_enter = None
    for event in events:
        if event.name == "enter.call":
            if (first_enter is None and event.node == record.node
                    and event.tid == record.tid
                    and lo <= event.cycle < hi):
                first_enter = event.cycle
            continue
        dur = event.dur or 0
        if not dur or event.cycle >= hi or event.cycle + dur <= lo:
            continue
        if event.name == "migrate.ship" and event.node == record.node:
            bucket = "migration_stall"
        elif (event.name == "fault.dispatch" and event.node == record.node
                and event.tid == record.tid):
            bucket = "fault_residency"
        elif (event.name == "router.hop"
                and event.args.get("src") == record.node):
            bucket = "remote"
        elif (event.name in ("cache.miss_fill", "tlb.miss_walk")
                and event.node == record.node):
            bucket = "miss_fill"
        else:
            continue
        part = clip(event.cycle, dur)
        if part is not None:
            spans[bucket].append(part)
    if first_enter is not None and first_enter > lo:
        spans["gateway_entry"].append((lo, first_enter))
    return spans


def decompose(record: RequestRecord,
              events: list[TraceEvent]) -> dict[str, int]:
    """The critical-path decomposition of one completed request.  The
    returned components sum exactly to ``record.latency``."""
    if record.halted_at is None:
        raise ValueError(f"request {record.req} never completed")
    spans = _component_spans(record, events)
    components = {name: 0 for name in COMPONENTS}
    components["queueing"] = max(record.admitted - record.arrival, 0)
    claimed: list[list[int]] = []
    for name in _PRIORITY:
        cycles = 0
        fresh = []
        for span in _merge(spans[name]):
            for start, end in _free_parts((span[0], span[1]), claimed):
                cycles += end - start
                fresh.append((start, end))
        components[name] = cycles
        if fresh:
            claimed = _merge(claimed + [list(p) for p in fresh])
    window = record.halted_at - record.admitted
    components["execute"] = window - sum(
        components[name] for name in _PRIORITY)
    total = sum(components.values())
    assert total == record.latency, (record, components)
    return components


def _timeline_events(record: RequestRecord,
                     events: list[TraceEvent]) -> list[TraceEvent]:
    """The events that overlap the request's window on its node (its
    own faults/enters by tid; node-level misses, hops, migration)."""
    lo, hi = record.admitted, record.halted_at
    out = []
    for event in events:
        end = event.cycle + (event.dur or 0)
        if end < lo or event.cycle >= hi:
            continue
        if event.name in ("enter.call", "enter.return", "fault.raise",
                          "fault.dispatch", "thread.spawn", "thread.halt"):
            if event.node == record.node and event.tid == record.tid:
                out.append(event)
        elif event.name == "router.hop":
            if event.args.get("src") == record.node:
                out.append(event)
        elif event.node == record.node:
            out.append(event)
    return out


def assemble_tail(records: dict[int, RequestRecord],
                  events: list[TraceEvent], k: int) -> dict:
    """The ``--explain-tail`` payload: the slowest ``k`` completed
    requests, each decomposed into :data:`COMPONENTS` (summing exactly
    to its latency), plus the worst request's event timeline.  Faulted
    or never-retired requests are excluded — they have no halt cycle to
    decompose to (their count is reported instead)."""
    done = [r for r in records.values()
            if r.halted_at is not None and r.state == "HALTED"]
    ranked = sorted(done, key=lambda r: (-r.latency, r.req))[:max(k, 0)]
    slowest = []
    for record in ranked:
        slowest.append({
            "req": record.req, "tenant": record.tenant, "op": record.op,
            "node": record.node, "tid": record.tid,
            "arrival": record.arrival, "admitted": record.admitted,
            "halted_at": record.halted_at, "latency": record.latency,
            "components": decompose(record, events),
        })
    out = {
        "requests": len(records),
        "completed": len(done),
        "unexplained": len(records) - len(done),
        "explained": len(slowest),
        "slowest": slowest,
    }
    if ranked:
        worst = ranked[0]
        out["worst"] = {
            "req": worst.req,
            "timeline": [encode_event(e)
                         for e in _timeline_events(worst, events)],
        }
    return out


# -- text rendering ------------------------------------------------------

def render_tail(tail: dict) -> str:
    """The slowest-K table plus the worst request's text timeline —
    what ``repro serve --explain-tail K`` prints."""
    lines = [f"tail attribution: slowest {tail['explained']} of "
             f"{tail['completed']} completed requests"
             + (f" ({tail['unexplained']} not decomposable)"
                if tail["unexplained"] else "")]
    header = (f"  {'req':>6} {'tenant':>6} {'node':>4} {'latency':>8}"
              + "".join(f" {name:>{max(len(name), 7)}}"
                        for name in COMPONENTS))
    lines.append(header)
    for entry in tail["slowest"]:
        row = (f"  {entry['req']:>6} {entry['tenant']:>6} "
               f"{entry['node']:>4} {entry['latency']:>8}")
        for name in COMPONENTS:
            row += f" {entry['components'][name]:>{max(len(name), 7)}}"
        lines.append(row)
    if tail.get("worst"):
        worst = next(e for e in tail["slowest"]
                     if e["req"] == tail["worst"]["req"])
        lines.append(
            f"  worst request {worst['req']} (tenant {worst['tenant']}, "
            f"node {worst['node']}): arrival {worst['arrival']}, "
            f"admitted {worst['admitted']}, halt {worst['halted_at']}")
        for encoded in tail["worst"]["timeline"]:
            offset = encoded["cycle"] - worst["admitted"]
            dur = f" dur {encoded['dur']}" if "dur" in encoded else ""
            args = encoded.get("args", {})
            detail = "".join(f" {k}={args[k]}" for k in sorted(args))
            lines.append(f"    +{offset:<8} {encoded['name']:<16}{dur}"
                         f"{detail}")
    return "\n".join(lines)
