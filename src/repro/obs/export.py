"""Exporters: Chrome trace / Perfetto JSON and a text timeline.

The Chrome trace event format (the ``traceEvents`` JSON array) is what
https://ui.perfetto.dev and chrome://tracing load directly.  Mapping:

* **process** (pid) = node, **thread track** (tid) = cluster, so a
  4-cluster chip renders as four parallel tracks per node; events not
  attributable to a cluster (chip-wide faults before placement, swap,
  migration) land on a per-node "chip" track;
* span events (``dur`` set) become complete events (``ph: "X"``),
  instants become instant events (``ph: "i"``);
* one simulated cycle maps to one microsecond of trace time (``ts`` is
  microseconds in the format), so Perfetto's duration labels read
  directly as cycle counts;
* metadata events (``ph: "M"``) name every track.

The text timeline is the same event list as one line per event — the
greppable form for terminals and test assertions.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.events import TraceEvent

#: tid of the per-node fallback track for cluster-less events
CHIP_TRACK = 99


def _category(name: str) -> str:
    return name.split(".", 1)[0]


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """The event list as a Chrome-trace/Perfetto-loadable JSON object."""
    trace: list[dict] = []
    tracks: set[tuple[int, int]] = set()
    processes: set[int] = set()
    for event in events:
        pid = event.node
        tid = event.cluster if event.cluster is not None else CHIP_TRACK
        if pid not in processes:
            processes.add(pid)
            trace.append({"ph": "M", "name": "process_name", "pid": pid,
                          "args": {"name": f"node{pid}"}})
        if (pid, tid) not in tracks:
            tracks.add((pid, tid))
            label = ("chip" if tid == CHIP_TRACK else f"cluster{tid}")
            trace.append({"ph": "M", "name": "thread_name", "pid": pid,
                          "tid": tid, "args": {"name": label}})
        args = dict(event.args)
        if event.tid is not None:
            args["thread"] = event.tid
        entry = {
            "name": event.name,
            "cat": _category(event.name),
            "pid": pid,
            "tid": tid,
            "ts": event.cycle,
            "args": args,
        }
        if event.dur is not None:
            entry["ph"] = "X"
            entry["dur"] = event.dur
        else:
            entry["ph"] = "i"
            entry["s"] = "t"  # instant scoped to its track
        trace.append(entry)
    return {"traceEvents": trace, "displayTimeUnit": "ms",
            "otherData": {"timeUnit": "1 ts = 1 machine cycle"}}


def to_text_timeline(events: Iterable[TraceEvent]) -> str:
    """One line per event: cycle, location, name, span, args."""
    lines = []
    for event in events:
        where = f"n{event.node}"
        if event.cluster is not None:
            where += f".c{event.cluster}"
        if event.tid is not None:
            where += f".t{event.tid}"
        span = f" +{event.dur}" if event.dur is not None else ""
        args = " ".join(f"{k}={v!r}" for k, v in sorted(event.args.items()))
        lines.append(f"{event.cycle:>10} {where:<12} {event.name:<16}"
                     f"{span:<8} {args}".rstrip())
    return "\n".join(lines)
