"""Exporters: Chrome trace / Perfetto JSON and a text timeline.

The Chrome trace event format (the ``traceEvents`` JSON array) is what
https://ui.perfetto.dev and chrome://tracing load directly.  Mapping:

* **process** (pid) = node, **thread track** (tid) = cluster, so a
  4-cluster chip renders as four parallel tracks per node; events not
  attributable to a cluster (chip-wide faults before placement, swap,
  migration) land on a per-node "chip" track;
* span events (``dur`` set) become complete events (``ph: "X"``),
  instants become instant events (``ph: "i"``);
* one simulated cycle maps to one microsecond of trace time (``ts`` is
  microseconds in the format), so Perfetto's duration labels read
  directly as cycle counts;
* metadata events (``ph: "M"``) name every track.

The text timeline is the same event list as one line per event — the
greppable form for terminals and test assertions.

Two append helpers extend a built trace in place:
:func:`append_request_tracks` adds a synthetic "requests" process with
one track per slowest-K request (the whole-request span carries the
critical-path components in its args; the worst request's track also
replays its event timeline), and :func:`append_counter_tracks` turns
time-series windows into Perfetto counter (``ph: "C"``) series.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.events import TraceEvent

#: tid of the per-node fallback track for cluster-less events
CHIP_TRACK = 99

#: pid of the synthetic per-request process (above any real node id)
REQUEST_PROCESS = 1000


def _category(name: str) -> str:
    return name.split(".", 1)[0]


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """The event list as a Chrome-trace/Perfetto-loadable JSON object."""
    trace: list[dict] = []
    tracks: set[tuple[int, int]] = set()
    processes: set[int] = set()
    for event in events:
        pid = event.node
        tid = event.cluster if event.cluster is not None else CHIP_TRACK
        if pid not in processes:
            processes.add(pid)
            trace.append({"ph": "M", "name": "process_name", "pid": pid,
                          "args": {"name": f"node{pid}"}})
        if (pid, tid) not in tracks:
            tracks.add((pid, tid))
            label = ("chip" if tid == CHIP_TRACK else f"cluster{tid}")
            trace.append({"ph": "M", "name": "thread_name", "pid": pid,
                          "tid": tid, "args": {"name": label}})
        args = dict(event.args)
        if event.tid is not None:
            args["thread"] = event.tid
        entry = {
            "name": event.name,
            "cat": _category(event.name),
            "pid": pid,
            "tid": tid,
            "ts": event.cycle,
            "args": args,
        }
        if event.dur is not None:
            entry["ph"] = "X"
            entry["dur"] = event.dur
        else:
            entry["ph"] = "i"
            entry["s"] = "t"  # instant scoped to its track
        trace.append(entry)
    return {"traceEvents": trace, "displayTimeUnit": "ms",
            "otherData": {"timeUnit": "1 ts = 1 machine cycle"}}


def append_request_tracks(trace: dict, tail: dict) -> dict:
    """Append per-request tracks from an ``--explain-tail`` payload to
    a built Chrome trace: one thread track per slowest-K request under
    a synthetic "requests" process.  Each track gets the whole-request
    span (arrival -> halt, critical-path components in its args) and a
    ``queueing`` child span; the worst request's track additionally
    replays its event timeline, so the machine events that made it slow
    sit on the request's own timeline."""
    events = trace["traceEvents"]
    slowest = tail.get("slowest", [])
    if slowest:
        events.append({"ph": "M", "name": "process_name",
                       "pid": REQUEST_PROCESS,
                       "args": {"name": "requests (slowest first)"}})
    worst = tail.get("worst", {})
    for entry in slowest:
        tid = entry["req"]
        events.append({"ph": "M", "name": "thread_name",
                       "pid": REQUEST_PROCESS, "tid": tid,
                       "args": {"name": f"req{entry['req']} "
                                        f"tenant{entry['tenant']} "
                                        f"node{entry['node']}"}})
        events.append({"ph": "X", "name": "request", "cat": "request",
                       "pid": REQUEST_PROCESS, "tid": tid,
                       "ts": entry["arrival"], "dur": entry["latency"],
                       "args": dict(entry["components"])})
        if entry["admitted"] > entry["arrival"]:
            events.append({"ph": "X", "name": "queueing",
                           "cat": "request", "pid": REQUEST_PROCESS,
                           "tid": tid, "ts": entry["arrival"],
                           "dur": entry["admitted"] - entry["arrival"],
                           "args": {}})
        if entry["req"] == worst.get("req"):
            for encoded in worst.get("timeline", []):
                replayed = {"name": encoded["name"],
                            "cat": _category(encoded["name"]),
                            "pid": REQUEST_PROCESS, "tid": tid,
                            "ts": encoded["cycle"],
                            "args": dict(encoded.get("args", {}))}
                if "dur" in encoded:
                    replayed["ph"] = "X"
                    replayed["dur"] = encoded["dur"]
                else:
                    replayed["ph"] = "i"
                    replayed["s"] = "t"
                events.append(replayed)
    return trace


#: the time-series columns exported as Perfetto counter tracks
COUNTER_SERIES = ("throughput_rpk", "inflight", "cache_hit_rate",
                  "tlb_hit_rate", "remote_reads")


def append_counter_tracks(trace: dict, rows: Iterable[dict],
                          pid: int = 0) -> dict:
    """Append time-series windows (``TimeseriesSampler.rows``) as
    Perfetto counter events: each window closes with one ``ph: "C"``
    sample per series at the window's end cycle."""
    events = trace["traceEvents"]
    for row in rows:
        for name in COUNTER_SERIES:
            events.append({"ph": "C", "name": f"ts.{name}", "pid": pid,
                           "ts": row["end"],
                           "args": {name: row[name]}})
    return trace


def to_text_timeline(events: Iterable[TraceEvent]) -> str:
    """One line per event: cycle, location, name, span, args."""
    lines = []
    for event in events:
        where = f"n{event.node}"
        if event.cluster is not None:
            where += f".c{event.cluster}"
        if event.tid is not None:
            where += f".t{event.tid}"
        span = f" +{event.dur}" if event.dur is not None else ""
        args = " ".join(f"{k}={v!r}" for k, v in sorted(event.args.items()))
        lines.append(f"{event.cycle:>10} {where:<12} {event.name:<16}"
                     f"{span:<8} {args}".rstrip())
    return "\n".join(lines)
