"""The per-chip trace hub: event spine, flight recorder, histograms.

Every :class:`~repro.machine.chip.MAPChip` owns one :class:`TraceHub`
(``chip.obs``).  Emission has three gates, matching the three cost
classes in :data:`~repro.obs.events.EVENT_NAMES`:

* ``hub.enabled`` — the master switch.  Cold-path events (faults,
  enter crossings, swap, migration, spawn/halt, request admission) and
  the latency histograms are on by default; their cost is negligible
  because the paths are rare or already expensive.  ``enabled =
  False`` turns the whole subsystem into a handful of dead branches,
  which is what the tracing-overhead benchmark measures.
* ``hub.spans`` — true exactly while *any* sink is attached.  Per-miss
  sites (cache fill, TLB walk, router hop) guard with one attribute
  load and branch (``if obs.spans:``), so span recording — what the
  request tracer needs — costs one rare branch per miss and nothing
  per bundle.
* ``hub.hot`` — true exactly while a sink attached with ``hot=True``
  is present (the default, and what :class:`TraceSession` uses).
  Per-bundle sites (``bundle``, ``thread.switch``) guard with
  ``if obs.hot:``, so detailed tracing is zero-cost when nobody is
  listening, and a spans-only listener never pays for the issue
  stream.

Events always land in the **flight recorder** — a fixed-size ring that
keeps the last N events at O(1) per event — and are forwarded to any
attached sinks (anything with ``.append``).  The fuzzer serializes the
ring into crash dumps; :class:`TraceSession` is the user-facing sink
behind ``Simulation.trace()`` and ``repro trace``.

Emission never changes machine state: cycle counts with tracing on and
off are bit-identical, and the tracer parity tests and the
tracing-overhead benchmark police that continuously.

``hub.hot`` is also the gate superblock turbo execution respects
(``docs/PERF.md`` §6): the chip refuses to enter a bulk-dispatch trace
while a *hot* sink is attached, so per-bundle event streams stay
complete — turbo mode never skips an emission a listener would have
seen.  A spans-only sink leaves turbo on: miss fills inside a
superblock go through the same cache access path and still emit.
Cold-path emissions and the histograms (e.g. load-to-use) are still
recorded from inside a trace, at the same cycles as the per-cycle
path.
"""

from __future__ import annotations

from collections import deque

from repro.obs.events import TraceEvent, encode_event
from repro.obs.histogram import Histogram

#: flight-recorder depth: enough to reconstruct the last few hundred
#: control-plane moments without bloating crash dumps
FLIGHT_CAPACITY = 512

#: the latency distributions every chip keeps (see docs/OBSERVABILITY.md)
HISTOGRAM_NAMES = ("load_to_use", "fault_residency", "enter_roundtrip",
                   "remote_latency")


class FlightRecorder:
    """A fixed-size ring of the most recent events."""

    __slots__ = ("_ring", "total")

    def __init__(self, capacity: int = FLIGHT_CAPACITY):
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        #: events ever recorded (so ``total - len(ring)`` = dropped)
        self.total = 0

    def append(self, event: TraceEvent) -> None:
        self._ring.append(event)
        self.total += 1

    def events(self) -> list[TraceEvent]:
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.total = 0

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def dump(self) -> dict:
        """The ring as plain JSON — what crash dumps and failure
        artifacts embed (``repro.obs.load_flight`` reads it back)."""
        return {
            "capacity": self.capacity,
            "total": self.total,
            "dropped": max(self.total - len(self._ring), 0),
            "events": [encode_event(e) for e in self._ring],
        }


def load_flight(dump: dict) -> list[TraceEvent]:
    """Decode a :meth:`FlightRecorder.dump` payload back into events."""
    from repro.obs.events import decode_event

    return [decode_event(e) for e in dump.get("events", [])]


class TraceHub:
    """One chip's event spine (``chip.obs``)."""

    def __init__(self, node: int = 0, flight_capacity: int = FLIGHT_CAPACITY):
        self.node = node
        #: master switch; False turns every site into a dead branch
        self.enabled = True
        #: true exactly while a hot sink is attached (per-bundle gate)
        self.hot = False
        #: true exactly while any sink is attached (per-miss gate)
        self.spans = False
        self.flight = FlightRecorder(flight_capacity)
        self._sinks: list = []
        self._hot_sinks: list = []
        #: clock callback (set by the chip) so sites without a cycle
        #: argument — the TLB — can still stamp events
        self.clock = None
        self.histograms = {name: Histogram(name)
                           for name in HISTOGRAM_NAMES}
        # direct references for the emitting sites
        self.load_to_use = self.histograms["load_to_use"]
        self.fault_residency = self.histograms["fault_residency"]
        self.enter_roundtrip = self.histograms["enter_roundtrip"]
        self.remote_latency = self.histograms["remote_latency"]
        #: per-tid stack of in-flight privileged enter-call start cycles
        self._enter_stack: dict[int, list[int]] = {}

    # -- histograms -----------------------------------------------------

    def add_histogram(self, name: str) -> Histogram:
        """Register an *additional* named histogram on this hub (the
        standard four in :data:`HISTOGRAM_NAMES` exist on every chip;
        subsystems with their own latency distributions — the
        multi-tenant service's per-request latency, say — add theirs
        here).  Idempotent: asking for an existing name returns the
        live histogram.  The caller wires it into the chip's counter
        file (``chip.counters.add_source(f"hist.{name}", h.as_counters)``)
        so it appears in snapshots like the built-ins."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Histogram(name)
            self.histograms[name] = histogram
        return histogram

    # -- sinks ----------------------------------------------------------

    def attach(self, sink, *, hot: bool = True) -> None:
        """Forward every event to ``sink`` (anything with ``.append``).
        ``hot=True`` (the default) opens the per-bundle gate too;
        ``hot=False`` opens only the per-miss ``spans`` gate — what the
        request tracer uses, so superblock turbo stays engaged."""
        self._sinks.append(sink)
        if hot:
            self._hot_sinks.append(sink)
        self.spans = True
        self.hot = bool(self._hot_sinks)

    def detach(self, sink) -> None:
        # identity-based removal: sinks are often plain lists, and two
        # empty lists compare equal — ``list.remove`` would drop the
        # wrong listener
        self._sinks = [s for s in self._sinks if s is not sink]
        self._hot_sinks = [s for s in self._hot_sinks if s is not sink]
        self.spans = bool(self._sinks)
        self.hot = bool(self._hot_sinks)

    # -- emission -------------------------------------------------------

    def emit(self, name: str, cycle: int, *, cluster: int | None = None,
             tid: int | None = None, dur: int | None = None,
             **args) -> None:
        """Record one event (flight recorder + attached sinks).  Cold
        call sites call this directly; hot sites guard with
        ``if obs.hot:`` first so the call never happens untraced."""
        if not self.enabled:
            return
        event = TraceEvent(name=name, cycle=cycle, node=self.node,
                           cluster=cluster, tid=tid, dur=dur, args=args)
        self.flight.append(event)
        for sink in self._sinks:
            sink.append(event)

    def now(self) -> int:
        """The chip clock, for sites without a cycle argument."""
        clock = self.clock
        return clock() if clock is not None else 0

    # -- the enter-call round-trip tracker -----------------------------

    def note_jump(self, thread, target_word, new_ip, now: int,
                  cluster: int | None = None) -> None:
        """Called by the integer unit on every JMP (after
        ``check_jump`` passed).  Emits ``enter.call`` when the target
        was an ENTER pointer; when a privileged enter call later drops
        back to user code, emits ``enter.return`` with the round-trip
        duration and feeds the ``enter_roundtrip`` histogram.

        Round trips are only tracked for ENTER_PRIV gateways — the
        privilege drop is the unambiguous architectural return signal.
        ENTER_USER crossings emit ``enter.call`` only.
        """
        if not self.enabled:
            return
        from repro.core.permissions import Permission
        from repro.core.pointer import GuardedPointer

        target = GuardedPointer.from_word(target_word).permission
        if target.is_enter:
            self.emit("enter.call", now, cluster=cluster, tid=thread.tid,
                      target=new_ip.address,
                      priv=target is Permission.ENTER_PRIV)
            if target is Permission.ENTER_PRIV:
                self._enter_stack.setdefault(thread.tid, []).append(now)
            return
        if (thread.privileged
                and new_ip.permission is Permission.EXECUTE_USER):
            stack = self._enter_stack.get(thread.tid)
            if stack:
                duration = now - stack.pop()
                self.emit("enter.return", now, cluster=cluster,
                          tid=thread.tid, dur=duration,
                          target=new_ip.address)
                self.enter_roundtrip.add(duration)

    # -- counter integration -------------------------------------------

    def counter_sources(self):
        """``(prefix, callable)`` pairs for
        :meth:`~repro.machine.counters.PerfCounters.add_source` — one
        per histogram plus the flight recorder's occupancy."""
        for name, histogram in self.histograms.items():
            yield f"hist.{name}", histogram.as_counters
        yield "flight", self._flight_counters

    def _flight_counters(self) -> dict[str, int]:
        flight = self.flight
        return {"recorded": flight.total, "resident": len(flight),
                "dropped": max(flight.total - len(flight), 0)}


class TraceSession:
    """A recording session over one or more hubs (one per node).

    Context-manager friendly::

        with sim.trace() as session:
            sim.run()
        session.save_chrome("trace.json")

    ``events`` is the merged, emission-ordered event list; exporters
    (:func:`~repro.obs.export.to_chrome_trace`,
    :func:`~repro.obs.export.to_text_timeline`) read it directly.
    """

    def __init__(self, hubs):
        self.events: list[TraceEvent] = []
        self._hubs = list(hubs)
        self._attached = True
        for hub in self._hubs:
            hub.attach(self.events)

    def stop(self) -> None:
        if self._attached:
            for hub in self._hubs:
                hub.detach(self.events)
            self._attached = False

    def __enter__(self) -> "TraceSession":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- exports --------------------------------------------------------

    def to_chrome(self) -> dict:
        from repro.obs.export import to_chrome_trace

        return to_chrome_trace(self.events)

    def save_chrome(self, path) -> "Path":
        """Write a Perfetto/Chrome-trace JSON file (open it at
        https://ui.perfetto.dev or chrome://tracing)."""
        import json
        from pathlib import Path

        path = Path(path)
        path.write_text(json.dumps(self.to_chrome()) + "\n",
                        encoding="utf-8")
        return path

    def text(self) -> str:
        from repro.obs.export import to_text_timeline

        return to_text_timeline(self.events)
