"""Structured tracing: events, histograms, flight recorder, exporters.

The observability subsystem for the MAP simulator (see
``docs/OBSERVABILITY.md``):

* :class:`TraceEvent` / :data:`EVENT_NAMES` — the typed event
  vocabulary (:mod:`repro.obs.events`);
* :class:`TraceHub` — the per-chip event spine with its always-on
  :class:`FlightRecorder` ring and hot-path gate
  (:mod:`repro.obs.hub`);
* :class:`Histogram` — log2-bucket latency distributions registered as
  perf-counter pull sources (:mod:`repro.obs.histogram`);
* :class:`TraceSession` + :func:`to_chrome_trace` /
  :func:`to_text_timeline` — recording and export, behind
  ``Simulation.trace()`` and ``repro trace``
  (:mod:`repro.obs.export`).
"""

from repro.obs.events import (EVENT_NAMES, TraceEvent, decode_event,
                              encode_event)
from repro.obs.export import CHIP_TRACK, to_chrome_trace, to_text_timeline
from repro.obs.histogram import Histogram
from repro.obs.hub import (FLIGHT_CAPACITY, HISTOGRAM_NAMES, FlightRecorder,
                           TraceHub, TraceSession, load_flight)

__all__ = [
    "CHIP_TRACK",
    "EVENT_NAMES",
    "FLIGHT_CAPACITY",
    "HISTOGRAM_NAMES",
    "FlightRecorder",
    "Histogram",
    "TraceEvent",
    "TraceHub",
    "TraceSession",
    "decode_event",
    "encode_event",
    "load_flight",
    "to_chrome_trace",
    "to_text_timeline",
]
