"""Structured tracing: events, histograms, flight recorder, exporters.

The observability subsystem for the MAP simulator (see
``docs/OBSERVABILITY.md``):

* :class:`TraceEvent` / :data:`EVENT_NAMES` — the typed event
  vocabulary (:mod:`repro.obs.events`);
* :class:`TraceHub` — the per-chip event spine with its always-on
  :class:`FlightRecorder` ring and hot/span gates
  (:mod:`repro.obs.hub`);
* :class:`Histogram` — log2-bucket latency distributions registered as
  perf-counter pull sources (:mod:`repro.obs.histogram`);
* :class:`TraceSession` + :func:`to_chrome_trace` /
  :func:`to_text_timeline` — recording and export, behind
  ``Simulation.trace()`` and ``repro trace``
  (:mod:`repro.obs.export`);
* :class:`RequestTraceRecorder` + :func:`assemble_tail` /
  :func:`render_tail` — request-scoped tracing and tail-latency
  attribution, behind ``Simulation.record_requests()`` and
  ``repro serve --explain-tail`` (:mod:`repro.obs.requests`);
* :class:`TimeseriesSampler` — windowed counter deltas, behind
  ``Simulation.timeseries()`` and ``repro serve --timeseries-out``
  (:mod:`repro.obs.timeseries`).
"""

from repro.obs.events import (EVENT_NAMES, TraceEvent, decode_event,
                              encode_event)
from repro.obs.export import (CHIP_TRACK, append_counter_tracks,
                              append_request_tracks, to_chrome_trace,
                              to_text_timeline)
from repro.obs.histogram import Histogram
from repro.obs.hub import (FLIGHT_CAPACITY, HISTOGRAM_NAMES, FlightRecorder,
                           TraceHub, TraceSession, load_flight)
from repro.obs.requests import (RequestRecord, RequestTraceRecorder,
                                assemble_tail, decompose, render_tail)
from repro.obs.timeseries import TimeseriesSampler

__all__ = [
    "CHIP_TRACK",
    "EVENT_NAMES",
    "FLIGHT_CAPACITY",
    "HISTOGRAM_NAMES",
    "FlightRecorder",
    "Histogram",
    "RequestRecord",
    "RequestTraceRecorder",
    "TimeseriesSampler",
    "TraceEvent",
    "TraceHub",
    "TraceSession",
    "append_counter_tracks",
    "append_request_tracks",
    "assemble_tail",
    "decode_event",
    "decompose",
    "encode_event",
    "load_flight",
    "render_tail",
    "to_chrome_trace",
    "to_text_timeline",
]
