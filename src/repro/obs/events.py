"""Typed timeline events: the vocabulary of the tracing subsystem.

Every observable moment in the machine — a bundle issuing, a fault
being raised and dispatched, an enter-pointer crossing, a cache line
filling — is one :class:`TraceEvent`.  Events are *instants* unless
they carry ``dur``, in which case they are *spans* starting at
``cycle`` and covering ``dur`` cycles (a miss fill, a mesh message, a
fault-handler residency).

The name taxonomy is closed: :data:`EVENT_NAMES` enumerates every name
the simulator emits, with its cost class —

* ``hot`` events fire on the per-bundle path and are emitted only
  while *detailed* tracing is attached
  (:attr:`~repro.obs.hub.TraceHub.hot`);
* ``span`` events fire on per-miss paths (cache fill, TLB walk, router
  hop) and are emitted while *any* sink is attached
  (:attr:`~repro.obs.hub.TraceHub.spans`) — cheap enough for
  request-scoped recording, which must see them without paying for the
  bundle stream;
* ``cold`` events fire on rare control-plane paths (faults, swaps,
  protection-domain crossings, migration, request admission) and
  always reach the flight recorder, so a crash dump carries them with
  zero setup.

``docs/OBSERVABILITY.md`` documents the same table, and
``tests/integration/test_observability_docs.py`` keeps the two in sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: every event name the simulator emits → (cost class, meaning).
#: The cost class is the emission gate: "hot" needs an attached *hot*
#: sink (``TraceHub.hot``), "span" needs any sink (``TraceHub.spans``),
#: "cold" only needs the hub enabled.
EVENT_NAMES: dict[str, tuple[str, str]] = {
    "bundle": ("hot", "one bundle issued (args: address, text, priv)"),
    "thread.switch": ("hot", "a cluster issued from a different thread "
                             "than the previous cycle it issued"),
    "thread.spawn": ("cold", "a thread was created on a cluster"),
    "thread.halt": ("cold", "a thread executed HALT"),
    "cache.miss_fill": ("span", "a data-cache miss filled a line "
                                "(span: request to line ready)"),
    "tlb.miss_walk": ("span", "a TLB miss walked the page table "
                              "(span: the walk cycles)"),
    "router.hop": ("span", "one mesh message, source to destination "
                           "(span: injection to arrival)"),
    "fault.raise": ("cold", "a thread faulted (args: cause, site)"),
    "fault.dispatch": ("cold", "the fault handler finished (span: "
                               "thread residency out of the run; args: "
                               "outcome resumed|blocked|killed)"),
    "enter.call": ("cold", "a JMP through an ENTER pointer crossed "
                           "into a protected subsystem"),
    "enter.return": ("cold", "privilege dropped back to user "
                             "(span: the enter-call round trip)"),
    "swap.out": ("cold", "a page was evicted to the backing store"),
    "swap.in": ("cold", "a swapped page was faulted back in"),
    "migrate.begin": ("cold", "a process migration started"),
    "migrate.ship": ("cold", "migration finished shipping pages "
                             "(span: departure to last arrival)"),
    "migrate.resume": ("cold", "migrated threads resumed on the "
                               "destination node"),
    "request.admit": ("cold", "the service driver admitted a request "
                              "onto a node (args: req, tenant, op)"),
    "request.done": ("cold", "a service request retired (span: "
                             "admission to halt; args: req, tenant, "
                             "state)"),
}


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timeline event.

    ``cycle`` is in simulated machine cycles; ``node``/``cluster``/
    ``tid`` locate the event on the machine (any may be absent for
    chip-wide events); ``dur`` turns the instant into a span; ``args``
    carries name-specific payload (JSON-safe values only).
    """

    name: str
    cycle: int
    node: int = 0
    cluster: int | None = None
    tid: int | None = None
    dur: int | None = None
    args: dict = field(default_factory=dict)


def encode_event(event: TraceEvent) -> dict:
    """The event as a plain-JSON dict (flight dumps, crash artifacts)."""
    out = {"name": event.name, "cycle": event.cycle, "node": event.node}
    if event.cluster is not None:
        out["cluster"] = event.cluster
    if event.tid is not None:
        out["tid"] = event.tid
    if event.dur is not None:
        out["dur"] = event.dur
    if event.args:
        out["args"] = dict(event.args)
    return out


def decode_event(encoded: dict) -> TraceEvent:
    """Inverse of :func:`encode_event`."""
    return TraceEvent(
        name=encoded["name"],
        cycle=int(encoded["cycle"]),
        node=int(encoded.get("node", 0)),
        cluster=encoded.get("cluster"),
        tid=encoded.get("tid"),
        dur=encoded.get("dur"),
        args=dict(encoded.get("args", {})),
    )
