"""Storage and hardware overheads of guarded pointers (paper §4.1–§4.2)
and the sharing-state arithmetic of §5.1 (experiments E6 and E8)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import ADDRESS_BITS, LENGTH_BITS, PERM_BITS, WORD_BITS


def tag_overhead(word_bits: int = WORD_BITS) -> float:
    """Memory overhead of one tag bit per word: 1/64 ≈ 1.56 %, which the
    paper rounds to "a 1.5% increase"."""
    return 1 / word_bits


def address_bits_lost() -> int:
    """Virtual-address bits spent on the permission and length fields."""
    return PERM_BITS + LENGTH_BITS


def address_space_shrink_factor() -> int:
    """How much smaller the virtual address space becomes (2**10 — the
    paper's "factor of 1000" for Amoeba-style sparse-capability
    schemes)."""
    return 1 << address_bits_lost()


def addressable_bytes() -> int:
    """1.8e16 bytes — the paper's §4.2 figure."""
    return 1 << ADDRESS_BITS


def sharing_entries_paged(pages: int, processes: int) -> int:
    """Page-table entries for m processes to share n pages: n×m (§5.1)."""
    return pages * processes


def sharing_entries_guarded(processes: int) -> int:
    """Guarded pointers (or capabilities): one pointer per process,
    independent of the shared region's size."""
    return processes


@dataclass(frozen=True, slots=True)
class HardwareInventory:
    """Protection hardware a scheme needs (the qualitative §4.1/§5
    table, made explicit for bench E6)."""

    scheme: str
    tag_bits_per_word: int        #: storage tags
    lookaside_buffers: int        #: TLBs/PLBs/descriptor caches beyond the TLB
    ports_scale_with_banks: bool  #: must protection state be replicated
                                  #: per cache bank?
    tables_in_memory: int         #: protection/segment/capability tables
    checks_on_critical_path: bool #: is a table lookup serialized before
                                  #: or during cache access?


#: §4.1/§5 in one table: what each scheme puts in hardware.
HARDWARE_INVENTORY = [
    HardwareInventory("guarded-pointers", 1, 0, False, 0, False),
    HardwareInventory("paged-separate", 0, 0, True, 1, True),
    HardwareInventory("paged-asid", 0, 0, True, 1, True),
    HardwareInventory("domain-page", 0, 1, True, 2, True),
    HardwareInventory("page-group", 0, 0, True, 1, True),
    HardwareInventory("segmentation", 0, 1, True, 2, True),
    HardwareInventory("capability-table", 0, 1, True, 2, True),
    HardwareInventory("sfi", 0, 0, False, 0, False),
]


def memory_bits(words: int, tagged: bool) -> int:
    """Total storage bits for ``words`` 64-bit words, with or without
    the tag."""
    return words * (WORD_BITS + (1 if tagged else 0))
