"""Fragmentation models for power-of-two segments (paper §4.2).

Two effects, both quantified by experiment E7:

* **Internal**: an object of ``s`` bytes occupies a ``2**ceil(log2 s)``
  byte segment.  For sizes uniform over a binade the expected
  granted/requested ratio is 4/3; the worst case is 2 (just past a
  power of two).  The paper notes this wastes little *physical* memory
  because frames are allocated page-by-page underneath.
* **External**: freed segments may not coalesce into usable sizes.  The
  paper prescribes a buddy system; :func:`churn` measures fragmentation
  under allocate/free churn with buddy coalescing, and
  :class:`NoCoalesceAllocator` provides the contrast (same interface,
  no buddy merging).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.mem.allocator import Block, BuddyAllocator, OutOfVirtualSpace, round_up_log2


def granted_bytes(requested: int) -> int:
    """Segment bytes granted for a request (power-of-two rounding)."""
    return 1 << round_up_log2(requested)


def rounding_overhead(sizes) -> float:
    """granted/requested over a population of object sizes."""
    requested = sum(sizes)
    granted = sum(granted_bytes(s) for s in sizes)
    if requested == 0:
        raise ValueError("empty size population")
    return granted / requested


#: expected granted/requested for sizes uniform within one binade
#: (E[2^(k+1)] / E[s], s ~ U(2^k, 2^(k+1)]) = 2 / 1.5
EXPECTED_UNIFORM_BINADE = 4 / 3

#: worst-case granted/requested (object one byte past a power of two)
WORST_CASE = 2.0


def physical_waste_fraction(requested: int, page_bytes: int = 4096) -> float:
    """Fraction of *physical* memory wasted when only touched pages are
    backed by frames: the paper's argument that internal fragmentation
    costs address space, not DRAM.  The object touches all its bytes;
    only the final partial page of the object is physical waste."""
    if requested <= 0:
        raise ValueError("requested must be positive")
    pages = -(-requested // page_bytes)
    return (pages * page_bytes - requested) / (pages * page_bytes)


class NoCoalesceAllocator:
    """A first-fit power-of-two allocator *without* buddy merging —
    the strawman §4.2's buddy recommendation is measured against.

    Free blocks are kept per order and never merged, so long-running
    churn shatters the arena.  Interface mirrors
    :class:`~repro.mem.allocator.BuddyAllocator` where E7 needs it.
    """

    def __init__(self, base: int, order: int, min_order: int = 0):
        self.base = base
        self.order = order
        self.min_order = min_order
        self._free: dict[int, list[int]] = {k: [] for k in range(min_order, order + 1)}
        self._free[order].append(base)
        self._allocated: dict[int, int] = {}

    @property
    def total_bytes(self) -> int:
        return 1 << self.order

    @property
    def free_bytes(self) -> int:
        return sum((1 << k) * len(v) for k, v in self._free.items())

    def largest_free_order(self) -> int | None:
        for k in range(self.order, self.min_order - 1, -1):
            if self._free[k]:
                return k
        return None

    def external_fragmentation(self) -> float:
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - (1 << self.largest_free_order()) / free

    def allocate(self, nbytes: int) -> Block:
        want = max(round_up_log2(nbytes), self.min_order)
        k = want
        while k <= self.order and not self._free[k]:
            k += 1
        if k > self.order:
            raise OutOfVirtualSpace(f"no free block of 2**{want} bytes")
        base = self._free[k].pop()
        # split down, but the upper halves go on free lists and are
        # never rejoined — the whole point of this strawman
        while k > want:
            k -= 1
            self._free[k].append(base + (1 << k))
        self._allocated[base] = want
        return Block(base, want)

    def free(self, block: Block) -> None:
        order = self._allocated.pop(block.base, None)
        if order is None or order != block.order:
            raise ValueError(f"block not allocated: {block}")
        self._free[order].append(block.base)


@dataclass
class ChurnResult:
    """Outcome of one churn run."""

    allocations: int
    failures: int                 #: allocations refused for lack of space
    final_fragmentation: float    #: external fragmentation at the end
    peak_fragmentation: float
    mean_fragmentation: float


def churn(allocator, steps: int = 2000, max_bytes: int = 4096,
          live_target: int = 64, seed: int = 0, drain: bool = True) -> ChurnResult:
    """Random allocate/free churn against any allocator with the
    buddy-style interface.  Sizes are log-uniform in [1, max_bytes].

    With ``drain=True`` (default) all live blocks are freed at the end
    before ``final_fragmentation`` is read, so the final number isolates
    what the allocator *cannot recover* — a buddy system coalesces back
    to one block; a non-coalescing allocator stays shattered.
    """
    rng = random.Random(seed)
    live: list[Block] = []
    failures = 0
    allocations = 0
    frag_series = []
    for _ in range(steps):
        want_alloc = len(live) < live_target or rng.random() < 0.5
        if want_alloc:
            size = 1 << rng.randrange(0, round_up_log2(max_bytes) + 1)
            size = max(1, size - rng.randrange(0, max(size // 2, 1)))
            allocations += 1
            try:
                live.append(allocator.allocate(size))
            except OutOfVirtualSpace:
                failures += 1
        elif live:
            allocator.free(live.pop(rng.randrange(len(live))))
        frag_series.append(allocator.external_fragmentation())
    if drain:
        for block in live:
            allocator.free(block)
    return ChurnResult(
        allocations=allocations,
        failures=failures,
        final_fragmentation=allocator.external_fragmentation() if drain
        else frag_series[-1],
        peak_fragmentation=max(frag_series),
        mean_fragmentation=sum(frag_series) / len(frag_series),
    )


def compare_buddy_vs_nocoalesce(order: int = 16, steps: int = 4000,
                                seed: int = 0) -> dict[str, ChurnResult]:
    """E7's headline: identical churn — including occasional requests a
    quarter the size of the arena — on a buddy allocator and on the
    no-coalesce strawman."""
    max_bytes = 1 << (order - 2)
    buddy = BuddyAllocator(base=0, order=order)
    naive = NoCoalesceAllocator(base=0, order=order)
    return {
        "buddy": churn(buddy, steps=steps, max_bytes=max_bytes,
                       live_target=16, seed=seed),
        "no-coalesce": churn(naive, steps=steps, max_bytes=max_bytes,
                             live_target=16, seed=seed),
    }
