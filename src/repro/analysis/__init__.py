"""Closed-form and measured models for §4's cost claims."""

from repro.analysis.addrspace import (
    gc_interval_for_headroom,
    lifetime_table,
    paper_judgement,
    time_to_exhaustion,
)
from repro.analysis.fragmentation import (
    EXPECTED_UNIFORM_BINADE,
    WORST_CASE,
    ChurnResult,
    NoCoalesceAllocator,
    churn,
    compare_buddy_vs_nocoalesce,
    granted_bytes,
    physical_waste_fraction,
    rounding_overhead,
)
from repro.analysis.overhead import (
    HARDWARE_INVENTORY,
    HardwareInventory,
    address_bits_lost,
    address_space_shrink_factor,
    addressable_bytes,
    memory_bits,
    sharing_entries_guarded,
    sharing_entries_paged,
    tag_overhead,
)

__all__ = [
    "gc_interval_for_headroom",
    "lifetime_table",
    "paper_judgement",
    "time_to_exhaustion",
    "EXPECTED_UNIFORM_BINADE",
    "WORST_CASE",
    "ChurnResult",
    "NoCoalesceAllocator",
    "churn",
    "compare_buddy_vs_nocoalesce",
    "granted_bytes",
    "physical_waste_fraction",
    "rounding_overhead",
    "HARDWARE_INVENTORY",
    "HardwareInventory",
    "address_bits_lost",
    "address_space_shrink_factor",
    "addressable_bytes",
    "memory_bits",
    "sharing_entries_guarded",
    "sharing_entries_paged",
    "tag_overhead",
]
