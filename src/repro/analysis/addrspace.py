"""Address-space lifetime arithmetic (paper §4.3).

"Without enforced indirection, address space is allocated 'for all
time', requiring the system software to periodically garbage collect
the virtual address space."  How urgent is that?  This module puts
numbers behind the sentence: at a given allocation rate, how long until
a 54-bit space (or a node's partition of it) is exhausted, and how much
headroom GC buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import ADDRESS_SPACE_BYTES

#: seconds per year, for the lifetime tables
SECONDS_PER_YEAR = 365 * 24 * 3600


@dataclass(frozen=True, slots=True)
class LifetimeRow:
    allocation_rate_bytes_per_s: float
    space_bytes: int
    seconds_to_exhaustion: float

    @property
    def years_to_exhaustion(self) -> float:
        return self.seconds_to_exhaustion / SECONDS_PER_YEAR


def time_to_exhaustion(allocation_rate_bytes_per_s: float,
                       space_bytes: int = ADDRESS_SPACE_BYTES) -> LifetimeRow:
    """How long before a never-recycled space runs out."""
    if allocation_rate_bytes_per_s <= 0:
        raise ValueError("allocation rate must be positive")
    return LifetimeRow(
        allocation_rate_bytes_per_s=allocation_rate_bytes_per_s,
        space_bytes=space_bytes,
        seconds_to_exhaustion=space_bytes / allocation_rate_bytes_per_s,
    )


def lifetime_table(rates=(1e6, 1e9, 1e12),
                   space_bytes: int = ADDRESS_SPACE_BYTES) -> list[LifetimeRow]:
    """Exhaustion horizons at 1 MB/s, 1 GB/s and 1 TB/s of *address
    space* consumption (allocations, not traffic)."""
    return [time_to_exhaustion(rate, space_bytes) for rate in rates]


def gc_interval_for_headroom(allocation_rate_bytes_per_s: float,
                             live_fraction: float,
                             space_bytes: int = ADDRESS_SPACE_BYTES) -> float:
    """Seconds between collections that keep the space from filling,
    assuming each GC reclaims the dead fraction of what was allocated.

    With ``live_fraction`` of allocations surviving forever, only the
    dead complement is reclaimable; the sustainable horizon stretches by
    1/(live_fraction) — and becomes infinite only when nothing survives.
    """
    if not 0 <= live_fraction <= 1:
        raise ValueError("live_fraction must be in [0, 1]")
    if live_fraction == 0:
        return float("inf")
    effective_rate = allocation_rate_bytes_per_s * live_fraction
    return space_bytes / effective_rate


def paper_judgement() -> str:
    """§4.2's verdict, checkable: 1.8e16 bytes 'should be sufficient
    for the immediate future' — even 1 GB/s of permanent allocation
    takes over half a year to exhaust one node's half-petabyte-scale
    partition, and centuries for the full space."""
    full = time_to_exhaustion(1e9).years_to_exhaustion
    return (f"at 1 GB/s of never-freed allocation the 2^54 space lasts "
            f"{full:.1f} years")
