"""Campaign driver: generate → diff (both axes) → shrink → report.

``run_case`` is the single-case entry point the regression tests reuse;
``run_campaign`` is what the CLI and ``tools/run_fuzz.py`` drive.  Case
seeds are ``campaign_seed * 1_000_000 + index``, so any failing case is
replayable from the two integers the report prints.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.fuzz.differ import Divergence, diff_against_reference
from repro.fuzz.generator import (REFERENCE_SCENARIOS, FuzzCase,
                                  generate_case)
from repro.fuzz.scenarios import (diff_cache_axes, diff_fast_path_axes,
                                  diff_parallel_axis, diff_replay_axis,
                                  diff_superblock_axes)
from repro.fuzz.shrink import emit_regression_test, shrink_case


def run_case(case: FuzzCase) -> list[Divergence]:
    """Every divergence ``case`` produces: the decode-cache,
    data-fast-path, superblock and snapshot-replay axes always run; the
    parallel-vs-lockstep axis runs for the self-contained scenarios a
    mesh can host (``PARALLEL_SCENARIOS``); the chip-vs-reference axis
    runs for the scenarios the flat-memory reference can execute (no
    paging, no kernel, no mesh).  An empty list is the pass verdict
    the regression tests assert."""
    divergences = []
    d = diff_cache_axes(case)
    if d is not None:
        divergences.append(d)
    d = diff_fast_path_axes(case)
    if d is not None:
        divergences.append(d)
    d = diff_superblock_axes(case)
    if d is not None:
        divergences.append(d)
    d = diff_replay_axis(case)
    if d is not None:
        divergences.append(d)
    d = diff_parallel_axis(case)
    if d is not None:
        divergences.append(d)
    if case.scenario in REFERENCE_SCENARIOS:
        d = diff_against_reference(case)
        if d is not None:
            divergences.append(d)
    return divergences


@dataclass
class Failure:
    """One divergence plus its shrunk repro (when shrinking ran)."""

    divergence: Divergence
    shrunk: FuzzCase | None = None

    @property
    def regression_test(self) -> str | None:
        if self.shrunk is None:
            return None
        return emit_regression_test(self.shrunk, str(self.divergence))


@dataclass
class FuzzReport:
    campaign_seed: int
    cases: int = 0
    scenarios: Counter = field(default_factory=Counter)
    failures: list[Failure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [f"fuzz campaign seed={self.campaign_seed}: "
                 f"{self.cases} cases, {len(self.failures)} divergences"]
        lines += [f"  {name}: {count}"
                  for name, count in sorted(self.scenarios.items())]
        for failure in self.failures:
            lines.append(f"  FAIL {failure.divergence}")
        return "\n".join(lines)


def _same_failure(original: Divergence) -> Callable[[FuzzCase], bool]:
    """The shrinker's predicate: a candidate reproduces when it yields
    a divergence on the same axis with the same kind."""
    def reproduces(candidate: FuzzCase) -> bool:
        return any(d.axis == original.axis and d.kind == original.kind
                   for d in run_case(candidate))
    return reproduces


def run_campaign(seed: int = 0, cases: int = 200,
                 scenario: str | None = None, shrink: bool = True,
                 log: Callable[[str], None] | None = None) -> FuzzReport:
    """Run ``cases`` generated cases through both diff axes.

    Fully deterministic in ``(seed, cases, scenario)``; pass ``log``
    (e.g. ``print``) for progress and failure reporting as it happens.
    """
    report = FuzzReport(campaign_seed=seed)
    base = seed * 1_000_000
    for index in range(cases):
        case = generate_case(base + index, scenario)
        report.cases += 1
        report.scenarios[case.scenario] += 1
        for divergence in run_case(case):
            if log:
                log(f"DIVERGENCE {divergence}")
            failure = Failure(divergence)
            if shrink:
                failure.shrunk = shrink_case(case, _same_failure(divergence))
                if log:
                    log(f"shrunk to {len(failure.shrunk.source.splitlines())}"
                        f" lines:\n{failure.regression_test}")
            report.failures.append(failure)
        if log and (index + 1) % 50 == 0:
            log(f"... {index + 1}/{cases} cases, "
                f"{len(report.failures)} divergences")
    return report


def write_failure_artifacts(report: FuzzReport, directory) -> list:
    """One directory per failure with everything needed to debug it
    offline — what CI uploads as an artifact when a campaign goes red:

    * ``dump.json`` — the replayable crash dump
      (:func:`repro.persist.replay.write_crash_dump`: case, divergence,
      embedded snapshot); ``repro replay`` takes it directly;
    * ``program.s`` — the generated program, as assembly;
    * ``repro.py`` — a ready-to-commit regression test (from the shrunk
      case when shrinking ran, else the original);
    * ``snapshot.snap`` — the failing machine image as a standalone
      snapshot file, when the divergence captured one (restorable with
      ``repro restore`` for post-mortem inspection);
    * ``flight.json`` — the misbehaving chip's flight-recorder dump
      (the last few hundred trace events before the divergence;
      ``repro.obs.load_flight`` decodes it), when captured.

    Returns the per-failure directories created.
    """
    import json
    from pathlib import Path

    from repro.persist.replay import write_crash_dump

    directory = Path(directory)
    created = []
    for number, failure in enumerate(report.failures):
        divergence = failure.divergence
        case = failure.shrunk or divergence.case
        slug = f"{number:03d}-{divergence.axis}-{case.scenario}"
        crash_dir = directory / slug
        crash_dir.mkdir(parents=True, exist_ok=True)
        write_crash_dump(divergence, crash_dir / "dump.json")
        (crash_dir / "program.s").write_text(case.source + "\n",
                                             encoding="utf-8")
        (crash_dir / "repro.py").write_text(
            emit_regression_test(case, str(divergence)) + "\n",
            encoding="utf-8")
        if divergence.snapshot is not None:
            (crash_dir / "snapshot.snap").write_bytes(divergence.snapshot)
        if divergence.flight is not None:
            (crash_dir / "flight.json").write_text(
                json.dumps(divergence.flight, indent=2) + "\n",
                encoding="utf-8")
        created.append(crash_dir)
    return created
