"""Differential fuzzing of the MAP simulator.

Two independent oracles keep the chip honest:

* the :class:`~repro.machine.reference.ReferenceInterpreter`, a
  flat-memory sequential model run in lockstep with the chip;
* the chip itself with ``decode_cache=False``,
  ``data_fast_path=False`` or ``superblock=False`` — any observable
  difference from the fast-path configuration is a coherence bug;
* the chip *restored from a snapshot* mid-run
  (:func:`~repro.fuzz.scenarios.diff_replay_axis`) — a round-trip
  through the ``repro.persist`` container must change nothing, which is
  the deterministic-replay guarantee policed case by case;
* the same case on a two-node mesh under the sharded engine
  (:func:`~repro.fuzz.scenarios.diff_parallel_axis`) — ``workers=2``
  must be bit-identical to the lockstep engine, mid-run snapshot
  digest included.

See ``docs/FUZZING.md`` for the scenario space and the invalidation
contract this subsystem polices.
"""

from repro.fuzz.differ import Divergence, diff_against_reference
from repro.fuzz.generator import (REFERENCE_SCENARIOS, SCENARIOS, FuzzCase,
                                  generate_case)
from repro.fuzz.runner import (Failure, FuzzReport, run_campaign, run_case,
                               write_failure_artifacts)
from repro.fuzz.scenarios import (PARALLEL_SCENARIOS, diff_cache_axes,
                                  diff_fast_path_axes, diff_parallel_axis,
                                  diff_replay_axis, diff_superblock_axes,
                                  run_scenario)
from repro.fuzz.shrink import emit_regression_test, shrink_case

__all__ = [
    "Divergence",
    "Failure",
    "FuzzCase",
    "FuzzReport",
    "PARALLEL_SCENARIOS",
    "REFERENCE_SCENARIOS",
    "SCENARIOS",
    "diff_against_reference",
    "diff_cache_axes",
    "diff_fast_path_axes",
    "diff_parallel_axis",
    "diff_replay_axis",
    "diff_superblock_axes",
    "emit_regression_test",
    "generate_case",
    "run_campaign",
    "run_case",
    "run_scenario",
    "shrink_case",
    "write_failure_artifacts",
]
