"""Scenario runners and the fast-path diff axes.

Every scenario runs the same case under pairs of fast-path settings —
``decode_cache`` on/off, ``data_fast_path`` (the access-check and
translation-line memos) on/off, and ``superblock`` (bulk straight-line
execution) on/off — and each pair must produce *identical* digests:
thread state, register files, fault sequence, memory image and cycle
count (all the knobs are documented as timing-transparent, so even
``now`` must match).  The scenarios are chosen to stress exactly the
paths that can leave a stale decoded bundle, a stale memoised
translation, or a stale superblock node behind:

==============  ======================================================
plain           straight ISA soup (control: no mutation at all)
self_modify     the program stores over its own next iteration
enter_call      ENTER-pointer call/return (decoded gate bundles)
unmap_remap     kernel unmaps the code page mid-run, remaps + rewrites
swap            code and data pages take a backing-store round-trip
gc_sweep        a GC collection plus ``sweep_revoke`` over live memory
loader_reuse    a freed code segment's range is reloaded with new code
remote_store    another node patches this node's code through the mesh
==============  ======================================================

The third axis — **replay** (:func:`diff_replay_axis`) — runs every
scenario a second time with a snapshot/restore round-trip spliced in at
the scenario's mutation point: the machine is captured through the real
container codec (:mod:`repro.persist.snapshot` — canonical JSON, zlib,
CRC and all), a *fresh* machine is rebuilt from the bytes, and the run
finishes there.  The digests must still be identical, under both
fast-path settings — that is the deterministic-replay guarantee
``Simulation.save``/``restore`` advertises, policed case by case.
"""

from __future__ import annotations

from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord
from repro.machine.assembler import assemble
from repro.machine.chip import ChipConfig, MAPChip
from repro.machine.multicomputer import Multicomputer
from repro.machine.network import MeshShape
from repro.machine.thread import Thread
from repro.machine.verifier import InvariantViolation, SecurityMonitor
from repro.runtime.gc import AddressSpaceGC, sweep_revoke
from repro.runtime.swap import SwapManager
from repro.sim.api import Simulation

from repro.fuzz.differ import Divergence, setup_chip
from repro.fuzz.generator import DATA_BYTES, FuzzCase

#: generated programs finish within a few thousand cycles; this bound
#: only matters for broken shrink candidates (deleted loop decrements),
#: so it is kept tight enough that burning it stays cheap
MAX_CYCLES = 20_000

#: where the replay axis splices its snapshot into scenarios that have
#: no mutation point of their own (plain / self_modify / enter_call)
ROUNDTRIP_AFTER = 40


# -- the replay-axis splice ------------------------------------------------
#
# Each helper captures a machine through the real container codec and
# rebuilds a fresh one from the bytes — the same path a snapshot file
# takes through disk, minus the filesystem.  Returning the blob lets a
# divergence carry the exact restorable image that misbehaved.

def _roundtrip_bare_chip(chip: MAPChip) -> tuple[MAPChip, bytes]:
    from repro.persist.snapshot import decode_snapshot, encode_snapshot
    from repro.persist.state import capture_chip, restore_chip_state

    blob = encode_snapshot({"kind": "chip", "chip": capture_chip(chip)})
    payload = decode_snapshot(blob)
    fresh = MAPChip(ChipConfig(**payload["chip"]["config"]))
    restore_chip_state(fresh, payload["chip"])
    return fresh, blob


def _roundtrip_sim(sim: Simulation) -> tuple[Simulation, bytes]:
    from repro.persist.image import capture_simulation, restore_simulation
    from repro.persist.snapshot import decode_snapshot, encode_snapshot

    blob = encode_snapshot(capture_simulation(sim))
    return restore_simulation(decode_snapshot(blob)), blob


def _roundtrip_mc(mc: Multicomputer) -> tuple[Multicomputer, bytes]:
    from repro.persist.image import (capture_multicomputer,
                                     restore_multicomputer)
    from repro.persist.snapshot import decode_snapshot, encode_snapshot

    blob = encode_snapshot(capture_multicomputer(mc))
    return restore_multicomputer(decode_snapshot(blob)), blob


def _rebind(chip: MAPChip, thread: Thread) -> tuple[Thread, SecurityMonitor]:
    """After a round-trip, object identity is gone: re-resolve the
    thread by tid on the restored chip and attach a fresh monitor
    (monitors are code, not state — ``note_spawn`` re-baselines I1 at
    the thread's *current* privilege, which is what birth privilege
    means on a restored machine)."""
    from repro.persist.state import threads_by_tid

    thread = threads_by_tid(chip)[thread.tid]
    monitor = SecurityMonitor(chip)
    monitor.note_spawn(thread)
    return thread, monitor


# -- digest helpers -------------------------------------------------------

def _digest_thread(thread: Thread) -> dict:
    return {
        "state": thread.state.name,
        "bundles": thread.stats.bundles,
        "fault": (type(thread.fault.cause).__name__
                  if thread.fault is not None else None),
        "regs": [(w.value, w.tag)
                 for w in (thread.regs.read(i) for i in range(16))],
        # repr, not the float: NaN must compare equal to itself here
        "fregs": [repr(thread.regs.read_f(i)) for i in range(16)],
    }


def _segment_words(chip: MAPChip, base: int, nbytes: int) -> list:
    """The segment's words as compare-friendly tuples; pages the kernel
    unmapped (swap, GC) digest as the string ``"unmapped"``."""
    table = chip.page_table
    out: list = []
    for off in range(0, nbytes, 8):
        vaddr = base + off
        if not table.is_mapped(table.page_of(vaddr)):
            out.append("unmapped")
        else:
            word = chip.memory.load_word(table.walk(vaddr))
            out.append((word.value, word.tag))
    return out


def _digest_chip(chip: MAPChip, threads: list[Thread],
                 segments: list[tuple[int, int]],
                 monitors: list[SecurityMonitor]) -> dict:
    digest = {
        "cycles": chip.now,
        "threads": [_digest_thread(t) for t in threads],
        "faults": [type(r.cause).__name__ for r in chip.fault_log],
        "memory": [_segment_words(chip, base, nbytes)
                   for base, nbytes in segments],
        "invariant": None,
        # side channel, like "_snapshot": the flight recorder rides
        # along for crash artifacts but is popped before any comparison
        "_flight": chip.obs.flight.dump(),
    }
    for monitor in monitors:
        try:
            monitor.check_all()
        except InvariantViolation as e:
            digest["invariant"] = str(e)
            break
    return digest


# -- the runners ----------------------------------------------------------

def _run_program_scenario(case: FuzzCase, decode_cache: bool,
                          data_fast_path: bool = True,
                          superblock: bool = True,
                          roundtrip: bool = False) -> dict:
    """plain / self_modify / enter_call: a bare chip, run to the end."""
    chip, thread, entry, data = setup_chip(case.source,
                                           decode_cache=decode_cache,
                                           data_fast_path=data_fast_path,
                                           superblock=superblock,
                                           fregs=case.fregs)
    monitor = SecurityMonitor(chip)
    monitor.note_spawn(thread)
    snapshot = None
    budget = MAX_CYCLES
    if roundtrip:
        budget -= chip.run(ROUNDTRIP_AFTER).cycles
        chip, snapshot = _roundtrip_bare_chip(chip)
        thread, monitor = _rebind(chip, thread)
    chip.run(budget)
    digest = _digest_chip(chip, [thread],
                          [(data.segment_base, DATA_BYTES)], [monitor])
    if snapshot is not None:
        digest["_snapshot"] = snapshot
    return digest


def _make_sim(case: FuzzCase, decode_cache: bool, data_fast_path: bool,
              superblock: bool
              ) -> tuple[Simulation, Thread, SecurityMonitor, int, int]:
    """A kernel-backed single-node machine with the case loaded: data
    segment in r8, stack in r14 (kernel convention)."""
    sim = Simulation(memory_bytes=2 * 1024 * 1024,
                     decode_cache=decode_cache,
                     data_fast_path=data_fast_path,
                     superblock=superblock)
    data = sim.allocate(DATA_BYTES, eager=True)
    entry = sim.load(case.source)
    monitor = SecurityMonitor(sim.chip)
    thread = sim.spawn(entry, regs={8: data.word})
    monitor.note_spawn(thread)
    for index, value in case.fregs.items():
        thread.regs.write_f(index, value)
    return sim, thread, monitor, entry.segment_base, data.segment_base


def _run_unmap_remap(case: FuzzCase, decode_cache: bool,
                     data_fast_path: bool = True,
                     superblock: bool = True,
                     roundtrip: bool = False) -> dict:
    """Mid-run, the code page is unmapped, remapped, and rewritten with
    a carpet of HALT bundles — the decoded old program must not run on."""
    sim, thread, monitor, code_base, data_base = _make_sim(
        case, decode_cache, data_fast_path, superblock)
    sim.step(case.meta["mutate_after"])
    table = sim.chip.page_table
    program_bytes = assemble(case.source).size_bytes
    table.unmap(table.page_of(code_base))
    table.ensure_mapped(code_base, program_bytes)
    halt_words = assemble("halt").encode()  # one full bundle: halt|nop|nop
    for i in range(program_bytes // 8):
        sim.chip.store_runtime_word(table.walk(code_base + i * 8),
                                    halt_words[i % 3])
    snapshot = None
    if roundtrip:
        sim, snapshot = _roundtrip_sim(sim)
        thread, monitor = _rebind(sim.chip, thread)
    sim.run(MAX_CYCLES)
    digest = _digest_chip(sim.chip, [thread],
                          [(data_base, DATA_BYTES)], [monitor])
    if snapshot is not None:
        digest["_snapshot"] = snapshot
    return digest


def _run_swap(case: FuzzCase, decode_cache: bool,
              data_fast_path: bool = True,
              superblock: bool = True,
              roundtrip: bool = False) -> dict:
    """Mid-run, the code and data pages are forced out to the backing
    store; the demand-pager brings them back on the next touch."""
    sim, thread, monitor, code_base, data_base = _make_sim(
        case, decode_cache, data_fast_path, superblock)
    swap = SwapManager(sim.kernel, swap_cycles=50)
    sim.step(case.meta["mutate_after"])
    table = sim.chip.page_table
    swap.swap_out(table.page_of(code_base))
    swap.swap_out(table.page_of(data_base))
    snapshot = None
    if roundtrip:
        # the snapshot lands while both pages sit in the backing store:
        # the restored machine must fault them back in identically
        sim, snapshot = _roundtrip_sim(sim)
        thread, monitor = _rebind(sim.chip, thread)
    sim.run(MAX_CYCLES)
    digest = _digest_chip(sim.chip, [thread],
                          [(data_base, DATA_BYTES)], [monitor])
    if snapshot is not None:
        digest["_snapshot"] = snapshot
    return digest


def _run_gc_sweep(case: FuzzCase, decode_cache: bool,
                  data_fast_path: bool = True,
                  superblock: bool = True,
                  roundtrip: bool = False) -> dict:
    """Mid-run, a full collection frees an unreachable decoy and a
    ``sweep_revoke`` zeroes every copy of a victim pointer — both write
    below translation, which is exactly where staleness hides."""
    sim, thread, monitor, code_base, data_base = _make_sim(
        case, decode_cache, data_fast_path, superblock)
    victim = sim.allocate(256, eager=True)
    sim.allocate(512, eager=True)  # the decoy: unreachable, GC frees it
    # park the victim pointer in live data so the sweep has work to do
    table = sim.chip.page_table
    sim.chip.memory.store_word(table.walk(data_base + DATA_BYTES - 8),
                               victim.word)
    sim.step(case.meta["mutate_after"])
    AddressSpaceGC(sim.kernel).collect(extra_roots=[victim])
    sweep_revoke(sim.kernel, victim)
    snapshot = None
    if roundtrip:
        sim, snapshot = _roundtrip_sim(sim)
        thread, monitor = _rebind(sim.chip, thread)
    sim.run(MAX_CYCLES)
    digest = _digest_chip(sim.chip, [thread],
                          [(data_base, DATA_BYTES)], [monitor])
    if snapshot is not None:
        digest["_snapshot"] = snapshot
    return digest


def _run_loader_reuse(case: FuzzCase, decode_cache: bool,
                      data_fast_path: bool = True,
                      superblock: bool = True,
                      roundtrip: bool = False) -> dict:
    """Run program A, free its code segment, load program B over the
    recycled range, run that too — B must never execute A's bundles."""
    sim = Simulation(memory_bytes=2 * 1024 * 1024,
                     decode_cache=decode_cache,
                     data_fast_path=data_fast_path,
                     superblock=superblock)
    data = sim.allocate(DATA_BYTES, eager=True)
    data_base = data.segment_base
    monitor = SecurityMonitor(sim.chip)
    entry_a = sim.load(case.source)
    thread_a = sim.spawn(entry_a, regs={8: data.word})
    monitor.note_spawn(thread_a)
    sim.run(MAX_CYCLES)
    sim.kernel.free_segment(entry_a)
    snapshot = None
    if roundtrip:
        # snapshot straddles the loader boundary: program A is done,
        # its range is free, program B is loaded on the *restored* sim
        sim, snapshot = _roundtrip_sim(sim)
        thread_a, monitor = _rebind(sim.chip, thread_a)
        data = sim.kernel.segments[data_base].pointer
    entry_b = sim.load(case.meta["source_b"])
    thread_b = sim.spawn(entry_b, regs={8: data.word})
    monitor.note_spawn(thread_b)
    sim.run(MAX_CYCLES)
    digest = _digest_chip(sim.chip, [thread_a, thread_b],
                          [(data_base, DATA_BYTES)], [monitor])
    if snapshot is not None:
        digest["_snapshot"] = snapshot
    return digest


def _run_remote_store(case: FuzzCase, decode_cache: bool,
                      data_fast_path: bool = True,
                      superblock: bool = True,
                      roundtrip: bool = False) -> dict:
    """Two mesh nodes; node 1 patches node 0's code through the network
    mid-run, flipping a ``movi`` immediate the loop keeps executing.
    (Superblocks self-disable on meshed chips, so this scenario also
    proves the knob is inert — not merely parity-clean — with a router
    attached.)"""
    mc = Multicomputer(MeshShape(2, 1, 1),
                       chip_config=ChipConfig(memory_bytes=2 * 1024 * 1024,
                                              decode_cache=decode_cache,
                                              data_fast_path=data_fast_path,
                                              superblock=superblock),
                       arena_order=24)
    data = mc.allocate_on(0, DATA_BYTES, eager=True)
    entry = mc.load_on(0, case.source)
    monitors = [SecurityMonitor(chip) for chip in mc.chips]
    thread = mc.spawn_on(0, entry, regs={8: data.word})
    monitors[0].note_spawn(thread)
    for index, value in case.fregs.items():
        thread.regs.write_f(index, value)
    mc.run(max_cycles=case.meta["mutate_after"])
    patch_addr = entry.segment_base + case.meta["patch_offset"]
    mc.chips[1].access_memory(
        patch_addr, write=True, now=mc.chips[1].now,
        value=TaggedWord.integer(case.meta["patch_word"]))
    snapshot = None
    if roundtrip:
        # whole-machine round-trip: both nodes plus the mesh's port
        # timing come back from the bytes
        mc, snapshot = _roundtrip_mc(mc)
        thread, monitor0 = _rebind(mc.chips[0], thread)
        monitors = [monitor0] + [SecurityMonitor(chip)
                                 for chip in mc.chips[1:]]
    mc.run(max_cycles=MAX_CYCLES)
    digest = _digest_chip(mc.chips[0], [thread],
                          [(data.segment_base, DATA_BYTES)], monitors)
    digest["cycles"] = max(chip.now for chip in mc.chips)
    digest["faults"] = [[type(r.cause).__name__ for r in chip.fault_log]
                        for chip in mc.chips]
    if snapshot is not None:
        digest["_snapshot"] = snapshot
    return digest


_RUNNERS = {
    "plain": _run_program_scenario,
    "self_modify": _run_program_scenario,
    "enter_call": _run_program_scenario,
    "unmap_remap": _run_unmap_remap,
    "swap": _run_swap,
    "gc_sweep": _run_gc_sweep,
    "loader_reuse": _run_loader_reuse,
    "remote_store": _run_remote_store,
}


def run_scenario(case: FuzzCase, decode_cache: bool,
                 data_fast_path: bool = True,
                 superblock: bool = True,
                 roundtrip: bool = False) -> dict:
    """One digest of ``case`` under the given fast-path settings.  With
    ``roundtrip`` the machine takes a snapshot/restore round-trip at
    the scenario's mutation point, and the digest carries the container
    bytes under the ``"_snapshot"`` side-channel key (popped before any
    comparison)."""
    return _RUNNERS[case.scenario](case, decode_cache, data_fast_path,
                                   superblock, roundtrip=roundtrip)


def _first_difference(on: dict, off: dict, knob: str) -> str:
    for key in on:
        if on[key] != off[key]:
            return f"{key}: {knob}-on={on[key]!r} {knob}-off={off[key]!r}"
    return "digests differ"


def _diff_knob(case: FuzzCase, axis: str, knob: str,
               run) -> Divergence | None:
    """Shared on-vs-off comparison: ``run(enabled)`` digests the case
    with the knob in the given position; None means the two runs were
    architecturally *and* temporally identical."""
    try:
        on = run(True)
    except Exception as e:
        return Divergence(axis, case, "crash",
                          f"{knob}-on run crashed: {type(e).__name__}: {e}")
    try:
        off = run(False)
    except Exception as e:
        return Divergence(axis, case, "crash",
                          f"{knob}-off run crashed: {type(e).__name__}: {e}")
    on_flight = on.pop("_flight", None)
    off_flight = off.pop("_flight", None)
    if on["invariant"] is not None:
        return Divergence(axis, case, "invariant", on["invariant"],
                          flight=on_flight)
    if off["invariant"] is not None:
        return Divergence(axis, case, "invariant", off["invariant"],
                          flight=off_flight)
    if on != off:
        return Divergence(axis, case, "state",
                          _first_difference(on, off, knob),
                          flight=on_flight)
    return None


def diff_cache_axes(case: FuzzCase) -> Divergence | None:
    """Run ``case`` with the decode cache on and off (data fast path on
    in both); None means identical digests."""
    return _diff_knob(case, "cache-on-vs-off", "cache",
                      lambda enabled: run_scenario(case, enabled))


def diff_fast_path_axes(case: FuzzCase) -> Divergence | None:
    """Run ``case`` with the data fast path (access-check and
    translation-line memos) on and off (decode cache on in both); None
    means identical digests — the memos changed neither a single
    architectural word nor a single cycle."""
    return _diff_knob(
        case, "fastpath-on-vs-off", "fastpath",
        lambda enabled: run_scenario(case, True, data_fast_path=enabled))


def diff_superblock_axes(case: FuzzCase) -> Divergence | None:
    """Run ``case`` with superblock turbo execution on and off (decode
    cache and data fast path on in both); None means identical digests —
    bulk straight-line dispatch changed neither a single architectural
    word nor a single cycle nor a single counter-visible event."""
    return _diff_knob(
        case, "superblock-on-vs-off", "superblock",
        lambda enabled: run_scenario(case, True, superblock=enabled))


def diff_replay_axis(case: FuzzCase) -> Divergence | None:
    """Run ``case`` uninterrupted and with a snapshot/restore
    round-trip spliced in at the mutation point — under *both*
    fast-path settings — and require bit-identical digests (registers,
    memory, fault sequence, cycle count).  On a mismatch the returned
    divergence carries the snapshot bytes, so the failing image ships
    inside the crash dump, restorable for post-mortem."""
    axis = "replay-roundtrip"
    for fast_path in (True, False):
        label = "fastpath-on" if fast_path else "fastpath-off"
        try:
            base = run_scenario(case, True, data_fast_path=fast_path)
        except Exception as e:
            return Divergence(axis, case, "crash",
                              f"uninterrupted {label} run crashed: "
                              f"{type(e).__name__}: {e}")
        try:
            replayed = run_scenario(case, True, data_fast_path=fast_path,
                                    roundtrip=True)
        except Exception as e:
            return Divergence(axis, case, "crash",
                              f"replayed {label} run crashed: "
                              f"{type(e).__name__}: {e}")
        snapshot = replayed.pop("_snapshot", None)
        base.pop("_flight", None)
        flight = replayed.pop("_flight", None)
        if base["invariant"] is not None:
            return Divergence(axis, case, "invariant", base["invariant"])
        if replayed["invariant"] is not None:
            return Divergence(axis, case, "invariant", replayed["invariant"],
                              snapshot=snapshot, flight=flight)
        if base != replayed:
            for key in base:
                if base[key] != replayed[key]:
                    detail = (f"{key} ({label}): uninterrupted="
                              f"{base[key]!r} replayed={replayed[key]!r}")
                    break
            else:
                detail = "digests differ"
            return Divergence(axis, case, "state", detail,
                              snapshot=snapshot, flight=flight)
    return None


# -- the parallel axis -----------------------------------------------------

#: scenarios the sharded axis can transplant onto a mesh: their sources
#: are self-contained given the bare-chip register convention (r8 data,
#: r15 a writable code alias) — no kernel choreography mid-run
PARALLEL_SCENARIOS = ("plain", "self_modify")


def _run_sharded_mesh(case: FuzzCase, workers: int) -> dict:
    """The case on a two-node mesh: one copy of the program per node,
    r8 pointing at a data segment homed on the *other* node so every
    access crosses the network, r15 a writable alias of the node's own
    code (the bare-chip register convention, transplanted).  With
    ``workers=1`` the lockstep engine runs it; with ``workers=2`` each
    node lives in its own OS process and the digest must not be able
    to tell.

    Capture points are symmetric on purpose: ``capture_state`` resets
    the functional memos on the live machine (the documented carve-out
    in ``repro.persist.state``), and the sharded engine captures once
    at worker warm-start, so the lockstep arm takes an explicit capture
    at the same point.  Both arms then capture at a window-aligned
    split, which doubles as the mid-run snapshot-digest comparison.
    """
    import hashlib

    from repro.persist.snapshot import encode_snapshot
    from repro.persist.state import threads_by_tid

    sim = Simulation(nodes=2, memory_bytes=2 * 1024 * 1024,
                     arena_order=24, workers=workers)
    try:
        datas = [sim.allocate(DATA_BYTES, node=node, eager=True)
                 for node in (0, 1)]
        tids = []
        for node in (0, 1):
            entry = sim.load(case.source, node=node)
            rw = GuardedPointer.make(Permission.READ_WRITE, entry.seglen,
                                     entry.address)
            thread = sim.spawn(entry, node=node, stack_bytes=0,
                               regs={8: datas[1 - node].word,
                                     15: rw.word})
            for index, value in case.fregs.items():
                thread.regs.write_f(index, value)
            tids.append(thread.tid)
        if workers == 1:
            sim.capture_state()  # parity with the warm-start capture
        budget = MAX_CYCLES
        budget -= sim.run(max_cycles=8 * sim.machine.window).cycles
        mid = hashlib.sha256(
            encode_snapshot(sim.capture_state())).hexdigest()
        sim.run(max_cycles=budget)
        counters = sim.snapshot()
        sim.sync_back()
        nodes = []
        for node, tid in enumerate(tids):
            chip = sim.chips[node]
            nodes.append(_digest_chip(
                chip, [threads_by_tid(chip)[tid]],
                [(datas[node].segment_base, DATA_BYTES)], []))
        return {
            "cycles": max(chip.now for chip in sim.chips),
            "mid_snapshot": mid,
            "nodes": nodes,
            "counters": counters,
            "invariant": None,
            "_flight": [d.pop("_flight") for d in nodes],
        }
    finally:
        sim.close()


def diff_parallel_axis(case: FuzzCase) -> Divergence | None:
    """Run ``case`` on a two-node mesh under the lockstep engine and
    again with ``workers=2`` — every node advanced in its own OS
    process — and require bit-identical digests: cycle counts,
    registers, memory, fault sequences, the merged counter snapshot,
    and a sha-256 of the full machine image captured at a
    window-aligned split mid-run.  This is the sharded engine's whole
    contract: the partition map must be unobservable."""
    if case.scenario not in PARALLEL_SCENARIOS:
        return None
    axis = "parallel-vs-lockstep"
    try:
        lockstep = _run_sharded_mesh(case, workers=1)
    except Exception as e:
        return Divergence(axis, case, "crash",
                          f"lockstep mesh run crashed: "
                          f"{type(e).__name__}: {e}")
    try:
        sharded = _run_sharded_mesh(case, workers=2)
    except Exception as e:
        return Divergence(axis, case, "crash",
                          f"2-worker mesh run crashed: "
                          f"{type(e).__name__}: {e}")
    lockstep.pop("_flight", None)
    flight = sharded.pop("_flight", None)
    if lockstep != sharded:
        for key in lockstep:
            if lockstep[key] != sharded[key]:
                detail = (f"{key}: lockstep={lockstep[key]!r} "
                          f"2-worker={sharded[key]!r}")
                break
        else:
            detail = "digests differ"
        return Divergence(axis, case, "state", detail, flight=flight)
    return None
