"""Seeded random program generation over the pointer-manipulation ISA.

Each :class:`FuzzCase` is fully determined by its seed: the program
text, the floating-point initial state and the scenario schedule (when
a mutation fires, which word gets patched) all come from one
``random.Random``.  That makes every case replayable from two integers
— the campaign seed and the case index — which is what the shrinker
and the emitted regression tests rely on.

Register conventions (shared with ``tests/machine/test_differential``):

========  =====================================================
r1–r7     scratch computation registers
r8        pointer to a read/write data segment (never clobbered)
r9–r11    derivation targets (LEA/LEAB/RESTRICT/SUBSEG results)
r12       bounded-loop counter
r13       ENTER pointer to the ``gate`` label (enter-call cases)
r14       return pointer (GETIP) / kernel-provided stack pointer
r15       read/write alias of the code segment (self-modify cases)
========  =====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.machine.assembler import assemble

#: every scenario the generator can emit
SCENARIOS = (
    "plain",          # straight-line / bounded-loop ISA soup
    "self_modify",    # the program patches its own next iteration
    "enter_call",     # call through an ENTER pointer and return
    "unmap_remap",    # kernel unmaps the code page, remaps with new code
    "swap",           # code and data pages take a swap round-trip
    "gc_sweep",       # GC collection plus a sweep-revoke mid-run
    "loader_reuse",   # free a code segment, reload over the same range
    "remote_store",   # another node patches this node's code via the mesh
)

#: scenarios the flat-memory reference interpreter can also execute
#: (no paging, no kernel, no mesh) — these run on both diff axes
REFERENCE_SCENARIOS = frozenset({"plain", "self_modify", "enter_call"})

DATA_BYTES = 4096


@dataclass
class FuzzCase:
    """One replayable differential-test case."""

    seed: int
    scenario: str
    source: str
    #: initial floating-point registers (both engines / both axes)
    fregs: dict[int, float] = field(default_factory=dict)
    #: scenario knobs: mutation cycle, patch offset/word, second program
    meta: dict = field(default_factory=dict)


def _int_word_hi(source: str) -> int:
    """High (opcode|rd) bits of a one-line bundle's integer-slot word —
    what a program must shift into place to forge that op's encoding."""
    return assemble(source).encode()[0].value >> 54


_MOVI_R5_HI = _int_word_hi("movi r5, 0")

_RRR = ("add", "sub", "mul", "and", "or", "xor", "slt", "seq")
_RRI = ("addi", "subi", "andi", "ori", "xori", "slti", "seqi")
_FP = ("fadd", "fsub", "fmul", "fdiv")


def _body_lines(rng: random.Random, n: int, risky: bool = True,
                tag: str = "", allow_skip: bool = True) -> list[str]:
    """``n`` random body lines under the register conventions above.

    ``risky`` admits low-probability lines that are *expected* to fault
    (unaligned access, out-of-bounds derivation, unprivileged SETPTR,
    TRAP) — fault type and ordering parity is part of what the differ
    checks.  ``tag`` keeps forward-skip labels unique when a program
    splices together several generated bodies.
    """
    lines: list[str] = []
    skip = 0
    for _ in range(n):
        kind = rng.choice(
            ["rrr", "rri", "movi", "mov", "ld", "st", "lea", "leab", "fp",
             "itof", "ftoi", "isptr", "restrict", "subseg"]
            + (["skip"] if allow_skip else [])
            + (["risky"] if risky and rng.random() < 0.3 else []))
        r = lambda: rng.randint(1, 7)          # noqa: E731
        d = lambda: rng.randint(9, 11)         # noqa: E731
        f = lambda: rng.randint(0, 7)          # noqa: E731
        imm = lambda: rng.randint(-1000, 1000)  # noqa: E731
        off = lambda: rng.randrange(DATA_BYTES // 8) * 8  # noqa: E731
        if kind == "rrr":
            lines.append(f"{rng.choice(_RRR)} r{r()}, r{r()}, r{r()}")
        elif kind == "rri":
            lines.append(f"{rng.choice(_RRI)} r{r()}, r{r()}, {imm()}")
        elif kind == "movi":
            lines.append(f"movi r{r()}, {imm()}")
        elif kind == "mov":
            lines.append(f"mov r{r()}, r{r()}")
        elif kind == "ld":
            lines.append(f"ld r{r()}, r8, {off()}")
        elif kind == "st":
            lines.append(f"st r{r()}, r8, {off()}")
        elif kind == "lea":
            lines.append(f"lea r{d()}, r8, {off()}")
        elif kind == "leab":
            lines.append(f"leab r{d()}, r8, {off()}")
        elif kind == "fp":
            lines.append(f"{rng.choice(_FP)} f{f()}, f{f()}, f{f()}")
        elif kind == "itof":
            lines.append(f"itof f{f()}, r{r()}")
        elif kind == "ftoi":
            lines.append(f"ftoi r{r()}, f{f()}")
        elif kind == "isptr":
            lines.append(f"isptr r{r()}, r{r()}")
        elif kind == "restrict":
            reg = r()
            lines.append(f"movi r{reg}, {rng.randint(0, 8)}")
            lines.append(f"restrict r{d()}, r8, r{reg}")
        elif kind == "subseg":
            reg = r()
            lines.append(f"movi r{reg}, {rng.randint(0, 14)}")
            lines.append(f"subseg r{d()}, r8, r{reg}")
        elif kind == "skip":
            # a forward branch over a couple of lines (always safe:
            # forward-only, so loops stay bounded by the skeleton)
            label = f"fskip{tag}{skip}"
            skip += 1
            op = rng.choice(["beq", "bne"])
            lines.append(f"{op} r{r()}, {label}")
            lines.extend(_body_lines(rng, rng.randint(1, 2), risky=False,
                                     allow_skip=False))
            lines.append(f"{label}:")
        elif kind == "risky":
            choice = rng.choice(["unaligned", "oob", "setptr", "trap"])
            if choice == "unaligned":
                lines.append(f"lea r9, r8, {off() + rng.choice((1, 4))}")
                lines.append(f"{rng.choice(('ld r3, r9, 0', 'st r3, r9, 0'))}")
            elif choice == "oob":
                lines.append(f"lea r9, r8, {DATA_BYTES + rng.randint(0, 64) * 8}")
            elif choice == "setptr":
                lines.append(f"movi r{r()}, 4")
                lines.append(f"setptr r{d()}, r{r()}")
            else:
                lines.append(f"trap {rng.randint(0, 7)}")
    return lines


def _loop(rng: random.Random, body: list[str], count: int | None = None) -> str:
    count = count if count is not None else rng.randint(1, 4)
    inner = "\n".join(body)
    return (f"movi r12, {count}\n"
            f"top:\nbeq r12, out\n{inner}\n"
            f"subi r12, r12, 1\nbr top\nout:\nhalt")


def _random_fregs(rng: random.Random) -> dict[int, float]:
    fregs: dict[int, float] = {}
    for index in range(8):
        roll = rng.random()
        if roll < 0.25:
            fregs[index] = round(rng.uniform(-1e6, 1e6), 3)
        elif roll < 0.3:
            fregs[index] = rng.choice((float("inf"), float("-inf"), 0.0))
    return fregs


def _patchable_loop(rng: random.Random, body: list[str],
                    store_line: str | None,
                    count: int | None = None) -> tuple[str, int, int, int]:
    """A bounded loop containing a patch *target* bundle
    (``movi r5, old``) and optionally the store that patches it.

    The target executes *before* the store in each iteration, so the
    first pass decodes (and caches) the old bundle and later passes
    must observe the patch — the exact ordering that turns a missed
    invalidation into an architecturally visible stale ``r5``.

    Returns ``(source, target_byte_offset, old_imm, new_imm)``; the
    offset is resolved by assembling once with a placeholder (changing
    an immediate never moves labels).
    """
    old, new = rng.randint(0, 99), rng.randint(100, 999)
    prologue = [f"movi r1, {_MOVI_R5_HI}",
                "shli r1, r1, 54",
                f"ori r1, r1, {new}"]
    inner = ["target:", f"movi r5, {old}"]
    inner.extend(body)
    if store_line is not None:
        inner.append(store_line)
    source = "\n".join(prologue) + "\n" + _loop(
        rng, inner, count=count if count is not None else rng.randint(2, 4))
    offset = assemble(source).labels["target"]
    return source, offset, old, new


def generate_case(seed: int, scenario: str | None = None) -> FuzzCase:
    """The deterministic case for ``seed`` (optionally pinning the
    scenario instead of drawing it)."""
    rng = random.Random(seed)
    if scenario is None:
        # reference-checkable scenarios get double weight: they run on
        # both axes and are the cheapest to execute
        pool = SCENARIOS + ("plain", "self_modify", "enter_call")
        scenario = rng.choice(pool)
    fregs = _random_fregs(rng)
    meta: dict = {}

    if scenario == "plain":
        body = _body_lines(rng, rng.randint(3, 18))
        source = _loop(rng, body) if rng.random() < 0.5 else \
            "\n".join(body) + "\nhalt"

    elif scenario == "self_modify":
        source, offset, old, new = _patchable_loop(
            rng, _body_lines(rng, rng.randint(1, 5), risky=False),
            store_line="st r1, r15, 0")
        source = source.replace("st r1, r15, 0", f"st r1, r15, {offset}")
        meta = {"patch_offset": offset, "old": old, "new": new}

    elif scenario == "enter_call":
        body_a = _body_lines(rng, rng.randint(1, 4), risky=False, tag="a")
        body_b = _body_lines(rng, rng.randint(1, 4), risky=False, tag="b")
        placeholder = ("\n".join(body_a)
                       + "\nretsetup:\ngetip r14, 0\njmp r13\nback:\n"
                       + "\n".join(body_b)
                       + f"\nhalt\ngate:\nmovi r6, {rng.randint(1, 99)}\njmp r14")
        labels = assemble(placeholder).labels
        disp = labels["back"] - labels["retsetup"]
        source = placeholder.replace("getip r14, 0", f"getip r14, {disp}")
        meta = {"gate_offset": labels["gate"]}

    elif scenario in ("unmap_remap", "swap", "gc_sweep"):
        body = _body_lines(rng, rng.randint(2, 8), risky=False)
        source = _loop(rng, body, count=rng.randint(8, 20))
        meta = {"mutate_after": rng.randint(5, 120)}

    elif scenario == "loader_reuse":
        source = "\n".join(_body_lines(rng, rng.randint(2, 8), risky=False,
                                       tag="a")) + "\nhalt"
        meta = {"source_b":
                "\n".join(_body_lines(rng, rng.randint(2, 8), risky=False,
                                      tag="b")) + "\nhalt"}

    elif scenario == "remote_store":
        # a longer loop than the local self-patch: the remote store
        # lands ``mutate_after`` cycles in, and the loop must still be
        # running to witness it
        source, offset, old, new = _patchable_loop(
            rng, _body_lines(rng, rng.randint(1, 4), risky=False),
            store_line=None, count=rng.randint(8, 40))
        meta = {"patch_offset": offset,
                "patch_word": (_MOVI_R5_HI << 54) | new,
                "old": old, "new": new,
                "mutate_after": rng.randint(10, 200)}

    else:
        raise ValueError(f"unknown scenario {scenario!r}")

    return FuzzCase(seed=seed, scenario=scenario, source=source,
                    fregs=fregs, meta=meta)
