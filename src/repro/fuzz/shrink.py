"""Minimizing failures to a few-bundle, paste-ready repro.

A raw divergence names a seed and a few hundred generated source
lines; the shrinker whittles that down while the failure keeps
reproducing — greedy line deletion, loop-count reduction, then
float-register pruning — and renders what is left as a regression test
that replays the :class:`~repro.fuzz.generator.FuzzCase` directly (no
generator involved, so the repro survives generator changes).
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Callable

from repro.machine.assembler import assemble

from repro.fuzz.generator import FuzzCase

#: predicate: does this candidate still reproduce the original failure?
Reproduces = Callable[[FuzzCase], bool]

_ST_PATCH = re.compile(r"^st r1, r15, \d+$")
_GETIP = re.compile(r"^getip r14, -?\d+$")
_LOOP_COUNT = re.compile(r"^movi r12, (\d+)$")


def _rebuild(case: FuzzCase, lines: list[str]) -> FuzzCase | None:
    """A candidate case from edited source lines, with the couplings
    the generator baked in (label offsets in ``meta`` and in the text
    itself) recomputed.  None when the edit broke the program."""
    source = "\n".join(lines)
    try:
        labels = assemble(source).labels
    except Exception:
        return None
    meta = dict(case.meta)
    if "patch_offset" in meta:
        if "target" not in labels:
            return None
        offset = labels["target"]
        meta["patch_offset"] = offset
        lines = [f"st r1, r15, {offset}" if _ST_PATCH.match(line) else line
                 for line in lines]
    if "gate_offset" in meta:
        if "gate" not in labels:
            return None
        meta["gate_offset"] = labels["gate"]
        if "back" in labels and "retsetup" in labels:
            disp = labels["back"] - labels["retsetup"]
            lines = [f"getip r14, {disp}" if _GETIP.match(line) else line
                     for line in lines]
    source = "\n".join(lines)
    try:
        assemble(source)
    except Exception:
        return None
    return replace(case, source=source, meta=meta)


def _try(candidate: FuzzCase | None, reproduces: Reproduces) -> bool:
    if candidate is None:
        return False
    try:
        return reproduces(candidate)
    except Exception:
        # a candidate that crashes the harness is not a cleaner repro
        return False


def shrink_case(case: FuzzCase, reproduces: Reproduces,
                max_rounds: int = 8) -> FuzzCase:
    """The smallest case (greedy, not optimal) that still reproduces."""
    current = case

    for _ in range(max_rounds):
        progressed = False

        # pass 1: drop whole lines, longest-suffix-first order is not
        # needed — one line at a time keeps label couplings simple
        lines = current.source.split("\n")
        index = 0
        while index < len(lines):
            candidate = _rebuild(current, lines[:index] + lines[index + 1:])
            if _try(candidate, reproduces):
                current = candidate
                lines = current.source.split("\n")
                progressed = True
            else:
                index += 1

        # pass 2: shrink the loop bound
        match = next((m for line in lines if (m := _LOOP_COUNT.match(line))),
                     None)
        if match and int(match.group(1)) > 1:
            for smaller in (1, 2, int(match.group(1)) // 2):
                if smaller >= int(match.group(1)):
                    continue
                candidate = _rebuild(current, [
                    f"movi r12, {smaller}" if _LOOP_COUNT.match(line) else line
                    for line in lines])
                if _try(candidate, reproduces):
                    current = candidate
                    lines = current.source.split("\n")
                    progressed = True
                    break

        # pass 3: drop initial float registers
        for index in sorted(current.fregs):
            fregs = {k: v for k, v in current.fregs.items() if k != index}
            candidate = replace(current, fregs=fregs)
            if _try(candidate, reproduces):
                current = candidate
                progressed = True

        if not progressed:
            break
    return current


def _py_float(value: float) -> str:
    """A float literal that survives ``eval`` — ``repr(inf)`` does not."""
    if value != value:
        return 'float("nan")'
    if value == float("inf"):
        return 'float("inf")'
    if value == float("-inf"):
        return 'float("-inf")'
    return repr(value)


def emit_regression_test(case: FuzzCase, description: str) -> str:
    """Paste-ready pytest source replaying ``case`` and asserting that
    both diff axes are clean."""
    description = " ".join(description.split())
    if len(description) > 160:
        description = description[:157] + "..."
    fregs = ("{" + ", ".join(f"{k}: {_py_float(v)}"
                             for k, v in sorted(case.fregs.items())) + "}")
    return f'''\
def test_fuzz_seed_{case.seed}_{case.scenario}():
    """Shrunk fuzz repro: {description}"""
    case = FuzzCase(
        seed={case.seed},
        scenario={case.scenario!r},
        source="""\\
{case.source}""",
        fregs={fregs},
        meta={case.meta!r},
    )
    assert run_case(case) == []
'''
