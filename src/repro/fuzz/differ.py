"""The lockstep differ: `MAPChip` against `ReferenceInterpreter`.

The chip is stepped cycle by cycle; every time it *commits* a bundle
(fault-free bundles only — faulting bundles commit nothing on either
engine), the reference commits one bundle too, and the full
architectural register state is compared at that boundary.  Deferred
load writebacks still in the chip's pending queue are overlaid, since
they are architecturally visible the moment the bundle commits.

At the end the differ compares halt reason, fault type, every word the
reference wrote, the data segment, and — via the
:class:`~repro.machine.verifier.SecurityMonitor` — the paper's security
invariants I1–I5 on the chip side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer
from repro.machine.assembler import assemble
from repro.machine.chip import ChipConfig, MAPChip
from repro.machine.reference import ReferenceInterpreter
from repro.machine.thread import Thread, ThreadState
from repro.machine.verifier import InvariantViolation, SecurityMonitor
from repro.mem.allocator import round_up_log2

from repro.fuzz.generator import DATA_BYTES, FuzzCase

CODE_BASE = 0x10000
DATA_BASE = 0x40000
DATA_SEGLEN = round_up_log2(DATA_BYTES)  # 12: a 4096-byte segment


@dataclass
class Divergence:
    """One observed disagreement, attributable to a replayable case."""

    axis: str            #: "chip-vs-reference" | "cache-on-vs-off" |
                         #: "fastpath-on-vs-off" | "superblock-on-vs-off" |
                         #: "replay-roundtrip"
    case: FuzzCase
    kind: str            #: "state" | "fault-type" | "fault-order" |
                         #: "halt-order" | "memory" | "crash" |
                         #: "invariant" | "no-termination"
    detail: str
    #: committed-bundle index at first disagreement, when known
    bundle_index: int | None = None
    #: the machine image that misbehaved (container bytes), when the
    #: failing axis captured one — the replay axis always does; it
    #: rides along in the crash dump for post-mortem restoration
    snapshot: bytes | None = None
    #: the misbehaving chip's flight-recorder dump
    #: (:meth:`repro.obs.hub.FlightRecorder.dump`) — the last few
    #: hundred trace events before the divergence, for crash artifacts
    flight: dict | None = None

    def __str__(self) -> str:
        where = f" @bundle {self.bundle_index}" if self.bundle_index is not None else ""
        return (f"[{self.axis}] {self.kind}{where} "
                f"(seed {self.case.seed}, {self.case.scenario}): {self.detail}")


def setup_chip(source: str, *, decode_cache: bool = True,
               data_fast_path: bool = True,
               superblock: bool = True,
               fregs: dict[int, float] | None = None
               ) -> tuple[MAPChip, Thread, GuardedPointer, GuardedPointer]:
    """A bare chip (no kernel) with the program at ``CODE_BASE``, a
    mapped data segment in r8, a READ_WRITE code alias in r15, and —
    when the program defines a ``gate`` label — an ENTER pointer to it
    in r13.  Mirrors the reference setup exactly."""
    program = assemble(source)
    chip = MAPChip(ChipConfig(memory_bytes=2 * 1024 * 1024,
                              decode_cache=decode_cache,
                              data_fast_path=data_fast_path,
                              superblock=superblock))
    chip.page_table.ensure_mapped(CODE_BASE, max(program.size_bytes, 8))
    for i, word in enumerate(program.encode()):
        chip.memory.store_word(chip.page_table.walk(CODE_BASE + i * 8), word)
    chip.page_table.ensure_mapped(DATA_BASE, DATA_BYTES)
    seglen = max(round_up_log2(max(program.size_bytes, 1)), 3)
    entry = GuardedPointer.make(Permission.EXECUTE_USER, seglen, CODE_BASE)
    data = GuardedPointer.make(Permission.READ_WRITE, DATA_SEGLEN, DATA_BASE)
    regs = {8: data.word,
            15: GuardedPointer.make(Permission.READ_WRITE, seglen,
                                    CODE_BASE).word}
    if "gate" in program.labels:
        regs[13] = GuardedPointer.make(
            Permission.ENTER_USER, seglen,
            CODE_BASE + program.labels["gate"]).word
    thread = chip.spawn(entry, regs=regs)
    for index, value in (fregs or {}).items():
        thread.regs.write_f(index, value)
    return chip, thread, entry, data


def _setup_reference(source: str, chip_thread: Thread,
                     fregs: dict[int, float] | None) -> ReferenceInterpreter:
    ref = ReferenceInterpreter()
    ref.load_program(assemble(source), CODE_BASE)
    for index in range(16):
        ref.regs.write(index, chip_thread.regs.read(index))
    for index, value in (fregs or {}).items():
        ref.regs.write_f(index, value)
    return ref


def _effective_state(thread: Thread):
    """Register state with the pending (deferred-load) writes overlaid —
    the committed architectural view mid-block."""
    regs = [thread.regs.read(i) for i in range(16)]
    fregs = [thread.regs.read_f(i) for i in range(16)]
    for bank, index, value in thread.pending_writes:
        if bank == "r":
            regs[index] = value
        else:
            fregs[index] = float(value)
    return regs, fregs


def _compare_regs(thread: Thread, ref: ReferenceInterpreter) -> str | None:
    regs, fregs = _effective_state(thread)
    for i in range(16):
        if regs[i] != ref.regs.read(i):
            return (f"r{i}: chip={regs[i]!r} ref={ref.regs.read(i)!r}")
    for i in range(16):
        a, b = fregs[i], ref.regs.read_f(i)
        if a != b and not (a != a and b != b):  # NaN == NaN here
            return f"f{i}: chip={a!r} ref={b!r}"
    return None


def diff_against_reference(case: FuzzCase,
                           max_cycles: int = 20_000) -> Divergence | None:
    """Run ``case`` on both engines in lockstep; None means parity."""
    axis = "chip-vs-reference"
    chip, thread, entry, data = setup_chip(case.source, fregs=case.fregs)
    monitor = SecurityMonitor(chip)
    monitor.note_spawn(thread)
    ref = _setup_reference(case.source, thread, case.fregs)

    def div(kind: str, detail: str,
            bundle_index: int | None = None) -> Divergence:
        # every divergence carries the chip's flight recorder: the last
        # few hundred events leading up to the disagreement
        return Divergence(axis, case, kind, detail,
                          bundle_index=bundle_index,
                          flight=chip.obs.flight.dump())

    ref_done = None  # the reference's terminal ReferenceResult, if any
    start = chip.now
    while chip.now - start < max_cycles:
        if chip.runnable_threads() == 0:
            break
        before = thread.stats.bundles
        try:
            chip.step()
        except InvariantViolation as e:  # the jump auditor fired
            return div("invariant", str(e), bundle_index=before)
        except Exception as e:  # a crash IS the divergence
            return div("crash",
                       f"chip crashed: {type(e).__name__}: {e}",
                       bundle_index=before)
        if thread.stats.bundles == before:
            continue
        if ref_done is not None:
            return div("halt-order",
                       f"chip committed bundle {before} after the "
                       f"reference already {ref_done.reason}",
                       bundle_index=before)
        try:
            r = ref.run(max_bundles=1)
        except Exception as e:
            return div("crash",
                       f"reference crashed: {type(e).__name__}: {e}",
                       bundle_index=before)
        if r.reason == "faulted":
            return div("fault-order",
                       f"chip committed bundle {before} but the "
                       f"reference faulted there with "
                       f"{type(r.fault).__name__}",
                       bundle_index=before)
        mismatch = _compare_regs(thread, ref)
        if mismatch is not None:
            return div("state", mismatch, bundle_index=before)
        if r.reason == "halted":
            ref_done = r
    else:
        return div("no-termination",
                   f"chip still running after {max_cycles} cycles")

    if thread.state is ThreadState.HALTED:
        if ref_done is None:
            return div("halt-order",
                       "chip halted but the reference is still running",
                       bundle_index=thread.stats.bundles)
    elif thread.state is ThreadState.FAULTED:
        try:
            r = ref.run(max_bundles=1)
        except Exception as e:
            return div("crash",
                       f"reference crashed: {type(e).__name__}: {e}",
                       bundle_index=thread.stats.bundles)
        if r.reason != "faulted":
            return div("fault-order",
                       f"chip faulted with "
                       f"{type(thread.fault.cause).__name__} but the "
                       f"reference {r.reason}",
                       bundle_index=thread.stats.bundles)
        if type(thread.fault.cause).__name__ != type(r.fault).__name__:
            return div("fault-type",
                       f"chip {type(thread.fault.cause).__name__} vs "
                       f"reference {type(r.fault).__name__}",
                       bundle_index=thread.stats.bundles)
    else:
        return div("no-termination",
                   f"chip stopped with thread {thread.state.name}")

    # every word the reference wrote, plus the whole data segment
    table, memory = chip.page_table, chip.memory
    addresses = set(ref.memory) | {DATA_BASE + off
                                   for off in range(0, DATA_BYTES, 8)}
    for vaddr in sorted(addresses):
        chip_word = memory.load_word(table.walk(vaddr))
        if chip_word != ref.load_word(vaddr):
            return div("memory",
                       f"mem[{vaddr:#x}]: chip={chip_word!r} "
                       f"ref={ref.load_word(vaddr)!r}")

    try:
        monitor.check_all()
    except Exception as e:
        return div("invariant", str(e))
    return None
