"""Tenants as protected subsystems: the KV gateway and client stub.

Each tenant is the paper's Figure-3 construction, instantiated a
thousand times over: a small code segment whose ``table:`` slot holds
the **only** pointer to the tenant's key-value table.  The kernel hands
callers an enter-privileged pointer to that segment and nothing else.
A request jumps through the enter pointer (which the hardware converts
to execute-on-entry), the gateway loads its private table pointer out
of its own code segment, services the operation, wipes the pointer
from the register file, and jumps back — one protection-domain round
trip with zero kernel instructions, counted by the chip's
``enter_roundtrip`` histogram.

Tenant placement rides the multicomputer story (§3): a tenant lives on
whatever node its segments were allocated on, its enter pointer works
from any node, and live migration (:mod:`repro.persist.migrate`) can
rehome a hot tenant without touching a single pointer bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer
from repro.machine.assembler import Program, assemble
from repro.runtime.process import Process
from repro.runtime.subsystem import ProtectedSubsystem

OP_GET = 0  #: r3 opcode: read the key's slot into r5
OP_PUT = 1  #: r3 opcode: store r5 into the key's slot

#: tenant protection domains start here (0 is the kernel's convention,
#: low ids are used by tests and examples)
TENANT_DOMAIN_BASE = 1000

_gateway_cache: dict[int, Program] = {}


def gateway_source(slots: int) -> str:
    """The tenant KV gateway for a ``slots``-entry table (power of two).

    Calling convention (the system-service convention of
    :mod:`repro.runtime.services`): r3 = op (:data:`OP_GET` /
    :data:`OP_PUT`), r4 = key, r5 = value in (PUT) and result out,
    r15 = return IP.  Keys hash by masking: slot = key & (slots-1).
    r10/r11 are clobbered but wiped — the private table pointer must
    never leak to the caller's domain.
    """
    if slots <= 0 or slots & (slots - 1):
        raise ValueError("slots must be a power of two")
    return "\n".join([
        "entry:",
        "    getip r10, table",
        "    ld r10, r10, 0          ; the private table pointer (Fig. 3)",
        f"    andi r11, r4, {slots - 1}   ; slot = key & (slots-1)",
        "    shli r11, r11, 3        ; one word per slot",
        "    lear r11, r10, r11",
        "    beq r3, get",
        "    st r5, r11, 0           ; PUT: value into the slot",
        "    br done",
        "get:",
        "    ld r5, r11, 0           ; GET: slot into the result",
        "done:",
        "    movi r10, 0             ; wipe the table pointer and the",
        "    movi r11, 0             ;   slot pointer derived from it",
        "    jmp r15",
        "table:",
        "    .word 0",
    ])


def gateway_program(slots: int) -> Program:
    """The gateway assembled once per table geometry — installing a
    thousand tenants reuses one :class:`Program` (the per-tenant state
    is the patched ``table:`` slot, not the code)."""
    program = _gateway_cache.get(slots)
    if program is None:
        program = assemble(gateway_source(slots))
        _gateway_cache[slots] = program
    return program


def client_source() -> str:
    """The per-request client stub: capture a return IP, jump through
    the tenant's enter pointer (r1), halt when the gateway returns.
    The request's whole life is one enter-call round trip; HALT stamps
    ``thread.halted_at``, which the load driver turns into latency."""
    return "\n".join([
        "entry:",
        "    getip r15, back",
        "    jmp r1                  ; through the ENTER pointer",
        "back:",
        "    halt                    ; r5 holds the gateway's result",
    ])


@dataclass
class Tenant:
    """One installed tenant: its gateway, table and home node.

    ``process`` wraps the tenant's two segments (gateway code + table)
    as a protection domain so :meth:`Simulation.migrate` can rehome
    the whole tenant; ``enter`` is the only pointer clients ever hold.
    """

    index: int
    domain: int
    home: int
    slots: int
    subsystem: ProtectedSubsystem
    table: GuardedPointer
    process: Process

    @property
    def enter(self) -> GuardedPointer:
        return self.subsystem.enter

    def rebind(self, sim) -> "Tenant":
        """This tenant's handles re-attached to another machine holding
        the same architectural state (the restore-from-snapshot path:
        pointers are plain words, so only the kernel reference in the
        :class:`Process` wrapper needs replacing)."""
        process = Process(kernel=sim.kernels[self.home], domain=self.domain,
                          entry=self.process.entry,
                          segments=list(self.process.segments))
        return replace(self, process=process)


def install_tenants(sim, count: int, *, slots: int = 64,
                    eager: bool = True) -> list[Tenant]:
    """Populate ``sim`` (single node or mesh) with ``count`` tenants,
    round-robin across nodes.

    Each tenant gets a zero-filled ``slots``-entry table and a
    privileged enter gateway whose ``table:`` slot is patched with the
    only pointer to it.  ``eager`` materializes table pages at install
    time (the service measures request latency, not first-touch
    faults)."""
    program = gateway_program(slots)
    tenants = []
    for index in range(count):
        home = index % sim.nodes
        kernel = sim.kernels[home]
        table = kernel.allocate_segment(slots * 8, Permission.READ_WRITE,
                                        eager=eager)
        subsystem = ProtectedSubsystem.install(
            kernel, program, data={"table": table}, privileged=True)
        domain = TENANT_DOMAIN_BASE + index
        process = Process(kernel=kernel, domain=domain,
                          entry=subsystem.execute, segments=[table])
        tenants.append(Tenant(index=index, domain=domain, home=home,
                              slots=slots, subsystem=subsystem,
                              table=table, process=process))
    return tenants


def install_clients(sim) -> list[GuardedPointer]:
    """The request stub loaded once per node (requests on node *n*
    spawn at ``entries[n]``); returns the per-node entry pointers."""
    source = client_source()
    return [sim.load(source, node=node) for node in range(sim.nodes)]
