"""Export the service's protection-level event stream as a baseline trace.

The multi-tenant KV service and the E9–E12 baseline comparison speak
different languages: the service runs real threads on the simulated
machine, the baselines consume abstract :class:`~repro.sim.trace.MemRef`
/ :class:`~repro.sim.trace.Switch` streams.  This module is the bridge
— a :class:`ServiceTraceExporter` hooked into the load driver records,
for every dispatched request, the protection-relevant skeleton of its
enter-call round trip:

1. a :class:`~repro.sim.trace.Switch` into the tenant's domain with
   ``handoff=1`` (the enter pointer crosses the boundary — the event
   the modern capability schemes charge for);
2. the client stub's instruction fetch (one *shared per-node* segment
   touched under a per-tenant pid — the reference pattern that costs
   ASID-tagged schemes their synonym duplicates at service scale);
3. the gateway's load of its private ``table:`` slot;
4. the table-slot access itself (a write for PUT);
5. the client's return-address fetch.

No switch is recorded for the return: the next request's Switch is the
next boundary crossing, so consecutive dispatches for the same tenant
stay free under pid-keyed schemes — the same convention E9 uses.

Everything here is derived from architectural state at dispatch time
(segment bases, label offsets, the request itself), so a deterministic
run exports a byte-identical trace file — tested, and the property
``repro compare`` leans on to replay one captured workload through all
nine schemes.

The on-disk format is JSONL: a metadata header line, then one
canonically-serialised (sorted keys, no whitespace) object per event.
"""

from __future__ import annotations

import json
from typing import TextIO

from repro.service.kv import OP_PUT, Tenant, gateway_program
from repro.service.traffic import Request
from repro.sim.trace import MemRef, Switch, Trace

FORMAT = "repro-service-trace"
VERSION = 1


def _canonical(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class ServiceTraceExporter:
    """Accumulates one five-event skeleton per dispatched request.

    Segment ids are chosen so the schemes' descriptor/revocation
    machinery sees the service's real sharing structure: client stubs
    are per *node* (negative ids, shared by every tenant ingressing
    there), tenant gateway code is ``2*index``, tenant tables are
    ``2*index + 1``.
    """

    def __init__(self):
        self.events: list = []
        self.requests = 0

    def record(self, request: Request, tenant: Tenant, node: int,
               client_entry) -> None:
        pid = tenant.domain
        stub = client_entry.segment_base
        table_slot = gateway_program(tenant.slots).labels["table"]
        slot = request.key & (tenant.slots - 1)
        self.events.extend([
            Switch(pid=pid, handoff=1),
            MemRef(pid=pid, vaddr=stub, segment=-(node + 1)),
            MemRef(pid=pid,
                   vaddr=tenant.subsystem.execute.segment_base + table_slot,
                   segment=2 * tenant.index),
            MemRef(pid=pid, vaddr=tenant.table.segment_base + slot * 8,
                   write=request.op == OP_PUT,
                   segment=2 * tenant.index + 1),
            MemRef(pid=pid, vaddr=stub + 8, segment=-(node + 1)),
        ])
        self.requests += 1

    def trace(self) -> Trace:
        return Trace(events=list(self.events))

    def save(self, path: str, **meta) -> None:
        with open(path, "w") as fh:
            write_trace(fh, self.events, requests=self.requests, **meta)


def write_trace(fh: TextIO, events, **meta) -> None:
    fh.write(_canonical({"format": FORMAT, "version": VERSION, **meta}))
    fh.write("\n")
    for event in events:
        if isinstance(event, Switch):
            row = {"t": "sw", "pid": event.pid, "h": event.handoff}
        else:
            row = {"t": "ref", "pid": event.pid, "va": event.vaddr,
                   "w": int(event.write), "seg": event.segment}
        fh.write(_canonical(row))
        fh.write("\n")


def load_trace(path: str) -> tuple[dict, Trace]:
    """Read a trace file back; returns ``(metadata, Trace)``."""
    with open(path) as fh:
        header = json.loads(fh.readline())
        if header.get("format") != FORMAT:
            raise ValueError(f"{path}: not a {FORMAT} file")
        events = []
        for line in fh:
            row = json.loads(line)
            if row["t"] == "sw":
                events.append(Switch(pid=row["pid"], handoff=row["h"]))
            else:
                events.append(MemRef(pid=row["pid"], vaddr=row["va"],
                                     write=bool(row["w"]),
                                     segment=row["seg"]))
    return header, Trace(events=events)
