"""The open-loop load driver: requests in, a latency report out.

The driver owns everything *around* the machine: it admits requests
from a :func:`~repro.service.traffic.open_loop` schedule as the clock
reaches their arrival times, spawns each one as a hardware thread on
an ingress node (``home`` — the tenant's node — or ``scatter`` round
robin, which turns every gateway call into mesh traffic), reaps
completions, and advances the machine — running in bounded quanta
while requests are queued for a thread slot, or skipping straight to
the next arrival when the machine drains.

Latency is measured the honest open-loop way: from the request's
*scheduled arrival* to the cycle its thread executed HALT
(``thread.halted_at``), so time spent waiting for a thread slot counts.
Every sample feeds the ingress chip's ``request_latency`` histogram —
a :meth:`~repro.obs.hub.TraceHub.add_histogram` extension wired into
the chip's counter file — which is where the report's p50/p99/p999
come from (recomputed from merged bucket counts on a mesh, see
:func:`~repro.obs.histogram.percentile_from_snapshot`).

Everything the driver consults between cycles is architectural machine
state (the clock, thread states, register words), so a run paused at a
drain point (``pause_at_completed``), snapshotted, and restored on a
fresh machine continues bit-identically — the service half of the
PR 3 determinism story.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.obs.histogram import percentile_from_snapshot
from repro.service.kv import OP_PUT, Tenant, install_clients
from repro.service.traffic import Request

#: cycles the machine runs per scheduling decision while requests are
#: queued waiting for a thread slot (bounds latency quantization: a
#: freed slot goes unnoticed for at most this long)
DEFAULT_QUANTUM = 16


@dataclass
class TrafficReport:
    """What one :meth:`ServiceLoadDriver.run` produced."""

    requests: int                 #: scheduled requests handed to run()
    completed: int                #: requests that ran to HALT
    errors: int                   #: request threads that faulted
    wrong_results: int            #: GETs whose r5 was never PUT
    start_cycle: int
    end_cycle: int
    latency: dict = field(default_factory=dict)
    enter: dict = field(default_factory=dict)
    migrations: list = field(default_factory=list)
    #: requests not dispatched (pause_at_completed stopped the run);
    #: feed them to a later run() to continue
    remainder: list = field(default_factory=list)

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def throughput_rpk(self) -> float:
        """Completed requests per thousand cycles."""
        if self.cycles <= 0:
            return 0.0
        return 1000.0 * self.completed / self.cycles

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "wrong_results": self.wrong_results,
            "cycles": self.cycles,
            "throughput_rpk": round(self.throughput_rpk, 3),
            "latency": self.latency,
            "enter": self.enter,
            "migrations": self.migrations,
            "remaining": len(self.remainder),
        }

    def format(self) -> str:
        """The human latency report ``repro serve`` prints."""
        lines = [
            "service traffic report",
            f"  requests     {self.requests}",
            f"  completed    {self.completed}"
            + (f"  (errors {self.errors})" if self.errors else ""),
            f"  cycles       {self.cycles}"
            f"  [{self.start_cycle} .. {self.end_cycle}]",
            f"  throughput   {self.throughput_rpk:.2f} req/kcycle",
            "  latency (cycles, arrival to halt; interpolated log2 "
            "buckets)",
            f"    p50   {self.latency.get('p50', 0)}",
            f"    p99   {self.latency.get('p99', 0)}",
            f"    p999  {self.latency.get('p999', 0)}",
            f"    mean  {self.latency.get('mean', 0.0):.1f}"
            f"   max {self.latency.get('max', 0)}",
            f"  enter round trips  {self.enter.get('count', 0)}"
            f"  (p50 {self.enter.get('p50', 0)} cycles)",
        ]
        if self.wrong_results:
            lines.append(f"  WRONG RESULTS  {self.wrong_results}")
        for m in self.migrations:
            lines.append(
                f"  migrated tenant {m['tenant']} node {m['source']} -> "
                f"{m['destination']} at cycle {m['cycle']} "
                f"({m['pages']} pages, {m['dispatched']} reqs dispatched)")
        return "\n".join(lines)


class ServiceLoadDriver:
    """Drives open-loop traffic through installed tenants on a
    :class:`~repro.sim.api.Simulation` (one node or a mesh).

    ``ingress`` places request threads: ``"home"`` spawns each request
    on its tenant's current home node (gateway calls stay node-local
    until a tenant migrates), ``"scatter"`` round-robins requests
    across nodes regardless of tenant placement (every call crosses
    the mesh — the stress case for remote enter traffic).

    ``client_entries`` reuses already-loaded client stubs (the
    restore-from-snapshot path must not load fresh segments into the
    restored machine); by default the driver loads one stub per node.

    ``exporter`` (a :class:`~repro.service.export.ServiceTraceExporter`)
    records each dispatched request's protection-level event skeleton,
    for replay through the E17 baseline schemes.
    """

    def __init__(self, sim, tenants: list[Tenant], *,
                 ingress: str = "home", quantum: int = DEFAULT_QUANTUM,
                 verify: bool = True, client_entries=None, exporter=None,
                 recorder=None, sampler=None):
        if ingress not in ("home", "scatter"):
            raise ValueError(f"unknown ingress policy: {ingress!r}")
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.sim = sim
        self.tenants = tenants
        self.ingress = ingress
        self.quantum = quantum
        self.verify = verify
        self.exporter = exporter
        #: a :class:`~repro.obs.requests.RequestTraceRecorder` — told
        #: about every admission/retirement for tail attribution.  On a
        #: sharded sim create it *after* this constructor (attaching
        #: starts the workers, freezing workload setup).
        self.recorder = recorder
        #: a :class:`~repro.obs.timeseries.TimeseriesSampler` — polled
        #: at the run loop's drain points (deterministic cycles, so the
        #: series is engine-independent)
        self.sampler = sampler
        self.client_entries = (client_entries if client_entries is not None
                               else install_clients(sim))
        if len(self.client_entries) != sim.nodes:
            raise ValueError("need one client entry per node")
        #: per-node request-latency histograms, wired into each chip's
        #: counter file exactly once (restores re-wire fresh chips)
        self._latency = []
        for chip in sim.chips:
            hist = chip.obs.add_histogram("request_latency")
            if not chip.counters.has_source("hist.request_latency"):
                chip.counters.add_source("hist.request_latency",
                                         hist.as_counters)
            self._latency.append(hist)
        self._capacity = (sim.config.clusters
                          * sim.config.threads_per_cluster)
        #: requests dispatched per tenant, for hot-tenant detection
        self.dispatched = [0] * len(tenants)
        #: slot -> set of values ever written, per tenant (GET results
        #: must come from this set; 0 = the untouched-slot value)
        self._written: dict[tuple[int, int], set] = {}

    # -- internals ---------------------------------------------------------

    def _node_for(self, request: Request, serial: int) -> int:
        if self.ingress == "scatter":
            return serial % self.sim.nodes
        return self.tenants[request.tenant].home

    def _spawn(self, request: Request, node: int, serial: int) -> int:
        """Dispatch one request as a hardware thread; returns its tid
        (an engine-neutral handle — on the sharded engine the thread
        object lives in a worker process)."""
        tenant = self.tenants[request.tenant]
        regs = {1: tenant.enter.word, 3: request.op, 4: request.key,
                5: request.value}
        # no stack: the stub never spills, and a per-request stack
        # segment would leak address space at traffic rates
        tid = self.sim.spawn_request(
            node, self.client_entries[node], domain=tenant.domain,
            regs=regs, stack_bytes=0)
        if self.recorder is not None:
            self.recorder.admit(serial, request, node, tid, self.sim.now)
        if self.exporter is not None:
            self.exporter.record(request, tenant, node,
                                 self.client_entries[node])
        self.dispatched[request.tenant] += 1
        if self.verify and request.op == OP_PUT:
            slot = request.key & (tenant.slots - 1)
            self._written.setdefault((request.tenant, slot),
                                     {0}).add(request.value)
        return tid

    def _check_result(self, request: Request, result: int) -> bool:
        """A completed GET must return a value some PUT wrote to that
        slot (or 0 for an untouched slot) — the isolation check: a
        gateway reading another tenant's memory could not pass."""
        if request.op == OP_PUT:
            return True
        tenant = self.tenants[request.tenant]
        slot = request.key & (tenant.slots - 1)
        return result in self._written.get((request.tenant, slot), {0})

    def _reap(self, inflight: dict, node_load: list) -> tuple[int, int, int]:
        """Collect finished request threads; returns (completed,
        errors, wrong) deltas.  Latency is arrival -> halted_at and
        lands in the ingress node's histogram."""
        completed = errors = wrong = 0
        if not inflight:
            return 0, 0, 0
        # retire_finished frees each cluster slot (a FAULTED thread
        # would hold its slot forever otherwise) and reports r5 at HALT
        for entry in self.sim.retire_finished(list(inflight), result_reg=5):
            node = entry["node"]
            request = inflight.pop((node, entry["tid"]))
            node_load[node] -= 1
            if self.recorder is not None:
                self.recorder.done(node, entry["tid"], entry["halted_at"],
                                   entry["state"])
            if entry["state"] == "HALTED":
                completed += 1
                self.sim.record_sample(node, "request_latency",
                                       entry["halted_at"] - request.arrival)
                if self.verify and not self._check_result(request,
                                                          entry["result"]):
                    wrong += 1
            else:
                errors += 1
        return completed, errors, wrong

    def _hottest_tenant(self) -> int:
        return max(range(len(self.tenants)),
                   key=lambda i: self.dispatched[i])

    def _coolest_node(self, exclude: int) -> int:
        load = [0] * self.sim.nodes
        for tenant in self.tenants:
            load[tenant.home] += self.dispatched[tenant.index]
        candidates = [n for n in range(self.sim.nodes) if n != exclude]
        return min(candidates, key=lambda n: load[n])

    def _snapshot_latency(self) -> dict:
        return {k: v for k, v in self.sim.snapshot().items()
                if k.startswith(("hist.request_latency.",
                                 "hist.enter_roundtrip."))}

    @staticmethod
    def _window(end: dict, start: dict, prefix: str) -> dict:
        """This run's slice of an accumulating histogram: bucket and
        count keys differenced, max kept from the end (an upper bound
        for the window, exact when the run saw the overall max)."""
        out = {}
        for key, value in end.items():
            if not key.startswith(prefix + "."):
                continue
            stat = key[len(prefix) + 1:]
            if stat.startswith(("bucket", "sum")) or stat in ("count",
                                                              "total"):
                out[key] = value - start.get(key, 0)
            else:
                out[key] = value
        return out

    @staticmethod
    def _stats(window: dict, prefix: str) -> dict:
        count = int(window.get(f"{prefix}.count", 0))
        total = window.get(f"{prefix}.total", 0)
        return {
            "count": count,
            "mean": round(total / count, 3) if count else 0.0,
            "max": int(window.get(f"{prefix}.max", 0)),
            "p50": percentile_from_snapshot(window, prefix, 0.50),
            "p99": percentile_from_snapshot(window, prefix, 0.99),
            "p999": percentile_from_snapshot(window, prefix, 0.999),
        }

    # -- the load loop -----------------------------------------------------

    def run(self, schedule: list[Request], *,
            migrate_hot_after: int | None = None,
            pause_at_completed: int | None = None,
            max_cycles: int = 100_000_000) -> TrafficReport:
        """Drive ``schedule`` (absolute arrival cycles) to completion.

        ``migrate_hot_after``: once that many requests have finished,
        drain the hottest tenant's in-flight requests and live-migrate
        it to the least-loaded node (mesh machines only).

        ``pause_at_completed``: once that many requests have finished,
        stop dispatching, drain what is in flight, and return with the
        undispatched requests in ``report.remainder`` — the drain
        point is thread-free, so the machine can be snapshotted and
        the remainder run on the restored copy.
        """
        sim = self.sim
        start_cycle = sim.now
        start_hist = self._snapshot_latency()
        queues = [deque() for _ in range(sim.nodes)]
        #: (ingress node, tid) -> request; tids are unique per chip,
        #: so the pair is unique machine-wide
        inflight: dict[tuple[int, int], Request] = {}
        node_load = [0] * sim.nodes
        completed = errors = wrong = 0
        next_i = 0
        serial = 0
        paused = False
        migrations = []
        draining_tenant: int | None = None
        budget = max_cycles

        def finished() -> bool:
            if paused:
                return not inflight
            return (next_i >= len(schedule) and not inflight
                    and not any(queues))

        while not finished():
            now = sim.now
            # admit everything that has arrived by now (each queued
            # entry carries its admission serial — the request id the
            # tail-attribution recorder keys on)
            while (not paused and next_i < len(schedule)
                   and schedule[next_i].arrival <= now):
                request = schedule[next_i]
                queues[self._node_for(request, serial)].append(
                    (serial, request))
                next_i += 1
                serial += 1
            # dispatch while slots are free (hold the draining tenant's
            # requests back so its in-flight count can reach zero)
            if not paused:
                for node, queue in enumerate(queues):
                    while queue and node_load[node] < self._capacity:
                        if (draining_tenant is not None
                                and queue[0][1].tenant == draining_tenant):
                            break
                        req_serial, request = queue.popleft()
                        tid = self._spawn(request, node, req_serial)
                        inflight[(node, tid)] = request
                        node_load[node] += 1
            # advance: bounded quanta while work is queued (so freed
            # slots are noticed), else to the next arrival
            if inflight:
                horizon = self.quantum if any(queues) else budget
                if not paused and next_i < len(schedule):
                    horizon = min(horizon,
                                  max(schedule[next_i].arrival - now, 1))
                ran = sim.run(max_cycles=min(horizon, budget)).cycles
            elif not paused and next_i < len(schedule):
                gap = schedule[next_i].arrival - now
                ran = min(gap, budget)
                sim.advance_idle(ran)
            elif any(queues):  # draining pinned every queued tenant
                ran = 0
            else:
                break
            budget -= ran
            c, e, w = self._reap(inflight, node_load)
            completed += c
            errors += e
            wrong += w
            if self.sampler is not None:
                self.sampler.poll(sim.now, inflight=len(inflight))
            done = completed + errors
            if pause_at_completed is not None and not paused \
                    and done >= pause_at_completed:
                paused = True
            if (migrate_hot_after is not None and draining_tenant is None
                    and not migrations and done >= migrate_hot_after):
                draining_tenant = self._hottest_tenant()
            if draining_tenant is not None and not any(
                    req.tenant == draining_tenant
                    for req in inflight.values()):
                migrations.append(self._migrate(draining_tenant))
                draining_tenant = None
            if budget <= 0 and ran == 0:
                raise RuntimeError(
                    f"load driver made no progress within max_cycles "
                    f"({max_cycles}); {len(inflight)} in flight")
            if budget <= 0:
                break

        end_hist = self._snapshot_latency()
        remainder = sorted([req for q in queues for _, req in q]
                           + schedule[next_i:], key=lambda r: r.arrival)
        return TrafficReport(
            requests=len(schedule), completed=completed, errors=errors,
            wrong_results=wrong, start_cycle=start_cycle,
            end_cycle=sim.now,
            latency=self._stats(
                self._window(end_hist, start_hist, "hist.request_latency"),
                "hist.request_latency"),
            enter=self._stats(
                self._window(end_hist, start_hist, "hist.enter_roundtrip"),
                "hist.enter_roundtrip"),
            migrations=migrations, remainder=remainder)

    def _migrate(self, tenant_index: int) -> dict:
        """Live-migrate a drained tenant to the least-loaded node and
        update its home so later requests ingress there."""
        tenant = self.tenants[tenant_index]
        destination = self._coolest_node(tenant.home)
        report = self.sim.migrate(tenant.process, destination)
        record = {
            "tenant": tenant_index,
            "source": tenant.home,
            "destination": destination,
            "cycle": self.sim.now,
            "pages": report.pages_shipped + report.swapped_shipped,
            "dispatched": self.dispatched[tenant_index],
        }
        tenant.home = destination  # migrate() already rebound the kernel
        return record
