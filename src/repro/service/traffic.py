"""Open-loop traffic: request schedules the machine does not control.

An open-loop generator decides arrival times *in advance* — requests
keep arriving at the configured rate whether or not the service keeps
up, so queueing delay shows up in the latency tail instead of being
hidden by a closed loop's back-pressure.  The schedule is a plain list
of :class:`Request`, fully determined by the seed: the same seed
replays the same workload on any machine shape, which is what makes
the snapshot-mid-load and single-node-vs-mesh comparisons meaningful.

Three arrival processes:

* ``poisson`` — independent exponential gaps (the classic open-loop
  null model);
* ``bursty`` — a two-state modulated Poisson process: bursts arrive
  ``burst_factor`` times faster than the configured rate for
  ``burst_fraction`` of the time, with the quiet-state rate rescaled
  so the long-run average still matches ``mean_gap``;
* ``uniform`` — one request every ``mean_gap`` cycles exactly (the
  pacing used when only the service's own jitter should matter).

Tenant choice is Zipf-skewed (:class:`repro.sim.workloads.ZipfSampler`
— rank 0 is the hottest tenant), and within a tenant a ``hot_fraction``
of requests touch the first ``hot_keys`` keys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.workloads import ZipfSampler

#: cycles of one burst/quiet modulation period (bursty arrivals), in
#: units of mean_gap: bursts are long enough to pile up a queue, short
#: enough that one schedule sees several
MODULATION_GAPS = 64


@dataclass(frozen=True)
class Request:
    """One scheduled request: arrive at ``arrival``, call ``tenant``'s
    gateway with (op, key, value)."""

    arrival: int
    tenant: int
    op: int
    key: int
    value: int


def open_loop(*, requests: int, tenants: int, mean_gap: float,
              seed: int, arrivals: str = "poisson", skew: float = 1.1,
              keys_per_tenant: int = 64, hot_keys: int = 4,
              hot_fraction: float = 0.8, put_ratio: float = 0.5,
              burst_factor: float = 8.0,
              burst_fraction: float = 0.1) -> list[Request]:
    """A deterministic open-loop schedule of ``requests`` requests.

    ``mean_gap`` is the long-run mean inter-arrival time in cycles
    (machine-wide rate = 1/mean_gap requests per cycle).  ``skew`` is
    the Zipf exponent over tenants (``0`` = uniform).  Keys are drawn
    hot (first ``hot_keys`` keys, probability ``hot_fraction``) or
    uniformly from the tenant's ``keys_per_tenant``; values are
    nonzero so a PUT is always distinguishable from an untouched slot.
    """
    if requests < 0:
        raise ValueError("requests must be nonnegative")
    if tenants <= 0:
        raise ValueError("need at least one tenant")
    if mean_gap <= 0:
        raise ValueError("mean_gap must be positive")
    if arrivals not in ("poisson", "bursty", "uniform"):
        raise ValueError(f"unknown arrival process: {arrivals!r}")
    if not 0 <= hot_fraction <= 1 or not 0 <= put_ratio <= 1:
        raise ValueError("hot_fraction and put_ratio are probabilities")
    hot_keys = min(hot_keys, keys_per_tenant)

    rng = random.Random(seed)
    ranks = ZipfSampler(tenants, exponent=skew) if skew > 0 else None

    # bursty: rescale the quiet-state rate so the time-weighted average
    # over the modulation period still equals 1/mean_gap
    if arrivals == "bursty":
        if burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        if not 0 < burst_fraction < 1:
            raise ValueError("burst_fraction must be inside (0, 1)")
        quiet_rate = (1 - burst_fraction * burst_factor) / (1 - burst_fraction)
        quiet_rate = max(quiet_rate, 1e-3) / mean_gap
        burst_rate = burst_factor / mean_gap
        period = MODULATION_GAPS * mean_gap
        burst_until = burst_fraction * period

    schedule = []
    clock = 0.0
    for _ in range(requests):
        if arrivals == "uniform":
            clock += mean_gap
        elif arrivals == "poisson":
            clock += rng.expovariate(1.0 / mean_gap)
        else:  # bursty: exact piecewise-constant-rate sampling — draw
            # at the current state's rate, and if the gap would cross a
            # modulation boundary, advance to the boundary and redraw
            # (memorylessness makes this exact, so the long-run rate
            # really is the time-weighted 1/mean_gap)
            while True:
                position = clock % period
                in_burst = position < burst_until
                boundary = burst_until if in_burst else period
                gap = rng.expovariate(burst_rate if in_burst
                                      else quiet_rate)
                if position + gap < boundary:
                    clock += gap
                    break
                clock += boundary - position
        tenant = ranks.sample(rng) if ranks is not None else \
            rng.randrange(tenants)
        if hot_keys and rng.random() < hot_fraction:
            key = rng.randrange(hot_keys)
        else:
            key = rng.randrange(keys_per_tenant)
        op = 1 if rng.random() < put_ratio else 0
        value = rng.randrange(1, 1 << 16)
        schedule.append(Request(arrival=int(clock), tenant=tenant,
                                op=op, key=key, value=value))
    return schedule
