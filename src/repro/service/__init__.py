"""A multi-tenant key-value service built on guarded pointers (§2.3).

Thousands of tenants share one 54-bit address space with **no** kernel
boundary between them: each tenant's store is a protected subsystem —
a code segment holding the only pointer to that tenant's table, reachable
exclusively through an enter-privileged gateway pointer.  Isolation is
the pointer arithmetic of the paper, not page tables: a request thread
holds a tenant's ENTER pointer and can call the tenant's operations,
but cannot read, write, or even address any tenant's data.

The package splits the service into the three layers a load test
needs:

* :mod:`repro.service.kv` — the tenant gateway (MAP assembly), the
  per-request client stub, and :func:`~repro.service.kv.install_tenants`
  to populate a machine;
* :mod:`repro.service.traffic` — open-loop request schedules (Poisson /
  bursty / uniform arrivals, Zipf tenant skew, hot keys);
* :mod:`repro.service.driver` — the load driver that admits requests,
  spawns them across the mesh, measures per-request latency into the
  ``request_latency`` histogram, and reports throughput with
  p50/p99/p999 (``repro serve`` on the command line);
* :mod:`repro.service.export` — the bridge to the baseline comparison:
  a driver hook that records each request's protection-level event
  skeleton as a :class:`~repro.sim.trace.Trace`, replayed through all
  nine schemes by E17 and ``repro compare``.
"""

from repro.service.driver import ServiceLoadDriver, TrafficReport
from repro.service.export import ServiceTraceExporter, load_trace
from repro.service.kv import (OP_GET, OP_PUT, Tenant, client_source,
                              gateway_program, install_clients,
                              install_tenants)
from repro.service.traffic import Request, open_loop

__all__ = [
    "OP_GET",
    "OP_PUT",
    "Request",
    "ServiceLoadDriver",
    "ServiceTraceExporter",
    "Tenant",
    "TrafficReport",
    "client_source",
    "gateway_program",
    "install_clients",
    "install_tenants",
    "load_trace",
    "open_loop",
]
