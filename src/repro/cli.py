"""Command-line interface: assemble, disassemble and run MAP programs.

Usage (``python -m repro <command> ...``):

* ``asm FILE.s``           — assemble; print encoded words as hex.
* ``disasm FILE.s``        — assemble then disassemble (round-trip view).
* ``run FILE.s``           — run on a fresh simulation; print the result
  and final register file.  ``--data N`` allocates an N-byte read/write
  segment into r1; ``--trace`` prints the issue stream; ``--counters``
  prints the chip-wide perf-counter file; ``--max-cycles`` bounds the
  run; ``--nodes N --workers W`` runs on a mesh sharded across OS
  processes (bit-identical to the lockstep engine).
* ``isa``                  — print the opcode table.
* ``trace FILE.s``         — run a program with structured tracing
  attached and write a Perfetto/Chrome-trace JSON file (``--out``);
  ``--text`` prints the greppable timeline instead.  Tracing never
  changes cycle counts (docs/OBSERVABILITY.md).
* ``counters``             — work with perf-counter snapshot files:
  ``--diff A.json B.json`` prints the per-counter delta between two
  snapshots (``repro run --counters-json`` writes them).
* ``snapshot FILE.s OUT``  — run a program partway (``--run-cycles``)
  and save the whole machine to a snapshot file.
* ``restore SNAP``         — rebuild the machine from a snapshot and
  resume it to completion (``--info`` prints the header and stops;
  ``--no-decode-cache``/``--no-data-fast-path``/``--no-superblock``
  flip the speed knobs,
  which a snapshot explicitly permits).
* ``replay DUMP.json``     — re-run a fuzz crash dump through every
  diff axis; exits 0 when the bug no longer reproduces.
* ``serve``                — run the multi-tenant KV service under
  open-loop traffic (tenants isolated purely by guarded pointers,
  requests entering through enter-pointer gateways) and print
  throughput with p50/p99/p999 latency; ``--json`` writes the report,
  ``--trace-out`` records a Perfetto trace, ``--migrate-hot``
  live-migrates the hottest tenant mid-run, ``--workers N`` shards the
  mesh across OS processes with bit-identical results,
  ``--export-trace`` writes the protection-level event stream for
  ``compare``, ``--explain-tail K`` decomposes the slowest K requests
  along their critical paths, ``--timeseries-out`` writes windowed
  counter deltas as JSON/CSV (docs/SERVICE.md, docs/OBSERVABILITY.md,
  docs/PERF.md).
* ``compare``              — the E17 battleground: replay one captured
  service trace through all nine protection schemes (the five §5
  rivals, guarded pointers, Capstone, Capacity, uninit caps) with a
  mid-run tenant eviction, and print the cross-domain call /
  revocation / memory-overhead trade-off tables (docs/BASELINES.md);
  ``--trace`` reuses a file from ``serve --export-trace``, otherwise
  the service runs in-process first.

The CLI is intentionally thin: everything it does is one call into the
library — ``run`` drives the :class:`repro.sim.api.Simulation` facade —
so scripts can do the same without subprocesses.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.pointer import GuardedPointer
from repro.machine.assembler import assemble
from repro.machine.chip import RunReason
from repro.machine.disasm import disassemble_words
from repro.machine.isa import OP_INFO, Opcode
from repro.sim.api import Simulation


def cmd_asm(args: argparse.Namespace) -> int:
    program = assemble(Path(args.file).read_text())
    for i, word in enumerate(program.encode()):
        print(f"{i * 8:#06x}: {word.value:#018x}")
    for label, offset in sorted(program.labels.items(), key=lambda kv: kv[1]):
        print(f"; {label} = {offset:#x}")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    program = assemble(Path(args.file).read_text())
    print(disassemble_words(program.encode()))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.workers > 1 and args.nodes < 2:
        print("; --workers > 1 needs --nodes > 1 (one node cannot shard)")
        return 2
    if args.workers > 1 and args.trace:
        print("; --trace needs the lockstep engine (drop --workers)")
        return 2
    sim = Simulation(nodes=args.nodes, memory_bytes=args.memory,
                     workers=args.workers,
                     flight_capacity=args.flight_capacity)
    regs: dict[int, object] = {}
    if args.data:
        segment = sim.allocate(args.data)
        regs[1] = segment.word
        print(f"; r1 = {args.data}-byte read/write segment at "
              f"{segment.segment_base:#x}")
    thread = sim.spawn(Path(args.file).read_text(), regs=regs)
    tid = thread.tid
    if args.trace:
        with sim.trace() as session:
            result = sim.run(max_cycles=args.max_cycles)
        print(session.text())
        print()
    else:
        result = sim.run(max_cycles=args.max_cycles)
    # on a sharded run the live thread objects sit in the workers;
    # pull the machine state back before reading registers
    sim.sync_back()
    thread = next(t for t in sim.threads if t.tid == tid)
    if args.counters:
        print(sim.counter_table(title="; perf counters"))
        print()
    if args.counters_json:
        import json

        Path(args.counters_json).write_text(
            json.dumps(sim.snapshot(), indent=2, sort_keys=True) + "\n")
        print(f"; counter snapshot written to {args.counters_json}")
    print(f"; {result.reason} after {result.cycles} cycles, "
          f"{result.issued_bundles} bundles")
    if thread.fault is not None:
        print(f"; fault: {thread.fault}")
    for index in range(16):
        word = thread.regs.read(index)
        if word.value == 0 and not word.tag:
            continue
        if word.tag:
            pointer = GuardedPointer.from_word(word)
            print(f"r{index:<3}= {pointer}")
        else:
            print(f"r{index:<3}= {word.value} ({word.value:#x})")
    for index in range(16):
        value = thread.regs.read_f(index)
        if value:
            print(f"f{index:<3}= {value}")
    sim.close()
    return 0 if result.reason == RunReason.HALTED else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a program with a trace session attached and export it."""
    sim = Simulation(memory_bytes=args.memory)
    regs: dict[int, object] = {}
    if args.data:
        segment = sim.allocate(args.data)
        regs[1] = segment.word
        print(f"; r1 = {args.data}-byte read/write segment at "
              f"{segment.segment_base:#x}")
    sim.spawn(Path(args.file).read_text(), regs=regs)
    with sim.trace() as session:
        result = sim.run(max_cycles=args.max_cycles)
    print(f"; {result.reason} after {result.cycles} cycles, "
          f"{result.issued_bundles} bundles, "
          f"{len(session.events)} trace events")
    if args.text:
        print(session.text())
    if args.out:
        path = session.save_chrome(args.out)
        print(f"; trace written to {path} "
              f"(open at https://ui.perfetto.dev)")
    return 0 if result.reason == RunReason.HALTED else 1


def cmd_counters(args: argparse.Namespace) -> int:
    """Diff two perf-counter snapshot files."""
    import json

    path_a, path_b = args.diff
    a = json.loads(Path(path_a).read_text())
    b = json.loads(Path(path_b).read_text())
    names = sorted(set(a) | set(b))
    width = max((len(n) for n in names), default=4)
    printed = 0
    for name in names:
        va, vb = a.get(name, 0), b.get(name, 0)
        delta = vb - va
        if not delta and not args.all:
            continue
        if isinstance(delta, float):
            delta_text = f"{delta:+.6f}"
            va_text, vb_text = f"{va:.6f}", f"{vb:.6f}"
        else:
            delta_text = f"{delta:+d}"
            va_text, vb_text = str(va), str(vb)
        print(f"{name:<{width}}  {va_text:>16} -> {vb_text:>16}  "
              f"{delta_text}")
        printed += 1
    if not printed:
        print("; no counter differences")
    return 0


def cmd_isa(args: argparse.Namespace) -> int:
    for op, (slot, fmt) in OP_INFO.items():
        operands = ", ".join(fmt.value) if fmt.value else ""
        print(f"{op.name.lower():<10} {slot.name.lower():<4} {operands}")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import SCENARIOS, run_campaign, write_failure_artifacts

    if args.scenario is not None and args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r}; "
              f"choose from: {', '.join(SCENARIOS)}")
        return 2
    report = run_campaign(seed=args.seed, cases=args.cases,
                          scenario=args.scenario,
                          shrink=not args.no_shrink, log=print)
    print(report.summary())
    for failure in report.failures:
        if failure.regression_test:
            print("\n# paste into tests/machine/test_fuzz_regressions.py:")
            print(failure.regression_test)
    if report.failures and args.crashes:
        for crash_dir in write_failure_artifacts(report, args.crashes):
            print(f"; crash artifacts: {crash_dir}")
    return 0 if report.ok else 1


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Run a program for a bounded number of cycles, then freeze the
    whole machine to a snapshot file."""
    sim = Simulation(memory_bytes=args.memory)
    regs: dict[int, object] = {}
    if args.data:
        segment = sim.allocate(args.data)
        regs[1] = segment.word
        print(f"; r1 = {args.data}-byte read/write segment at "
              f"{segment.segment_base:#x}")
    sim.spawn(Path(args.file).read_text(), regs=regs)
    if args.run_cycles:
        sim.step(args.run_cycles)
    path = sim.save(args.out)
    print(f"; saved machine at cycle {sim.now} to {path}")
    return 0


def cmd_restore(args: argparse.Namespace) -> int:
    """Rebuild a machine from a snapshot and run it to completion."""
    from repro.persist import read_header

    header = read_header(args.snapshot)
    if args.info:
        for key in sorted(header):
            print(f"{key}: {header[key]}")
        return 0
    overrides = {}
    if args.no_decode_cache:
        overrides["decode_cache"] = False
    if args.no_data_fast_path:
        overrides["data_fast_path"] = False
    if args.no_superblock:
        overrides["superblock"] = False
    # single-node and mesh images both come back behind the facade
    sim = Simulation.restore(args.snapshot, **overrides)
    print(f"; restored {header['kind']} snapshot at cycle {sim.now}")
    result = sim.run(max_cycles=args.max_cycles)
    print(f"; {result.reason} after {result.cycles} further cycles, "
          f"{result.issued_bundles} bundles")
    for thread in sim.threads:
        print(f"; thread {thread.tid}: {thread.state.name}")
        if thread.fault is not None:
            print(f";   fault: {thread.fault}")
    if args.counters:
        print(sim.counter_table(title="; perf counters"))
    return 0 if result.reason == RunReason.HALTED else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant KV service under open-loop traffic and
    print the throughput/latency report (docs/SERVICE.md)."""
    from repro.service import (ServiceLoadDriver, ServiceTraceExporter,
                               install_tenants, open_loop)

    if args.workers > 1 and args.trace_out:
        print("; --trace-out needs the lockstep engine (drop --workers)")
        return 2
    if args.workers > 1 and args.nodes < 2:
        print("; --workers > 1 needs --nodes > 1 (one node cannot shard)")
        return 2
    sim = Simulation(nodes=args.nodes, memory_bytes=args.memory,
                     page_bytes=args.page_bytes, workers=args.workers,
                     flight_capacity=args.flight_capacity)
    print(f"; {args.tenants} tenants on {args.nodes} node(s), "
          f"{args.workers} worker(s), "
          f"{args.requests} requests, {args.arrivals} arrivals at "
          f"{args.rate} req/kcycle, zipf skew {args.skew}, seed {args.seed}")
    tenants = install_tenants(sim, args.tenants, slots=args.slots)
    exporter = ServiceTraceExporter() if args.export_trace else None
    driver = ServiceLoadDriver(sim, tenants, ingress=args.ingress,
                               exporter=exporter)
    # the recorder attaches span sinks (on a sharded machine that
    # starts the workers), so it must come after all workload setup
    if args.explain_tail:
        driver.recorder = sim.record_requests()
    if args.timeseries_out:
        driver.sampler = sim.timeseries(args.timeseries_window)
    schedule = open_loop(
        requests=args.requests, tenants=args.tenants,
        mean_gap=1000.0 / args.rate, seed=args.seed,
        arrivals=args.arrivals, skew=args.skew,
        keys_per_tenant=args.keys_per_tenant, hot_keys=args.hot_keys,
        hot_fraction=args.hot_fraction, put_ratio=args.put_ratio)
    migrate_after = args.requests // 2 if args.migrate_hot else None
    session = None
    if args.trace_out:
        with sim.trace() as session:
            report = driver.run(schedule, migrate_hot_after=migrate_after)
    else:
        report = driver.run(schedule, migrate_hot_after=migrate_after)
    print(report.format())
    tail = None
    if args.explain_tail:
        from repro.obs.requests import render_tail

        tail = driver.recorder.explain_tail(args.explain_tail)
        print(render_tail(tail))
    if driver.sampler is not None:
        driver.sampler.finish()
        out = Path(args.timeseries_out)
        if out.suffix == ".csv":
            driver.sampler.write_csv(out)
        else:
            driver.sampler.write_json(out)
        print(f"; time series written to {out} "
              f"({len(driver.sampler.rows)} windows of "
              f"{args.timeseries_window} cycles)")
    if session is not None:
        import json

        from repro.obs.export import (append_counter_tracks,
                                      append_request_tracks)

        trace = session.to_chrome()
        if tail is not None:
            append_request_tracks(trace, tail)
        if driver.sampler is not None:
            append_counter_tracks(trace, driver.sampler.rows)
        Path(args.trace_out).write_text(json.dumps(trace) + "\n",
                                        encoding="utf-8")
        print(f"; trace written to {args.trace_out} "
              f"(open at https://ui.perfetto.dev)")
    if exporter is not None:
        exporter.save(args.export_trace, tenants=args.tenants,
                      nodes=args.nodes, seed=args.seed,
                      arrivals=args.arrivals, slots=args.slots)
        print(f"; protection trace written to {args.export_trace} "
              f"({len(exporter.events)} events)")
    if args.json:
        import json

        payload = report.as_dict()
        if tail is not None:
            payload["explain_tail"] = tail
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"; report written to {args.json}")
    sim.close()
    ok = (report.completed == args.requests and not report.errors
          and not report.wrong_results)
    return 0 if ok else 1


def cmd_compare(args: argparse.Namespace) -> int:
    """Replay one service trace through all nine protection schemes
    and print the E17 trade-off tables (docs/BASELINES.md)."""
    from repro.experiments import e17_compartmentalization as e17

    if args.trace:
        from repro.service.export import load_trace

        meta, trace = load_trace(args.trace)
        tenants = meta.get("tenants", args.tenants)
        print(f"; replaying {args.trace}: {len(trace)} events, "
              f"{tenants} tenants")
    else:
        meta, trace = e17.capture_service_trace(
            requests=args.requests, tenants=args.tenants,
            nodes=args.nodes, seed=args.seed, arrivals=args.arrivals)
        tenants = args.tenants
        print(f"; captured {len(trace)} events from {meta['completed']} "
              f"requests over {tenants} tenants on {args.nodes} node(s), "
              f"seed {args.seed}")
    reports = e17.battleground(trace, tenants=tenants,
                               revoke_fraction=args.revoke_fraction)
    overhead = e17.memory_overhead_table()
    print(f"; victim: domain {e17.hottest_pid(trace)} evicted at "
          f"{args.revoke_fraction:.0%} of the trace")
    print(e17.format_battleground(reports))
    print()
    print("; protection-metadata bytes at 10/100/1000 tenants")
    print(e17.format_overhead(overhead))
    if args.json:
        import json

        payload = {"meta": meta,
                   "schemes": [r.as_dict() for r in reports],
                   "memory_overhead_bytes": overhead}
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"; report written to {args.json}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-run a fuzz crash dump through every diff axis."""
    from repro.persist.replay import replay_crash

    divergences = replay_crash(args.dump, log=print)
    if not divergences:
        print("; no divergence: the recorded bug does not reproduce")
        return 0
    for divergence in divergences:
        print(f"DIVERGENCE {divergence}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="guarded-pointer MAP machine tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_asm = sub.add_parser("asm", help="assemble a .s file to hex words")
    p_asm.add_argument("file")
    p_asm.set_defaults(func=cmd_asm)

    p_dis = sub.add_parser("disasm", help="assemble then disassemble")
    p_dis.add_argument("file")
    p_dis.set_defaults(func=cmd_disasm)

    p_run = sub.add_parser("run", help="run a .s file on a fresh kernel")
    p_run.add_argument("file")
    p_run.add_argument("--data", type=int, default=0, metavar="BYTES",
                       help="allocate a data segment into r1")
    p_run.add_argument("--trace", action="store_true",
                       help="print the issue stream")
    p_run.add_argument("--counters", action="store_true",
                       help="print the perf-counter snapshot after the run")
    p_run.add_argument("--counters-json", default=None, metavar="PATH",
                       help="write the counter snapshot as JSON "
                            "(diff two with 'repro counters --diff')")
    p_run.add_argument("--max-cycles", type=int, default=1_000_000)
    p_run.add_argument("--nodes", type=int, default=1,
                       help="mesh nodes (default 1: a single chip)")
    p_run.add_argument("--workers", type=int, default=1,
                       help="OS worker processes for a mesh "
                            "(default 1: the lockstep engine)")
    p_run.add_argument("--memory", type=int, default=8 * 1024 * 1024,
                       help="physical memory bytes")
    p_run.add_argument("--flight-capacity", type=int, default=512,
                       help="flight-recorder ring capacity per node "
                            "(cold events kept for crash dumps)")
    p_run.set_defaults(func=cmd_run)

    p_isa = sub.add_parser("isa", help="print the opcode table")
    p_isa.set_defaults(func=cmd_isa)

    p_trace = sub.add_parser(
        "trace", help="run a .s file with structured tracing and export "
                      "a Perfetto/Chrome-trace JSON file")
    p_trace.add_argument("file")
    p_trace.add_argument("--out", default="trace.json", metavar="PATH",
                         help="trace JSON to write (default: trace.json; "
                              "'' to skip)")
    p_trace.add_argument("--text", action="store_true",
                         help="print the text timeline")
    p_trace.add_argument("--data", type=int, default=0, metavar="BYTES",
                         help="allocate a data segment into r1")
    p_trace.add_argument("--max-cycles", type=int, default=1_000_000)
    p_trace.add_argument("--memory", type=int, default=8 * 1024 * 1024,
                         help="physical memory bytes")
    p_trace.set_defaults(func=cmd_trace)

    p_ctr = sub.add_parser(
        "counters", help="diff perf-counter snapshot files")
    p_ctr.add_argument("--diff", nargs=2, required=True,
                       metavar=("A.json", "B.json"),
                       help="print the per-counter delta B - A")
    p_ctr.add_argument("--all", action="store_true",
                       help="include counters whose delta is zero")
    p_ctr.set_defaults(func=cmd_counters)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing against the reference "
                     "interpreter and the decode-cache-off chip")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (case seeds derive from it)")
    p_fuzz.add_argument("--cases", type=int, default=200)
    p_fuzz.add_argument("--scenario", default=None,
                        help="pin every case to one scenario")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="report divergences without minimizing them")
    p_fuzz.add_argument("--crashes", default=None, metavar="DIR",
                        help="write per-failure artifact directories "
                             "(dump.json, program.s, repro.py, snapshot)")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_snap = sub.add_parser(
        "snapshot", help="run a .s file partway and save the machine")
    p_snap.add_argument("file")
    p_snap.add_argument("out", help="snapshot file to write")
    p_snap.add_argument("--run-cycles", type=int, default=0,
                        help="cycles to run before saving (0: save at spawn)")
    p_snap.add_argument("--data", type=int, default=0, metavar="BYTES",
                        help="allocate a data segment into r1")
    p_snap.add_argument("--memory", type=int, default=8 * 1024 * 1024,
                        help="physical memory bytes")
    p_snap.set_defaults(func=cmd_snapshot)

    p_rest = sub.add_parser(
        "restore", help="rebuild a machine from a snapshot and resume it")
    p_rest.add_argument("snapshot")
    p_rest.add_argument("--info", action="store_true",
                        help="print the snapshot header and exit")
    p_rest.add_argument("--counters", action="store_true",
                        help="print the perf counters after the run")
    p_rest.add_argument("--max-cycles", type=int, default=1_000_000)
    p_rest.add_argument("--no-decode-cache", action="store_true",
                        help="resume with the decoded-bundle cache off")
    p_rest.add_argument("--no-data-fast-path", action="store_true",
                        help="resume with the data-path memos off")
    p_rest.add_argument("--no-superblock", action="store_true",
                        help="resume with superblock turbo execution off")
    p_rest.set_defaults(func=cmd_restore)

    p_replay = sub.add_parser(
        "replay", help="re-run a fuzz crash dump through every diff axis")
    p_replay.add_argument("dump", help="dump.json from a fuzz failure")
    p_replay.set_defaults(func=cmd_replay)

    p_serve = sub.add_parser(
        "serve", help="run the multi-tenant KV service under open-loop "
                      "traffic and report throughput + latency")
    p_serve.add_argument("--tenants", type=int, default=1000,
                         help="tenant count (each its own protected "
                              "subsystem)")
    p_serve.add_argument("--nodes", type=int, default=4,
                         help="mesh nodes (1: a single-node machine)")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="OS worker processes sharding the mesh "
                              "(default 1: the lockstep engine; results "
                              "are bit-identical either way)")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="traffic seed (same seed = same schedule)")
    p_serve.add_argument("--requests", type=int, default=2000)
    p_serve.add_argument("--rate", type=float, default=100.0,
                         help="mean arrival rate, requests per kilocycle")
    p_serve.add_argument("--arrivals", default="poisson",
                         choices=("poisson", "bursty", "uniform"))
    p_serve.add_argument("--skew", type=float, default=1.1,
                         help="zipf exponent over tenants (0: uniform)")
    p_serve.add_argument("--keys-per-tenant", type=int, default=64)
    p_serve.add_argument("--hot-keys", type=int, default=4)
    p_serve.add_argument("--hot-fraction", type=float, default=0.8)
    p_serve.add_argument("--put-ratio", type=float, default=0.5)
    p_serve.add_argument("--slots", type=int, default=64,
                         help="KV table slots per tenant (power of two)")
    p_serve.add_argument("--ingress", default="home",
                         choices=("home", "scatter"),
                         help="spawn requests on the tenant's home node, "
                              "or round-robin across the mesh")
    p_serve.add_argument("--migrate-hot", action="store_true",
                         help="live-migrate the hottest tenant halfway "
                              "through the run")
    p_serve.add_argument("--trace-out", default=None, metavar="PATH",
                         help="record the run and write a Perfetto trace "
                              "(with --explain-tail/--timeseries-out it "
                              "also carries per-request tracks and "
                              "counter series)")
    p_serve.add_argument("--explain-tail", type=int, default=0,
                         metavar="K",
                         help="decompose the slowest K requests along "
                              "their critical paths (works on both "
                              "engines; byte-identical across workers)")
    p_serve.add_argument("--timeseries-window", type=int, default=20_000,
                         metavar="CYCLES",
                         help="time-series window width in cycles")
    p_serve.add_argument("--timeseries-out", default=None, metavar="PATH",
                         help="write windowed counter deltas "
                              "(.csv for CSV, anything else for JSON)")
    p_serve.add_argument("--flight-capacity", type=int, default=512,
                         help="flight-recorder ring capacity per node")
    p_serve.add_argument("--export-trace", default=None, metavar="PATH",
                         help="write the protection-level event stream "
                              "(one Switch + four MemRefs per request) "
                              "for `repro compare`")
    p_serve.add_argument("--json", default=None, metavar="PATH",
                         help="write the report as JSON")
    p_serve.add_argument("--memory", type=int, default=8 * 1024 * 1024,
                         help="physical memory bytes per node")
    p_serve.add_argument("--page-bytes", type=int, default=512,
                         help="page size (small pages keep tenant "
                              "segments migratable)")
    p_serve.set_defaults(func=cmd_serve)

    p_cmp = sub.add_parser(
        "compare", help="replay a service trace through all nine "
                        "protection schemes (the E17 battleground)")
    p_cmp.add_argument("--trace", default=None, metavar="PATH",
                       help="trace file from `repro serve "
                            "--export-trace` (default: run the service "
                            "in-process first)")
    p_cmp.add_argument("--tenants", type=int, default=100,
                       help="tenant count when capturing in-process")
    p_cmp.add_argument("--requests", type=int, default=1000)
    p_cmp.add_argument("--nodes", type=int, default=1)
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--arrivals", default="poisson",
                       choices=("poisson", "bursty", "uniform"))
    p_cmp.add_argument("--revoke-fraction", type=float, default=0.5,
                       help="evict the hottest tenant after this "
                            "fraction of the trace")
    p_cmp.add_argument("--json", default=None, metavar="PATH",
                       help="write the full report as JSON")
    p_cmp.set_defaults(func=cmd_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
