"""E12 — §5.4: guarded pointers versus software fault isolation.

SFI inserts check instructions before every store/jump (and load, for
full isolation) that cannot be proven safe statically; the cost is paid
on every dynamic execution.  Guarded pointers do the equivalent check
in parallel hardware for free.  This experiment sweeps the fraction of
references a compiler can prove safe and the read-checking mode, and
reports SFI's dynamic overhead over the guarded-pointer baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace as dc_replace

from repro.baselines.guarded import GuardedPointerScheme
from repro.baselines.sfi import SFIScheme
from repro.sim.costs import CostModel
from repro.sim.trace import MemRef, Trace
from repro.sim.workloads import working_set


@dataclass(frozen=True)
class SFIRow:
    safe_fraction: float
    check_reads: bool
    guarded_cycles: int
    sfi_cycles: int
    check_instructions: int

    @property
    def overhead(self) -> float:
        return self.sfi_cycles / self.guarded_cycles - 1.0


def _with_safety(trace: Trace, safe_fraction: float, seed: int) -> Trace:
    """Mark a fraction of references statically safe."""
    rng = random.Random(seed)
    events = []
    for e in trace:
        if isinstance(e, MemRef):
            events.append(dc_replace(e, statically_safe=rng.random() < safe_fraction))
        else:
            events.append(e)
    return Trace(events)


def overhead_sweep(safe_fractions=(0.0, 0.25, 0.5, 0.75, 0.95),
                   refs: int = 10_000, write_ratio: float = 0.3,
                   costs: CostModel | None = None, seed: int = 23) -> list[SFIRow]:
    costs = costs or CostModel()
    base = working_set(0, refs, write_ratio=write_ratio, seed=seed)
    rows = []
    for check_reads in (False, True):
        for safe in safe_fractions:
            trace = _with_safety(base, safe, seed + int(safe * 100))
            guarded = GuardedPointerScheme(costs)
            sfi = SFIScheme(costs, check_reads=check_reads)
            gm = guarded.run(trace)
            sm = sfi.run(trace)
            rows.append(SFIRow(
                safe_fraction=safe,
                check_reads=check_reads,
                guarded_cycles=gm.total_cycles,
                sfi_cycles=sm.total_cycles,
                check_instructions=sm.check_instructions,
            ))
    return rows


def qualitative_gap() -> dict[str, str]:
    """§5.4's non-quantitative point, recorded alongside the numbers."""
    return {
        "enforcement": "SFI relies on every binary having passed the "
                       "safe toolchain; hand-written code bypasses it. "
                       "Guarded pointers are enforced by hardware on "
                       "every word.",
        "registers": "SFI reserves dedicated registers for the check "
                     "code; guarded pointers reserve none.",
        "optimization": "post-pass check code escapes compiler "
                        "optimization; guarded-pointer casts are plain "
                        "instructions exposed to it (§2.2).",
    }
