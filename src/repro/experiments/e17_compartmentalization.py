"""E17 — the compartmentalization trade-off study (modern battleground).

The paper's §5 argues guarded pointers beat the 1994 alternatives on
cross-domain call cost.  Thirty years later the published comparisons
(e.g. the CHERI-era compartmentalization studies) score schemes on
three axes instead: **cross-domain call cost**, **revocation cost**,
and **memory overhead** at realistic domain counts.  E17 runs that
study over *this* repo's own workload: the PR 6 multi-tenant KV
service's protection-level event stream, captured once
(:func:`capture_service_trace` via
:class:`~repro.service.export.ServiceTraceExporter`) and replayed
bit-identically through all nine schemes of
:func:`~repro.baselines.battleground_schemes` — the five §5 rivals,
guarded pointers, and the three modern capability successors.

Each replay is two-phase: run the first half of the trace, bulk-revoke
the hottest tenant (the eviction case — a tenant's key leaked, kill its
rights *now*), then run the rest.  That makes the revocation axis an
in-context number — cycles to revoke plus how the scheme's steady-state
cost shifts afterwards — rather than a detached microbenchmark.
Memory overhead is scored separately at 10/100/1000 tenants
(:func:`memory_overhead_table`), where the schemes diverge by orders
of magnitude: per-domain page tables grow linearly in pages × domains,
tag bits in held words, Capacity in nothing but keys.

``repro compare`` is the CLI face of this module; the checked-in
tables live in EXPERIMENTS.md §E17.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import battleground_schemes
from repro.baselines.base import ProtectionScheme
from repro.sim.costs import CostModel
from repro.sim.trace import MemRef, Switch, Trace

PAGE_BYTES = 4096

#: protection-relevant footprint assumed per tenant when scoring
#: memory overhead: 512 64-bit words (a 4 KB domain — table + gateway,
#: rounded up to the page every page-based scheme must map anyway)
WORDS_PER_DOMAIN = 512


@dataclass(frozen=True)
class SchemeReport:
    """One scheme's three-axis score over one captured trace."""

    scheme: str
    total_cycles: int
    accesses: int
    cycles_per_access: float
    calls: int                #: boundary crossings (Switch events)
    cycles_per_call: float    #: switch + hand-off cycles per crossing
    handoffs: int
    revoke_cycles: int        #: the bulk-revocation bill itself
    post_revoke_faults: int   #: victim references trapped afterwards
    memory_bytes: int         #: protection metadata at the run's tenants
    extras: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "total_cycles": self.total_cycles,
            "accesses": self.accesses,
            "cycles_per_access": round(self.cycles_per_access, 3),
            "calls": self.calls,
            "cycles_per_call": round(self.cycles_per_call, 3),
            "handoffs": self.handoffs,
            "revoke_cycles": self.revoke_cycles,
            "post_revoke_faults": self.post_revoke_faults,
            "memory_bytes": self.memory_bytes,
            "extras": self.extras,
        }


def capture_service_trace(*, requests: int = 400, tenants: int = 20,
                          nodes: int = 1, seed: int = 0,
                          arrivals: str = "poisson",
                          mean_gap: float = 10.0) -> tuple[dict, Trace]:
    """Run the KV service under open-loop load with the trace exporter
    hooked in; returns ``(metadata, Trace)``.  The run must be clean —
    a faulting service would export a skewed trace."""
    from repro.service import (ServiceLoadDriver, ServiceTraceExporter,
                               install_tenants, open_loop)
    from repro.sim.api import Simulation

    sim = Simulation(nodes=nodes, page_bytes=512,
                     memory_bytes=4 * 1024 * 1024)
    roster = install_tenants(sim, tenants)
    exporter = ServiceTraceExporter()
    driver = ServiceLoadDriver(sim, roster, exporter=exporter)
    schedule = open_loop(requests=requests, tenants=tenants,
                         mean_gap=mean_gap, seed=seed, arrivals=arrivals)
    report = driver.run(schedule)
    if report.errors or report.wrong_results:
        raise RuntimeError(
            f"service run not clean: {report.errors} errors, "
            f"{report.wrong_results} wrong results")
    meta = {"requests": requests, "tenants": tenants, "nodes": nodes,
            "seed": seed, "arrivals": arrivals, "mean_gap": mean_gap,
            "completed": report.completed}
    return meta, exporter.trace()


def hottest_pid(trace: Trace) -> int:
    """The domain with the most references — the tenant E17 evicts."""
    counts: dict[int, int] = {}
    for event in trace:
        if isinstance(event, MemRef):
            counts[event.pid] = counts.get(event.pid, 0) + 1
    return max(sorted(counts), key=lambda pid: counts[pid])


def _split_at_fraction(trace: Trace, fraction: float) -> int:
    """Event index at ~``fraction``, snapped forward to the next
    Switch so no request is cut mid-flight."""
    k = int(len(trace) * fraction)
    events = trace.events
    while k < len(events) and not isinstance(events[k], Switch):
        k += 1
    return k


def replay(scheme: ProtectionScheme, trace: Trace, *, tenants: int,
           revoke_fraction: float = 0.5, victim: int | None = None,
           words_per_domain: int = WORDS_PER_DOMAIN) -> SchemeReport:
    """Two-phase replay: first half, evict the victim, second half."""
    if victim is None:
        victim = hottest_pid(trace)
    k = _split_at_fraction(trace, revoke_fraction)
    scheme.run(Trace(events=trace.events[:k]))
    faults_before = scheme.metrics.protection_faults
    pages = max(1, -(-words_per_domain * 8 // PAGE_BYTES))
    revoke_cycles = scheme.revoke_domain(victim, pages=pages, segments=2)
    scheme.run(Trace(events=trace.events[k:]))
    m = scheme.metrics
    return SchemeReport(
        scheme=scheme.name,
        total_cycles=m.total_cycles + m.revoke_cycles,
        accesses=m.accesses,
        cycles_per_access=m.cycles_per_access,
        calls=m.switches,
        cycles_per_call=m.cycles_per_switch,
        handoffs=m.handoffs,
        revoke_cycles=revoke_cycles,
        post_revoke_faults=m.protection_faults - faults_before,
        memory_bytes=scheme.memory_overhead_bytes(tenants,
                                                  words_per_domain),
        extras=scheme.extras())


def battleground(trace: Trace, *, tenants: int,
                 costs: CostModel | None = None,
                 revoke_fraction: float = 0.5,
                 words_per_domain: int = WORDS_PER_DOMAIN
                 ) -> list[SchemeReport]:
    """All nine schemes over the same trace, same victim, same knobs."""
    costs = costs or CostModel()
    victim = hottest_pid(trace)
    return [replay(scheme, trace, tenants=tenants, victim=victim,
                   revoke_fraction=revoke_fraction,
                   words_per_domain=words_per_domain)
            for scheme in battleground_schemes(costs)]


def memory_overhead_table(tenant_counts=(10, 100, 1000),
                          words_per_domain: int = WORDS_PER_DOMAIN,
                          costs: CostModel | None = None
                          ) -> dict[str, dict[int, int]]:
    """Protection-metadata bytes per scheme at each tenant count."""
    costs = costs or CostModel()
    table: dict[str, dict[int, int]] = {}
    for scheme in battleground_schemes(costs):
        table[scheme.name] = {
            n: scheme.memory_overhead_bytes(n, words_per_domain)
            for n in tenant_counts}
    return table


@dataclass(frozen=True)
class StudyResult:
    """The full E17 study: one captured workload, nine replays, and
    the memory-overhead scaling table."""

    meta: dict
    reports: list  #: list[SchemeReport]
    overhead: dict  #: scheme -> {tenant count -> bytes}

    def report(self, scheme: str) -> SchemeReport:
        return next(r for r in self.reports if r.scheme == scheme)

    def relative_cycles(self, scheme: str,
                        baseline: str = "guarded-pointers") -> float:
        return (self.report(scheme).total_cycles
                / self.report(baseline).total_cycles)

    def as_dict(self) -> dict:
        return {"meta": self.meta,
                "schemes": [r.as_dict() for r in self.reports],
                "memory_overhead_bytes": self.overhead}


def study(*, requests: int = 400, tenants: int = 20, nodes: int = 1,
          seed: int = 0, arrivals: str = "poisson",
          tenant_counts=(10, 100, 1000),
          costs: CostModel | None = None) -> StudyResult:
    """Capture the service trace once, replay it through all nine
    schemes, and score memory overhead at scale."""
    meta, trace = capture_service_trace(
        requests=requests, tenants=tenants, nodes=nodes, seed=seed,
        arrivals=arrivals)
    meta["events"] = len(trace)
    meta["victim"] = hottest_pid(trace)
    return StudyResult(
        meta=meta,
        reports=battleground(trace, tenants=tenants, costs=costs),
        overhead=memory_overhead_table(tenant_counts, costs=costs))


def format_battleground(reports: list, baseline: str = "guarded-pointers"
                        ) -> str:
    """The nine-row trade-off table ``repro compare`` prints."""
    base = next(r for r in reports if r.scheme == baseline)
    lines = [f"{'scheme':<18} {'cycles':>9} {'rel':>6} {'cyc/call':>9} "
             f"{'cyc/access':>10} {'revoke':>7} {'faults':>7}"]
    for r in reports:
        lines.append(
            f"{r.scheme:<18} {r.total_cycles:>9} "
            f"{r.total_cycles / base.total_cycles:>6.2f} "
            f"{r.cycles_per_call:>9.2f} {r.cycles_per_access:>10.2f} "
            f"{r.revoke_cycles:>7} {r.post_revoke_faults:>7}")
    return "\n".join(lines)


def format_overhead(overhead: dict) -> str:
    """The memory-overhead scaling table (bytes per tenant count)."""
    counts = sorted(next(iter(overhead.values())))
    header = f"{'scheme':<18}" + "".join(f" {f'@{n}':>12}" for n in counts)
    lines = [header]
    for scheme, row in overhead.items():
        lines.append(f"{scheme:<18}"
                     + "".join(f" {row[n]:>12}" for n in counts))
    return "\n".join(lines)
