"""E7 — §4.2: fragmentation of power-of-two segments.

* Internal fragmentation across object-size distributions (uniform,
  log-uniform within binades, real-ish small-object mixes), against the
  closed-form expectation of 4/3 for uniform-in-binade sizes and the
  worst case of 2.
* Physical vs virtual waste: the paper's argument that rounding wastes
  address space, not DRAM, because frames are allocated page-by-page.
* External fragmentation under churn: the buddy allocator (§4.2's
  recommendation) against a non-coalescing strawman.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.fragmentation import (
    EXPECTED_UNIFORM_BINADE,
    ChurnResult,
    compare_buddy_vs_nocoalesce,
    granted_bytes,
    physical_waste_fraction,
    rounding_overhead,
)


@dataclass(frozen=True)
class DistributionRow:
    distribution: str
    objects: int
    overhead_factor: float     #: granted/requested
    physical_waste: float      #: fraction of touched pages wasted


def _size_populations(n: int = 20_000, seed: int = 7) -> dict[str, list[int]]:
    rng = random.Random(seed)
    return {
        "uniform-in-binade": [rng.randint(1025, 2048) for _ in range(n)],
        "log-uniform 1B..1MB": [
            rng.randint((1 << k) + 1, 1 << (k + 1))
            for k in (rng.randrange(0, 20) for _ in range(n))
        ],
        "small-objects (8..256B)": [rng.randint(8, 256) for _ in range(n)],
        "pages (4KB..64KB)": [rng.randint(4096, 65536) for _ in range(n)],
        "powers-of-two": [1 << rng.randrange(3, 20) for _ in range(n)],
    }


def internal_fragmentation_table(n: int = 20_000, seed: int = 7) -> list[DistributionRow]:
    rows = []
    for name, sizes in _size_populations(n, seed).items():
        total_requested = sum(sizes)
        total_pages = sum(-(-s // 4096) for s in sizes)
        physical = 1 - total_requested / (total_pages * 4096)
        rows.append(DistributionRow(
            distribution=name,
            objects=len(sizes),
            overhead_factor=rounding_overhead(sizes),
            physical_waste=physical,
        ))
    return rows


def closed_form_check(seed: int = 11) -> dict[str, float]:
    """Measured uniform-in-binade overhead against 4/3."""
    rng = random.Random(seed)
    sizes = [rng.randint(2 ** 14 + 1, 2 ** 15) for _ in range(50_000)]
    return {
        "measured": rounding_overhead(sizes),
        "expected": EXPECTED_UNIFORM_BINADE,
    }


def external_fragmentation(order: int = 16, steps: int = 4000,
                           seeds=(0, 1, 2)) -> dict[str, list[ChurnResult]]:
    """Churn at several seeds: buddy coalescing vs none."""
    results: dict[str, list[ChurnResult]] = {"buddy": [], "no-coalesce": []}
    for seed in seeds:
        run = compare_buddy_vs_nocoalesce(order=order, steps=steps, seed=seed)
        results["buddy"].append(run["buddy"])
        results["no-coalesce"].append(run["no-coalesce"])
    return results
