"""E15 — §3 (extension): guarded pointers across the mesh.

The paper states the M-Machine's nodes share the global address space
but does not evaluate remote access (the chip was unbuilt).  This
extension experiment validates the multicomputer half of the mechanism
on our simulator:

* remote load latency grows with mesh distance (dimension-ordered
  routing, request+reply);
* *protection* work does not: permission/bounds checks run at issue on
  the local node, so a forbidden remote access costs zero network
  messages, and no node keeps any protection state for any other.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.permissions import Permission
from repro.machine.chip import ChipConfig
from repro.machine.multicomputer import Multicomputer
from repro.machine.network import MeshShape
from repro.machine.thread import ThreadState


@dataclass(frozen=True)
class HopPoint:
    hops: int
    stall_cycles: int
    messages: int


def _machine(x: int = 4) -> Multicomputer:
    return Multicomputer(
        shape=MeshShape(x, 1, 1),
        chip_config=ChipConfig(memory_bytes=2 * 1024 * 1024),
        arena_order=24,
    )


def latency_vs_distance(max_hops: int = 3) -> list[HopPoint]:
    """One warm remote load from node 0 to homes 0..max_hops away."""
    points = []
    for distance in range(0, max_hops + 1):
        mc = _machine(x=max_hops + 1)
        data = mc.allocate_on(distance, 4096, eager=True)
        entry = mc.load_on(0, """
            ld r2, r1, 0
            halt
        """)
        thread = mc.spawn_on(0, entry, regs={1: data.word}, stack_bytes=0)
        result = mc.run()
        assert result.reason == "halted", result.reason
        points.append(HopPoint(
            hops=distance,
            stall_cycles=thread.stats.stall_cycles,
            messages=mc.network.stats.messages,
        ))
    return points


@dataclass(frozen=True)
class ProtectionLocality:
    denied_remote_stores: int
    network_messages: int
    remote_protection_state_bytes: int


def protection_stays_local(attempts: int = 8) -> ProtectionLocality:
    """Forbidden remote stores: all denied, all without touching the
    mesh, and the home node holds zero protection state."""
    mc = _machine(x=2)
    victim = mc.allocate_on(1, 4096, Permission.READ_ONLY, eager=True)
    denied = 0
    for i in range(attempts):
        entry = mc.load_on(0, """
            movi r2, 1
            st r2, r1, 0
            halt
        """)
        thread = mc.spawn_on(0, entry, regs={1: victim.word}, stack_bytes=0)
        mc.run()
        if thread.state is ThreadState.FAULTED:
            denied += 1
        mc.chips[0].clusters[0].remove_thread(thread)  # free the slot
    return ProtectionLocality(
        denied_remote_stores=denied,
        network_messages=mc.network.stats.messages,
        # the home node's entire protection apparatus for remote
        # sharers: none — no table rows, no ACLs, no ASIDs
        remote_protection_state_bytes=0,
    )
