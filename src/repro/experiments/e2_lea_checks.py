"""E2 — Figure 2: pointer derivation and the masked comparator.

Shows that LEA admits exactly the in-segment derivations and faults on
every out-of-segment one, and measures the checked-arithmetic
throughput of the model (standing in for the paper's claim that the
check is one masked comparison, off the load/store critical path).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.exceptions import BoundsFault
from repro.core.operations import lea
from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer


@dataclass(frozen=True)
class LeaSweep:
    seglen: int
    attempts: int
    in_segment: int
    accepted: int
    faulted: int

    @property
    def exact(self) -> bool:
        """The comparator admits exactly the in-segment derivations."""
        return self.accepted == self.in_segment


def sweep(seglen: int = 12, attempts: int = 4096, seed: int = 2) -> LeaSweep:
    """Random offsets against one segment: every accepted derivation is
    in-segment and every in-segment derivation is accepted."""
    rng = random.Random(seed)
    base = 0x40_0000
    p = GuardedPointer.make(Permission.READ_WRITE, seglen,
                            base + (1 << seglen) // 2)
    size = 1 << seglen
    accepted = faulted = in_segment = 0
    for _ in range(attempts):
        offset = rng.randrange(-2 * size, 2 * size)
        target = p.address + offset
        if p.segment_base <= target < p.segment_limit:
            in_segment += 1
        try:
            q = lea(p.word, offset)
            assert q.address == target
            accepted += 1
        except BoundsFault:
            faulted += 1
    return LeaSweep(seglen=seglen, attempts=attempts, in_segment=in_segment,
                    accepted=accepted, faulted=faulted)


def sweep_all_lengths(attempts_per_length: int = 512, seed: int = 3) -> list[LeaSweep]:
    """The comparator is exact at every segment length."""
    return [sweep(seglen, attempts_per_length, seed + seglen)
            for seglen in range(0, 55, 6)]


def array_walk(n: int = 10_000) -> int:
    """The §2.2 loop: software strength-reduction steps one pointer
    through an array with LEA — no per-access relocation add.  Returns
    derivations performed (the benchmark times this kernel)."""
    p = GuardedPointer.make(Permission.READ_WRITE, 17, 0x40_0000)  # 128 KiB
    steps = 0
    q = p
    for _ in range(n):
        q = lea(q.word, 8)
        steps += 1
        if q.offset + 8 >= q.segment_size:
            q = p
    return steps
