"""Ablations of the design choices DESIGN.md calls out.

These are not in the paper's evaluation — they probe *why* the design
is the way it is by removing one ingredient at a time:

* **A1 — cache banking.** §3: the 4-bank interleaved cache "allows the
  memory system to accept up to four memory requests during each
  cycle, matching the peak rate at which the processor clusters can
  generate requests."  Sweep the bank count under a 4-cluster
  memory-heavy load.
* **A2 — translate-before-cache.** §5.1's virtual-cache argument:
  putting the TLB on every access (a physically-addressed or
  TLB-checked design) versus only on misses.  Uses a
  :class:`TranslateFirstScheme` variant of the guarded scheme.
* **A3 — cost-model sensitivity.** E9's cross-scheme ordering under
  perturbed cost parameters: the guarded-pointer win must not hinge on
  one lucky constant.
* **A4 — hardware RESTRICT vs gateway emulation.** §2.2: "RESTRICT and
  SUBSEG are not completely necessary" — measure what the M-Machine's
  gateway approach costs relative to the one-instruction hardware path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.baselines.base import Lookaside, ProtectionScheme, SimpleCache
from repro.baselines.guarded import GuardedPointerScheme
from repro.core.operations import lea
from repro.baselines.paged import PagedSeparateScheme
from repro.machine.chip import ChipConfig, MAPChip
from repro.runtime import services as services_mod
from repro.runtime.kernel import Kernel
from repro.sim.costs import CostModel
from repro.sim.multiprogram import interleave
from repro.sim.trace import MemRef
from repro.sim.workloads import working_set


# ---------------------------------------------------------------------------
# A1 — cache bank count on the MAP simulator
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BankPoint:
    banks: int
    cycles: int
    bank_conflicts: int


#: four clusters re-reading their (cache-resident) hot lines every
#: cycle — the peak demand §3 sizes the banked cache for; with one bank
#: the four concurrent requests serialise, with four they proceed in
#: parallel
_HOTLOOP = """
    movi r2, {iterations}
loop:
    beq r2, done
    ld r3, r1, 0
    ld r4, r1, 0
    ld r5, r1, 0
    subi r2, r2, 1
    br loop
done:
    halt
"""


def bank_sweep(bank_counts=(1, 2, 4), iterations: int = 150) -> list[BankPoint]:
    points = []
    for banks in bank_counts:
        chip = MAPChip(ChipConfig(memory_bytes=8 * 1024 * 1024,
                                  cache_banks=banks))
        kernel = Kernel(chip)
        for t in range(4):
            entry = kernel.load_program(_HOTLOOP.format(iterations=iterations))
            data = kernel.allocate_segment(4096, eager=True)
            # stagger each thread's hot line into a distinct bank
            hot = lea(data.word, (t % max(banks, 1)) * 64)
            kernel.spawn(entry, cluster=t, regs={1: hot.word}, stack_bytes=0)
        result = kernel.run(max_cycles=10_000_000)
        assert result.reason == "halted", result.reason
        points.append(BankPoint(
            banks=banks,
            cycles=result.cycles,
            bank_conflicts=chip.cache.stats.bank_conflicts,
        ))
    return points


# ---------------------------------------------------------------------------
# A2 — translation position
# ---------------------------------------------------------------------------

class TranslateFirstScheme(ProtectionScheme):
    """Guarded pointers with the TLB on *every* access — what the memory
    path would look like without the virtually-addressed cache.  The
    TLB's miss cost now sits on the critical path of every reference,
    and a multi-banked cache would need one TLB port per bank."""

    name = "guarded-translate-first"

    def __init__(self, costs: CostModel | None = None,
                 cache_bytes: int = 128 * 1024, tlb_entries: int = 64):
        super().__init__(costs)
        self.cache = SimpleCache(total_bytes=cache_bytes)
        self.tlb = Lookaside(tlb_entries)

    def access(self, ref: MemRef) -> int:
        # translation completes before the cache can be indexed: the
        # serial cycle is paid on every access, the walk on TLB misses
        cycles = self.costs.tlb_serial + self.costs.cache_hit
        if not self.tlb.probe(ref.vaddr // 4096):
            cycles += self.costs.tlb_walk
        if not self.cache.probe(ref.vaddr, space=0):
            cycles += self.costs.cache_miss_penalty
        return cycles

    def switch(self, pid: int) -> int:
        return 0


@dataclass(frozen=True)
class TranslationPoint:
    scheme: str
    cycles_per_access: float
    tlb_probes: int


def translation_position(refs: int = 10_000, pages: int = 512,
                         costs: CostModel | None = None,
                         seed: int = 29) -> list[TranslationPoint]:
    """Same low-locality workload through both translation positions."""
    costs = costs or CostModel()
    trace = working_set(0, refs, hot_pages=16, cold_pages=pages,
                        hot_fraction=0.6, seed=seed)
    points = []
    for scheme in (GuardedPointerScheme(costs), TranslateFirstScheme(costs)):
        metrics = scheme.run(trace)
        points.append(TranslationPoint(
            scheme=scheme.name,
            cycles_per_access=metrics.cycles_per_access,
            tlb_probes=scheme.tlb.hits + scheme.tlb.misses,
        ))
    return points


# ---------------------------------------------------------------------------
# A3 — cost-model sensitivity of the E9 headline
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SensitivityPoint:
    variant: str
    paged_over_guarded: float


def cost_sensitivity(refs_per_process: int = 2000,
                     seed: int = 31) -> list[SensitivityPoint]:
    """The E9 quantum-1 headline (flush paging vs guarded) under halved
    and doubled flush/walk costs: the ordering must be robust."""
    base = CostModel()
    variants = {
        "default": base,
        "cheap-flushes": dc_replace(base, tlb_flush=base.tlb_flush // 2,
                                    cache_flush=base.cache_flush // 2),
        "dear-flushes": dc_replace(base, tlb_flush=base.tlb_flush * 2,
                                   cache_flush=base.cache_flush * 2),
        "cheap-walks": dc_replace(base, tlb_walk=base.tlb_walk // 2),
        "dear-walks": dc_replace(base, tlb_walk=base.tlb_walk * 2),
    }
    traces = [working_set(pid, refs_per_process, seed=seed + pid)
              for pid in range(4)]
    trace = interleave(traces, quantum=1)
    points = []
    for name, costs in variants.items():
        guarded = GuardedPointerScheme(costs).run(trace).total_cycles
        paged = PagedSeparateScheme(costs).run(trace).total_cycles
        points.append(SensitivityPoint(variant=name,
                                       paged_over_guarded=paged / guarded))
    return points


# ---------------------------------------------------------------------------
# A5 — overcommit: paging beneath segments (§4.2's substrate)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OvercommitPoint:
    overcommit: float          #: touched bytes / physical bytes
    cycles: int
    evictions: int
    swap_ins: int


def overcommit_sweep(ratios=(0.5, 1.5, 3.0), frames: int = 24,
                     swap_cycles: int = 200) -> list[OvercommitPoint]:
    """One thread sweeping an address range larger than physical memory:
    §4.2's premise that segments live on paging means over-committed
    virtual space degrades gracefully (eviction latency) rather than
    failing."""
    from repro.runtime.swap import SwapManager
    page = 4096
    points = []
    for ratio in ratios:
        chip = MAPChip(ChipConfig(memory_bytes=frames * page))
        kernel = Kernel(chip, arena_base=1 << 22, arena_order=22)
        swap = SwapManager(kernel, swap_cycles=swap_cycles)
        pages_touched = max(int(frames * ratio), 1)
        data = kernel.allocate_segment(pages_touched * page)
        touches = "\n".join(
            f"st r2, r1, {i * page}" for i in range(pages_touched))
        entry = kernel.load_program(f"movi r2, 1\n{touches}\nhalt")
        kernel.spawn(entry, regs={1: data.word}, stack_bytes=0)
        result = kernel.run(max_cycles=5_000_000)
        assert result.reason == "halted", result.reason
        points.append(OvercommitPoint(
            overcommit=ratio,
            cycles=result.cycles,
            evictions=swap.stats.evictions,
            swap_ins=swap.stats.swap_ins,
        ))
    return points


# ---------------------------------------------------------------------------
# A4 — hardware RESTRICT vs the M-Machine's gateway emulation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RestrictCosts:
    hardware_cycles: int
    gateway_cycles: int

    @property
    def emulation_factor(self) -> float:
        return self.gateway_cycles / self.hardware_cycles


def restrict_hardware_vs_gateway() -> RestrictCosts:
    """Total cycles to restrict a pointer to read-only, both ways."""
    # hardware: one RESTRICT instruction
    kernel = Kernel(MAPChip(ChipConfig(memory_bytes=4 * 1024 * 1024)))
    data = kernel.allocate_segment(4096)
    entry = kernel.load_program("""
        movi r4, perm:read_only
        restrict r5, r3, r4
        halt
    """)
    kernel.spawn(entry, regs={3: data.word}, stack_bytes=0)
    hw = kernel.run()
    assert hw.reason == "halted"

    # gateway: enter-priv call into the SETPTR routine
    kernel2 = Kernel(MAPChip(ChipConfig(memory_bytes=4 * 1024 * 1024)))
    svc = services_mod.install(kernel2)
    data2 = kernel2.allocate_segment(4096)
    entry2 = kernel2.load_program("""
        movi r4, perm:read_only
        getip r15, ret
        jmp r1
    ret:
        halt
    """)
    thread = kernel2.spawn(entry2, regs={1: svc.restrict_gateway.word,
                                         3: data2.word}, stack_bytes=0)
    gw = kernel2.run()
    assert gw.reason == "halted"
    assert thread.regs.read(5).tag
    return RestrictCosts(hardware_cycles=hw.cycles, gateway_cycles=gw.cycles)
