"""E6 — §4.1: hardware costs of guarded pointers.

Two measurements:

* **Storage**: the tag bit adds exactly 1 bit per 64-bit word.  The
  paper states "a 1.5% increase in the amount of memory required by the
  system"; the exact figure is 1/64 = 1.5625 %.  Measured here from the
  tagged-memory model's own accounting, not recomputed.
* **Checking hardware**: what each §5 scheme needs beyond the CPU —
  lookaside buffers, in-memory tables, per-bank replication — from the
  inventory table.  Guarded pointers need one permission decoder, one
  masked comparator, and zero tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.overhead import (
    HARDWARE_INVENTORY,
    HardwareInventory,
    memory_bits,
    tag_overhead,
)
from repro.mem.tagged_memory import TaggedMemory


@dataclass(frozen=True)
class StorageRow:
    memory_bytes: int
    data_bits: int
    tag_bits: int
    overhead: float


def storage_overhead(sizes_bytes=(1 << 20, 8 << 20, 1 << 30)) -> list[StorageRow]:
    """Tag storage accounting at several memory sizes — constant 1/64."""
    rows = []
    for size in sizes_bytes:
        memory = TaggedMemory(size)
        rows.append(StorageRow(
            memory_bytes=size,
            data_bits=memory.data_bits,
            tag_bits=memory.tag_bits,
            overhead=memory.tag_overhead,
        ))
    return rows


def paper_claim_check() -> dict[str, float]:
    """The measured overhead against the paper's rounded 1.5 %."""
    measured = TaggedMemory(8 << 20).tag_overhead
    return {
        "measured": measured,
        "closed_form": tag_overhead(),
        "paper_claim": 0.015,
        "ratio_to_claim": measured / 0.015,
    }


def system_bits(words: int = 1 << 20) -> dict[str, int]:
    """Total bits with and without tags for a 1M-word memory."""
    return {
        "untagged": memory_bits(words, tagged=False),
        "tagged": memory_bits(words, tagged=True),
        "extra": memory_bits(words, True) - memory_bits(words, False),
    }


def inventory() -> list[HardwareInventory]:
    """The §4.1/§5 protection-hardware comparison table."""
    return list(HARDWARE_INVENTORY)
