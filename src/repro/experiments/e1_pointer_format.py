"""E1 — Figure 1: the guarded-pointer format.

Demonstrates that every architectural field round-trips through the
64-bit encoding and that segment geometry (base, limit, offset) falls
out of pure masking.  The benchmark additionally measures the cost of
encode/decode in the simulator, standing in for the paper's claim that
the decode hardware is "a small amount of random logic".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import ADDRESS_BITS, LENGTH_BITS, MAX_SEGLEN, PERM_BITS
from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer


@dataclass(frozen=True)
class FormatRow:
    description: str
    perm: str
    seglen: int
    address: int
    word_hex: str
    segment_base: int
    segment_size: int


#: representative pointers spanning the format's range (Figure 1's
#: caption: segments from one byte to the whole address space)
REPRESENTATIVE = [
    ("one-byte key", Permission.KEY, 0, 0x42),
    ("cache-line object", Permission.READ_WRITE, 6, 0x1_0040),
    ("page-sized buffer", Permission.READ_ONLY, 12, 0x7_F000),
    ("16 MiB heap", Permission.READ_WRITE, 24, 0x0300_0000 + 0x1234),
    ("code segment", Permission.EXECUTE_USER, 16, 0x40_0000),
    ("subsystem gateway", Permission.ENTER_USER, 16, 0x40_0000),
    ("whole address space", Permission.EXECUTE_PRIV, MAX_SEGLEN, 0xDEAD_BEEF),
]


def format_table() -> list[FormatRow]:
    """Encode each representative pointer and decode its geometry."""
    rows = []
    for description, perm, seglen, address in REPRESENTATIVE:
        p = GuardedPointer.make(perm, seglen, address)
        # round-trip through the raw word, as a store/load would
        q = GuardedPointer.from_word(p.word)
        assert q == p
        rows.append(FormatRow(
            description=description,
            perm=perm.name,
            seglen=seglen,
            address=address,
            word_hex=f"{p.word.value:#018x}",
            segment_base=q.segment_base,
            segment_size=q.segment_size,
        ))
    return rows


def bit_budget() -> dict[str, int]:
    """The Figure 1 field widths — must total exactly 64."""
    budget = {
        "permission": PERM_BITS,
        "segment_length": LENGTH_BITS,
        "address": ADDRESS_BITS,
    }
    assert sum(budget.values()) == 64
    return budget


def exhaustive_roundtrip(samples: int = 2048, seed: int = 1) -> int:
    """Round-trip ``samples`` random pointers; returns count verified.
    (The hypothesis suite does this continuously; the benchmark uses it
    as a deterministic kernel to time.)"""
    import random
    rng = random.Random(seed)
    perms = list(Permission)
    verified = 0
    for _ in range(samples):
        perm = rng.choice(perms)
        seglen = rng.randrange(MAX_SEGLEN + 1)
        address = rng.randrange(1 << ADDRESS_BITS)
        p = GuardedPointer.make(perm, seglen, address)
        q = GuardedPointer.from_word(p.word)
        assert (q.permission, q.seglen, q.address) == (perm, seglen, address)
        verified += 1
    return verified
