"""E9 — §5.1 / §3: context-switch cost across protection schemes.

Runs the same multiprogrammed working-set mix through every §5 scheme
at several switch granularities (quantum in references per slice).  At
quantum 1 this is the M-Machine's cycle-by-cycle domain interleaving;
at 10⁴ it is classic timeslicing.  The prediction: guarded pointers
(and other single-space schemes) are insensitive to the quantum, the
flush-everything design collapses as quanta shrink, and the crossover
ordering matches §5's qualitative argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import all_schemes
from repro.sim.costs import CostModel
from repro.sim.multiprogram import interleave
from repro.sim.runner import Row, run_comparison
from repro.sim.workloads import gups, pointer_chase, working_set, zipf


@dataclass(frozen=True)
class QuantumResult:
    quantum: int
    rows: list  #: list[Row]

    def cycles(self, scheme: str) -> int:
        return next(r for r in self.rows if r.scheme == scheme).total_cycles

    def relative(self, scheme: str, baseline: str = "guarded-pointers") -> float:
        return self.cycles(scheme) / self.cycles(baseline)


def make_trace(processes: int = 4, refs_per_process: int = 4000,
               quantum: int = 100, seed: int = 13):
    traces = [
        working_set(pid, refs_per_process, hot_pages=8, cold_pages=128,
                    seed=seed + pid)
        for pid in range(processes)
    ]
    return interleave(traces, quantum=quantum)


def sweep(quanta=(1, 10, 100, 1000, 10_000), processes: int = 4,
          refs_per_process: int = 4000, costs: CostModel | None = None,
          seed: int = 13) -> list[QuantumResult]:
    costs = costs or CostModel()
    results = []
    for quantum in quanta:
        trace = make_trace(processes, refs_per_process, quantum, seed)
        rows = run_comparison(all_schemes(costs), trace)
        results.append(QuantumResult(quantum=quantum, rows=rows))
    return results


#: per-process generators the workload sweep draws from
WORKLOADS = {
    "working-set": lambda pid, n, seed: working_set(pid, n, seed=seed),
    "zipf": lambda pid, n, seed: zipf(pid, n, seed=seed),
    "gups": lambda pid, n, seed: gups(pid, n // 2, seed=seed),
    "pointer-chase": lambda pid, n, seed: pointer_chase(pid, n, seed=seed),
}


def workload_sweep(quantum: int = 10, processes: int = 4,
                   refs_per_process: int = 3000,
                   costs: CostModel | None = None,
                   seed: int = 47) -> dict[str, QuantumResult]:
    """The cross-scheme comparison under four locality profiles — the
    E9 shape must not be an artifact of one synthetic workload."""
    costs = costs or CostModel()
    results = {}
    for name, make in WORKLOADS.items():
        traces = [make(pid, refs_per_process, seed + pid)
                  for pid in range(processes)]
        trace = interleave(traces, quantum=quantum)
        rows = run_comparison(all_schemes(costs), trace)
        results[name] = QuantumResult(quantum=quantum, rows=rows)
    return results


def switch_cost_table(costs: CostModel | None = None) -> dict[str, int]:
    """Pure per-switch protection work (no trace): what each scheme
    charges to change domains."""
    costs = costs or CostModel()
    table = {}
    for scheme in all_schemes(costs):
        scheme.switch(0)
        scheme.current_pid = 0
        table[scheme.name] = scheme.switch(1)
    return table
