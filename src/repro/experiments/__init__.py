"""One module per reproduced experiment (see DESIGN.md §4).

Each module exposes pure functions that compute the experiment's rows;
``benchmarks/`` wraps them in pytest-benchmark harnesses and prints the
tables recorded in EXPERIMENTS.md.

=====  ==============================================================
E1     Figure 1 — pointer format round-trips, bit budget
E2     Figure 2 — LEA masked-comparator exactness, checked-arith rate
E3     Figure 3 — enter-pointer call vs inline vs kernel trap
E4     Figure 4 — two-way protection cost vs live pointers
E5     Figure 5/§3 — multithreading across domains, 3 machine configs
E6     §4.1 — tag storage overhead, protection-hardware inventory
E7     §4.2 — internal/external fragmentation, buddy vs no-coalesce
E8     §5.1 — sharing: n×m page-table entries vs m pointers; in-cache
E9     §5.1/§3 — context-switch cost across schemes vs quantum
E10    §5.2 — segmentation two-level latency + rigidity table
E11    §5.3 — capability-table indirection latency
E12    §5.4 — SFI dynamic check overhead
E13    §4.3 — revocation unmap vs sweep; address-space GC scaling
E14    §4.2 — sparse software capabilities vs the tag bit
E15    §3 (extension) — guarded pointers across the mesh
E17    modern battleground — nine schemes over the service trace
A1–A4  ablations of the design ingredients (see ``ablations``)
=====  ==============================================================
"""

from repro.experiments import (
    ablations,
    e1_pointer_format,
    e2_lea_checks,
    e3_subsystem_call,
    e4_two_way,
    e5_multithreading,
    e6_tag_overhead,
    e7_fragmentation,
    e8_sharing,
    e9_context_switch,
    e10_segmentation,
    e11_captable,
    e12_sfi,
    e13_revocation_gc,
    e14_sparse_capabilities,
    e15_multinode,
    e17_compartmentalization,
)

__all__ = [
    "ablations",
    "e1_pointer_format",
    "e2_lea_checks",
    "e3_subsystem_call",
    "e4_two_way",
    "e5_multithreading",
    "e6_tag_overhead",
    "e7_fragmentation",
    "e8_sharing",
    "e9_context_switch",
    "e10_segmentation",
    "e11_captable",
    "e12_sfi",
    "e13_revocation_gc",
    "e14_sparse_capabilities",
    "e15_multinode",
    "e17_compartmentalization",
]
