"""E8 — §5.1: the cost of sharing.

Two measurements:

* **Protection state**: page-based schemes need one page-table entry
  per (page, process) — n×m growth; guarded pointers need one pointer
  per process, whatever the region size.
* **In-cache sharing**: processes referencing the same data through a
  virtually-addressed cache.  Guarded pointers (single space) share
  lines; ASID-tagged schemes hold one synonym copy per process and miss
  proportionally more.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.overhead import sharing_entries_guarded, sharing_entries_paged
from repro.baselines import all_schemes
from repro.baselines.asid import AsidPagedScheme
from repro.baselines.guarded import GuardedPointerScheme
from repro.sim.costs import CostModel
from repro.sim.workloads import shared_access


@dataclass(frozen=True)
class EntriesRow:
    pages: int
    processes: int
    paged_entries: int
    guarded_entries: int

    @property
    def ratio(self) -> float:
        return self.paged_entries / self.guarded_entries


def entries_grid(page_counts=(16, 256, 4096),
                 process_counts=(2, 8, 32)) -> list[EntriesRow]:
    """Protection-state entries over an (n pages × m processes) grid."""
    rows = []
    for pages in page_counts:
        for processes in process_counts:
            rows.append(EntriesRow(
                pages=pages,
                processes=processes,
                paged_entries=sharing_entries_paged(pages, processes),
                guarded_entries=sharing_entries_guarded(processes),
            ))
    return rows


def entries_all_schemes(pages: int = 256,
                        processes: int = 8) -> dict[str, int]:
    """Protection-state entries each §5 scheme needs for ``processes``
    processes to share ``pages`` pages — n×m for the page-table-per-
    process family, m for the capability family."""
    return {
        scheme.name: scheme.share_cost_entries(pages, processes)
        for scheme in all_schemes()
    }


@dataclass(frozen=True)
class InCacheRow:
    processes: int
    guarded_misses: int
    asid_misses: int
    guarded_cycles: int
    asid_cycles: int

    @property
    def miss_ratio(self) -> float:
        return self.asid_misses / max(self.guarded_misses, 1)


def in_cache_sharing(process_counts=(1, 2, 4, 8), refs_per_process: int = 2000,
                     costs: CostModel | None = None, seed: int = 9) -> list[InCacheRow]:
    """Same shared-region trace through both cache-tagging disciplines."""
    costs = costs or CostModel()
    rows = []
    for m in process_counts:
        trace = shared_access(list(range(m)), refs_per_process, seed=seed)
        guarded = GuardedPointerScheme(costs)
        asid = AsidPagedScheme(costs)
        gm = guarded.run(trace)
        am = asid.run(trace)
        rows.append(InCacheRow(
            processes=m,
            guarded_misses=guarded.cache.misses,
            asid_misses=asid.cache.misses,
            guarded_cycles=gm.total_cycles,
            asid_cycles=am.total_cycles,
        ))
    return rows
