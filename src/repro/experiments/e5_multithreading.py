"""E5 — Figure 5 / §3: cycle-by-cycle multithreading across protection
domains.

The M-Machine interleaves instructions from different protection
domains every cycle; guarded pointers make that free because no
per-domain state exists outside the registers.  A conventional machine
pays a pipeline drain (and possibly TLB/cache flushes) whenever
consecutively issued threads belong to different domains — which at
cycle granularity means *every* issue.

This experiment runs the same mix of compute/memory threads on one
cluster under three configurations:

* ``guarded``       — the M-Machine: no switch penalty;
* ``conventional``  — an 8-cycle domain-switch drain;
* ``conventional+flush`` — the drain plus TLB and cache flushes
  (the separate-address-space design of §5.1).

and reports utilization and total cycles as thread count grows.  The
paper's prediction: guarded-pointer utilization *improves* with more
threads (latency hiding), conventional utilization collapses, which is
why machines like Alewife and Tera restricted resident threads to one
protection domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.chip import ChipConfig, RunReason
from repro.sim.api import Simulation


@dataclass(frozen=True)
class MTPoint:
    config: str
    threads: int
    cycles: int
    issued_bundles: int
    utilization: float
    switch_stalls: int


#: a thread alternating compute with loads — enough memory traffic that
#: multithreading has latency to hide
WORKER = """
    movi r2, {iterations}
loop:
    beq r2, done
    ld r3, r1, 0      | addi r4, r4, 1
    ld r5, r1, 512    | addi r4, r4, 1
    addi r4, r4, 3
    subi r2, r2, 1
    br loop
done:
    halt
"""


def run_config(name: str, threads: int, penalty: int, flush: bool,
               iterations: int = 200) -> MTPoint:
    """Run ``threads`` workers, each in its own protection domain, on a
    single cluster."""
    sim = Simulation(ChipConfig(
        memory_bytes=4 * 1024 * 1024,
        threads_per_cluster=max(threads, 1),
        domain_switch_penalty=penalty,
        flush_on_domain_switch=flush,
    ))
    source = WORKER.format(iterations=iterations)
    for t in range(threads):
        data = sim.allocate(4096, eager=True)
        sim.spawn(source, domain=t + 1, cluster=0,
                  regs={1: data.word}, stack_bytes=0)
    result = sim.run(max_cycles=5_000_000)
    assert result.reason == RunReason.HALTED, result.reason
    cluster = sim.chip.clusters[0]
    return MTPoint(
        config=name,
        threads=threads,
        cycles=result.cycles,
        issued_bundles=result.issued_bundles,
        utilization=result.utilization,
        switch_stalls=cluster.switch_stall_cycles,
    )


CONFIGS = [
    ("guarded", 0, False),
    ("conventional", 8, False),
    ("conventional+flush", 8, True),
]


def sweep(thread_counts=(1, 2, 4), iterations: int = 200) -> list[MTPoint]:
    """The full grid: every config at every thread count."""
    points = []
    for name, penalty, flush in CONFIGS:
        for threads in thread_counts:
            points.append(run_config(name, threads, penalty, flush, iterations))
    return points


def utilization_by_config(points: list[MTPoint]) -> dict[str, dict[int, float]]:
    table: dict[str, dict[int, float]] = {}
    for p in points:
        table.setdefault(p.config, {})[p.threads] = p.utilization
    return table
