"""E10 — §5.2: guarded pointers versus table-based segmentation.

* **Latency**: segmentation resolves a descriptor and performs the
  base+offset add *before* the cache on every reference (two-level
  translation); guarded pointers carry the descriptor in the pointer.
  Measured over workloads touching 1..N segments, so descriptor-cache
  pressure is visible.
* **Rigidity**: the fixed split between segment number and offset
  bounds both the count and size of segments in classical designs; a
  guarded pointer's floating boundary allows any power-of-two carve-up
  of the 2⁵⁴-byte space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.guarded import GuardedPointerScheme
from repro.baselines.segmentation import SegmentationScheme
from repro.core.constants import ADDRESS_BITS
from repro.sim.costs import CostModel
from repro.sim.workloads import multi_segment


@dataclass(frozen=True)
class LatencyRow:
    segments: int
    guarded_cpa: float       #: cycles per access
    segmentation_cpa: float
    descriptor_miss_rate: float

    @property
    def slowdown(self) -> float:
        return self.segmentation_cpa / self.guarded_cpa


def latency_vs_segments(segment_counts=(1, 4, 16, 64, 256),
                        refs: int = 8000, costs: CostModel | None = None,
                        seed: int = 17) -> list[LatencyRow]:
    costs = costs or CostModel()
    rows = []
    for n in segment_counts:
        trace = multi_segment(0, refs, segments=n, seed=seed)
        guarded = GuardedPointerScheme(costs)
        seg = SegmentationScheme(costs)
        gm = guarded.run(trace)
        sm = seg.run(trace)
        probes = seg.descriptors.hits + seg.descriptors.misses
        rows.append(LatencyRow(
            segments=n,
            guarded_cpa=gm.cycles_per_access,
            segmentation_cpa=sm.cycles_per_access,
            descriptor_miss_rate=seg.descriptors.misses / probes,
        ))
    return rows


@dataclass(frozen=True)
class RigidityRow:
    system: str
    max_segments: str
    max_segment_bytes: str
    boundary: str


def rigidity_table() -> list[RigidityRow]:
    """The §5.2 comparison of addressing rigidity (paper's own
    examples)."""
    return [
        RigidityRow("Multics", "2^18 per process", "2^18 words",
                    "fixed segment/offset split"),
        RigidityRow("Intel 8086", "2^16", "2^16 bytes",
                    "fixed 16-bit offset"),
        RigidityRow("Intel 80386", "2^16 per process", "2^32 bytes",
                    "48-bit far pointers"),
        RigidityRow("guarded pointers",
                    f"up to 2^{ADDRESS_BITS} one-byte segments",
                    f"up to 2^{ADDRESS_BITS} bytes (one segment)",
                    "floating: any power-of-two split"),
    ]


def flexibility_demonstration() -> list[tuple[int, int]]:
    """(segment count, segment size) pairs all simultaneously encodable:
    the product is the whole address space at every split."""
    return [(1 << (ADDRESS_BITS - k), 1 << k) for k in range(0, ADDRESS_BITS + 1, 6)]
