"""E14 — §4.2: the opportunity cost of losing 10 address bits.

The paper concedes one cost of guarded pointers: systems like Amoeba
protect objects with *software* capabilities hidden in a huge sparse
virtual address space, "a strategy which becomes less attractive if the
virtual address space shrinks by a factor of 1000."

This experiment quantifies that concession and its resolution:

* **Sparse-capability forgery.** With ``n`` live objects hidden in a
  ``2^b``-byte space, a random guess hits with probability ``n/2^b``.
  Measured by Monte-Carlo attack against 64-bit and 54-bit spaces: the
  54-bit space is exactly 1024× easier to guess into.
* **The resolution.** "this particular use of a sparse virtual address
  space can be replaced by the capability mechanism provided by guarded
  pointers" — a brute-force attacker cannot forge a guarded pointer at
  all, because guessing bit patterns never sets the tag.  Measured by
  running the same attack against the hardware checks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.exceptions import TagFault
from repro.core.operations import check_load
from repro.core.word import TaggedWord


@dataclass(frozen=True)
class SparseAttack:
    address_bits: int
    live_objects: int
    guesses: int
    hits: int
    expected_hits: float

    @property
    def hit_rate(self) -> float:
        return self.hits / self.guesses


def sparse_attack(address_bits: int, live_objects: int = 1 << 20,
                  guesses: int = 1_000_000, seed: int = 37) -> SparseAttack:
    """Monte-Carlo forgery against Amoeba-style sparse capabilities.

    Object placements are modelled as uniformly random page-aligned
    addresses; a guess 'hits' when it lands on a live object's page.
    Working at page granularity (2^12) keeps the simulation exact while
    representative: hiding is done in the page number bits.
    """
    rng = random.Random(seed)
    page_bits = address_bits - 12
    pages = 1 << page_bits
    live = set()
    while len(live) < live_objects:
        live.add(rng.getrandbits(page_bits))
    hits = sum(1 for _ in range(guesses)
               if rng.getrandbits(page_bits) in live)
    return SparseAttack(
        address_bits=address_bits,
        live_objects=live_objects,
        guesses=guesses,
        hits=hits,
        expected_hits=guesses * live_objects / pages,
    )


def shrink_comparison(live_objects: int = 1 << 20,
                      guesses: int = 2_000_000,
                      seed: int = 41) -> dict[int, SparseAttack]:
    """The same attack against 64-bit and 54-bit sparse spaces."""
    return {
        bits: sparse_attack(bits, live_objects, guesses, seed)
        for bits in (64, 54)
    }


@dataclass(frozen=True)
class GuardedAttack:
    guesses: int
    tag_faults: int
    successes: int


def guarded_attack(guesses: int = 100_000, seed: int = 43) -> GuardedAttack:
    """Brute-force 'forgery' against guarded pointers: fabricate random
    64-bit patterns and try to use them as load addresses.  User code
    cannot set the tag bit, so every attempt is a TagFault — density of
    live objects is irrelevant."""
    rng = random.Random(seed)
    tag_faults = successes = 0
    for _ in range(guesses):
        fabricated = TaggedWord.integer(rng.getrandbits(64))
        try:
            check_load(fabricated)
            successes += 1
        except TagFault:
            tag_faults += 1
    return GuardedAttack(guesses=guesses, tag_faults=tag_faults,
                         successes=successes)


def shrink_factor() -> int:
    """The paper's 'factor of 1000': 2^(64-54)."""
    return 1 << 10
