"""E11 — §5.3: guarded pointers versus table-based capabilities.

Traditional capability machines (System/38, Intel 432) translate
capability → virtual address through an object table before the normal
translation — the two-level latency the paper blames for capabilities'
failure to catch on.  Guarded pointers delete the first level.  This
experiment measures the per-access gap as the working set of live
objects grows past the capability cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.captable import CapTableScheme
from repro.baselines.guarded import GuardedPointerScheme
from repro.sim.costs import CostModel
from repro.sim.workloads import multi_segment


@dataclass(frozen=True)
class CapRow:
    live_objects: int
    capcache_entries: int
    guarded_cpa: float
    captable_cpa: float
    capcache_miss_rate: float

    @property
    def slowdown(self) -> float:
        return self.captable_cpa / self.guarded_cpa


def latency_vs_objects(object_counts=(4, 16, 32, 64, 256),
                       capcache_entries: int = 32, refs: int = 8000,
                       costs: CostModel | None = None,
                       seed: int = 19) -> list[CapRow]:
    costs = costs or CostModel()
    rows = []
    for n in object_counts:
        trace = multi_segment(0, refs, segments=n,
                              segment_bytes=16 * 1024, seed=seed)
        guarded = GuardedPointerScheme(costs)
        cap = CapTableScheme(costs, capcache_entries=capcache_entries)
        gm = guarded.run(trace)
        cm = cap.run(trace)
        probes = cap.capcache.hits + cap.capcache.misses
        rows.append(CapRow(
            live_objects=n,
            capcache_entries=capcache_entries,
            guarded_cpa=gm.cycles_per_access,
            captable_cpa=cm.cycles_per_access,
            capcache_miss_rate=cap.capcache.misses / probes,
        ))
    return rows


def storage_comparison() -> dict[str, str]:
    """§5.3's storage point: traditional capabilities need special
    registers/segments; a guarded pointer is one tagged word."""
    return {
        "guarded-pointer": "64-bit word + 1 tag bit, any GP register or memory word",
        "capability-table": "object-table entry per object + capability "
                            "representation + dedicated capability registers/segments",
    }
