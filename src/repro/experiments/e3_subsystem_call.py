"""E3 — Figure 3: protected subsystem calls without kernel intervention.

Three ways to reach a service that reads a private word and returns it,
all running the same work on the same machine:

* ``inline``  — no protection boundary: the caller holds the data
  pointer and reads the word itself (lower bound).
* ``enter``   — the guarded-pointer gateway: jump through an enter
  pointer, subsystem loads its private pointer from its code segment,
  reads, returns (Figure 3's exact sequence).
* ``trap``    — the conventional path: trap into the kernel, which does
  the read and returns; charged the kernel entry/exit latency from the
  cost model.

The paper's claim is that ``enter`` costs a handful of instructions —
no trap, no table switch — so it should land near ``inline`` and far
below ``trap``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.word import TaggedWord
from repro.machine.chip import ChipConfig, MAPChip
from repro.runtime.kernel import Kernel
from repro.runtime.subsystem import ProtectedSubsystem
from repro.sim.costs import DEFAULT_COSTS, CostModel

SECRET = 1234


@dataclass(frozen=True)
class CallCosts:
    """Total cycles to run each variant once (same startup included in
    all three, so differences are the crossing costs)."""

    inline: int
    enter: int
    trap: int

    @property
    def enter_overhead(self) -> int:
        """Cycles the protected boundary adds over no boundary."""
        return self.enter - self.inline

    @property
    def trap_overhead(self) -> int:
        return self.trap - self.inline

    @property
    def speedup_vs_trap(self) -> float:
        if self.enter_overhead <= 0:
            return float("inf")
        return self.trap_overhead / self.enter_overhead


def _fresh_kernel() -> Kernel:
    return Kernel(MAPChip(ChipConfig(memory_bytes=2 * 1024 * 1024)))


def _prepare_secret(kernel: Kernel):
    private = kernel.allocate_segment(256, eager=True)
    paddr = kernel.chip.page_table.walk(private.segment_base)
    kernel.chip.memory.store_word(paddr, TaggedWord.integer(SECRET))
    return private


def measure_inline() -> int:
    """Caller reads the word directly — no protection boundary."""
    kernel = _fresh_kernel()
    private = _prepare_secret(kernel)
    entry = kernel.load_program("""
        ld r11, r1, 0
        mov r5, r11
        halt
    """)
    thread = kernel.spawn(entry, regs={1: private.word}, stack_bytes=0)
    result = kernel.run()
    assert result.reason == "halted" and thread.regs.read(5).value == SECRET
    return result.cycles


def measure_enter_call() -> int:
    """The Figure 3 sequence through an enter pointer."""
    kernel = _fresh_kernel()
    private = _prepare_secret(kernel)
    subsystem = ProtectedSubsystem.install(kernel, """
    entry:
        getip r10, gp1
        ld r10, r10, 0
        ld r11, r10, 0
        movi r10, 0
        jmp r15
    gp1:
        .word 0
    """, data={"gp1": private})
    entry = kernel.load_program("""
        getip r15, ret
        jmp r1
    ret:
        mov r5, r11
        halt
    """)
    thread = kernel.spawn(entry, regs={1: subsystem.enter.word}, stack_bytes=0)
    result = kernel.run()
    assert result.reason == "halted" and thread.regs.read(5).value == SECRET
    return result.cycles


def measure_trap_call(costs: CostModel = DEFAULT_COSTS) -> int:
    """The conventional kernel-mediated service."""
    kernel = _fresh_kernel()
    private = _prepare_secret(kernel)
    kernel_crossing = costs.trap_entry + costs.trap_return

    def service(thread, record):
        paddr = kernel.chip.page_table.walk(private.segment_base)
        thread.regs.write(11, kernel.chip.memory.load_word(paddr))
        thread.resume()
        Kernel.advance_past_fault(thread)
        # the thread re-enters user code only after the kernel
        # entry/exit latency has elapsed
        thread.block_until(record.cycle + kernel_crossing)

    kernel.register_trap(1, service)
    entry = kernel.load_program("""
        trap 1
        mov r5, r11
        halt
    """)
    thread = kernel.spawn(entry, stack_bytes=0)
    result = kernel.run()
    assert result.reason == "halted" and thread.regs.read(5).value == SECRET
    return result.cycles


def compare(costs: CostModel = DEFAULT_COSTS) -> CallCosts:
    return CallCosts(
        inline=measure_inline(),
        enter=measure_enter_call(),
        trap=measure_trap_call(costs),
    )
