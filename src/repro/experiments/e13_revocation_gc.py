"""E13 — §4.3: revocation, relocation and address-space GC.

Capabilities make revocation hard: possession is access.  The paper
offers two mechanisms with very different costs, both measured here:

* **Unmap** the segment's pages in the single global page table — cost
  proportional to the segment's page count; every stale pointer then
  faults on use.
* **Sweep** memory overwriting every copy of the capability — cost
  proportional to all of memory (every word must be examined).

Plus the flip side of never recycling addresses: the tag-driven
address-space GC, whose scan cost scales with *mapped* memory only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.word import TaggedWord
from repro.machine.chip import ChipConfig, MAPChip
from repro.runtime.gc import AddressSpaceGC, sweep_revoke
from repro.runtime.kernel import Kernel


@dataclass(frozen=True)
class RevocationRow:
    segment_bytes: int
    memory_bytes: int
    unmap_pages: int          #: page-table operations for unmap revocation
    sweep_words: int          #: words examined for sweep revocation
    copies_overwritten: int

    @property
    def sweep_to_unmap_ratio(self) -> float:
        return self.sweep_words / max(self.unmap_pages, 1)


def _kernel(memory_bytes: int) -> Kernel:
    return Kernel(MAPChip(ChipConfig(memory_bytes=memory_bytes)))


def revocation_costs(segment_sizes=(4096, 65536, 1 << 20),
                     memory_bytes: int = 4 * 1024 * 1024,
                     holders: int = 8) -> list[RevocationRow]:
    """Unmap vs sweep for several segment sizes; ``holders`` other
    segments each hold one copy of the victim pointer."""
    rows = []
    for size in segment_sizes:
        kernel = _kernel(memory_bytes)
        victim = kernel.allocate_segment(size, eager=True)
        for i in range(holders):
            holder = kernel.allocate_segment(4096, eager=True)
            paddr = kernel.chip.page_table.walk(holder.segment_base)
            kernel.chip.memory.store_word(paddr, victim.word)
        unmap_pages = size // kernel.chip.page_table.page_bytes
        words_scanned, overwritten = sweep_revoke(kernel, victim)
        rows.append(RevocationRow(
            segment_bytes=size,
            memory_bytes=memory_bytes,
            unmap_pages=max(unmap_pages, 1),
            sweep_words=words_scanned,
            copies_overwritten=overwritten,
        ))
    return rows


@dataclass(frozen=True)
class GCRow:
    segments: int
    live_fraction: float
    words_scanned: int
    segments_freed: int
    bytes_freed: int


def gc_scaling(segment_counts=(8, 32, 128), segment_bytes: int = 8192,
               live_fraction: float = 0.5,
               memory_bytes: int = 8 * 1024 * 1024) -> list[GCRow]:
    """GC scan work versus heap population.  Half the segments are
    reachable from a root chain; the rest are garbage."""
    rows = []
    for count in segment_counts:
        kernel = _kernel(memory_bytes)
        segments = [kernel.allocate_segment(segment_bytes, eager=True)
                    for _ in range(count)]
        live = segments[: max(int(count * live_fraction), 1)]
        # chain the live segments: root -> s0 -> s1 -> ...
        for a, b in zip(live, live[1:]):
            paddr = kernel.chip.page_table.walk(a.segment_base)
            kernel.chip.memory.store_word(paddr, b.word)
        gc = AddressSpaceGC(kernel)
        stats = gc.collect(extra_roots=[live[0]])
        rows.append(GCRow(
            segments=count,
            live_fraction=live_fraction,
            words_scanned=stats.words_scanned,
            segments_freed=stats.segments_freed,
            bytes_freed=stats.bytes_freed,
        ))
    return rows


def relocation_by_unmap(memory_bytes: int = 4 * 1024 * 1024) -> dict[str, int]:
    """§4.3's relocation recipe: unmap the old pages; each subsequent
    access faults and is repaired.  Returns the bookkeeping counts from
    doing it once."""
    kernel = _kernel(memory_bytes)
    victim = kernel.allocate_segment(16 * 4096, eager=True)
    pages = 16
    table = kernel.chip.page_table
    base_page = victim.segment_base // table.page_bytes
    for page in range(base_page, base_page + pages):
        table.unmap(page)
    faults_on_use = 0
    try:
        table.walk(victim.segment_base)
    except Exception:
        faults_on_use += 1
    return {"pages_unmapped": pages, "faults_on_first_use": faults_on_use}
