"""E4 — Figure 4: two-way protection via return segments.

One-way protection (E3) protects the subsystem from the caller; the
return segment additionally protects the caller from the subsystem.
Its price is explicit: one store per live pointer before the call, one
load per pointer in the reload trampoline after, plus the extra jump
through the return segment.  This experiment measures total call cycles
as a function of the number of live pointers encapsulated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.chip import ChipConfig, MAPChip
from repro.runtime.kernel import Kernel
from repro.runtime.subsystem import ProtectedSubsystem, ReturnSegment


@dataclass(frozen=True)
class TwoWayPoint:
    save_slots: int
    cycles: int


def _caller_source(rs: ReturnSegment) -> str:
    """Register convention: live pointers in r1..rN (N ≤ 8), subsystem
    enter in r11, return-segment RW in r12, return-segment enter in r13
    (the two enter pointers survive the wipe — Figure 4B keeps them)."""
    saves = "\n".join(
        f"    st r{i + 1}, r12, {rs.slot_offset(i)}"
        for i in range(rs.save_slots)
    )
    wipes = "\n".join(
        f"    movi r{i + 1}, 0" for i in range(rs.save_slots)
    )
    return f"""
        getip r10, after
        st r10, r12, {rs.retip_offset}
{saves}
        movi r12, 0
        movi r10, 0
{wipes}
        jmp r11
    after:
        halt
    """


def measure(save_slots: int) -> int:
    """Cycles for one two-way protected call saving ``save_slots`` live
    pointers (r1..rN are live pointers to the caller's segments)."""
    if save_slots > 8:
        raise ValueError("the register convention supports at most 8 live pointers")
    kernel = Kernel(MAPChip(ChipConfig(memory_bytes=4 * 1024 * 1024)))
    rs = ReturnSegment.build(kernel, save_slots=save_slots)
    subsystem = ProtectedSubsystem.install(kernel, "entry:\n  jmp r13")
    regs: dict[int, object] = {
        11: subsystem.enter.word,
        12: rs.readwrite.word,
        13: rs.enter.word,
    }
    live_segments = []
    for i in range(save_slots):
        segment = kernel.allocate_segment(4096)
        live_segments.append(segment)
        regs[i + 1] = segment.word
    caller = kernel.load_program(_caller_source(rs))
    thread = kernel.spawn(caller, regs=regs, stack_bytes=0)
    result = kernel.run()
    assert result.reason == "halted", result.reason
    # every saved pointer must come back
    for i, segment in enumerate(live_segments):
        restored = thread.regs.read(i + 1)
        assert restored == segment.word, f"slot {i} lost"
    return result.cycles


def sweep(max_slots: int = 8) -> list[TwoWayPoint]:
    """Call cost versus encapsulated pointer count."""
    return [TwoWayPoint(save_slots=n, cycles=measure(n))
            for n in range(0, max_slots + 1)]


def marginal_cost_per_pointer(points: list[TwoWayPoint]) -> float:
    """Cycles added per extra live pointer (slope of the sweep) —
    should be small and constant: one ST, one LD, no kernel work."""
    if len(points) < 2:
        raise ValueError("need at least two points")
    first, last = points[0], points[-1]
    return (last.cycles - first.cycles) / (last.save_slots - first.save_slots)
