"""Machine-level fault records.

When a guarded-pointer check, decode, or translation fails during
execution, the thread stops with a :class:`FaultRecord` describing what
happened.  System software (``repro.runtime.kernel``) inspects the
record, repairs the cause (maps a page, rejects the access, services a
trap) and either resumes or kills the thread.  Because no architectural
state is committed for a faulting bundle, resuming simply re-executes
it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import GuardedPointerFault


class TrapFault(GuardedPointerFault):
    """A TRAP instruction: a synchronous call into the kernel.

    Guarded pointers make most services unprivileged (enter-pointer
    subsystems); TRAP exists so experiment E3 can compare against the
    conventional trap-mediated path.
    """

    def __init__(self, code: int):
        self.code = code
        super().__init__(f"trap {code}")


@dataclass(frozen=True, slots=True)
class FaultRecord:
    """Everything the kernel needs to service a fault."""

    thread_id: int
    cycle: int
    cause: GuardedPointerFault
    opcode_name: str
    ip_address: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"thread {self.thread_id} @cycle {self.cycle}: "
            f"{type(self.cause).__name__} in {self.opcode_name} "
            f"(ip={self.ip_address:#x}): {self.cause}"
        )
