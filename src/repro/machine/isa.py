"""The MAP instruction set (§3).

The MAP's clusters are statically-scheduled LIW processors with three
execution units — integer, memory and floating point — so an
instruction *bundle* holds up to three operations, one per slot.  Each
operation is encoded in one 64-bit word::

    opcode[63:58] | rd[57:54] | ra[53:50] | rb[49:46] | imm[43:0] (signed)

and a bundle is three consecutive words (int, mem, fp order), 24 bytes,
so the instruction pointer — itself a guarded execute pointer — steps by
:data:`BUNDLE_BYTES` per bundle and branch displacements are byte
offsets checked by the LEA bounds rule.

Guarded-pointer operations (LEA/LEAB/RESTRICT/SUBSEG/SETPTR and the
checked LD/ST) live in the memory slot; ISPOINTER, jumps and traps in
the integer slot, mirroring where the checking hardware sits (§2.2,
§4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.word import TaggedWord

#: Bytes per encoded operation.
OP_BYTES = 8

#: Operations per bundle (int, mem, fp).
SLOTS = 3

#: Bytes per instruction bundle.
BUNDLE_BYTES = OP_BYTES * SLOTS

#: Number of integer and of floating-point registers per thread.
NUM_REGS = 16

#: Width of the signed immediate field.
IMM_BITS = 44

IMM_MAX = (1 << (IMM_BITS - 1)) - 1
IMM_MIN = -(1 << (IMM_BITS - 1))


class Slot(enum.IntEnum):
    """Execution-unit slot an operation occupies."""

    INT = 0
    MEM = 1
    FP = 2


class Fmt(enum.Enum):
    """Operand formats, used by the encoder and the assembler."""

    NONE = ()                       # HALT
    RRR = ("rd", "ra", "rb")        # add rd, ra, rb
    RRI = ("rd", "ra", "imm")       # addi rd, ra, imm
    RR = ("rd", "ra")               # mov rd, ra
    RI = ("rd", "imm")              # movi rd, imm
    R = ("ra",)                     # jmp ra
    I = ("imm",)                    # br imm  / trap imm


class Opcode(enum.IntEnum):
    """All MAP operations.  Values are the 6-bit encodings."""

    # -- integer slot --------------------------------------------------
    NOP = 0
    ADD = 1
    SUB = 2
    MUL = 3
    AND = 4
    OR = 5
    XOR = 6
    SHL = 7
    SHR = 8
    SLT = 9
    SEQ = 10
    ADDI = 11
    SUBI = 12
    ANDI = 13
    ORI = 14
    XORI = 15
    SHLI = 16
    SHRI = 17
    SLTI = 18
    SEQI = 19
    MOVI = 20
    MOV = 21
    ISPTR = 22
    BR = 23       #: IP-relative branch (byte displacement, LEA-checked)
    BEQ = 24      #: branch when ra == 0
    BNE = 25      #: branch when ra != 0
    JMP = 26      #: jump through a pointer (enter→execute conversion)
    GETIP = 27    #: rd ← execute pointer at IP + imm (for return addresses)
    HALT = 28
    TRAP = 29     #: synchronous trap to the kernel with code imm

    # -- memory slot ---------------------------------------------------
    LD = 32       #: rd ← mem[ra + imm]
    ST = 33       #: mem[ra + imm] ← rd  (rd is read)
    LDF = 34      #: f[rd] ← mem[ra + imm]
    STF = 35      #: mem[ra + imm] ← f[rd]
    LEA = 36
    LEAR = 37     #: LEA with register offset
    LEAB = 38
    LEABR = 39
    SETPTR = 40   #: privileged
    RESTRICT = 41 #: rd ← restrict(ra, perm=rb)
    SUBSEG = 42   #: rd ← subseg(ra, len=rb)

    # -- floating-point slot --------------------------------------------
    FNOP = 48
    FADD = 49
    FSUB = 50
    FMUL = 51
    FDIV = 52
    FMOV = 53
    ITOF = 54     #: f[rd] ← float(r[ra])
    FTOI = 55     #: r[rd] ← int(f[ra])


#: slot and operand format of every opcode
OP_INFO: dict[Opcode, tuple[Slot, Fmt]] = {
    Opcode.NOP: (Slot.INT, Fmt.NONE),
    Opcode.ADD: (Slot.INT, Fmt.RRR),
    Opcode.SUB: (Slot.INT, Fmt.RRR),
    Opcode.MUL: (Slot.INT, Fmt.RRR),
    Opcode.AND: (Slot.INT, Fmt.RRR),
    Opcode.OR: (Slot.INT, Fmt.RRR),
    Opcode.XOR: (Slot.INT, Fmt.RRR),
    Opcode.SHL: (Slot.INT, Fmt.RRR),
    Opcode.SHR: (Slot.INT, Fmt.RRR),
    Opcode.SLT: (Slot.INT, Fmt.RRR),
    Opcode.SEQ: (Slot.INT, Fmt.RRR),
    Opcode.ADDI: (Slot.INT, Fmt.RRI),
    Opcode.SUBI: (Slot.INT, Fmt.RRI),
    Opcode.ANDI: (Slot.INT, Fmt.RRI),
    Opcode.ORI: (Slot.INT, Fmt.RRI),
    Opcode.XORI: (Slot.INT, Fmt.RRI),
    Opcode.SHLI: (Slot.INT, Fmt.RRI),
    Opcode.SHRI: (Slot.INT, Fmt.RRI),
    Opcode.SLTI: (Slot.INT, Fmt.RRI),
    Opcode.SEQI: (Slot.INT, Fmt.RRI),
    Opcode.MOVI: (Slot.INT, Fmt.RI),
    Opcode.MOV: (Slot.INT, Fmt.RR),
    Opcode.ISPTR: (Slot.INT, Fmt.RR),
    Opcode.BR: (Slot.INT, Fmt.I),
    Opcode.BEQ: (Slot.INT, Fmt.RI),
    Opcode.BNE: (Slot.INT, Fmt.RI),
    Opcode.JMP: (Slot.INT, Fmt.R),
    Opcode.GETIP: (Slot.INT, Fmt.RI),
    Opcode.HALT: (Slot.INT, Fmt.NONE),
    Opcode.TRAP: (Slot.INT, Fmt.I),
    Opcode.LD: (Slot.MEM, Fmt.RRI),
    Opcode.ST: (Slot.MEM, Fmt.RRI),
    Opcode.LDF: (Slot.MEM, Fmt.RRI),
    Opcode.STF: (Slot.MEM, Fmt.RRI),
    Opcode.LEA: (Slot.MEM, Fmt.RRI),
    Opcode.LEAR: (Slot.MEM, Fmt.RRR),
    Opcode.LEAB: (Slot.MEM, Fmt.RRI),
    Opcode.LEABR: (Slot.MEM, Fmt.RRR),
    Opcode.SETPTR: (Slot.MEM, Fmt.RR),
    Opcode.RESTRICT: (Slot.MEM, Fmt.RRR),
    Opcode.SUBSEG: (Slot.MEM, Fmt.RRR),
    Opcode.FNOP: (Slot.FP, Fmt.NONE),
    Opcode.FADD: (Slot.FP, Fmt.RRR),
    Opcode.FSUB: (Slot.FP, Fmt.RRR),
    Opcode.FMUL: (Slot.FP, Fmt.RRR),
    Opcode.FDIV: (Slot.FP, Fmt.RRR),
    Opcode.FMOV: (Slot.FP, Fmt.RR),
    Opcode.ITOF: (Slot.FP, Fmt.RR),
    Opcode.FTOI: (Slot.FP, Fmt.RR),
}

assert set(OP_INFO) == set(Opcode)

#: Opcodes that write an integer register through the ``rd`` field.
WRITES_RD = {
    op for op, (_, fmt) in OP_INFO.items()
    if fmt in (Fmt.RRR, Fmt.RRI, Fmt.RR, Fmt.RI) and op not in
    (Opcode.ST, Opcode.STF, Opcode.BEQ, Opcode.BNE, Opcode.LDF,
     Opcode.ITOF, Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
     Opcode.FMOV)
}

#: Opcodes that write a floating-point register through ``rd``.
WRITES_FD = {Opcode.LDF, Opcode.ITOF, Opcode.FADD, Opcode.FSUB,
             Opcode.FMUL, Opcode.FDIV, Opcode.FMOV}


class DecodeError(Exception):
    """A word does not decode to a legal operation."""


@dataclass(frozen=True, slots=True)
class Operation:
    """One decoded operation: an opcode plus register/immediate fields."""

    opcode: Opcode
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for name in ("rd", "ra", "rb"):
            reg = getattr(self, name)
            if not 0 <= reg < NUM_REGS:
                raise ValueError(f"{name} out of range: {reg}")
        if not IMM_MIN <= self.imm <= IMM_MAX:
            raise ValueError(f"immediate out of range: {self.imm}")

    @property
    def slot(self) -> Slot:
        return OP_INFO[self.opcode][0]

    @property
    def fmt(self) -> Fmt:
        return OP_INFO[self.opcode][1]

    def encode(self) -> TaggedWord:
        """Pack into an untagged 64-bit word."""
        imm_field = self.imm & ((1 << IMM_BITS) - 1)
        raw = (
            (int(self.opcode) << 58)
            | (self.rd << 54)
            | (self.ra << 50)
            | (self.rb << 46)
            | imm_field
        )
        return TaggedWord.integer(raw)

    @staticmethod
    def decode(word: TaggedWord) -> "Operation":
        """Unpack a 64-bit word; raises :class:`DecodeError` on a
        reserved opcode or a tagged word (pointers are not code)."""
        if word.tag:
            raise DecodeError("cannot execute a pointer as an instruction")
        raw = word.value
        code = (raw >> 58) & 0x3F
        try:
            opcode = Opcode(code)
        except ValueError:
            raise DecodeError(f"reserved opcode {code}") from None
        imm = raw & ((1 << IMM_BITS) - 1)
        if imm >= 1 << (IMM_BITS - 1):
            imm -= 1 << IMM_BITS
        return Operation(
            opcode,
            rd=(raw >> 54) & 0xF,
            ra=(raw >> 50) & 0xF,
            rb=(raw >> 46) & 0xF,
            imm=imm,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        fields = self.fmt.value
        shown = ", ".join(str(getattr(self, f)) for f in fields)
        return f"{self.opcode.name.lower()} {shown}".strip()


@dataclass(frozen=True, slots=True)
class Bundle:
    """One LIW instruction: up to three operations, one per slot."""

    int_op: Operation
    mem_op: Operation
    fp_op: Operation
    #: non-filler operations in the bundle; precomputed at decode time
    #: because issue charges it to the thread's stats every cycle
    live_ops: int = field(init=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if self.int_op.slot is not Slot.INT:
            raise ValueError(f"{self.int_op.opcode.name} is not an integer-slot op")
        if self.mem_op.slot is not Slot.MEM and self.mem_op.opcode is not Opcode.NOP:
            raise ValueError(f"{self.mem_op.opcode.name} is not a memory-slot op")
        # the fp slot's filler is FNOP (an FP-slot op), so a strict slot
        # check here lets the disassembler tell code from .word data
        if self.fp_op.slot is not Slot.FP:
            raise ValueError(f"{self.fp_op.opcode.name} is not an fp-slot op")
        object.__setattr__(self, "live_ops", sum(
            1 for op in (self.int_op, self.mem_op, self.fp_op)
            if op.opcode is not Opcode.NOP and op.opcode is not Opcode.FNOP
        ))

    @staticmethod
    def of(*ops: Operation) -> "Bundle":
        """Build a bundle from 1–3 operations, filling empty slots with
        NOPs.  At most one operation per slot."""
        slots: dict[Slot, Operation] = {}
        for op in ops:
            if op.slot in slots:
                raise ValueError(f"two operations in the {op.slot.name} slot")
            slots[op.slot] = op
        return Bundle(
            int_op=slots.get(Slot.INT, Operation(Opcode.NOP)),
            mem_op=slots.get(Slot.MEM, Operation(Opcode.NOP)),
            fp_op=slots.get(Slot.FP, Operation(Opcode.FNOP)),
        )

    @property
    def operations(self) -> tuple[Operation, Operation, Operation]:
        return (self.int_op, self.mem_op, self.fp_op)

    def encode(self) -> list[TaggedWord]:
        """Three words, int/mem/fp order."""
        return [op.encode() for op in self.operations]

    @staticmethod
    def decode(words: list[TaggedWord]) -> "Bundle":
        if len(words) != SLOTS:
            raise DecodeError(f"a bundle is {SLOTS} words, got {len(words)}")
        ops = [Operation.decode(w) for w in words]
        try:
            return Bundle(int_op=ops[0], mem_op=ops[1], fp_op=ops[2])
        except ValueError as e:
            raise DecodeError(str(e)) from None

    def written_registers(self) -> set[tuple[str, int]]:
        """(bank, index) pairs written by this bundle — used by the
        assembler to reject intra-bundle write conflicts, which a
        statically-scheduled LIW forbids."""
        written = set()
        for op in self.operations:
            if op.opcode in WRITES_RD:
                written.add(("r", op.rd))
            elif op.opcode in WRITES_FD:
                written.add(("f", op.rd))
        return written
