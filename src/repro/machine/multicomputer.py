"""The M-Machine as a multicomputer (§3).

Multiple MAP nodes share the single 54-bit global address space: the
high-order address bits name the *home node* of every byte.  A guarded
pointer therefore works unchanged across the machine — permission and
bounds checks still happen in the issuing node's execution units, and
no node needs any table describing another node's protection state.
That is the multicomputer half of the paper's story: capability
protection with zero distributed bookkeeping.

Remote accesses travel the 3-D mesh (request and reply through
:class:`~repro.machine.network.MeshNetwork`), are serviced by the home
node's memory, and are not cached locally (the real M-Machine cached
remote blocks under an LTLB protocol; bypassing keeps the model simple
and conservative — remote stays slower than local, which is the only
property the experiments rely on).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import ADDRESS_BITS
from repro.core.exceptions import PageFault
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord
from repro.machine.chip import ChipConfig, MAPChip, RunReason, RunResult
from repro.machine.counters import merge_snapshots
from repro.machine.network import MeshNetwork, MeshShape
from repro.machine.thread import Thread
from repro.mem.cache import AccessResult
from repro.runtime.kernel import Kernel


def node_bits_for(nodes: int) -> int:
    """Address bits reserved to name the home node."""
    if nodes <= 0:
        raise ValueError("need at least one node")
    return max(nodes - 1, 0).bit_length()


@dataclass(frozen=True, slots=True)
class Partition:
    """The global-address-space carve-up across nodes."""

    node_bits: int

    @property
    def shift(self) -> int:
        return ADDRESS_BITS - self.node_bits

    def home_of(self, vaddr: int) -> int:
        return vaddr >> self.shift if self.node_bits else 0

    def base_of(self, node: int) -> int:
        return node << self.shift

    def span(self) -> int:
        """Bytes of address space per node."""
        return 1 << self.shift


class Multicomputer:
    """A mesh of MAP nodes over one global address space.

    Each node gets its own :class:`~repro.runtime.kernel.Kernel` whose
    arena lives inside the node's partition; page faults on remote
    addresses are forwarded to the home node's kernel, so demand paging
    works machine-wide.
    """

    def __init__(self, shape: MeshShape | None = None,
                 chip_config: ChipConfig | None = None,
                 hop_cycles: int = 5, interface_cycles: int = 10,
                 arena_order: int = 30):
        self.shape = shape or MeshShape()
        self.network = MeshNetwork(self.shape, hop_cycles=hop_cycles,
                                   interface_cycles=interface_cycles)
        self.partition = Partition(node_bits_for(self.shape.nodes))
        if arena_order > self.partition.shift:
            raise ValueError("arena larger than a node's partition")
        config = chip_config or ChipConfig()
        self.chips: list[MAPChip] = []
        self.kernels: list[Kernel] = []
        for node in range(self.shape.nodes):
            chip = MAPChip(config)
            chip.node_id = node
            chip.obs.node = node
            chip.router = self
            arena_base = self.partition.base_of(node) + (1 << arena_order)
            kernel = Kernel(chip, arena_base=arena_base,
                            arena_order=arena_order)
            chip.fault_handler = self._make_fault_handler(kernel)
            self.chips.append(chip)
            self.kernels.append(kernel)
        # Any unmap anywhere must reach every node's decoded-bundle
        # cache: a thread may be executing code homed on another node,
        # and revocation-by-unmap (§4.3) is machine-wide.
        for chip in self.chips:
            chip.page_table.add_invalidation_hook(self._flush_all_decoded)
        self.network.obs_lookup = lambda node: self.chips[node].obs
        self.arena_order = arena_order
        #: migration forwarding map: virtual page → current home node,
        #: for pages moved off their partition-defined home node by
        #: repro.persist.migrate.  Pointers are never rewritten when a
        #: process migrates — the bits in every register and memory
        #: word stay put — so this page-granular map (a translation
        #: artifact, like the page table) is the *only* state that
        #: changes when pages change nodes.
        self._page_homes: dict[int, int] = {}
        self._page_bytes = config.page_bytes

    def home_of(self, vaddr: int) -> int:
        """The node currently holding ``vaddr``: the partition's static
        assignment unless migration moved the page.

        Node counts that are not a power of two leave the tail of the
        partition space unpopulated (6 nodes span 8 three-bit homes):
        an address whose high bits name a missing node has *no* home,
        so it raises :class:`PageFault` — the same fault an unmapped
        page takes — instead of letting a forged pointer index past the
        chip list."""
        if self._page_homes:
            home = self._page_homes.get(vaddr // self._page_bytes)
            if home is not None:
                return home
        home = self.partition.home_of(vaddr)
        if home >= len(self.chips):
            raise PageFault(vaddr,
                            f"address {vaddr:#x} names node {home} of a "
                            f"{len(self.chips)}-node machine")
        return home

    def rehome_page(self, page: int, node: int) -> None:
        """Point a virtual page's home at ``node`` (migration's half of
        the translation update; the page's words move separately)."""
        if not 0 <= node < len(self.chips):
            raise ValueError(f"node id out of range: {node}")
        if self.partition.home_of(page * self._page_bytes) == node:
            self._page_homes.pop(page, None)  # back on its static home
        else:
            self._page_homes[page] = node

    def _flush_all_decoded(self, _virtual_page: int) -> None:
        for chip in self.chips:
            chip._flush_decoded_local()

    def invalidate_decoded(self, vaddr: int) -> None:
        """Router half of store-coherence for decoded bundles: a write
        anywhere drops the bundles overlapping that word on every node."""
        for chip in self.chips:
            chip.invalidate_decoded_word(vaddr)

    def invalidate_decoded_range(self, base: int, nbytes: int) -> None:
        """Machine-wide half of :meth:`MAPChip.invalidate_decoded_range`."""
        for chip in self.chips:
            chip._invalidate_decoded_range_local(base, nbytes)

    def flush_decoded(self) -> None:
        """Machine-wide half of :meth:`MAPChip.flush_decoded` (runtime
        physical stores cannot be reverse-translated on any node)."""
        for chip in self.chips:
            chip._flush_decoded_local()

    # -- the router contract used by MAPChip.access_memory ---------------

    def is_local(self, chip: MAPChip, vaddr: int) -> bool:
        return self.home_of(vaddr) == chip.node_id

    def remote_access(self, chip: MAPChip, vaddr: int, *, write: bool,
                      now: int, value: TaggedWord | None = None) -> AccessResult:
        """Service an access whose home is another node (keyword-only
        port signature, shared with ``MAPChip.access_memory`` and
        ``BankedCache.access``)."""
        home = self.chips[self.home_of(vaddr)]
        # PageFault → local thread; the home node's translation line
        # memo answers repeat traffic (cleared by the home unmap hook,
        # so remote revocation stays airtight)
        physical = home.cache.translate_functional(vaddr)
        arrive = self.network.deliver(chip.node_id, home.node_id, now)
        serviced = arrive + home.cache.external_cycles
        reply = self.network.deliver(home.node_id, chip.node_id, serviced)
        if write:
            if value is None:
                raise ValueError("store requires a value")
            chip.counters.incr("router.remote_writes")
            home.memory.store_word(physical, value)
            word = TaggedWord.zero()
        else:
            chip.counters.incr("router.remote_reads")
            word = home.memory.load_word(physical)
        chip.counters.incr("router.remote_cycles", reply - now)
        if chip.obs.enabled:
            chip.obs.remote_latency.add(reply - now)
        return AccessResult(word=word, ready_cycle=reply, hit=False, bank=-1)

    def remote_walk(self, vaddr: int) -> tuple[MAPChip, int]:
        """Functional translation at the home node (used by fetch),
        through the home node's translation line memo."""
        home = self.chips[self.home_of(vaddr)]
        return home, home.cache.translate_functional(vaddr)

    # -- machine-wide fault handling ------------------------------------------

    def _make_fault_handler(self, local_kernel: Kernel):
        def handler(record, thread: Thread) -> None:
            cause = record.cause
            if isinstance(cause, PageFault):
                try:
                    home = self.kernels[self.home_of(cause.vaddr)]
                except PageFault:
                    # the faulting address has no home node at all
                    # (non-power-of-two mesh tail): nothing to demand-
                    # page, the local kernel just records the fault
                    home = local_kernel
                if home is not local_kernel and home._demand_page(cause.vaddr):
                    thread.resume()
                    return
            local_kernel._handle_fault(record, thread)
        return handler

    # -- global-kernel conveniences -----------------------------------------------

    def allocate_on(self, node: int, nbytes: int, perm=None,
                    eager: bool = False) -> GuardedPointer:
        kwargs = {} if perm is None else {"perm": perm}
        return self.kernels[node].allocate_segment(nbytes, eager=eager, **kwargs)

    def load_on(self, node: int, source, **kwargs) -> GuardedPointer:
        return self.kernels[node].load_program(source, **kwargs)

    def spawn_on(self, node: int, entry: GuardedPointer, **kwargs) -> Thread:
        return self.kernels[node].spawn(entry, **kwargs)

    # -- machine-wide performance counters ---------------------------------

    def counters_snapshot(self) -> dict[str, int | float]:
        """Every node's counter file merged into one view: bare names
        are machine-wide sums, ``node<N>.*`` names stay per-node."""
        return merge_snapshots(
            {chip.node_id: chip.counters.snapshot() for chip in self.chips})

    # -- the machine-wide clock ----------------------------------------------------

    def all_threads(self) -> list[Thread]:
        return [t for chip in self.chips for t in chip.all_threads()]

    def step(self) -> int:
        """Advance every node one cycle in lockstep; returns bundles
        issued machine-wide (the mesh half of :meth:`MAPChip.step`)."""
        issued = 0
        for chip in self.chips:
            issued += chip.step()
        return issued

    def advance_idle(self, cycles: int) -> None:
        """Machine-wide half of :meth:`MAPChip.advance_idle`: skip
        guaranteed-idle cycles on every node in lockstep."""
        if any(chip._runnable_count for chip in self.chips):
            raise ValueError("cannot skip cycles while threads are runnable")
        if cycles > 0:
            for chip in self.chips:
                chip._skip_idle(cycles)

    def run(self, max_cycles: int = 1_000_000) -> RunResult:
        """Step every node in lockstep until all threads stop.

        Like :meth:`MAPChip.run`, liveness comes from the clusters'
        incremental counts, and all-blocked stretches (threads waiting
        on the mesh) fast-forward every node's clock to the earliest
        wake-up in the machine.
        """
        cycles = 0
        issued = 0
        chips = self.chips
        fast_forward = all(c.config.idle_fast_forward for c in chips)
        while cycles < max_cycles:
            runnable = sum(c.runnable_threads() for c in chips)
            if runnable == 0:
                if any(cl.faulted_count for c in chips for cl in c.clusters):
                    reason = RunReason.FAULTED
                else:
                    reason = RunReason.HALTED
                return RunResult(cycles, issued, reason)
            if fast_forward and sum(c.ready_threads() for c in chips) == 0:
                wakes = [w for w in (c.next_wake() for c in chips)
                         if w is not None]
                # nodes run in lockstep: now is identical on every chip
                target = min(min(wakes), chips[0].now + (max_cycles - cycles))
                skip = target - chips[0].now
                if skip > 0:
                    for chip in chips:
                        chip._skip_idle(skip)
                    cycles += skip
                    continue
            for chip in chips:
                issued += chip.step()
            cycles += 1
        return RunResult(cycles, issued, RunReason.MAX_CYCLES)

    # -- persistence (repro.persist) -----------------------------------

    def capture_state(self) -> dict:
        """The whole machine — every node, the mesh timing state and
        the migration forwarding map — as one JSON-safe payload (see
        :func:`repro.persist.image.capture_multicomputer`)."""
        from repro.persist.image import capture_multicomputer

        return capture_multicomputer(self)

    def restore_state(self, state: dict) -> None:
        from repro.persist.image import restore_multicomputer_state

        restore_multicomputer_state(self, state)
