"""The M-Machine as a multicomputer (§3) — windowed mesh engine.

Multiple MAP nodes share the single 54-bit global address space: the
high-order address bits name the *home node* of every byte.  A guarded
pointer therefore works unchanged across the machine — permission and
bounds checks still happen in the issuing node's execution units, and
no node needs any table describing another node's protection state.
That is the multicomputer half of the paper's story: capability
protection with zero distributed bookkeeping.

Remote accesses travel the 3-D mesh (request and reply through
:class:`~repro.machine.network.MeshNetwork`), are serviced by the home
node's memory, and are not cached locally (the real M-Machine cached
remote blocks under an LTLB protocol; bypassing keeps the model simple
and conservative — remote stays slower than local, which is the only
property the experiments rely on).

**The window protocol.**  The mesh has a hard minimum one-way latency:
two interface crossings plus at least one hop
(``2*interface_cycles + hop_cycles``).  That bound is exactly the
*lookahead* a conservative parallel-discrete-event engine needs — a
message injected at cycle ``T`` cannot affect its destination before
``T + W`` — so the machine advances in windows of ``W`` cycles:

* within a window every node runs **independently**; all cross-node
  traffic (remote loads/stores, remote code-word fetches, decode-cache
  invalidations, flushes) is queued in per-node outboxes instead of
  touching another node's state directly;
* at each window barrier the queued messages are sorted by the
  deterministic key ``(cycle, src_node, seq)``, network timing is
  computed in that order (reproducing the injection-port serialisation
  a cycle-interleaved engine would see), home nodes service the
  requests in that order, and replies/invalidations are applied back
  at the sources in that order.

Because nodes never interact inside a window, advancing the nodes of a
window serially, or sharded across OS processes
(:mod:`repro.machine.parallel`), produces **bit-identical** machines —
the partitioned-vs-lockstep fuzz axis proves it continuously.

Semantics under the protocol (visible differences from a
cycle-interleaved engine, all bounded by one window):

* remote stores are *posted*: the issuing thread proceeds immediately
  (it never blocked on stores before either) and the word lands in the
  home memory at the barrier, timestamped with its true network
  arrival;
* a remote load blocks its thread on the :data:`REMOTE_WAIT` sentinel;
  the barrier computes the true reply cycle ``R`` (always ≥ the next
  barrier, by the lookahead bound) and rewrites the wake-up;
* remote *code* words are mirrored: a fetch touching words homed
  elsewhere requests them at the barrier and retries out of the
  per-chip mirror.  Homes remember which code words they exported and
  broadcast invalidations when those words are overwritten, so the
  mirror obeys the same coherence contract as the decoded-bundle
  cache;
* demand paging for remote accesses happens home-side at the barrier
  (the home kernel maps the page and the access retries in place), so
  machine-wide lazy allocation works exactly as before — without a
  fault/resume round trip through the issuing thread;
* revocation (unmap/flush) propagates at window granularity: the local
  node drops its own state immediately, every other node at the next
  barrier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import ADDRESS_BITS
from repro.core.exceptions import PageFault
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord
from repro.machine.chip import ChipConfig, MAPChip, RunReason, RunResult
from repro.machine.counters import merge_snapshots
from repro.machine.faults import FaultRecord
from repro.machine.isa import OP_BYTES
from repro.machine.network import MeshNetwork, MeshShape
from repro.machine.registers import word_to_float
from repro.machine.thread import REMOTE_WAIT, Thread, ThreadState
from repro.mem.cache import AccessResult
from repro.runtime.kernel import Kernel


def node_bits_for(nodes: int) -> int:
    """Address bits reserved to name the home node."""
    if nodes <= 0:
        raise ValueError("need at least one node")
    return max(nodes - 1, 0).bit_length()


@dataclass(frozen=True, slots=True)
class Partition:
    """The global-address-space carve-up across nodes."""

    node_bits: int

    @property
    def shift(self) -> int:
        return ADDRESS_BITS - self.node_bits

    def home_of(self, vaddr: int) -> int:
        return vaddr >> self.shift if self.node_bits else 0

    def base_of(self, node: int) -> int:
        return node << self.shift

    def span(self) -> int:
        """Bytes of address space per node."""
        return 1 << self.shift


def window_cycles(hop_cycles: int, interface_cycles: int) -> int:
    """The conservative lookahead: the minimum one-way latency of any
    cross-node message (source interface + one hop + destination
    interface), floored at 1 cycle."""
    return max(1, 2 * interface_cycles + hop_cycles)


class Multicomputer:
    """A mesh of MAP nodes over one global address space, advanced in
    conservative lookahead windows (see the module docstring).

    Each node gets its own :class:`~repro.runtime.kernel.Kernel` whose
    arena lives inside the node's partition; page faults on remote
    addresses are serviced by the home node's kernel at the window
    barrier, so demand paging works machine-wide.
    """

    def __init__(self, shape: MeshShape | None = None,
                 chip_config: ChipConfig | None = None,
                 hop_cycles: int = 5, interface_cycles: int = 10,
                 arena_order: int = 30):
        self.shape = shape or MeshShape()
        self.network = MeshNetwork(self.shape, hop_cycles=hop_cycles,
                                   interface_cycles=interface_cycles)
        self.partition = Partition(node_bits_for(self.shape.nodes))
        if arena_order > self.partition.shift:
            raise ValueError("arena larger than a node's partition")
        config = chip_config or ChipConfig()
        self.chips: list[MAPChip] = []
        self.kernels: list[Kernel] = []
        for node in range(self.shape.nodes):
            chip = MAPChip(config)
            chip.node_id = node
            chip.obs.node = node
            chip.router = self
            arena_base = self.partition.base_of(node) + (1 << arena_order)
            kernel = Kernel(chip, arena_base=arena_base,
                            arena_order=arena_order)
            # remote page faults never reach a thread anymore — the
            # home kernel demand-pages at the barrier — so the local
            # kernel's own handler is the whole fault story
            chip.fault_handler = kernel._handle_fault
            self.chips.append(chip)
            self.kernels.append(kernel)
        # Any unmap anywhere must reach every node's decoded-bundle
        # cache and remote-code mirror: a thread may be executing code
        # homed on another node, and revocation-by-unmap (§4.3) is
        # machine-wide.  The unmapping chip's own hook already flushed
        # locally; the machine hook broadcasts to everyone else at the
        # next window barrier.
        for chip in self.chips:
            chip.page_table.add_invalidation_hook(self._make_unmap_hook(chip))
        self.network.obs_lookup = lambda node: self.chips[node].obs
        self.arena_order = arena_order
        #: migration forwarding map: virtual page → current home node,
        #: for pages moved off their partition-defined home node by
        #: repro.persist.migrate.  Pointers are never rewritten when a
        #: process migrates — the bits in every register and memory
        #: word stay put — so this page-granular map (a translation
        #: artifact, like the page table) is the *only* state that
        #: changes when pages change nodes.
        self._page_homes: dict[int, int] = {}
        self._page_bytes = config.page_bytes
        # -- window-engine state ---------------------------------------
        #: conservative lookahead: barrier spacing in cycles
        self.window = window_cycles(hop_cycles, interface_cycles)
        #: absolute cycle of the next window barrier
        self._next_barrier = self.window
        #: per-node outbox of cross-node messages queued this window
        self._outbox: list[list[list]] = [[] for _ in self.chips]
        #: per-node message sequence counters (the third component of
        #: the deterministic barrier sort key)
        self._seq: list[int] = [0] * len(self.chips)
        #: (src, seq) of the most recently queued remote load, so the
        #: cluster can attach its destination register immediately
        self._last_load: tuple[int, int] = (0, -1)
        self._external_cycles = config.external_cycles

    def home_of(self, vaddr: int) -> int:
        """The node currently holding ``vaddr``: the partition's static
        assignment unless migration moved the page.

        Node counts that are not a power of two leave the tail of the
        partition space unpopulated (6 nodes span 8 three-bit homes):
        an address whose high bits name a missing node has *no* home,
        so it raises :class:`PageFault` — the same fault an unmapped
        page takes — instead of letting a forged pointer index past the
        chip list."""
        if self._page_homes:
            home = self._page_homes.get(vaddr // self._page_bytes)
            if home is not None:
                return home
        home = self.partition.home_of(vaddr)
        if home >= len(self.chips):
            raise PageFault(vaddr,
                            f"address {vaddr:#x} names node {home} of a "
                            f"{len(self.chips)}-node machine")
        return home

    def rehome_page(self, page: int, node: int) -> None:
        """Point a virtual page's home at ``node`` (migration's half of
        the translation update; the page's words move separately)."""
        if not 0 <= node < len(self.chips):
            raise ValueError(f"node id out of range: {node}")
        if self.partition.home_of(page * self._page_bytes) == node:
            self._page_homes.pop(page, None)  # back on its static home
        else:
            self._page_homes[page] = node

    # -- the per-node outbox -----------------------------------------------

    def _enqueue(self, src: int, message: list) -> int:
        """Queue a cross-node message; returns its sequence number (the
        message's third field, already filled in by the caller via
        :meth:`_next_seq`)."""
        self._outbox[src].append(message)
        return message[3]

    def _next_seq(self, src: int) -> int:
        seq = self._seq[src]
        self._seq[src] = seq + 1
        return seq

    def _in_flight(self) -> bool:
        return any(self._outbox)

    def _make_unmap_hook(self, chip: MAPChip):
        def hook(_virtual_page: int) -> None:
            src = chip.node_id
            self._enqueue(src, ["flush", chip.now, src,
                                self._next_seq(src)])
        return hook

    # -- decode-cache coherence (router half) ------------------------------

    def note_local_store(self, chip: MAPChip, vaddr: int, now: int) -> None:
        """A store on ``chip`` to an address it homes: if that code
        word was ever exported to a remote fetcher, broadcast an
        invalidation so every mirror and decode cache drops it at the
        next barrier (the local caches were already dropped at issue)."""
        aligned = vaddr - (vaddr % OP_BYTES)
        if aligned in chip._exported_code:
            chip._exported_code.discard(aligned)
            src = chip.node_id
            self._enqueue(src, ["inv", now, src, self._next_seq(src),
                                aligned])

    def invalidate_decoded_range(self, chip: MAPChip, base: int,
                                 nbytes: int) -> None:
        """Machine-wide half of :meth:`MAPChip.invalidate_decoded_range`:
        drop the range locally now, everywhere else at the barrier."""
        chip._invalidate_decoded_range_local(base, nbytes)
        src = chip.node_id
        self._enqueue(src, ["invr", chip.now, src, self._next_seq(src),
                            base, nbytes])

    def flush_decoded(self, chip: MAPChip) -> None:
        """Machine-wide half of :meth:`MAPChip.flush_decoded` (runtime
        physical stores cannot be reverse-translated on any node)."""
        chip._flush_decoded_local()
        src = chip.node_id
        self._enqueue(src, ["flush", chip.now, src, self._next_seq(src)])

    # -- the router contract used by MAPChip.access_memory ---------------

    def is_local(self, chip: MAPChip, vaddr: int) -> bool:
        return self.home_of(vaddr) == chip.node_id

    def remote_access(self, chip: MAPChip, vaddr: int, *, write: bool,
                      now: int, value: TaggedWord | None = None) -> AccessResult:
        """Queue an access whose home is another node (keyword-only
        port signature, shared with ``MAPChip.access_memory`` and
        ``BankedCache.access``).

        Stores are posted (the thread proceeds; the word lands at the
        barrier).  Loads return the :data:`REMOTE_WAIT` sentinel as
        their ready cycle — the cluster blocks the thread on it and the
        barrier rewrites the wake-up with the true reply cycle."""
        src = chip.node_id
        seq = self._next_seq(src)
        if write:
            if value is None:
                raise ValueError("store requires a value")
            chip.counters.incr("router.remote_writes")
            self._enqueue(src, ["st", now, src, seq, vaddr,
                                value.value, value.tag])
            return AccessResult(word=TaggedWord.zero(), ready_cycle=now,
                                hit=False, bank=-1)
        chip.counters.incr("router.remote_reads")
        self._enqueue(src, ["ld", now, src, seq, vaddr])
        self._last_load = (src, seq)
        return AccessResult(word=TaggedWord.zero(), ready_cycle=REMOTE_WAIT,
                            hit=False, bank=-1)

    def bind_remote_load(self, chip: MAPChip, tid: int, bank: str,
                         rd: int) -> None:
        """Attach the destination register of the remote load this chip
        just issued (the cluster calls this immediately after seeing
        the :data:`REMOTE_WAIT` sentinel)."""
        src, seq = self._last_load
        chip._remote_pending[seq] = (tid, bank, rd)

    def fetch_remote(self, chip: MAPChip, vaddrs: list[int],
                     now: int) -> int:
        """Request remote code words for an instruction fetch; returns
        the barrier cycle at which the mirror will hold them (the
        cluster blocks the thread until then and retries).

        A bundle straddling a partition edge can name words with two
        different homes, so the request is split per home node — each
        home services exactly its own words."""
        src = chip.node_id
        by_home: dict[int, list[int]] = {}
        for vaddr in vaddrs:
            by_home.setdefault(self.home_of(vaddr), []).append(vaddr)
        for home in sorted(by_home):
            self._enqueue(src, ["fetch", now, src, self._next_seq(src),
                                by_home[home]])
        return self._next_barrier

    # -- the window barrier ------------------------------------------------

    def _collect_messages(self) -> list[list]:
        """Drain every outbox into one deterministically ordered batch:
        sorted by (cycle, src_node, seq) — exactly the order a
        cycle-interleaved lockstep engine would have presented them to
        the network and the home memories."""
        messages: list[list] = []
        for box in self._outbox:
            messages.extend(box)
            box.clear()
        messages.sort(key=lambda m: (m[1], m[2], m[3]))
        return messages

    def _home_translate(self, home_node: int, vaddr: int) -> int | None:
        """Functional translation at the home node, demand-paging
        through the home kernel on a miss (the barrier-time equivalent
        of the old fault-forwarding path).  Returns the physical
        address, or None when the address is genuinely unmapped."""
        home = self.chips[home_node]
        try:
            return home.cache.translate_functional(vaddr)
        except PageFault:
            if not self.kernels[home_node]._demand_page(vaddr):
                return None
            try:
                return home.cache.translate_functional(vaddr)
            except PageFault:
                return None

    def _apply_home_op(self, msg: list, home_node: int) -> list:
        """Service one request at its home node; returns the reply
        payload (delivered back to the source in phase B).  Runs at the
        home — in the sharded engine this executes inside the worker
        process that owns ``home_node``."""
        kind = msg[0]
        home = self.chips[home_node]
        if kind == "st":
            _, _t, _src, _seq, vaddr, value, tag = msg
            physical = self._home_translate(home_node, vaddr)
            if physical is None:
                return ["sterr", vaddr]
            home.memory.store_word(physical, TaggedWord(value, tag))
            # the remote writer's invalidation fan-out (phase B) covers
            # every mirror; the home's exported record is now stale
            home._exported_code.discard(vaddr - (vaddr % OP_BYTES))
            return ["stdone"]
        if kind == "ld":
            _, _t, _src, _seq, vaddr = msg
            physical = self._home_translate(home_node, vaddr)
            if physical is None:
                return ["lderr", vaddr]
            word = home.memory.load_word(physical)
            return ["lddone", value_pair(word)]
        if kind == "fetch":
            fills = []
            for vaddr in msg[4]:
                physical = self._home_translate(home_node, vaddr)
                if physical is None:
                    fills.append([vaddr, None])
                    continue
                word = home.memory.load_word(physical)
                home._exported_code.add(vaddr - (vaddr % OP_BYTES))
                fills.append([vaddr, value_pair(word)])
            return ["fetched", fills]
        raise AssertionError(f"not a home-serviced message: {kind!r}")

    def _plan_barrier(self, messages: list[list]):
        """Phase A, network half: charge the mesh for every request +
        reply in deterministic order and split the batch into per-home
        service lists and per-node invalidation fan-outs.

        Returns ``(home_ops, timing)`` where ``home_ops`` maps home
        node → ordered ``(index, msg)`` pairs and ``timing`` maps
        message index → ``(arrive, reply)`` cycles for the timed kinds.
        Pure function of the batch plus network state — the sharded
        engine runs it on the coordinator, which owns the mesh."""
        home_ops: dict[int, list] = {}
        timing: dict[int, tuple[int, int]] = {}
        for index, msg in enumerate(messages):
            kind = msg[0]
            if kind in ("st", "ld"):
                t, src, vaddr = msg[1], msg[2], msg[4]
                home = self.home_of(vaddr)
                arrive = self.network.deliver(src, home, t)
                serviced = arrive + self._external_cycles
                reply = self.network.deliver(home, src, serviced)
                timing[index] = (arrive, reply)
                home_ops.setdefault(home, []).append((index, msg))
            elif kind == "fetch":
                # code-word fetch is functional (no timing charge), as
                # instruction fetch always was
                home = self.home_of(msg[4][0])
                home_ops.setdefault(home, []).append((index, msg))
            # inv / invr / flush broadcasts carry no home-side work:
            # they become per-destination effects in _route_effects
        return home_ops, timing

    def _apply_effects(self, chip: MAPChip, effects: list) -> None:
        """Phase B at one node: apply replies and invalidation fan-outs
        in global batch order.  ``effects`` is a list of
        ``(index, payload)`` pairs already sorted by ``index``; runs at
        the owning node — in the sharded engine, inside its worker."""
        for _index, effect in effects:
            kind = effect[0]
            if kind == "fill":
                for vaddr, pair in effect[1]:
                    chip._remote_mirror[vaddr] = (None if pair is None
                                                  else tuple(pair))
            elif kind == "inv":
                vaddr = effect[1]
                chip.invalidate_decoded_word(vaddr)
                chip._remote_mirror.pop(vaddr - (vaddr % OP_BYTES), None)
            elif kind == "invr":
                base, nbytes = effect[1], effect[2]
                chip._invalidate_decoded_range_local(base, nbytes)
                mirror = chip._remote_mirror
                if mirror:
                    lo = base - (base % OP_BYTES)
                    hi = base + nbytes
                    for vaddr in [a for a in mirror if lo <= a < hi]:
                        del mirror[vaddr]
            elif kind == "flush":
                chip._flush_decoded_local()
                chip._remote_mirror.clear()
            elif kind == "lddone":
                t, seq, reply, pair = effect[1], effect[2], effect[3], effect[4]
                self._finish_remote_load(chip, t, seq, reply, pair)
            elif kind == "lderr":
                t, seq, vaddr = effect[1], effect[2], effect[3]
                self._fail_remote_load(chip, seq, vaddr)
            elif kind == "stdone":
                t, reply = effect[1], effect[2]
                chip.counters.incr("router.remote_cycles", reply - t)
                if chip.obs.enabled:
                    chip.obs.remote_latency.add(reply - t)
            elif kind == "sterr":
                t, vaddr = effect[1], effect[2]
                self._fail_remote_store(chip, vaddr, t)
            else:
                raise AssertionError(f"unknown barrier effect {kind!r}")

    def _finish_remote_load(self, chip: MAPChip, t: int, seq: int,
                            reply: int, pair) -> None:
        binding = chip._remote_pending.pop(seq, None)
        chip.counters.incr("router.remote_cycles", reply - t)
        if chip.obs.enabled:
            chip.obs.remote_latency.add(reply - t)
            chip.obs.load_to_use.add(reply - t)
        if binding is None:
            return  # thread was reaped mid-flight; the value is dropped
        tid, bank, rd = binding
        thread = _thread_by_tid(chip, tid)
        if thread is None:
            return
        word = TaggedWord(pair[0], pair[1])
        value = word if bank == "r" else word_to_float(word)
        if (thread._state is ThreadState.BLOCKED
                and thread.wake_at == REMOTE_WAIT):
            thread.pending_writes.append((bank, rd, value))
            thread.stats.stall_cycles += reply - (t + 1)
            thread.wake_at = reply
        else:
            # the thread was resumed some other way (kernel repair);
            # land the value directly, as a completed load would have
            if bank == "r":
                thread.regs.write(rd, value)
            else:
                thread.regs.write_f(rd, value)

    def _fail_remote_load(self, chip: MAPChip, seq: int, vaddr: int) -> None:
        binding = chip._remote_pending.pop(seq, None)
        if binding is None:
            return
        tid, _bank, _rd = binding
        thread = _thread_by_tid(chip, tid)
        if thread is None:
            return
        if thread.wake_at == REMOTE_WAIT and thread._state is ThreadState.BLOCKED:
            thread.wake_at = chip.now
            thread.pending_writes.clear()
        record = FaultRecord(
            thread_id=tid, cycle=chip.now,
            cause=PageFault(vaddr, f"remote load from unmapped {vaddr:#x}"),
            opcode_name="remote-load", ip_address=thread.ip.address)
        thread.record_fault(record)
        chip.report_fault(record, thread)

    def _fail_remote_store(self, chip: MAPChip, vaddr: int, t: int) -> None:
        # posted-store semantics: the fault is asynchronous and
        # imprecise (the storing thread has moved on; it may even have
        # halted).  The record lands in the chip's fault log either way.
        record = FaultRecord(
            thread_id=-1, cycle=chip.now,
            cause=PageFault(vaddr, f"remote store to unmapped {vaddr:#x}"),
            opcode_name="remote-store", ip_address=0)
        chip.fault_log.append(record)
        chip.stats.faults += 1
        chip.counters.incr(f"fault.{type(record.cause).__name__}")
        if chip.obs.enabled:
            chip.obs.emit("fault.raise", record.cycle, tid=-1,
                          cause="PageFault", site="remote-store", ip=0)

    def _route_effects(self, messages, timing, replies) -> dict[int, list]:
        """Turn home-service replies + broadcast invalidations into
        per-destination effect lists, each sorted by global batch
        index.  ``replies`` maps message index → reply payload."""
        per_node: dict[int, list] = {node: [] for node in range(len(self.chips))}
        for index, msg in enumerate(messages):
            kind = msg[0]
            t, src = msg[1], msg[2]
            if kind == "st":
                reply = replies[index]
                if reply[0] == "stdone":
                    _arrive, reply_cycle = timing[index]
                    per_node[src].append((index, ["stdone", t, reply_cycle]))
                else:
                    per_node[src].append((index, ["sterr", t, reply[1]]))
                # unconditional invalidation fan-out: any node may have
                # the written word decoded or mirrored
                for node in range(len(self.chips)):
                    if node != src:
                        per_node[node].append((index, ["inv", msg[4]]))
            elif kind == "ld":
                reply = replies[index]
                seq = msg[3]
                if reply[0] == "lddone":
                    _arrive, reply_cycle = timing[index]
                    per_node[src].append(
                        (index, ["lddone", t, seq, reply_cycle, reply[1]]))
                else:
                    per_node[src].append((index, ["lderr", t, seq, reply[1]]))
            elif kind == "fetch":
                reply = replies[index]
                per_node[src].append((index, ["fill", reply[1]]))
            elif kind == "inv":
                for node in range(len(self.chips)):
                    if node != src:
                        per_node[node].append((index, ["inv", msg[4]]))
            elif kind == "invr":
                for node in range(len(self.chips)):
                    if node != src:
                        per_node[node].append(
                            (index, ["invr", msg[4], msg[5]]))
            elif kind == "flush":
                for node in range(len(self.chips)):
                    if node != src:
                        per_node[node].append((index, ["flush"]))
        return per_node

    def _process_barrier(self) -> None:
        """Exchange one window's traffic (both phases, serially)."""
        messages = self._collect_messages()
        if not messages:
            return
        home_ops, timing = self._plan_barrier(messages)
        replies: dict[int, list] = {}
        for home_node in sorted(home_ops):
            for index, msg in home_ops[home_node]:
                replies[index] = self._apply_home_op(msg, home_node)
        per_node = self._route_effects(messages, timing, replies)
        for node, effects in per_node.items():
            if effects:
                self._apply_effects(self.chips[node], effects)

    # -- machine-wide fault handling --------------------------------------
    # (kept for API compatibility: callers may still install per-node
    # handlers; remote page faults are now serviced home-side at the
    # barrier, so the per-node kernel handler is the default.)

    # -- global-kernel conveniences ----------------------------------------

    def allocate_on(self, node: int, nbytes: int, perm=None,
                    eager: bool = False) -> GuardedPointer:
        kwargs = {} if perm is None else {"perm": perm}
        return self.kernels[node].allocate_segment(nbytes, eager=eager, **kwargs)

    def load_on(self, node: int, source, **kwargs) -> GuardedPointer:
        return self.kernels[node].load_program(source, **kwargs)

    def spawn_on(self, node: int, entry: GuardedPointer, **kwargs) -> Thread:
        return self.kernels[node].spawn(entry, **kwargs)

    # -- machine-wide performance counters ---------------------------------

    def counters_snapshot(self) -> dict[str, int | float]:
        """Every node's counter file merged into one view: bare names
        are machine-wide sums, ``node<N>.*`` names stay per-node."""
        return merge_snapshots(
            {chip.node_id: chip.counters.snapshot() for chip in self.chips})

    # -- the machine-wide clock --------------------------------------------

    def all_threads(self) -> list[Thread]:
        return [t for chip in self.chips for t in chip.all_threads()]

    def _advance_chip(self, chip: MAPChip, end: int) -> int:
        """Run one node independently up to cycle ``end`` (a window
        boundary or the run deadline); returns bundles issued.  Within
        a window no cross-node interaction exists, so this is exactly
        the single-chip engine.  A node that goes quiet stops at its
        last live cycle; the caller re-aligns clocks (charging idle
        time, exactly as lockstep would have) once it knows whether the
        whole machine stopped."""
        issued = 0
        while chip.now < end and chip._runnable_count:
            result = chip.run(max_cycles=end - chip.now)
            issued += result.issued_bundles
        return issued

    def step(self) -> int:
        """Advance every node one cycle; returns bundles issued
        machine-wide.  Barriers fire exactly when the clock reaches
        them, identically to :meth:`run`."""
        issued = 0
        for chip in self.chips:
            issued += chip.step()
        if self.chips[0].now >= self._next_barrier:
            self._process_barrier()
            self._next_barrier += self.window
        return issued

    def advance_idle(self, cycles: int) -> None:
        """Machine-wide half of :meth:`MAPChip.advance_idle`: skip
        guaranteed-idle cycles on every node.  Any in-flight window
        traffic drains first (nothing runnable can observe the early
        exchange), and the barrier grid re-anchors past the skip."""
        if any(chip._runnable_count for chip in self.chips):
            raise ValueError("cannot skip cycles while threads are runnable")
        if cycles <= 0:
            return
        self._process_barrier()
        for chip in self.chips:
            chip._skip_idle(cycles)
        now = self.chips[0].now
        if self._next_barrier <= now:
            self._next_barrier = now + self.window

    def run(self, max_cycles: int = 1_000_000) -> RunResult:
        """Advance the machine in lookahead windows until every thread
        stops (see the module docstring).  Within a window each node
        runs independently; barriers exchange the queued traffic."""
        chips = self.chips
        start = chips[0].now
        deadline = start + max_cycles
        issued = 0
        while True:
            runnable = sum(c._runnable_count for c in chips)
            if runnable == 0:
                # Threads may be done while posted stores / broadcasts
                # are still queued: drain them early (nothing runnable
                # can observe the exchange), re-align every node to the
                # last cycle any node actually reached — the cycle
                # lockstep would have stopped at — and report why.
                self._process_barrier()
                last = max(c.now for c in chips)
                for chip in chips:
                    if chip.now < last:
                        chip._skip_idle(last - chip.now)
                if any(c._runnable_count for c in chips):
                    continue  # defensive; barrier effects cannot wake
                if any(cl.faulted_count for c in chips
                       for cl in c.clusters):
                    reason = RunReason.FAULTED
                else:
                    reason = RunReason.HALTED
                return RunResult(last - start, issued, reason)
            # runnable chips are clock-aligned here (every window pass
            # below re-aligns the quiet ones)
            now = max(c.now for c in chips)
            if now >= deadline:
                return RunResult(now - start, issued,
                                 RunReason.MAX_CYCLES)
            end = min(self._next_barrier, deadline)
            for chip in chips:
                issued += self._advance_chip(chip, end)
            if any(c._runnable_count for c in chips):
                # the machine is still alive: nodes that went quiet
                # mid-window idle along to the boundary, as lockstep
                # would have charged them
                for chip in chips:
                    if chip.now < end:
                        chip._skip_idle(end - chip.now)
            if end == self._next_barrier:
                self._process_barrier()
                self._next_barrier += self.window

    # -- persistence (repro.persist) -----------------------------------

    def windows_state(self) -> dict:
        """The window engine's machine-level state (per-chip mirror /
        exported / pending state rides in each chip's image)."""
        return {
            "next_barrier": self._next_barrier,
            "seq": list(self._seq),
            "outbox": [list(box) for box in self._outbox],
        }

    def restore_windows_state(self, state: dict | None) -> None:
        if not state:
            self._next_barrier = max(self.chips[0].now + self.window,
                                     self.window)
            self._seq = [0] * len(self.chips)
            self._outbox = [[] for _ in self.chips]
            return
        self._next_barrier = int(state["next_barrier"])
        self._seq = [int(s) for s in state["seq"]]
        self._outbox = [[list(m) for m in box] for box in state["outbox"]]

    def capture_state(self) -> dict:
        """The whole machine — every node, the mesh timing state and
        the migration forwarding map — as one JSON-safe payload (see
        :func:`repro.persist.image.capture_multicomputer`)."""
        from repro.persist.image import capture_multicomputer

        return capture_multicomputer(self)

    def restore_state(self, state: dict) -> None:
        from repro.persist.image import restore_multicomputer_state

        restore_multicomputer_state(self, state)


def value_pair(word: TaggedWord) -> list:
    """A tagged word as the JSON-safe ``[value, tag]`` pair the window
    messages carry."""
    return [word.value, word.tag]


def _thread_by_tid(chip: MAPChip, tid: int) -> Thread | None:
    for cluster in chip.clusters:
        for thread in cluster.slots:
            if thread is not None and thread.tid == tid:
                return thread
    return None
