"""The M-Machine's 3-dimensional mesh interconnect (§3).

"The M-Machine is a multicomputer with a 3-dimensional mesh
interconnect and multithreaded processing nodes."  This module models
the mesh at message granularity: dimension-ordered (x, then y, then z)
routing, per-hop latency, and a serialised network-interface port per
node — enough fidelity for the remote-memory timing the guarded-pointer
story needs, without simulating flits.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class MeshShape:
    """Mesh dimensions; node ids are dense in x-major order."""

    x: int = 2
    y: int = 2
    z: int = 2

    @property
    def nodes(self) -> int:
        return self.x * self.y * self.z

    def coordinates(self, node: int) -> tuple[int, int, int]:
        if not 0 <= node < self.nodes:
            raise ValueError(f"node id out of range: {node}")
        return (node % self.x, (node // self.x) % self.y,
                node // (self.x * self.y))

    def node_at(self, cx: int, cy: int, cz: int) -> int:
        if not (0 <= cx < self.x and 0 <= cy < self.y and 0 <= cz < self.z):
            raise ValueError(f"coordinates out of range: {(cx, cy, cz)}")
        return cx + cy * self.x + cz * self.x * self.y

    def hops(self, a: int, b: int) -> int:
        """Manhattan distance — hop count of dimension-ordered routing."""
        ax, ay, az = self.coordinates(a)
        bx, by, bz = self.coordinates(b)
        return abs(ax - bx) + abs(ay - by) + abs(az - bz)

    def route(self, a: int, b: int) -> list[int]:
        """The node sequence of dimension-ordered (x→y→z) routing."""
        path = [a]
        ax, ay, az = self.coordinates(a)
        bx, by, bz = self.coordinates(b)
        while ax != bx:
            ax += 1 if bx > ax else -1
            path.append(self.node_at(ax, ay, az))
        while ay != by:
            ay += 1 if by > ay else -1
            path.append(self.node_at(ax, ay, az))
        while az != bz:
            az += 1 if bz > az else -1
            path.append(self.node_at(ax, ay, az))
        return path


@dataclass
class NetworkStats:
    messages: int = 0
    total_hops: int = 0
    port_wait_cycles: int = 0

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.messages if self.messages else 0.0


class MeshNetwork:
    """Message-level mesh timing: per-hop latency plus one serialised
    network-interface port per node."""

    def __init__(self, shape: MeshShape | None = None, hop_cycles: int = 5,
                 interface_cycles: int = 10):
        self.shape = shape or MeshShape()
        self.hop_cycles = hop_cycles
        self.interface_cycles = interface_cycles
        self._port_busy_until = [0] * self.shape.nodes
        self.stats = NetworkStats()
        #: node → TraceHub resolver (set by the multicomputer); message
        #: deliveries emit ``router.hop`` spans on the *source* node's
        #: hub when a sink is attached there
        self.obs_lookup = None

    def deliver(self, source: int, destination: int, now: int) -> int:
        """Inject a message at ``now``; returns its arrival cycle.

        The source's network interface serialises injections; transit
        is hops × hop latency; the destination interface adds its cost.
        """
        begin = max(now, self._port_busy_until[source])
        self.stats.port_wait_cycles += begin - now
        hops = self.shape.hops(source, destination)
        inject_done = begin + self.interface_cycles
        self._port_busy_until[source] = inject_done
        arrival = inject_done + hops * self.hop_cycles + self.interface_cycles
        self.stats.messages += 1
        self.stats.total_hops += hops
        lookup = self.obs_lookup
        if lookup is not None:
            obs = lookup(source)
            # under the parallel engine this runs on the coordinator,
            # whose (paused) chips still own live hubs — so request
            # recorders attached there see every hop
            if obs is not None and obs.spans:
                obs.emit("router.hop", now, dur=arrival - now, src=source,
                         dst=destination, hops=hops)
        return arrival

    def round_trip(self, source: int, destination: int, now: int) -> int:
        """Request + reply (a remote memory access): returns the cycle
        the reply reaches the source."""
        arrive = self.deliver(source, destination, now)
        return self.deliver(destination, source, arrive)

    # -- persistence (repro.persist) -----------------------------------

    def capture_state(self) -> dict:
        """Per-node interface busy cycles plus statistics — injection
        serialisation is timing state, so restored runs must see the
        same port occupancy the captured machine had."""
        return {"port_busy_until": list(self._port_busy_until),
                "stats": vars(self.stats).copy()}

    def restore_state(self, state: dict) -> None:
        if len(state["port_busy_until"]) != self.shape.nodes:
            raise ValueError("snapshot node count differs from mesh shape")
        self._port_busy_until = [int(c) for c in state["port_busy_until"]]
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)
