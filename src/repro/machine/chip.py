"""The MAP chip: four clusters over a 4-bank cache and one external
memory interface (§3, Figure 5).

The chip wires together every substrate — tagged memory, the single
global page table, the shared TLB, the interleaved virtually-addressed
cache and the clusters — and drives them cycle by cycle.  Because all
threads share one virtual address space and protection travels inside
pointers, the chip has *no* per-process state: spawning a thread is
writing registers, and interleaving threads from different protection
domains costs nothing.

Instruction fetch is functional (no timing charge): the paper's claims
concern data-side protection checks, and modelling an I-cache would add
noise without changing any experiment's shape.  Fetches still translate
through the page table, so unmapping a code page faults execution
exactly as §4.3 requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.exceptions import PermissionFault
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord
from repro.machine.cluster import Cluster
from repro.machine.faults import FaultRecord
from repro.machine.isa import OP_BYTES, SLOTS, Bundle
from repro.machine.thread import Thread, ThreadState
from repro.mem.cache import BankedCache
from repro.mem.page_table import PageTable
from repro.mem.physical import FrameAllocator
from repro.mem.tagged_memory import TaggedMemory
from repro.mem.tlb import TLB


@dataclass(frozen=True, slots=True)
class ChipConfig:
    """Architectural and timing parameters of one MAP node.

    Defaults follow §3: 4 clusters × 4 user threads, 128 KB of on-chip
    cache in 4 banks, 8 MB of external memory.  The two ``domain_*``
    knobs exist only to model *conventional* machines for experiment
    E5; guarded-pointer operation leaves them at 0/False.
    """

    clusters: int = 4
    threads_per_cluster: int = 4
    memory_bytes: int = 8 * 1024 * 1024
    page_bytes: int = 4096
    cache_bytes: int = 128 * 1024
    cache_banks: int = 4
    cache_line_bytes: int = 64
    cache_ways: int = 2
    cache_hit_cycles: int = 1
    external_cycles: int = 10
    tlb_entries: int = 64
    tlb_walk_cycles: int = 20
    domain_switch_penalty: int = 0
    flush_on_domain_switch: bool = False


@dataclass
class RunResult:
    """Outcome of :meth:`MAPChip.run`."""

    cycles: int
    issued_bundles: int
    reason: str  #: "halted" | "max_cycles" | "deadlock"

    @property
    def utilization(self) -> float:
        return self.issued_bundles / self.cycles if self.cycles else 0.0


@dataclass
class ChipStats:
    cycles: int = 0
    issued_bundles: int = 0
    faults: int = 0


class MAPChip:
    """A single M-Machine node."""

    def __init__(self, config: ChipConfig | None = None):
        self.config = config or ChipConfig()
        c = self.config
        self.memory = TaggedMemory(c.memory_bytes)
        self.frames = FrameAllocator(c.memory_bytes, c.page_bytes)
        self.page_table = PageTable(c.page_bytes, self.frames)
        self.tlb = TLB(self.page_table, entries=c.tlb_entries,
                       walk_cycles=c.tlb_walk_cycles)
        self.cache = BankedCache(
            self.memory,
            self.tlb,
            total_bytes=c.cache_bytes,
            banks=c.cache_banks,
            line_bytes=c.cache_line_bytes,
            ways=c.cache_ways,
            hit_cycles=c.cache_hit_cycles,
            external_cycles=c.external_cycles,
        )
        self.clusters = [
            Cluster(i, self, slots=c.threads_per_cluster) for i in range(c.clusters)
        ]
        self.stats = ChipStats()
        self.fault_log: list[FaultRecord] = []
        #: kernel hook: called with (record, thread) when a thread
        #: faults; may repair and resume the thread.
        self.fault_handler: Callable[[FaultRecord, Thread], None] | None = None
        #: audit hook: called with (thread, target_pointer, new_ip,
        #: cycle) on every JMP (see repro.machine.verifier)
        self.jump_auditor: Callable | None = None
        #: multicomputer wiring (repro.machine.multicomputer): this
        #: node's id and the router that services non-local addresses
        self.node_id = 0
        self.router = None
        self._next_tid = 0
        self.now = 0

    # -- thread management ------------------------------------------------

    def spawn(
        self,
        ip: GuardedPointer,
        domain: int = 0,
        cluster: int | None = None,
        regs: dict[int, object] | None = None,
    ) -> Thread:
        """Create a thread and place it on a cluster.

        ``regs`` pre-loads integer registers: values may be
        :class:`~repro.core.word.TaggedWord` (including pointer words)
        or plain ints.
        """
        thread = Thread(tid=self._next_tid, ip=ip, domain=domain)
        self._next_tid += 1
        if regs:
            for index, value in regs.items():
                word = value if isinstance(value, TaggedWord) else TaggedWord.integer(value)
                thread.regs.write(index, word)
        if cluster is None:
            def occupancy(i: int) -> int:
                return sum(1 for t in self.clusters[i].live_threads()
                           if t.state is not ThreadState.HALTED)
            cluster = min(range(len(self.clusters)), key=occupancy)
        self.clusters[cluster].add_thread(thread)
        return thread

    def all_threads(self) -> list[Thread]:
        return [t for cl in self.clusters for t in cl.live_threads()]

    # -- the memory port used by the clusters ----------------------------

    def access_memory(self, vaddr: int, write: bool, now: int, value=None):
        """One data access: the local banked cache for home addresses,
        the mesh for remote ones (multicomputer operation, §3)."""
        if self.router is not None and not self.router.is_local(self, vaddr):
            return self.router.remote_access(self, vaddr, write, now, value)
        return self.cache.access(vaddr, write, now, value=value)

    # -- instruction fetch ---------------------------------------------------

    def fetch(self, ip: GuardedPointer) -> Bundle:
        """Fetch and decode the bundle at ``ip`` (functional path)."""
        if not ip.permission.is_execute:
            raise PermissionFault("instruction pointer is not an execute pointer")
        words = []
        for slot in range(SLOTS):
            vaddr = ip.address + slot * OP_BYTES
            if not ip.contains(vaddr):
                raise PermissionFault("bundle extends past the code segment")
            if self.router is not None and not self.router.is_local(self, vaddr):
                home, physical = self.router.remote_walk(vaddr)
                words.append(home.memory.load_word(physical))
            else:
                physical = self.page_table.walk(vaddr)
                words.append(self.memory.load_word(physical))
        return Bundle.decode(words)

    # -- fault plumbing ------------------------------------------------------

    def report_fault(self, record: FaultRecord, thread: Thread) -> None:
        self.fault_log.append(record)
        self.stats.faults += 1
        if self.fault_handler is not None:
            self.fault_handler(record, thread)

    # -- the clock -------------------------------------------------------------

    def step(self) -> int:
        """Advance one cycle; returns bundles issued this cycle."""
        issued = 0
        for cluster in self.clusters:
            if cluster.step(self.now):
                issued += 1
        self.now += 1
        self.stats.cycles += 1
        self.stats.issued_bundles += issued
        return issued

    def run(self, max_cycles: int = 1_000_000) -> RunResult:
        """Run until every thread is halted (or faulted with no handler
        to resume it), the machine deadlocks, or ``max_cycles`` pass."""
        start_cycle = self.now
        start_bundles = self.stats.issued_bundles
        idle_streak = 0
        while self.now - start_cycle < max_cycles:
            live = [t for t in self.all_threads()
                    if t.state not in (ThreadState.HALTED, ThreadState.FAULTED)]
            if not live:
                states = {t.state for t in self.all_threads()}
                if states <= {ThreadState.HALTED}:
                    reason = "halted"
                elif ThreadState.FAULTED in states:
                    reason = "faulted"
                else:
                    reason = "deadlock"
                return RunResult(self.now - start_cycle,
                                 self.stats.issued_bundles - start_bundles, reason)
            issued = self.step()
            if issued == 0 and all(t.state is not ThreadState.READY
                                   for t in self.all_threads()):
                idle_streak += 1
                # every runnable thread is blocked; fast-forward sanity
                if idle_streak > 10_000:
                    return RunResult(self.now - start_cycle,
                                     self.stats.issued_bundles - start_bundles,
                                     "deadlock")
            else:
                idle_streak = 0
        return RunResult(max_cycles, self.stats.issued_bundles - start_bundles,
                         "max_cycles")
