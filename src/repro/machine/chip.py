"""The MAP chip: four clusters over a 4-bank cache and one external
memory interface (§3, Figure 5).

The chip wires together every substrate — tagged memory, the single
global page table, the shared TLB, the interleaved virtually-addressed
cache and the clusters — and drives them cycle by cycle.  Because all
threads share one virtual address space and protection travels inside
pointers, the chip has *no* per-process state: spawning a thread is
writing registers, and interleaving threads from different protection
domains costs nothing.

Instruction fetch is functional (no timing charge): the paper's claims
concern data-side protection checks, and modelling an I-cache would add
noise without changing any experiment's shape.  Fetches still translate
through the page table, so unmapping a code page faults execution
exactly as §4.3 requires.

Fetch is the simulator's hottest path, so it mirrors the paper's thesis
— resolve checks once, never re-walk tables downstream — with a
**decoded-bundle cache**: the first fetch of a bundle walks the page
table and decodes the three words; every later fetch of the same
address is a dictionary hit.  The cache is invalidated exactly where
the architecture invalidates translations and code:

* any :meth:`~repro.mem.page_table.PageTable.unmap` (revocation,
  relocation, swap-out, segment free) flushes it through the page
  table's invalidation hook;
* any store — local, or remote through the router — drops the cached
  bundles overlapping the written word (self-modifying and
  cross-node-modified code stay correct);
* loading a program over a reused virtual range invalidates the range
  (:meth:`MAPChip.invalidate_decoded_range`, called by the kernel
  loader).

``ChipConfig(decode_cache=False)`` restores walk-and-decode-every-fetch
for measurement (see ``benchmarks/bench_cycle_loop.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.constants import ADDRESS_MASK as _ADDRESS_MASK
from repro.core.constants import WORD_BYTES
from repro.core.exceptions import FetchPending, PageFault, PermissionFault
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord
from repro.machine.cluster import Cluster
from repro.machine.counters import PerfCounters
from repro.machine.faults import FaultRecord
from repro.machine.isa import BUNDLE_BYTES, OP_BYTES, SLOTS, Bundle
from repro.machine.thread import Thread, ThreadState
from repro.mem.cache import BankedCache
from repro.mem.page_table import PageTable
from repro.mem.physical import FrameAllocator
from repro.mem.tagged_memory import AlignmentFault, TaggedMemory
from repro.mem.tlb import TLB
from repro.obs.hub import TraceHub


@dataclass(frozen=True, slots=True)
class ChipConfig:
    """Architectural and timing parameters of one MAP node.

    Defaults follow §3: 4 clusters × 4 user threads, 128 KB of on-chip
    cache in 4 banks, 8 MB of external memory.  The two ``domain_*``
    knobs exist only to model *conventional* machines for experiment
    E5; guarded-pointer operation leaves them at 0/False.
    """

    clusters: int = 4
    threads_per_cluster: int = 4
    memory_bytes: int = 8 * 1024 * 1024
    page_bytes: int = 4096
    cache_bytes: int = 128 * 1024
    cache_banks: int = 4
    cache_line_bytes: int = 64
    cache_ways: int = 2
    cache_hit_cycles: int = 1
    external_cycles: int = 10
    tlb_entries: int = 64
    tlb_walk_cycles: int = 20
    domain_switch_penalty: int = 0
    flush_on_domain_switch: bool = False
    #: cache decoded bundles by fetch address (simulator speed knob;
    #: no architectural effect — invalidation keeps it transparent)
    decode_cache: bool = True
    #: mirror of ``decode_cache`` for the data side: memoize load/store
    #: permission+bounds checks per pointer word in the execution units,
    #: and virtual→physical line translations in the banked cache.
    #: Timing-model-transparent — cycle counts are identical on or off;
    #: the fuzzer's fastpath-on-vs-off axis polices that continuously.
    data_fast_path: bool = True
    #: let run() jump the clock over stretches where every thread is
    #: blocked on memory, instead of stepping them cycle by cycle
    #: (cycle counts and per-cluster idle accounting are preserved)
    idle_fast_forward: bool = True
    #: the busy-cycle twin of ``idle_fast_forward``: when exactly one
    #: thread is ready and nothing else on the chip can act, execute a
    #: straight line of already-decoded bundles in one dispatch with
    #: bulk accounting (see PERF.md §6).  Timing-model-transparent —
    #: cycle counts, counters and trace events are identical on or off;
    #: the fuzzer's superblock-on-vs-off axis polices that continuously.
    #: Requires ``decode_cache`` (superblock nodes are decoded bundles).
    superblock: bool = True
    #: flight-recorder ring depth (events kept for crash dumps); purely
    #: observational — no architectural or timing effect
    flight_capacity: int = 512


class RunReason:
    """The complete set of :attr:`RunResult.reason` values.

    ``reason`` stays a plain string for compatibility, but call sites
    should compare against these constants instead of re-typing string
    literals (the historical way "faulted" went undocumented).
    """

    HALTED = "halted"          #: every thread executed HALT
    FAULTED = "faulted"        #: no runnable thread; at least one died faulted
    DEADLOCK = "deadlock"      #: nothing can ever issue again
    MAX_CYCLES = "max_cycles"  #: the cycle budget expired first

    ALL = frozenset({HALTED, FAULTED, DEADLOCK, MAX_CYCLES})


@dataclass
class RunResult:
    """Outcome of :meth:`MAPChip.run`."""

    cycles: int
    issued_bundles: int
    #: one of the :class:`RunReason` constants: "halted" | "faulted" |
    #: "deadlock" | "max_cycles"
    reason: str

    @property
    def utilization(self) -> float:
        return self.issued_bundles / self.cycles if self.cycles else 0.0


@dataclass
class ChipStats:
    cycles: int = 0
    issued_bundles: int = 0
    faults: int = 0

    def as_counters(self) -> dict[str, int]:
        return {"cycles": self.cycles, "issued_bundles": self.issued_bundles,
                "faults": self.faults}


class MAPChip:
    """A single M-Machine node."""

    def __init__(self, config: ChipConfig | None = None):
        self.config = config or ChipConfig()
        c = self.config
        # -- the trace hub (repro.obs): event spine + flight recorder.
        # Observability only — nothing below ever reads it to make a
        # decision, so cycle counts are identical with it on or off.
        self.obs = TraceHub(flight_capacity=c.flight_capacity)
        self.obs.clock = lambda: self.now
        self.memory = TaggedMemory(c.memory_bytes)
        self.frames = FrameAllocator(c.memory_bytes, c.page_bytes)
        self.page_table = PageTable(c.page_bytes, self.frames)
        self.tlb = TLB(self.page_table, entries=c.tlb_entries,
                       walk_cycles=c.tlb_walk_cycles)
        self.cache = BankedCache(
            self.memory,
            self.tlb,
            total_bytes=c.cache_bytes,
            banks=c.cache_banks,
            line_bytes=c.cache_line_bytes,
            ways=c.cache_ways,
            hit_cycles=c.cache_hit_cycles,
            external_cycles=c.external_cycles,
            xlate_memo=c.data_fast_path,
        )
        self.cache.obs = self.obs
        self.tlb.obs = self.obs
        #: chip-wide ready/runnable thread totals, mirrored from the
        #: clusters' per-state counts on every transition — the run loop
        #: reads two ints per cycle instead of summing over clusters
        self._ready_count = 0
        self._runnable_count = 0
        self.clusters = [
            Cluster(i, self, slots=c.threads_per_cluster) for i in range(c.clusters)
        ]
        self.stats = ChipStats()
        self.fault_log: list[FaultRecord] = []
        #: kernel hook: called with (record, thread) when a thread
        #: faults; may repair and resume the thread.
        self.fault_handler: Callable[[FaultRecord, Thread], None] | None = None
        #: audit hook: called with (thread, target_pointer, new_ip,
        #: cycle) on every JMP (see repro.machine.verifier)
        self.jump_auditor: Callable | None = None
        #: multicomputer wiring (repro.machine.multicomputer): this
        #: node's id and the router that services non-local addresses
        self.node_id = 0
        self.router = None
        # -- windowed-mesh state (unused off a mesh) -------------------
        #: remote-code mirror: vaddr -> (value, tag) for code words
        #: fetched from their home node, or None as a one-shot negative
        #: (the home had no mapping; the retry faults precisely).
        #: Invalidated with the decode cache — homes broadcast when an
        #: exported word is overwritten.
        self._remote_mirror: dict[int, tuple | None] = {}
        #: code words this node has served to remote fetchers (drives
        #: the invalidation broadcast when one is overwritten)
        self._exported_code: set[int] = set()
        #: in-flight remote loads: seq -> (tid, bank, rd), resolved at
        #: the next window barrier
        self._remote_pending: dict[int, tuple[int, str, int]] = {}
        self._next_tid = 0
        self.now = 0
        # -- the decoded-bundle cache (see module docstring) ----------
        #: fetch address -> (decoded Bundle, pointer word that passed
        #: the fetch checks); flushed on any unmap
        self._decode_cache: dict[int, tuple[Bundle, int]] = {}
        self._decode_enabled = c.decode_cache
        # -- the superblock node cache (see Cluster.run_superblock) ----
        #: fetch address -> prepared execution node for the decoded
        #: bundle there: (pointer word, bundle, compiled int closure or
        #: None, fp op or None, compiled mem closure or None,
        #: fall-through IP or None, live ops).
        #: Strictly a subset of ``_decode_cache`` — every invalidation
        #: path that drops a decode entry drops the node too, so the
        #: PERF.md §3 invalidation contract covers both caches at once.
        self._sb_nodes: dict[int, tuple] = {}
        #: superblock telemetry (plain attributes, deliberately *not*
        #: PerfCounters: counter snapshots must be bit-identical with
        #: the knob on or off, so engine-utilization introspection lives
        #: outside the counter file)
        self.superblock_blocks = 0
        self.superblock_bundles = 0
        #: (pointer word, offset) -> derived pointer, shared by every
        #: cluster's LEA paths (IP advance, branches, address
        #: arithmetic).  LEA is a pure function of pointer bits, so
        #: entries never go stale and no invalidation exists.  Gated on
        #: ``data_fast_path``: it memoizes pointer *derivation*, the
        #: data-side twin of the decoded-bundle cache, and the
        #: fastpath-on-vs-off fuzz axis is what polices it.
        self._lea_cache: dict[tuple[int, int], GuardedPointer] | None = (
            {} if c.data_fast_path else None
        )
        self.fetch_hits = 0
        self.fetch_misses = 0
        self.decode_invalidations = 0
        # -- the data-side access-check memos (see _exec_mem) ----------
        #: (pointer word value, offset) -> checked virtual address, one
        #: memo per access kind (loads need READ, stores need WRITE).
        #: Like the LEA memo, entries are pure functions of the
        #: pointer's bits — permission, bounds and the derived address
        #: never depend on page-table or memory state — so nothing here
        #: can go stale and no invalidation path exists.  Faulting
        #: derivations are never cached; untagged words bypass the memo.
        self._load_check_memo: dict[tuple[int, int], int] | None = (
            {} if c.data_fast_path else None
        )
        self._store_check_memo: dict[tuple[int, int], int] | None = (
            {} if c.data_fast_path else None
        )
        self.check_memo_hits = 0
        self.check_memo_misses = 0
        self.page_table.add_invalidation_hook(self._on_unmap)
        # -- the performance-counter file -----------------------------
        self.counters = PerfCounters()
        self.counters.add_source("chip", self.stats.as_counters)
        self.counters.add_source("fetch", self._fetch_counters)
        self.counters.add_source("mem", self._mem_counters)
        self.counters.add_source("cache", self.cache.stats.as_counters)
        self.counters.add_source("tlb", self.tlb.stats.as_counters)
        for cluster in self.clusters:
            self.counters.add_source(f"cluster{cluster.cluster_id}",
                                     cluster.as_counters)
        self.counters.add_source("thread", self._thread_counters)
        for prefix, source in self.obs.counter_sources():
            self.counters.add_source(prefix, source)

    # -- counter sources --------------------------------------------------

    def _fetch_counters(self) -> dict[str, int]:
        return {"hits": self.fetch_hits, "misses": self.fetch_misses,
                "invalidations": self.decode_invalidations,
                "cached_bundles": len(self._decode_cache)}

    def _mem_counters(self) -> dict[str, int]:
        """The data-side access-check memo (``mem.check_memo_*``)."""
        entries = 0
        for memo in (self._load_check_memo, self._store_check_memo):
            if memo is not None:
                entries += len(memo)
        return {"check_memo_hits": self.check_memo_hits,
                "check_memo_misses": self.check_memo_misses,
                "check_memo_entries": entries}

    def _thread_counters(self) -> dict[str, int]:
        """Per-resident-thread issue counts (``thread.<tid>.bundles``)."""
        return {f"{t.tid}.bundles": t.stats.bundles
                for cl in self.clusters for t in cl.slots if t is not None}

    # -- thread management ------------------------------------------------

    def spawn(
        self,
        ip: GuardedPointer,
        domain: int = 0,
        cluster: int | None = None,
        regs: dict[int, object] | None = None,
    ) -> Thread:
        """Create a thread and place it on a cluster.

        ``regs`` pre-loads integer registers: values may be
        :class:`~repro.core.word.TaggedWord` (including pointer words)
        or plain ints.
        """
        thread = Thread(tid=self._next_tid, ip=ip, domain=domain)
        self._next_tid += 1
        if regs:
            for index, value in regs.items():
                word = value if isinstance(value, TaggedWord) else TaggedWord.integer(value)
                thread.regs.write(index, word)
        if cluster is None:
            cluster = min(range(len(self.clusters)),
                          key=lambda i: self.clusters[i].active_count)
        self.clusters[cluster].add_thread(thread)
        if self.obs.enabled:
            self.obs.emit("thread.spawn", self.now, cluster=cluster,
                          tid=thread.tid, domain=domain)
        return thread

    def all_threads(self) -> list[Thread]:
        return [t for cl in self.clusters for t in cl.live_threads()]

    # -- the memory port used by the clusters ----------------------------

    def access_memory(self, vaddr: int, *, write: bool, now: int, value=None):
        """One data access: the local banked cache for home addresses,
        the mesh for remote ones (multicomputer operation, §3).

        ``write``/``now``/``value`` are keyword-only — the one memory-port
        signature shared with :meth:`BankedCache.access` and
        :meth:`Multicomputer.remote_access`.
        """
        router = self.router
        if write:
            # keep the decoded-bundle cache coherent with stores
            # (self-modifying code).  This node drops its copy now; on
            # a mesh every other node drops its copy at the window
            # barrier — before any remote observer can fetch, since no
            # cross-node traffic moves inside a window.
            self.invalidate_decoded_word(vaddr)
        if router is not None and not router.is_local(self, vaddr):
            if vaddr % WORD_BYTES:
                # alignment is a pure property of the virtual address:
                # fault at the issue site like a local access would,
                # instead of shipping a doomed message across the mesh
                raise AlignmentFault(
                    f"unaligned word access at {vaddr:#x}")
            if write:
                self._remote_mirror.pop(vaddr - (vaddr % OP_BYTES), None)
            return router.remote_access(self, vaddr, write=write,
                                        now=now, value=value)
        if write and router is not None:
            router.note_local_store(self, vaddr, now)
        return self.cache.access(vaddr, write=write, now=now, value=value)

    # -- instruction fetch ---------------------------------------------------

    def fetch(self, ip: GuardedPointer) -> Bundle:
        """Fetch and decode the bundle at ``ip`` (functional path).

        Steady state is one dictionary probe: decoded bundles are
        cached by fetch address, and each entry remembers the exact
        pointer word that last passed the fetch checks.  Permission and
        bounds are pure functions of the pointer's bits, so a fetch
        through the *same* word can skip them; a different pointer to
        the same address (other bounds, other permission) re-runs the
        checks before reusing the decoded words.  Translation is
        re-walked whenever the cache cannot answer — so an unmapped
        code page faults exactly as before.
        """
        word = ip.word.value
        address = word & _ADDRESS_MASK
        entry = self._decode_cache.get(address)
        if entry is not None and entry[1] == word:
            self.fetch_hits += 1
            return entry[0]
        if not ip.permission.is_execute:
            raise PermissionFault("instruction pointer is not an execute pointer")
        if not (ip.contains(address)
                and ip.contains(address + BUNDLE_BYTES - OP_BYTES)):
            raise PermissionFault("bundle extends past the code segment")
        if entry is not None:
            # a different pointer to an already-decoded address: checks
            # passed, adopt this word and reuse the bundle (no re-walk)
            self.fetch_hits += 1
            self._decode_cache[address] = (entry[0], word)
            return entry[0]
        self.fetch_misses += 1
        router = self.router
        if router is not None:
            # words homed elsewhere come out of the remote-code mirror;
            # anything missing is requested at the next window barrier
            # and the fetch retries (FetchPending blocks the thread)
            mirror = self._remote_mirror
            missing = []
            for slot in range(SLOTS):
                vaddr = address + slot * OP_BYTES
                if router.is_local(self, vaddr):
                    continue
                if vaddr not in mirror:
                    missing.append(vaddr)
                elif mirror[vaddr] is None:
                    # one-shot negative: the home answered "no mapping";
                    # fault precisely on this retry
                    del mirror[vaddr]
                    raise PageFault(vaddr,
                                    f"code word at {vaddr:#x} is unmapped "
                                    f"on its home node")
            if missing:
                raise FetchPending(
                    router.fetch_remote(self, missing, self.now), address)
        words = []
        for slot in range(SLOTS):
            vaddr = address + slot * OP_BYTES
            if router is not None and not router.is_local(self, vaddr):
                value, tag = self._remote_mirror[vaddr]
                words.append(TaggedWord(value, tag))
            else:
                physical = self.page_table.walk(vaddr)
                words.append(self.memory.load_word(physical))
        bundle = Bundle.decode(words)
        if self._decode_enabled:
            self._decode_cache[address] = (bundle, word)
        return bundle

    # -- decoded-bundle invalidation ----------------------------------------

    def _on_unmap(self, virtual_page: int) -> None:
        """Page-table hook: any unmap conservatively flushes the decode
        cache (mirrors the TLB's full-flush-on-unmap policy — unmaps
        are rare, staleness is never acceptable)."""
        self._flush_decoded_local()

    def _flush_decoded_local(self) -> None:
        """Drop every decoded bundle on *this* node."""
        if self._decode_cache:
            self.decode_invalidations += len(self._decode_cache)
            self._decode_cache.clear()
        self._sb_nodes.clear()

    def flush_decoded(self) -> None:
        """Drop every decoded bundle — on every node, when meshed (this
        node immediately, the rest at the next window barrier)."""
        if self.router is not None:
            self.router.flush_decoded(self)
        else:
            self._flush_decoded_local()

    def store_runtime_word(self, physical: int, word: TaggedWord) -> None:
        """System-software write to **physical** memory (GC sweeps, swap
        page moves, loaders working below translation): performs the
        store and conservatively flushes the decoded-bundle cache —
        machine-wide on a multicomputer.

        Physical frames have no unique reverse translation, so a
        targeted invalidation is impossible here; the hook mirrors the
        unmap policy instead (runtime writes are rare, staleness is
        never acceptable).  Runtime code that knows the *virtual* range
        it rewrote should additionally prefer
        :meth:`invalidate_decoded_range`.
        """
        self.memory.store_word(physical, word)
        self.flush_decoded()

    def invalidate_decoded_word(self, vaddr: int) -> None:
        """Drop any cached bundle overlapping the word at ``vaddr``.

        Bundle fetch addresses are word-aligned but not bundle-size
        aligned (segments align to powers of two, bundles are 24
        bytes), so the bundles that can contain this word start at the
        word itself or one or two words earlier.
        """
        cache = self._decode_cache
        if not cache:
            return
        word = vaddr - (vaddr % OP_BYTES)
        nodes = self._sb_nodes
        for start in (word, word - OP_BYTES, word - 2 * OP_BYTES):
            if cache.pop(start, None) is not None:
                self.decode_invalidations += 1
                nodes.pop(start, None)

    def invalidate_decoded_range(self, base: int, nbytes: int) -> None:
        """Drop every cached bundle overlapping ``[base, base+nbytes)``
        (program loaders and the swap manager rewriting a virtual range
        call this).  On a mesh the range is dropped on *every* node —
        any node may have the rewritten code decoded (this node
        immediately, the rest at the next window barrier)."""
        if self.router is not None:
            self.router.invalidate_decoded_range(self, base, nbytes)
        else:
            self._invalidate_decoded_range_local(base, nbytes)

    def _invalidate_decoded_range_local(self, base: int, nbytes: int) -> None:
        cache = self._decode_cache
        if not cache:
            return
        lo = base - (BUNDLE_BYTES - OP_BYTES)
        hi = base + nbytes
        stale = [a for a in cache if lo <= a < hi]
        nodes = self._sb_nodes
        for address in stale:
            del cache[address]
            nodes.pop(address, None)
        self.decode_invalidations += len(stale)

    # -- fault plumbing ------------------------------------------------------

    def report_fault(self, record: FaultRecord, thread: Thread) -> None:
        self.fault_log.append(record)
        self.stats.faults += 1
        self.counters.incr(f"fault.{type(record.cause).__name__}")
        obs = self.obs
        cluster = (thread.scheduler.cluster_id
                   if obs.enabled and thread.scheduler is not None else None)
        if obs.enabled:
            obs.emit("fault.raise", record.cycle, cluster=cluster,
                     tid=thread.tid, cause=type(record.cause).__name__,
                     site=record.opcode_name, ip=record.ip_address)
        if self.fault_handler is not None:
            self.fault_handler(record, thread)
        if obs.enabled:
            # dispatch outcome + handler residency: how long the fault
            # keeps the thread out of the run (0 for an instant resume)
            state = thread._state
            if state is ThreadState.BLOCKED:
                outcome = "blocked"
                residency = max(thread.wake_at - record.cycle, 0)
            elif state is ThreadState.READY:
                outcome = "resumed"
                residency = 0
            else:
                outcome = "killed" if state is ThreadState.FAULTED else "halted"
                residency = 0
            obs.emit("fault.dispatch", record.cycle, cluster=cluster,
                     tid=thread.tid, dur=residency, outcome=outcome)
            if outcome in ("blocked", "resumed"):
                obs.fault_residency.add(residency)

    # -- the clock -------------------------------------------------------------

    #: consecutive cycles with nothing ready before run() declares a
    #: deadlock (matches the historical idle-streak bound)
    IDLE_LIMIT = 10_000

    def step(self) -> int:
        """Advance one cycle; returns bundles issued this cycle."""
        issued = 0
        now = self.now
        for cluster in self.clusters:
            if cluster._n_ready or cluster._n_blocked:
                if cluster.step(now):
                    issued += 1
            else:
                cluster.idle_cycles += 1
        self.now = now + 1
        self.stats.cycles += 1
        self.stats.issued_bundles += issued
        return issued

    # -- scheduler-count aggregation (kept incrementally by clusters) -----

    def ready_threads(self) -> int:
        return self._ready_count

    def runnable_threads(self) -> int:
        return self._runnable_count

    def next_wake(self) -> int | None:
        """Earliest wake cycle over every blocked thread, or None."""
        wake = None
        for cluster in self.clusters:
            w = cluster.next_wake()
            if w is not None and (wake is None or w < wake):
                wake = w
        return wake

    def _stop_reason(self) -> str:
        """Why a machine with no runnable threads stopped."""
        if any(cl.faulted_count for cl in self.clusters):
            return RunReason.FAULTED
        return RunReason.HALTED

    def _run_superblock(self, horizon: int) -> int:
        """Issue straight-line bundles for the chip's single ready
        thread in one dispatch (the busy-cycle twin of idle
        fast-forward; see :meth:`Cluster.run_superblock`).

        Eligibility is a property of the whole chip, checked here once
        per dispatch: exactly one thread is ready, no cluster is
        mid-drain (pending thread or active stall), the ready thread
        would not trigger a domain-switch stall, and the run is bounded
        by the earliest blocked-thread wake-up — so until then nothing
        anywhere on the chip can act, every wake scan is a no-op, and
        the only cluster with work is the ready thread's.  Returns the
        cycles advanced (0 when the machine is not in an eligible
        state; the caller then falls back to a normal :meth:`step`).
        """
        now = self.now
        cluster = None
        for cl in self.clusters:
            if cl._n_ready:
                cluster = cl
                break
        if cluster is None:
            return 0
        thread = None
        for t in cluster.slots:
            if t is not None and t._state is ThreadState.READY:
                thread = t
                break
        if thread is None:
            return 0
        for cl in self.clusters:
            if cl._pending is not None or now < cl._stall_until:
                return 0
        penalty = self.config.domain_switch_penalty
        if (penalty and cluster.last_domain is not None
                and thread.domain != cluster.last_domain):
            return 0
        wake = self.next_wake()
        end = horizon if wake is None else min(wake, horizon)
        if end <= now:
            return 0
        return cluster.run_superblock(thread, now, end)

    def run(self, max_cycles: int = 1_000_000) -> RunResult:
        """Run until every thread is halted (or faulted with no handler
        to resume it), the machine deadlocks, or ``max_cycles`` pass.

        The loop never rebuilds thread lists: liveness comes from the
        clusters' incremental state counts, and stretches where every
        thread is blocked on memory are fast-forwarded to the earliest
        wake-up instead of being stepped one empty cycle at a time
        (cycle totals, utilization and per-cluster idle accounting are
        identical to stepping).
        """
        start_cycle = self.now
        start_bundles = self.stats.issued_bundles
        idle_streak = 0
        fast_forward = self.config.idle_fast_forward
        # superblocks need the decode cache (nodes are decoded bundles)
        # and a single node: a mesh runs in lockstep through step(), and
        # remote writes may invalidate code between any two cycles
        turbo = (self.config.superblock and self._decode_enabled
                 and self.router is None)
        while self.now - start_cycle < max_cycles:
            if self._runnable_count == 0:
                return RunResult(self.now - start_cycle,
                                 self.stats.issued_bundles - start_bundles,
                                 self._stop_reason())
            if fast_forward and self._ready_count == 0:
                # Everyone is blocked on the memory system: jump the
                # clock to the first wake-up (bounded by the cycle
                # budget and the deadlock limit).
                wake = self.next_wake()
                horizon = start_cycle + max_cycles
                target = min(wake, horizon)
                if idle_streak + (target - self.now) > self.IDLE_LIMIT:
                    skip = self.IDLE_LIMIT - idle_streak + 1
                    self._skip_idle(min(skip, horizon - self.now))
                    return RunResult(self.now - start_cycle,
                                     self.stats.issued_bundles - start_bundles,
                                     RunReason.DEADLOCK)
                if target > self.now:
                    idle_streak += target - self.now
                    self._skip_idle(target - self.now)
                    continue
            if turbo and self._ready_count == 1 and not self.obs.hot:
                # exactly one thread can issue: try to run its whole
                # straight-line superblock in one dispatch (hot tracing
                # wants a per-bundle event stream, so it opts out)
                if self._run_superblock(start_cycle + max_cycles):
                    idle_streak = 0
                    continue
            issued = self.step()
            if issued == 0 and self._ready_count == 0:
                idle_streak += 1
                # every runnable thread is blocked; fast-forward sanity
                if idle_streak > self.IDLE_LIMIT:
                    return RunResult(self.now - start_cycle,
                                     self.stats.issued_bundles - start_bundles,
                                     RunReason.DEADLOCK)
            else:
                idle_streak = 0
        return RunResult(max_cycles, self.stats.issued_bundles - start_bundles,
                         RunReason.MAX_CYCLES)

    def advance_idle(self, cycles: int) -> None:
        """Publicly advance the clock over guaranteed-idle cycles.

        Only legal while nothing is runnable (every thread halted or
        faulted): the load driver uses this to move the machine to the
        next request arrival after :meth:`run` drained early.  Timing
        is identical to stepping the idle machine cycle by cycle."""
        if self._runnable_count:
            raise ValueError("cannot skip cycles while threads are runnable")
        if cycles > 0:
            self._skip_idle(cycles)

    def _skip_idle(self, cycles: int) -> None:
        """Advance the clock over ``cycles`` guaranteed-idle cycles,
        charging each cluster the idle time stepping would have."""
        self.now += cycles
        self.stats.cycles += cycles
        self.counters.incr("chip.idle_skipped_cycles", cycles)
        for cluster in self.clusters:
            cluster.idle_cycles += cycles

    # -- persistence (repro.persist) -----------------------------------

    def capture_state(self) -> dict:
        """This node's complete machine state as a JSON-safe dict (see
        :func:`repro.persist.state.capture_chip`).  Pair with
        :meth:`restore_state`; :class:`repro.sim.api.Simulation` wraps
        both behind ``save``/``load``."""
        from repro.persist.state import capture_chip

        return capture_chip(self)

    def restore_state(self, state: dict) -> None:
        """Overwrite this node's state with a captured image.  The chip
        must have the snapshot's architectural shape; the simulator
        speed knobs may differ (they change zero cycles)."""
        from repro.persist.state import restore_chip_state

        restore_chip_state(self, state)
