"""Thread contexts.

The MAP keeps several threads resident per cluster and selects among
them every cycle; a thread's entire protection state is its register
contents and instruction pointer, which is why switching threads —
even across protection domains — costs nothing (§3).

``domain`` tags the thread's protection domain.  Guarded-pointer
hardware never looks at it; experiment E5 uses it to model conventional
machines that must do work when consecutively issued threads belong to
different domains.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer
from repro.machine.faults import FaultRecord
from repro.machine.registers import RegisterFile


#: ``wake_at`` sentinel for a thread blocked on a remote load whose
#: reply cycle is not known yet (the windowed mesh engine resolves it
#: at the next window barrier and rewrites ``wake_at`` with the real
#: reply cycle).  Far beyond any reachable cycle count, so the normal
#: wake scan never fires on it.
REMOTE_WAIT = 1 << 60


class ThreadState(enum.Enum):
    READY = "ready"        #: may issue this cycle
    BLOCKED = "blocked"    #: waiting on the memory system
    HALTED = "halted"      #: executed HALT
    FAULTED = "faulted"    #: stopped on a fault, awaiting the kernel


@dataclass
class ThreadStats:
    bundles: int = 0
    operations: int = 0
    stall_cycles: int = 0
    faults: int = 0


@dataclass
class Thread:
    """One hardware thread slot's architectural state.

    ``state`` is a property over the ``_state`` field: every transition
    is reported to the cluster the thread is resident on (its
    ``scheduler``), which keeps per-state occupancy counts incrementally
    — the run loop reads those counts instead of rescanning every
    thread every cycle.
    """

    tid: int
    ip: GuardedPointer
    domain: int = 0
    regs: RegisterFile = field(default_factory=RegisterFile)
    _state: ThreadState = field(default=ThreadState.READY, repr=False)
    wake_at: int = 0
    #: register writes deferred until a blocking load completes:
    #: list of ("r"|"f", index, value)
    pending_writes: list = field(default_factory=list)
    fault: FaultRecord | None = None
    stats: ThreadStats = field(default_factory=ThreadStats)
    #: cycle at which this thread executed HALT (None while running) —
    #: an observability stamp set by the cluster, never read by the
    #: model; the service load driver turns it into request latency
    halted_at: int | None = None
    #: the cluster whose slot holds this thread (None while unplaced);
    #: set by Cluster.add_thread, notified on every state transition
    scheduler: object | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.ip.permission.is_execute:
            raise ValueError("a thread's IP must be an execute pointer")

    @property
    def state(self) -> ThreadState:
        return self._state

    @state.setter
    def state(self, new: ThreadState) -> None:
        old = self._state
        self._state = new
        if old is not new and self.scheduler is not None:
            self.scheduler.on_state_change(self, old, new)

    @property
    def privileged(self) -> bool:
        """True while running with an execute-privileged IP (§2.2)."""
        return self.ip.permission is Permission.EXECUTE_PRIV

    def block_until(self, cycle: int) -> None:
        self.state = ThreadState.BLOCKED
        self.wake_at = cycle

    def maybe_wake(self, now: int) -> None:
        if self.state is ThreadState.BLOCKED and now >= self.wake_at:
            for bank, index, value in self.pending_writes:
                if bank == "r":
                    self.regs.write(index, value)
                else:
                    self.regs.write_f(index, value)
            self.pending_writes.clear()
            self.state = ThreadState.READY

    def record_fault(self, record: FaultRecord) -> None:
        self.state = ThreadState.FAULTED
        self.fault = record
        self.stats.faults += 1

    def resume(self) -> None:
        """Clear a fault and make the thread runnable again; the
        faulting bundle re-executes because nothing was committed."""
        if self.state is not ThreadState.FAULTED:
            raise ValueError("only a faulted thread can be resumed")
        self.fault = None
        self.state = ThreadState.READY
