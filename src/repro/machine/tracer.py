"""Execution tracing for the MAP simulator.

A :class:`Tracer` hooks a chip and records one event per issued bundle
(plus faults and jumps), giving per-thread timelines for debugging and
for the pipeline-behaviour assertions in the test suite.  Tracing is
pull-based and zero-cost when not attached.

The hook point is :meth:`Cluster.step`'s bundle execution; rather than
invade the cluster, the tracer wraps ``chip.fetch`` (every executed
bundle is fetched exactly once per issue) and reads thread state around
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.chip import MAPChip
from repro.machine.disasm import disassemble_bundle
from repro.machine.isa import Bundle


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One fetched-and-issued bundle."""

    cycle: int
    address: int
    text: str
    privileged: bool
    thread_id: int | None = None


@dataclass
class Tracer:
    """Records every fetch on a chip.

    Because a bundle is fetched exactly when it issues (and re-fetched
    when a faulted bundle is resumed), the fetch stream *is* the issue
    stream.  Thread attribution uses the unique IP address: each
    event's thread is the thread whose IP matched at fetch time.
    """

    chip: MAPChip
    events: list = field(default_factory=list)
    limit: int = 100_000

    def __post_init__(self) -> None:
        self._original_fetch = self.chip.fetch
        self.chip.fetch = self._traced_fetch  # type: ignore[method-assign]

    def detach(self) -> None:
        self.chip.fetch = self._original_fetch  # type: ignore[method-assign]

    def _traced_fetch(self, ip) -> Bundle:
        bundle = self._original_fetch(ip)
        if len(self.events) < self.limit:
            thread_id = None
            for thread in self.chip.all_threads():
                if thread.ip == ip:
                    thread_id = thread.tid
                    break
            self.events.append(TraceEvent(
                cycle=self.chip.now,
                address=ip.address,
                text=disassemble_bundle(bundle),
                privileged=ip.permission.name == "EXECUTE_PRIV",
                thread_id=thread_id,
            ))
        return bundle

    # -- queries --------------------------------------------------------

    def for_thread(self, tid: int) -> list[TraceEvent]:
        return [e for e in self.events if e.thread_id == tid]

    def privileged_events(self) -> list[TraceEvent]:
        return [e for e in self.events if e.privileged]

    def format(self, events=None) -> str:
        """Human-readable listing."""
        lines = []
        for e in events if events is not None else self.events:
            mode = "K" if e.privileged else "u"
            tid = "?" if e.thread_id is None else e.thread_id
            lines.append(f"{e.cycle:>8} t{tid} {mode} {e.address:#010x}  {e.text}")
        return "\n".join(lines)
