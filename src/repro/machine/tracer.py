"""Per-bundle execution tracing for the MAP simulator (**deprecated**).

This module predates the structured-tracing spine in :mod:`repro.obs`
and survives as a compatibility shim over it: a :class:`Tracer` is now
a sink on the chip's :class:`~repro.obs.hub.TraceHub` that keeps only
``bundle`` events and converts them to the original flat
:class:`TraceEvent` records.  Constructing one emits a
:class:`DeprecationWarning`; use
:meth:`repro.sim.api.Simulation.trace` instead, which records the full
event taxonomy (docs/OBSERVABILITY.md), covers every node of a mesh,
and exports Perfetto-loadable traces.  The shim — and its 2×2 parity
guarantee that attaching never changes a cycle (see
``tests/machine/test_tracer.py``) — stays until external callers have
moved off it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.machine.chip import MAPChip


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One fetched-and-issued bundle."""

    cycle: int
    address: int
    text: str
    privileged: bool
    thread_id: int | None = None


class _LegacySink:
    """Hub sink that narrows the event stream to issued bundles and
    renders them in the legacy flat shape, honouring the tracer's
    event limit."""

    __slots__ = ("events", "limit")

    def __init__(self, events: list, limit: int):
        self.events = events
        self.limit = limit

    def append(self, event) -> None:
        if event.name != "bundle" or len(self.events) >= self.limit:
            return
        args = event.args
        self.events.append(TraceEvent(
            cycle=event.cycle,
            address=args["address"],
            text=args["text"],
            privileged=args["priv"],
            thread_id=event.tid,
        ))


@dataclass
class Tracer:
    """Records every issued bundle on a chip.

    A bundle event is emitted exactly when a bundle issues (and again
    when a faulted bundle is resumed), so the recorded stream *is* the
    issue stream, attributed to the issuing thread by the cluster
    itself.
    """

    chip: MAPChip
    events: list = field(default_factory=list)
    limit: int = 100_000

    def __post_init__(self) -> None:
        warnings.warn(
            "repro.machine.tracer.Tracer is deprecated; use "
            "Simulation.trace() (the repro.obs session API) instead",
            DeprecationWarning, stacklevel=2)
        self._sink = _LegacySink(self.events, self.limit)
        self.chip.obs.attach(self._sink)

    def detach(self) -> None:
        self.chip.obs.detach(self._sink)

    # -- queries --------------------------------------------------------

    def for_thread(self, tid: int) -> list[TraceEvent]:
        return [e for e in self.events if e.thread_id == tid]

    def privileged_events(self) -> list[TraceEvent]:
        return [e for e in self.events if e.privileged]

    def format(self, events=None) -> str:
        """Human-readable listing."""
        lines = []
        for e in events if events is not None else self.events:
            mode = "K" if e.privileged else "u"
            tid = "?" if e.thread_id is None else e.thread_id
            lines.append(f"{e.cycle:>8} t{tid} {mode} {e.address:#010x}  {e.text}")
        return "\n".join(lines)
