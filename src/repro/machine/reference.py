"""A sequential reference interpreter for MAP programs.

This is the differential-testing oracle for the cycle-level simulator:
it executes bundles one at a time against a flat functional memory —
no cache, no banks, no blocking loads, no multithreading — using the
same architectural semantics (the checked operations of
``repro.core.operations`` and LIW read-before-write within a bundle).

Any divergence between :class:`ReferenceInterpreter` and
:class:`~repro.machine.chip.MAPChip` on a single-threaded program is a
pipeline bug: commit ordering, deferred load writeback, IP update or
fault atomicity.  ``tests/machine/test_differential.py`` fuzzes random
programs through both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import operations as ops
from repro.core.exceptions import GuardedPointerFault, PermissionFault, RestrictFault
from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord, to_s64
from repro.machine.cluster import _FP_ALU, _INT_ALU, _INT_ALU_IMM
from repro.machine.faults import TrapFault
from repro.machine.isa import BUNDLE_BYTES, OP_BYTES, SLOTS, Bundle, Opcode, Operation
from repro.machine.registers import (RegisterFile, float_to_word,
                                     saturating_ftoi, word_to_float)
from repro.mem.tagged_memory import AlignmentFault


@dataclass
class ReferenceResult:
    """Outcome of a reference run."""

    reason: str                 #: "halted" | "faulted" | "max_bundles"
    bundles: int
    fault: GuardedPointerFault | None = None


class ReferenceInterpreter:
    """Flat-memory, one-bundle-at-a-time executor."""

    def __init__(self):
        self.regs = RegisterFile()
        self.memory: dict[int, TaggedWord] = {}
        self.code: dict[int, TaggedWord] = {}
        self.ip: GuardedPointer | None = None

    # -- setup -------------------------------------------------------------

    def load_program(self, program, base: int,
                     perm: Permission = Permission.EXECUTE_USER) -> GuardedPointer:
        """Place encoded words at ``base``; returns the entry pointer."""
        from repro.mem.allocator import round_up_log2
        words = program.encode()
        seglen = max(round_up_log2(max(len(words) * OP_BYTES, 1)), 3)
        if base % (1 << seglen):
            raise ValueError("base not aligned for the program size")
        for i, word in enumerate(words):
            self.code[base + i * OP_BYTES] = word
        entry = GuardedPointer.make(perm, seglen, base)
        self.ip = entry
        return entry

    def load_word(self, vaddr: int) -> TaggedWord:
        if vaddr % 8:
            raise AlignmentFault(f"unaligned word access at {vaddr:#x}")
        return self.memory.get(vaddr, self.code.get(vaddr, TaggedWord.zero()))

    def store_word(self, vaddr: int, word: TaggedWord) -> None:
        if vaddr % 8:
            raise AlignmentFault(f"unaligned word access at {vaddr:#x}")
        self.memory[vaddr] = word

    # -- execution ------------------------------------------------------------

    def run(self, max_bundles: int = 100_000) -> ReferenceResult:
        executed = 0
        while executed < max_bundles:
            try:
                state = self._step()
            except GuardedPointerFault as fault:
                return ReferenceResult("faulted", executed, fault)
            executed += 1
            if state == "halted":
                return ReferenceResult("halted", executed)
        return ReferenceResult("max_bundles", executed)

    def _fetch(self) -> Bundle:
        words = []
        for slot in range(SLOTS):
            vaddr = self.ip.address + slot * OP_BYTES
            if not self.ip.contains(vaddr):
                # same fault type the chip raises for this check
                raise PermissionFault("bundle extends past the code segment")
            words.append(self.load_word(vaddr))
        return Bundle.decode(words)

    def _step(self) -> str:
        try:
            bundle = self._fetch()
        except GuardedPointerFault:
            raise
        except Exception as cause:
            # undecodable words (a program stored garbage over its own
            # code) fault like they do on the chip, whose cluster wraps
            # any non-architectural fetch error the same way
            raise PermissionFault(f"{type(cause).__name__}: {cause}") from cause
        privileged = self.ip.permission is Permission.EXECUTE_PRIV
        commits: list[tuple[str, int, object]] = []
        branch_target: GuardedPointer | None = None
        halted = False

        target = self._exec_int(bundle.int_op, commits, privileged)
        if target == "halt":
            halted = True
        elif target is not None:
            branch_target = target
        self._exec_fp(bundle.fp_op, commits)
        self._exec_mem(bundle.mem_op, commits, privileged)

        for bank, index, value in commits:
            if bank == "r":
                self.regs.write(index, value)
            else:
                self.regs.write_f(index, value)

        if halted:
            return "halted"
        if branch_target is not None:
            self.ip = branch_target
        else:
            self.ip = ops.lea(self.ip.word, BUNDLE_BYTES)
        return "running"

    def _exec_int(self, op: Operation, commits, privileged: bool):
        code = op.opcode
        regs = self.regs
        if code is Opcode.NOP:
            return None
        if code is Opcode.HALT:
            return "halt"
        if code is Opcode.TRAP:
            raise TrapFault(op.imm)
        if code in _INT_ALU:
            a = regs.read(op.ra).untagged().value
            b = regs.read(op.rb).untagged().value
            commits.append(("r", op.rd, TaggedWord.integer(_INT_ALU[code](a, b))))
            return None
        if code in _INT_ALU_IMM:
            a = regs.read(op.ra).untagged().value
            b = op.imm & ((1 << 64) - 1)
            fn = _INT_ALU[_INT_ALU_IMM[code]]
            commits.append(("r", op.rd, TaggedWord.integer(fn(a, b))))
            return None
        if code is Opcode.MOVI:
            commits.append(("r", op.rd, TaggedWord.integer(op.imm)))
            return None
        if code is Opcode.MOV:
            commits.append(("r", op.rd, regs.read(op.ra)))
            return None
        if code is Opcode.ISPTR:
            commits.append(("r", op.rd, ops.ispointer(regs.read(op.ra))))
            return None
        if code is Opcode.GETIP:
            commits.append(("r", op.rd, ops.lea(self.ip.word, op.imm).word))
            return None
        if code is Opcode.BR:
            return ops.lea(self.ip.word, op.imm)
        if code in (Opcode.BEQ, Opcode.BNE):
            value = regs.read(op.rd).untagged().value
            taken = (value == 0) if code is Opcode.BEQ else (value != 0)
            return ops.lea(self.ip.word, op.imm) if taken else None
        if code is Opcode.JMP:
            return ops.check_jump(regs.read(op.ra), privileged)
        raise AssertionError(f"unhandled integer op {code.name}")

    def _exec_fp(self, op: Operation, commits) -> None:
        code = op.opcode
        regs = self.regs
        if code in (Opcode.FNOP, Opcode.NOP):
            return
        if code in _FP_ALU:
            commits.append(("f", op.rd,
                            _FP_ALU[code](regs.read_f(op.ra), regs.read_f(op.rb))))
            return
        if code is Opcode.FMOV:
            commits.append(("f", op.rd, regs.read_f(op.ra)))
            return
        if code is Opcode.ITOF:
            commits.append(("f", op.rd, float(regs.read(op.ra).as_signed())))
            return
        if code is Opcode.FTOI:
            commits.append(("r", op.rd,
                            TaggedWord.integer(saturating_ftoi(regs.read_f(op.ra)))))
            return
        raise AssertionError(f"unhandled fp op {code.name}")

    def _exec_mem(self, op: Operation, commits, privileged: bool) -> None:
        code = op.opcode
        regs = self.regs
        if code in (Opcode.NOP, Opcode.FNOP):
            return
        if code is Opcode.LD or code is Opcode.LDF:
            ptr = ops.lea(regs.read(op.ra), op.imm)
            ops.check_load(ptr.word)
            word = self.load_word(ptr.address)
            if code is Opcode.LD:
                commits.append(("r", op.rd, word))
            else:
                commits.append(("f", op.rd, word_to_float(word)))
            return
        if code is Opcode.ST or code is Opcode.STF:
            ptr = ops.lea(regs.read(op.ra), op.imm)
            ops.check_store(ptr.word)
            if code is Opcode.ST:
                value = regs.read(op.rd)
            else:
                value = float_to_word(regs.read_f(op.rd))
            self.store_word(ptr.address, value)
            return
        if code is Opcode.LEA:
            commits.append(("r", op.rd, ops.lea(regs.read(op.ra), op.imm).word))
            return
        if code is Opcode.LEAR:
            offset = to_s64(regs.read(op.rb).untagged().value)
            commits.append(("r", op.rd, ops.lea(regs.read(op.ra), offset).word))
            return
        if code is Opcode.LEAB:
            commits.append(("r", op.rd, ops.leab(regs.read(op.ra), op.imm).word))
            return
        if code is Opcode.LEABR:
            offset = to_s64(regs.read(op.rb).untagged().value)
            commits.append(("r", op.rd, ops.leab(regs.read(op.ra), offset).word))
            return
        if code is Opcode.SETPTR:
            commits.append(("r", op.rd,
                            ops.setptr(regs.read(op.ra), privileged).word))
            return
        if code is Opcode.RESTRICT:
            perm_code = regs.read(op.rb).untagged().value
            try:
                perm = Permission(perm_code)
            except ValueError:
                # same conversion the cluster performs
                raise RestrictFault(
                    f"not a permission code: {perm_code}") from None
            commits.append(("r", op.rd,
                            ops.restrict(regs.read(op.ra), perm).word))
            return
        if code is Opcode.SUBSEG:
            length = regs.read(op.rb).untagged().value
            commits.append(("r", op.rd,
                            ops.subseg(regs.read(op.ra), length).word))
            return
        raise AssertionError(f"unhandled memory op {code.name}")
