"""The M-Machine MAP chip simulator (§3): a LIW ISA with guarded-pointer
checks in the execution units, an assembler, multithreaded clusters and
the chip-level clock."""

from repro.machine.assembler import AssemblyError, DataItem, Program, assemble
from repro.machine.chip import ChipConfig, ChipStats, MAPChip, RunReason, RunResult
from repro.machine.cluster import Cluster
from repro.machine.counters import PerfCounters, merge_snapshots
from repro.machine.devices import BlockDevice, ConsoleDevice, map_device
from repro.machine.disasm import disassemble_bundle, disassemble_op, disassemble_words
from repro.machine.faults import FaultRecord, TrapFault
from repro.machine.multicomputer import Multicomputer, Partition
from repro.machine.network import MeshNetwork, MeshShape
from repro.machine.reference import ReferenceInterpreter, ReferenceResult
from repro.machine.verifier import InvariantViolation, SecurityMonitor
from repro.machine.isa import (
    BUNDLE_BYTES,
    NUM_REGS,
    OP_BYTES,
    Bundle,
    DecodeError,
    Opcode,
    Operation,
    Slot,
)
from repro.machine.registers import RegisterFile, float_to_word, word_to_float
from repro.machine.thread import Thread, ThreadState, ThreadStats


def __getattr__(name: str):
    # the legacy tracer shim is deprecated: import it lazily so merely
    # importing repro.machine never touches it (the shim's Tracer class
    # warns on construction; everything new uses Simulation.trace())
    if name in ("TraceEvent", "Tracer"):
        from repro.machine import tracer

        return getattr(tracer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AssemblyError",
    "BlockDevice",
    "ConsoleDevice",
    "map_device",
    "DataItem",
    "Program",
    "assemble",
    "disassemble_bundle",
    "disassemble_op",
    "disassemble_words",
    "InvariantViolation",
    "SecurityMonitor",
    "Multicomputer",
    "Partition",
    "MeshNetwork",
    "MeshShape",
    "ReferenceInterpreter",
    "ReferenceResult",
    "TraceEvent",
    "Tracer",
    "ChipConfig",
    "ChipStats",
    "MAPChip",
    "RunReason",
    "RunResult",
    "Cluster",
    "PerfCounters",
    "merge_snapshots",
    "FaultRecord",
    "TrapFault",
    "BUNDLE_BYTES",
    "NUM_REGS",
    "OP_BYTES",
    "Bundle",
    "DecodeError",
    "Opcode",
    "Operation",
    "Slot",
    "RegisterFile",
    "float_to_word",
    "word_to_float",
    "Thread",
    "ThreadState",
    "ThreadStats",
]
