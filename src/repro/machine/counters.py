"""Chip-wide performance counters.

Hardware exposes its behaviour through a counter file; the simulator
does the same.  :class:`PerfCounters` is one flat namespace of named
monotonically increasing counters with two feeding mechanisms:

* **events** — hot paths call :meth:`PerfCounters.incr` for occurrences
  that no component records on its own (faults by type, decode-cache
  invalidations, remote-port traffic);
* **sources** — components that already keep their own statistics
  (cache, TLB, clusters, the chip's issue counters) are registered as
  *pull sources*: a callable returning a ``{name: value}`` mapping that
  is read only when a snapshot is taken, so steady-state simulation
  pays nothing for them.

Counter names are dotted, ``"<unit>.<event>"`` — e.g. ``cache.hits``,
``tlb.walk_cycles``, ``fetch.misses``, ``fault.PageFault``,
``cluster0.issued`` — so a snapshot sorts into per-unit groups and
:func:`repro.sim.runner.format_table` can print it directly.

The wiring lives in :class:`repro.machine.chip.MAPChip` (every chip
owns a ``counters`` attribute) and, for multi-node machines, in
:class:`repro.machine.multicomputer.Multicomputer`, which adds router
traffic counters per node.  ``docs/PERF.md`` documents every counter.

Superblock turbo execution (``docs/PERF.md`` §6) batches its
accounting: while a trace runs, the per-cycle sites that feed the pull
sources (cluster issue/idle counts, fetch hits, thread stats) are
settled in one shot at trace exit rather than incremented per bundle.
Because sources are only read at snapshot time — and a snapshot cannot
be taken mid-trace — the counter file is bit-identical with the knob
on or off; the fuzzer's superblock axis and
``benchmarks/bench_superblock.py`` enforce that equality.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

#: Type of a pull source: returns {counter_name: value} when sampled.
CounterSource = Callable[[], Mapping[str, int | float]]


def _json_safe(value: int | float) -> int | float:
    """Clamp a counter reading to something ``json.dumps(...,
    allow_nan=False)`` accepts.  A source that divides by zero (or
    overflows a derived ratio) must not poison the whole snapshot —
    non-finite readings are reported as 0.0, which is also what the
    ratio helpers report for an empty denominator."""
    if isinstance(value, float) and not math.isfinite(value):
        return 0.0
    return value


class PerfCounters:
    """A named counter file: cheap increments plus lazily-pulled sources."""

    def __init__(self) -> None:
        self._events: dict[str, int] = {}
        self._sources: list[tuple[str, CounterSource]] = []

    # -- the hot-path half ------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to event counter ``name`` (created at 0)."""
        self._events[name] = self._events.get(name, 0) + amount

    # -- the pull half ----------------------------------------------------

    def add_source(self, prefix: str, source: CounterSource) -> None:
        """Register a pull source; its keys appear as ``prefix.key``
        (or bare keys when ``prefix`` is empty) in every snapshot."""
        self._sources.append((prefix, source))

    def has_source(self, prefix: str) -> bool:
        """Whether a pull source is already registered under ``prefix``
        (late-wired sources — a service's request-latency histogram —
        use this to register exactly once per chip)."""
        return any(p == prefix for p, _ in self._sources)

    # -- reading ----------------------------------------------------------

    def snapshot(self) -> dict[str, int | float]:
        """One coherent reading of every counter, sorted by name.

        Event counters and pull sources are merged; a source key that
        collides with an event name wins (sources are authoritative for
        the units that own them).

        The result is guaranteed to round-trip through JSON verbatim:
        keys are sorted (stable order run to run), and every value is a
        finite int or float — non-finite source readings are clamped to
        0.0 — so snapshots, ``BENCH_*.json`` and machine snapshot files
        can embed it with ``json.dumps(snap, allow_nan=False)``.
        """
        merged: dict[str, int | float] = dict(self._events)
        for prefix, source in self._sources:
            for key, value in source().items():
                merged[f"{prefix}.{key}" if prefix else key] = _json_safe(value)
        return dict(sorted(merged.items()))

    def get(self, name: str, default: int | float = 0) -> int | float:
        """Read one counter by its snapshot name."""
        return self.snapshot().get(name, default)

    def reset_events(self) -> None:
        """Zero the event half.  Pull sources belong to their components
        (``CacheStats``, ``TLBStats``, ...) and are reset by resetting
        those components, not here."""
        self._events.clear()

    # -- persistence (repro.persist) --------------------------------------

    def capture_events(self) -> dict[str, int]:
        """The event half alone (pull sources are captured by capturing
        their owning components)."""
        return dict(self._events)

    def restore_events(self, events: Mapping[str, int]) -> None:
        self._events = dict(events)

    def __len__(self) -> int:
        return len(self.snapshot())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerfCounters({len(self._events)} events, {len(self._sources)} sources)"


def merge_snapshots(per_node: Mapping[int, Mapping[str, int | float]]
                    ) -> dict[str, int | float]:
    """Combine per-node snapshots into one machine-wide view.

    Node-qualified names (``node<N>.<counter>``) are kept, and every
    counter is also summed across nodes under its bare name, so
    ``cache.hits`` in the merged view is machine-wide while
    ``node2.cache.hits`` remains inspectable.

    Derived ratios are not additive: a ``<unit>.hit_rate`` summed over
    nodes would read as a "rate" above 1.  The machine-wide rate is
    recomputed from the summed ``<unit>.hits`` / ``<unit>.misses``
    instead (an access-weighted mean of the per-node rates).
    """
    merged: dict[str, int | float] = {}
    summed: dict[str, int | float] = {}
    for node, snap in per_node.items():
        for name, value in snap.items():
            merged[f"node{node}.{name}"] = value
            summed[name] = summed.get(name, 0) + value
    for name in summed:
        if name.endswith(".hit_rate"):
            unit = name[: -len("hit_rate")]
            hits = summed.get(f"{unit}hits", 0)
            accesses = hits + summed.get(f"{unit}misses", 0)
            summed[name] = round(hits / accesses, 6) if accesses else 0.0
    merged.update(summed)
    return dict(sorted(merged.items()))
