"""Architectural security monitor.

A passive checker that watches a running chip and raises
:class:`InvariantViolation` the moment any of the paper's security
invariants breaks.  It exists to *test the simulator itself*: the
protection argument of the paper holds only if the implementation never
lets these slip, so the test suite runs adversarial programs under the
monitor.

Invariants checked:

* **I1 — privilege provenance.** A thread's IP may become
  execute-privileged only by jumping through an enter-privileged
  pointer (§2.2: "Privileged mode is entered by jumping to an
  enter-privileged pointer"), or by being born privileged (spawned by
  the kernel).
* **I2 — IP sanity.** Every live thread's IP is an execute pointer
  whose address lies inside its own segment.
* **I3 — tag hygiene in registers.** Every tagged register word decodes
  to a valid permission code (no reserved encodings escaped the checked
  operations).
* **I4 — tag hygiene in memory.** Likewise for every tagged word in
  physical memory (sweep check; call explicitly, it's O(memory)).
* **I5 — jump legality.** Every audited control transfer targeted an
  execute or enter pointer (the cluster should have faulted anything
  else; the monitor double-checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer
from repro.machine.chip import MAPChip
from repro.machine.thread import Thread, ThreadState


class InvariantViolation(Exception):
    """A security invariant of the architecture was broken."""


@dataclass(frozen=True, slots=True)
class JumpRecord:
    """One audited control transfer."""

    thread_id: int
    cycle: int
    source_perm: Permission        #: permission of the *target word*
    target_address: int
    was_escalation: bool


@dataclass
class MonitorStats:
    jumps_audited: int = 0
    escalations: int = 0
    register_sweeps: int = 0
    memory_sweeps: int = 0


class SecurityMonitor:
    """Attach to a chip; it audits every jump and exposes sweeps."""

    def __init__(self, chip: MAPChip):
        self.chip = chip
        self.stats = MonitorStats()
        self.log: list[JumpRecord] = []
        self._was_privileged: dict[int, bool] = {}
        chip.jump_auditor = self._audit_jump

    # -- I1 + I5: audited control transfers -------------------------------

    def _audit_jump(self, thread: Thread, target: GuardedPointer,
                    new_ip: GuardedPointer, cycle: int) -> None:
        perm = target.permission
        if not (perm.is_execute or perm.is_enter):
            raise InvariantViolation(
                f"I5: thread {thread.tid} jumped through a "
                f"{perm.name} pointer"
            )
        was_priv = self._was_privileged.get(thread.tid, thread.privileged)
        escalates = (new_ip.permission is Permission.EXECUTE_PRIV
                     and not was_priv)
        if escalates and perm is not Permission.ENTER_PRIV:
            raise InvariantViolation(
                f"I1: thread {thread.tid} escalated to privileged mode "
                f"via a {perm.name} pointer (only ENTER_PRIV may)"
            )
        self._was_privileged[thread.tid] = \
            new_ip.permission is Permission.EXECUTE_PRIV
        self.stats.jumps_audited += 1
        if escalates:
            self.stats.escalations += 1
        self.log.append(JumpRecord(
            thread_id=thread.tid,
            cycle=cycle,
            source_perm=perm,
            target_address=new_ip.address,
            was_escalation=escalates,
        ))

    def note_spawn(self, thread: Thread) -> None:
        """Record a thread's birth privilege so kernel-spawned
        privileged threads don't read as escalations."""
        self._was_privileged[thread.tid] = thread.privileged

    # -- I2 + I3: per-thread sweeps ---------------------------------------------

    def check_threads(self) -> None:
        """Validate IP sanity and register tag hygiene for every live
        thread."""
        self.stats.register_sweeps += 1
        for thread in self.chip.all_threads():
            if thread.state is ThreadState.HALTED:
                continue
            ip = thread.ip
            if not ip.permission.is_execute:
                raise InvariantViolation(
                    f"I2: thread {thread.tid} IP has permission "
                    f"{ip.permission.name}"
                )
            if not ip.contains(ip.address):
                raise InvariantViolation(
                    f"I2: thread {thread.tid} IP address outside its segment"
                )
            for index in range(16):
                word = thread.regs.read(index)
                if not word.tag:
                    continue
                try:
                    GuardedPointer.from_word(word)
                except Exception as e:
                    raise InvariantViolation(
                        f"I3: thread {thread.tid} r{index} holds a tagged "
                        f"word that does not decode: {e}"
                    ) from None

    # -- I4: memory sweep ----------------------------------------------------------

    def check_memory(self) -> None:
        """Validate that every tagged word in physical memory decodes."""
        self.stats.memory_sweeps += 1
        for address, word in self.chip.memory.scan_tagged():
            try:
                GuardedPointer.from_word(word)
            except Exception as e:
                raise InvariantViolation(
                    f"I4: tagged word at physical {address:#x} does not "
                    f"decode: {e}"
                ) from None

    # -- convenience -----------------------------------------------------------------

    def check_all(self) -> None:
        """Every passive sweep at once (I2–I4).  The jump audits (I1,
        I5) run inline while the chip executes; callers that drive the
        chip themselves — the fuzz differ does — call this at the end
        for the state-shaped half of the invariants."""
        self.check_threads()
        self.check_memory()

    def run_checked(self, max_cycles: int = 1_000_000, sweep_every: int = 64):
        """Drive the chip like :meth:`MAPChip.run`, sweeping thread
        state every ``sweep_every`` cycles and memory at the end."""
        start = self.chip.now
        while self.chip.now - start < max_cycles:
            if self.chip.runnable_threads() == 0:
                break
            self.chip.step()
            if (self.chip.now - start) % sweep_every == 0:
                self.check_threads()
        self.check_threads()
        self.check_memory()
