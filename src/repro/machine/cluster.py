"""One MAP cluster: an integer, a memory and a floating-point unit fed
by up to four resident threads (§3, Figure 5).

Every cycle the cluster wakes any threads whose memory operations have
completed, selects one ready thread round-robin, and issues its current
bundle to the three units.  All guarded-pointer checks (§2.2) happen
here, *before* an operation reaches the memory system:

* the integer unit checks jump targets (enter→execute conversion);
* the memory unit checks tag, permission and segment bounds on every
  load, store and pointer-manipulation op;
* nothing downstream re-checks anything.

Fault atomicity: a bundle commits no architectural state unless every
operation in it passes its checks, so a faulted bundle can simply be
re-executed after the kernel repairs the cause.  Operations are
evaluated int → fp → mem, with the memory access — the only operation
with a side effect beyond registers — performed last.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.core import operations as ops
from repro.core.constants import ADDRESS_MASK as _SB_ADDRESS_MASK
from repro.core.constants import WORD_MASK as _SB_WORD_MASK
from repro.core.exceptions import (
    FetchPending,
    GuardedPointerFault,
    PermissionFault,
    RestrictFault,
)
from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord, to_s64
from repro.machine.disasm import disassemble_bundle
from repro.machine.faults import FaultRecord, TrapFault
from repro.machine.isa import BUNDLE_BYTES, Bundle, Opcode, Operation
from repro.machine.registers import float_to_word, saturating_ftoi, word_to_float
from repro.machine.thread import REMOTE_WAIT, Thread, ThreadState

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.chip import MAPChip


class _Halt(Exception):
    """Internal: bundle executed a HALT."""


def _ieee_div(a: float, b: float) -> float:
    try:
        return a / b
    except ZeroDivisionError:
        if a == 0 or math.isnan(a):
            return math.nan
        return math.inf if (a > 0) == (b >= 0) else -math.inf


_INT_ALU = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & 63),
    Opcode.SHR: lambda a, b: a >> (b & 63),
    Opcode.SLT: lambda a, b: int(to_s64(a) < to_s64(b)),
    Opcode.SEQ: lambda a, b: int(a == b),
}

_INT_ALU_IMM = {
    Opcode.ADDI: Opcode.ADD,
    Opcode.SUBI: Opcode.SUB,
    Opcode.ANDI: Opcode.AND,
    Opcode.ORI: Opcode.OR,
    Opcode.XORI: Opcode.XOR,
    Opcode.SHLI: Opcode.SHL,
    Opcode.SHRI: Opcode.SHR,
    Opcode.SLTI: Opcode.SLT,
    Opcode.SEQI: Opcode.SEQ,
}

_FP_ALU = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: _ieee_div,
}


class Cluster:
    """Thread slots plus the three execution units."""

    def __init__(self, cluster_id: int, chip: "MAPChip", slots: int = 4):
        self.cluster_id = cluster_id
        self.chip = chip
        self.slots: list[Thread | None] = [None] * slots
        self._next_slot = 0  # round-robin cursor
        self.last_domain: int | None = None
        self._stall_until = 0
        #: thread waiting out a domain-switch drain; it issues first
        #: when the drain ends
        self._pending: Thread | None = None
        self.issued_cycles = 0
        self.idle_cycles = 0
        self.switch_stall_cycles = 0
        #: incremental per-state occupancy of this cluster's slots; kept
        #: exact by add/remove_thread and by Thread.state's setter, so
        #: the chip's run loop never rescans threads to learn liveness
        #: (plain ints, not an enum-keyed dict — these are read every
        #: cycle and the chip mirrors ready/runnable totals chip-wide)
        self._n_ready = 0
        self._n_blocked = 0
        self._n_faulted = 0
        self._n_halted = 0
        #: tid of the last thread this cluster issued from (trace-only:
        #: feeds the ``thread.switch`` event, never read by the model)
        self._last_tid: int | None = None

    # -- thread management ------------------------------------------------

    def add_thread(self, thread: Thread) -> int:
        for i, slot in enumerate(self.slots):
            if slot is None:
                return self._install(i, thread)
        # a halted thread's slot can be reused: its architectural state
        # is dead and system software would have reaped it
        for i, slot in enumerate(self.slots):
            if slot is not None and slot.state is ThreadState.HALTED:
                self._evict(slot)
                return self._install(i, thread)
        raise RuntimeError(f"cluster {self.cluster_id} has no free thread slot")

    def _install(self, index: int, thread: Thread) -> int:
        self.slots[index] = thread
        self._count(thread._state, +1)
        thread.scheduler = self
        return index

    def _evict(self, thread: Thread) -> None:
        self._count(thread._state, -1)
        thread.scheduler = None

    def remove_thread(self, thread: Thread) -> None:
        for i, slot in enumerate(self.slots):
            if slot is thread:
                self._evict(slot)
                self.slots[i] = None
                return
        raise ValueError("thread is not resident on this cluster")

    def live_threads(self) -> list[Thread]:
        return [t for t in self.slots if t is not None]

    # -- scheduler bookkeeping ---------------------------------------------

    def _count(self, state: ThreadState, delta: int) -> None:
        """Adjust this cluster's (and the chip's) occupancy counts."""
        if state is ThreadState.READY:
            self._n_ready += delta
            chip = self.chip
            chip._ready_count += delta
            chip._runnable_count += delta
        elif state is ThreadState.BLOCKED:
            self._n_blocked += delta
            self.chip._runnable_count += delta
        elif state is ThreadState.FAULTED:
            self._n_faulted += delta
        else:
            self._n_halted += delta

    def on_state_change(self, thread: Thread, old: ThreadState,
                        new: ThreadState) -> None:
        """Thread.state's setter reports every transition here."""
        self._count(old, -1)
        self._count(new, +1)

    @property
    def ready_count(self) -> int:
        return self._n_ready

    @property
    def runnable_count(self) -> int:
        """Threads that can still make progress (ready or blocked)."""
        return self._n_ready + self._n_blocked

    @property
    def faulted_count(self) -> int:
        return self._n_faulted

    @property
    def active_count(self) -> int:
        """Occupied slots whose thread has not halted (spawn placement)."""
        return self._n_ready + self._n_blocked + self._n_faulted

    def next_wake(self) -> int | None:
        """Earliest wake cycle among blocked threads, or None."""
        wake = None
        for thread in self.slots:
            if thread is not None and thread._state is ThreadState.BLOCKED:
                if wake is None or thread.wake_at < wake:
                    wake = thread.wake_at
        return wake

    def as_counters(self) -> dict[str, int]:
        """This cluster's view for :class:`~repro.machine.counters.PerfCounters`."""
        return {
            "issued": self.issued_cycles,
            "idle": self.idle_cycles,
            "switch_stalls": self.switch_stall_cycles,
            "occupied_slots": sum(1 for t in self.slots if t is not None),
        }

    # -- per-cycle issue ----------------------------------------------------

    def step(self, now: int) -> bool:
        """Run one cycle; returns True when a bundle issued."""
        if self._n_blocked:
            for thread in self.slots:
                if (thread is not None
                        and thread._state is ThreadState.BLOCKED
                        and now >= thread.wake_at):
                    thread.maybe_wake(now)

        if now < self._stall_until:
            self.switch_stall_cycles += 1
            return False

        if self._pending is not None and self._pending._state is ThreadState.READY:
            thread = self._pending
            self._pending = None
        else:
            self._pending = None
            thread = self._select(now)
        if thread is None:
            self.idle_cycles += 1
            return False

        # E5 contrast knob: a conventional machine pays to interleave
        # threads from different protection domains.  Guarded pointers
        # leave this at zero.
        penalty = self.chip.config.domain_switch_penalty
        if penalty and self.last_domain is not None and thread.domain != self.last_domain:
            self._stall_until = now + penalty
            self._pending = thread  # issues as soon as the drain ends
            self.last_domain = thread.domain
            if self.chip.config.flush_on_domain_switch:
                self.chip.tlb.flush()
                self.chip.cache.flush()
            self.switch_stall_cycles += 1
            return False
        self.last_domain = thread.domain

        obs = self.chip.obs
        if obs.hot and thread.tid != self._last_tid:
            obs.emit("thread.switch", now, cluster=self.cluster_id,
                     tid=thread.tid, from_tid=self._last_tid)
        self._last_tid = thread.tid

        if self._execute_bundle(thread, now):
            self.issued_cycles += 1
            return True
        # the fetch is waiting on remote code words (FetchPending):
        # nothing issued; the cycle is idle like any other stall
        self.idle_cycles += 1
        return False

    def _select(self, now: int) -> Thread | None:
        n = len(self.slots)
        for i in range(n):
            index = (self._next_slot + i) % n
            thread = self.slots[index]
            if thread is not None and thread._state is ThreadState.READY:
                self._next_slot = (index + 1) % n
                return thread
        return None

    # -- bundle execution ----------------------------------------------------

    def _lea(self, word: TaggedWord, offset: int):
        """LEA through the chip's derivation memo.

        ``ops.lea`` is a pure function of the pointer's bits and the
        offset — the same (word, offset) pair always yields the same
        (immutable) pointer, independent of any page-table or memory
        state — so successful derivations are memoized chip-wide.  IP
        advance, branch targets and load/store address arithmetic all
        come through here.  Faulting derivations are never cached, and
        untagged words bypass the memo (a pointer and an integer can
        share a bit pattern).
        """
        cache = self.chip._lea_cache
        if cache is None or not word.tag:
            return ops.lea(word, offset)
        key = (word.value, offset)
        ptr = cache.get(key)
        if ptr is None:
            ptr = ops.lea(word, offset)
            cache[key] = ptr
        return ptr

    def _execute_bundle(self, thread: Thread, now: int) -> bool:
        """Execute one bundle; returns True when the bundle issued (a
        faulting bundle issues too), False when the fetch is stalled on
        remote code words and nothing happened this cycle."""
        try:
            bundle = self.chip.fetch(thread.ip)
        except FetchPending as pend:
            # remote code words were requested at the window barrier;
            # the thread blocks until they land and the fetch retries
            thread.block_until(pend.resume_at)
            return False
        except Exception as cause:  # decode/translation failure at fetch
            self._fault(thread, cause, "fetch", now)
            return True

        obs = self.chip.obs
        if obs.hot:
            obs.emit("bundle", now, cluster=self.cluster_id, tid=thread.tid,
                     address=thread.ip.address, priv=thread.privileged,
                     text=disassemble_bundle(bundle))

        commits: list[tuple[str, int, object]] = []
        branch_target: GuardedPointer | None = None
        halted = False
        block_until: int | None = None
        pending: list[tuple[str, int, object]] = []

        try:
            target = self._exec_int(thread, bundle.int_op, commits, now)
            if target is _Halt:
                halted = True
            elif target is not None:
                branch_target = target
            self._exec_fp(thread, bundle.fp_op, commits)
            block_until, pending = self._exec_mem(thread, bundle.mem_op, commits, now)
        except GuardedPointerFault as cause:
            self._fault(thread, cause, self._fault_site(bundle, cause), now)
            return True

        # Commit phase: nothing above faulted.
        for bank, index, value in commits:
            if bank == "r":
                thread.regs.write(index, value)
            else:
                thread.regs.write_f(index, value)

        thread.stats.bundles += 1
        thread.stats.operations += bundle.live_ops

        if halted:
            # a halting bundle still commits everything it did — a
            # blocking load sharing the bundle with HALT must land its
            # register write before the thread's state goes final
            for bank, index, value in pending:
                if bank == "r":
                    thread.regs.write(index, value)
                else:
                    thread.regs.write_f(index, value)
            thread.state = ThreadState.HALTED
            thread.halted_at = now
            if obs.enabled:
                obs.emit("thread.halt", now, cluster=self.cluster_id,
                         tid=thread.tid, bundles=thread.stats.bundles)
            return True

        try:
            if branch_target is not None:
                thread.ip = branch_target
            else:
                thread.ip = self._lea(thread.ip.word, BUNDLE_BYTES)
        except GuardedPointerFault as cause:
            # running off the end of the code segment
            self._fault(thread, cause, "ip-advance", now)
            return True

        if block_until == REMOTE_WAIT:
            # remote load: the true reply cycle is computed at the next
            # window barrier, which rewrites wake_at and charges the
            # stall; the register write arrives the same way
            thread.pending_writes.extend(pending)
            thread.block_until(REMOTE_WAIT)
        elif block_until is not None and block_until > now + 1:
            thread.pending_writes.extend(pending)
            thread.stats.stall_cycles += block_until - (now + 1)
            thread.block_until(block_until)
        else:
            for bank, index, value in pending:
                if bank == "r":
                    thread.regs.write(index, value)
                else:
                    thread.regs.write_f(index, value)
        return True

    # -- superblock execution ------------------------------------------------

    def _sb_node(self, address: int, word: int, ip: "GuardedPointer"):
        """Build (or refuse) a superblock node for the bundle at
        ``address`` as fetched through pointer ``word``.

        A node is a pre-picked execution plan for one decoded bundle:
        NOP slots resolved to ``None`` (the units early-out on fillers
        with zero side effects, so skipping the call is behaviorally
        identical), plus the memoized fall-through IP.  HALT and TRAP
        bundles refuse a node — their handling (final thread state,
        halt events, trap dispatch) belongs to the per-cycle path, and
        both end the straight line anyway.  The node remembers the
        exact pointer word it was built through, mirroring the decoded
        bundle's word check: a different pointer to the same address
        re-validates through the normal fetch path.
        """
        entry = self.chip._decode_cache.get(address)
        if entry is None or entry[1] != word:
            return None
        bundle = entry[0]
        int_op = bundle.int_op
        code = int_op.opcode
        if code is Opcode.NOP:
            int_fn = None
        elif code is Opcode.HALT or code is Opcode.TRAP:
            return None
        else:
            int_fn = self._sb_compile_int(int_op, ip)
        fp_op = bundle.fp_op
        if fp_op.opcode is Opcode.FNOP or fp_op.opcode is Opcode.NOP:
            fp_op = None
        mem_op = bundle.mem_op
        if mem_op.opcode is Opcode.NOP or mem_op.opcode is Opcode.FNOP:
            mem_fn = None
        else:
            mem_fn = self._sb_compile_mem(mem_op)
        try:
            next_ip = self._lea(ip.word, BUNDLE_BYTES)
        except GuardedPointerFault:
            # fall-through runs off the code segment; the executor
            # re-derives live so the fault raises exactly as stepping
            next_ip = None
        node = (word, bundle, int_fn, fp_op, mem_fn, next_ip,
                bundle.live_ops)
        self.chip._sb_nodes[address] = node
        return node

    def _sb_compile_int(self, op: Operation, ip: "GuardedPointer"):
        """Compile an integer-slot op into a node closure.

        The trace-cache idiom: everything that is a pure function of
        the operation encoding and the bundle's (fixed) fetch address —
        ALU immediates, branch targets, MOVI's word — resolves once at
        node-build time, so executing the node spends no cycles
        re-deciding what the op *is*.  Branch targets come through the
        same LEA memo the per-cycle path uses (pure, so pre-deriving is
        invisible); a target whose derivation faults falls back to the
        unit so the fault raises only when the branch is actually taken,
        exactly as stepping.  Ops with side effects beyond registers
        and branches (JMP's audit/trace hooks, traps) always fall back
        to the integer unit itself.
        """
        code = op.opcode
        # the hot ALU closures build TaggedWords the way the frozen
        # dataclass's own __init__ does (object.__setattr__), skipping
        # three Python calls per op; ``.untagged().value`` collapses to
        # ``.value`` (untagging never changes the bits)
        new = TaggedWord.__new__
        setattr_ = object.__setattr__
        if code in _INT_ALU_IMM:
            fn = _INT_ALU[_INT_ALU_IMM[code]]
            b = op.imm & _SB_WORD_MASK
            ra, rd = op.ra, op.rd

            def run(thread, regs, commits, now):
                word = new(TaggedWord)
                setattr_(word, "value",
                         fn(regs.read(ra).value, b) & _SB_WORD_MASK)
                setattr_(word, "tag", False)
                commits.append(("r", rd, word))
                return None
            return run
        if code in _INT_ALU:
            fn = _INT_ALU[code]
            ra, rb, rd = op.ra, op.rb, op.rd

            def run(thread, regs, commits, now):
                word = new(TaggedWord)
                setattr_(word, "value",
                         fn(regs.read(ra).value,
                            regs.read(rb).value) & _SB_WORD_MASK)
                setattr_(word, "tag", False)
                commits.append(("r", rd, word))
                return None
            return run
        if code is Opcode.MOVI:
            word = TaggedWord.integer(op.imm)
            rd = op.rd

            def run(thread, regs, commits, now):
                commits.append(("r", rd, word))
                return None
            return run
        if code is Opcode.BEQ or code is Opcode.BNE:
            target = self._sb_branch_target(ip, op.imm)
            if target is not None:
                rd = op.rd
                want_zero = code is Opcode.BEQ

                def run(thread, regs, commits, now):
                    value = regs.read(rd).value
                    taken = (value == 0) if want_zero else (value != 0)
                    return target if taken else None
                return run
        elif code is Opcode.BR:
            target = self._sb_branch_target(ip, op.imm)
            if target is not None:
                def run(thread, regs, commits, now):
                    return target
                return run
        exec_int = self._exec_int

        def run(thread, regs, commits, now):
            return exec_int(thread, op, commits, now)
        return run

    def _sb_branch_target(self, ip: "GuardedPointer", imm: int):
        """Pre-derive a branch target at node-build time, or None when
        the derivation faults (then the op falls back to the unit, so
        the fault raises only on a taken branch, as stepping would)."""
        try:
            return self._lea(ip.word, imm)
        except GuardedPointerFault:
            return None

    def _sb_compile_mem(self, op: Operation):
        """Compile a memory-slot op into a node closure returning
        ``(block_until, pending_writes)`` — :meth:`_exec_mem`'s
        contract with its opcode dispatch pre-resolved.

        Loads and stores keep the exact per-execution path — the
        access-check memo, the banked cache's timing, the load-to-use
        histogram, the store's decoded-bundle invalidation — but bind
        the local cache port directly: superblocks only ever dispatch
        on an un-meshed chip (``router is None``), so
        :meth:`MAPChip.access_memory`'s routing branch is a proven
        no-op here.  Everything else falls back to the memory unit.
        """
        code = op.opcode
        chip = self.chip
        if code is Opcode.LD or code is Opcode.LDF:
            mem_address = self._mem_address
            cache_access = chip.cache.access
            obs = chip.obs
            load_to_use = obs.load_to_use.add
            ra, rd, imm = op.ra, op.rd, op.imm
            is_ld = code is Opcode.LD

            def run(thread, regs, commits, now):
                vaddr = mem_address(regs.read(ra), imm, write=False)
                result = cache_access(vaddr, write=False, now=now)
                if obs.enabled:
                    load_to_use(result.ready_cycle - now)
                if is_ld:
                    write = ("r", rd, result.word)
                else:
                    write = ("f", rd, word_to_float(result.word))
                return result.ready_cycle, (write,)
            return run
        if code is Opcode.ST or code is Opcode.STF:
            mem_address = self._mem_address
            cache_access = chip.cache.access
            invalidate = chip.invalidate_decoded_word
            ra, rd, imm = op.ra, op.rd, op.imm
            is_st = code is Opcode.ST

            def run(thread, regs, commits, now):
                vaddr = mem_address(regs.read(ra), imm, write=True)
                if is_st:
                    value = regs.read(rd)
                else:
                    value = float_to_word(regs.read_f(rd))
                invalidate(vaddr)
                cache_access(vaddr, write=True, now=now, value=value)
                return None, ()
            return run
        exec_mem = self._exec_mem

        def run(thread, regs, commits, now):
            return exec_mem(thread, op, commits, now)
        return run

    def run_superblock(self, thread: Thread, start: int, end: int) -> int:
        """Execute ``thread``'s straight-line bundles for cycles
        ``[start, end)`` in one dispatch; returns the cycles consumed.

        The chip has proven (in :meth:`MAPChip._run_superblock`) that
        nothing else can act before ``end``, so this loop is exactly
        the per-cycle path with the invariant parts hoisted: scheduling
        collapses to "this thread again", fetch collapses to a node
        probe, and cycle/issue/idle accounting is settled in bulk at
        exit.  Everything with an architectural or observable effect —
        the execution units, guarded-pointer checks, cache timing, the
        check memos, histograms, fault dispatch — runs live through the
        same code stepping uses, so cycle counts, counters and trace
        events are bit-identical to the knob being off.  Any bundle the
        node cache cannot answer (not decoded yet, self-modified,
        HALT/TRAP) exits the superblock and the normal path handles it.
        """
        chip = self.chip
        nodes = chip._sb_nodes
        regs = thread.regs
        commits: list[tuple[str, int, object]] = []
        bundles = 0   # committed bundles (a faulting one commits nothing)
        ops = 0
        now = start
        ip = thread.ip
        while True:
            word = ip.word.value
            address = word & _SB_ADDRESS_MASK
            node = nodes.get(address)
            if node is None or node[0] != word:
                node = self._sb_node(address, word, ip)
                if node is None:
                    break
            _, bundle, int_fn, fp_op, mem_fn, next_ip, live = node
            commits.clear()
            branch_target = None
            block_until = None
            pending = None
            try:
                if int_fn is not None:
                    branch_target = int_fn(thread, regs, commits, now)
                if fp_op is not None:
                    self._exec_fp(thread, fp_op, commits)
                if mem_fn is not None:
                    block_until, pending = mem_fn(thread, regs, commits, now)
            except GuardedPointerFault as cause:
                # the faulting cycle still elapses and the bundle still
                # issues (fetch hit, then the unit faulted) — but it
                # commits nothing, exactly like the per-cycle path
                chip.now = now
                self._fault(thread, cause,
                            self._fault_site(bundle, cause), now)
                self._sb_exit(thread, bundles, ops, start, now + 1)
                return now + 1 - start
            for bank, index, value in commits:
                if bank == "r":
                    regs.write(index, value)
                else:
                    regs.write_f(index, value)
            bundles += 1
            ops += live
            if branch_target is not None:
                thread.ip = ip = branch_target
            elif next_ip is not None:
                thread.ip = ip = next_ip
            else:
                # fall-through derivation faulted at node-build time;
                # re-derive live (pure, so it faults again identically)
                chip.now = now
                try:
                    self._lea(ip.word, BUNDLE_BYTES)
                except GuardedPointerFault as cause:
                    self._fault(thread, cause, "ip-advance", now)
                self._sb_exit(thread, bundles, ops, start, now + 1)
                return now + 1 - start
            if block_until is not None and block_until > now + 1:
                thread.pending_writes.extend(pending)
                thread.stats.stall_cycles += block_until - (now + 1)
                self._sb_exit(thread, bundles, ops, start, now + 1)
                thread.block_until(block_until)
                return now + 1 - start
            if pending:
                for bank, index, value in pending:
                    if bank == "r":
                        regs.write(index, value)
                    else:
                        regs.write_f(index, value)
            now += 1
            if now >= end:
                break
        if now > start:
            self._sb_exit(thread, bundles, ops, start, now)
        return now - start

    def _sb_exit(self, thread: Thread, bundles: int, ops: int,
                 start: int, end: int) -> None:
        """Settle the bulk accounting for a superblock spanning cycles
        ``[start, end)`` — every total a per-cycle run would have
        accumulated over the same stretch, applied at once."""
        n = end - start
        chip = self.chip
        chip.now = end
        chip.stats.cycles += n
        # every superblock cycle issued a bundle, and every one of
        # those bundles was a decoded-bundle-cache hit (a faulting
        # bundle issues too; only the thread's commit stats skip it)
        chip.stats.issued_bundles += n
        chip.fetch_hits += n
        chip.superblock_blocks += 1
        chip.superblock_bundles += n
        self.issued_cycles += n
        # scheduling bookkeeping a per-cycle run would have left behind
        self._next_slot = (self.slots.index(thread) + 1) % len(self.slots)
        self.last_domain = thread.domain
        self._last_tid = thread.tid
        for cl in chip.clusters:
            if cl is not self:
                cl.idle_cycles += n
        thread.stats.bundles += bundles
        thread.stats.operations += ops

    # -- the integer unit ------------------------------------------------------

    def _exec_int(self, thread: Thread, op: Operation, commits: list,
                  now: int):
        """Returns a branch-target pointer, the _Halt sentinel, or None."""
        code = op.opcode
        regs = thread.regs
        if code is Opcode.NOP:
            return None
        if code is Opcode.HALT:
            return _Halt
        if code is Opcode.TRAP:
            raise TrapFault(op.imm)
        if code in _INT_ALU:
            a = regs.read(op.ra).untagged().value
            b = regs.read(op.rb).untagged().value
            commits.append(("r", op.rd, TaggedWord.integer(_INT_ALU[code](a, b))))
            return None
        if code in _INT_ALU_IMM:
            a = regs.read(op.ra).untagged().value
            b = op.imm & ((1 << 64) - 1)
            fn = _INT_ALU[_INT_ALU_IMM[code]]
            commits.append(("r", op.rd, TaggedWord.integer(fn(a, b))))
            return None
        if code is Opcode.MOVI:
            commits.append(("r", op.rd, TaggedWord.integer(op.imm)))
            return None
        if code is Opcode.MOV:
            # MOV preserves the tag: copying a pointer yields the pointer.
            commits.append(("r", op.rd, regs.read(op.ra)))
            return None
        if code is Opcode.ISPTR:
            commits.append(("r", op.rd, ops.ispointer(regs.read(op.ra))))
            return None
        if code is Opcode.GETIP:
            commits.append(("r", op.rd, self._lea(thread.ip.word, op.imm).word))
            return None
        if code is Opcode.BR:
            return self._lea(thread.ip.word, op.imm)
        if code in (Opcode.BEQ, Opcode.BNE):
            value = regs.read(op.rd).untagged().value
            taken = (value == 0) if code is Opcode.BEQ else (value != 0)
            return self._lea(thread.ip.word, op.imm) if taken else None
        if code is Opcode.JMP:
            target_word = regs.read(op.ra)
            new_ip = ops.check_jump(target_word, thread.privileged)
            auditor = self.chip.jump_auditor
            if auditor is not None:
                auditor(thread, GuardedPointer.from_word(target_word),
                        new_ip, now)
            obs = self.chip.obs
            if obs.enabled:
                obs.note_jump(thread, target_word, new_ip, now,
                              cluster=self.cluster_id)
            return new_ip
        raise AssertionError(f"unhandled integer op {code.name}")

    # -- the floating-point unit -------------------------------------------------

    def _exec_fp(self, thread: Thread, op: Operation, commits: list) -> None:
        code = op.opcode
        regs = thread.regs
        if code in (Opcode.FNOP, Opcode.NOP):
            return
        if code in _FP_ALU:
            result = _FP_ALU[code](regs.read_f(op.ra), regs.read_f(op.rb))
            commits.append(("f", op.rd, result))
            return
        if code is Opcode.FMOV:
            commits.append(("f", op.rd, regs.read_f(op.ra)))
            return
        if code is Opcode.ITOF:
            commits.append(("f", op.rd, float(regs.read(op.ra).as_signed())))
            return
        if code is Opcode.FTOI:
            commits.append(("r", op.rd,
                            TaggedWord.integer(saturating_ftoi(regs.read_f(op.ra)))))
            return
        raise AssertionError(f"unhandled fp op {code.name}")

    # -- the memory unit ------------------------------------------------------

    def _mem_address(self, word: TaggedWord, offset: int, *, write: bool) -> int:
        """The checked virtual address of a load/store, through the
        chip's access-check memo.

        The whole derivation — LEA bounds, tag check, READ/WRITE
        permission — is a pure function of (pointer bits, offset): none
        of it consults the page table or memory.  So once a (word,
        offset) pair has passed, a later access through the *same*
        pointer word is a single dictionary probe; that is the paper's
        thesis applied to the data path (checks resolve once, nothing
        downstream re-walks).  A different pointer word — even to the
        same address — takes the full check path.  Faulting derivations
        are never cached, and untagged words bypass the memo (a pointer
        and an integer can share a bit pattern).
        """
        chip = self.chip
        memo = chip._store_check_memo if write else chip._load_check_memo
        if memo is None or not word.tag:
            ptr = self._lea(word, offset)
            (ops.check_store if write else ops.check_load)(ptr.word)
            return ptr.address
        key = (word.value, offset)
        vaddr = memo.get(key)
        if vaddr is not None:
            chip.check_memo_hits += 1
            return vaddr
        ptr = self._lea(word, offset)
        (ops.check_store if write else ops.check_load)(ptr.word)
        chip.check_memo_misses += 1
        memo[key] = ptr.address
        return ptr.address

    def _exec_mem(self, thread: Thread, op: Operation, commits: list, now: int):
        """Returns (block_until, pending_writes)."""
        code = op.opcode
        regs = thread.regs
        no_block = (None, [])
        if code in (Opcode.NOP, Opcode.FNOP):
            return no_block

        if code is Opcode.LD or code is Opcode.LDF:
            vaddr = self._mem_address(regs.read(op.ra), op.imm, write=False)
            result = self.chip.access_memory(vaddr, write=False, now=now)
            if result.ready_cycle == REMOTE_WAIT:
                # remote load: the window barrier resolves the value and
                # the true latency (the histogram is charged then too)
                self.chip.router.bind_remote_load(
                    self.chip, thread.tid,
                    "r" if code is Opcode.LD else "f", op.rd)
                return REMOTE_WAIT, []
            obs = self.chip.obs
            if obs.enabled:
                obs.load_to_use.add(result.ready_cycle - now)
            if code is Opcode.LD:
                write = ("r", op.rd, result.word)
            else:
                write = ("f", op.rd, word_to_float(result.word))
            return result.ready_cycle, [write]

        if code is Opcode.ST or code is Opcode.STF:
            vaddr = self._mem_address(regs.read(op.ra), op.imm, write=True)
            if code is Opcode.ST:
                value = regs.read(op.rd)
            else:
                value = float_to_word(regs.read_f(op.rd))
            self.chip.access_memory(vaddr, write=True, now=now, value=value)
            return no_block  # stores are buffered; the thread proceeds

        if code is Opcode.LEA:
            commits.append(("r", op.rd, self._lea(regs.read(op.ra), op.imm).word))
            return no_block
        if code is Opcode.LEAR:
            offset = to_s64(regs.read(op.rb).untagged().value)
            commits.append(("r", op.rd, self._lea(regs.read(op.ra), offset).word))
            return no_block
        if code is Opcode.LEAB:
            commits.append(("r", op.rd, ops.leab(regs.read(op.ra), op.imm).word))
            return no_block
        if code is Opcode.LEABR:
            offset = to_s64(regs.read(op.rb).untagged().value)
            commits.append(("r", op.rd, ops.leab(regs.read(op.ra), offset).word))
            return no_block
        if code is Opcode.SETPTR:
            forged = ops.setptr(regs.read(op.ra), privileged=thread.privileged)
            commits.append(("r", op.rd, forged.word))
            return no_block
        if code is Opcode.RESTRICT:
            perm_code = regs.read(op.rb).untagged().value
            try:
                perm = Permission(perm_code)
            except ValueError:
                raise RestrictFault(f"not a permission code: {perm_code}") from None
            commits.append(("r", op.rd, ops.restrict(regs.read(op.ra), perm).word))
            return no_block
        if code is Opcode.SUBSEG:
            length = regs.read(op.rb).untagged().value
            commits.append(("r", op.rd, ops.subseg(regs.read(op.ra), length).word))
            return no_block
        raise AssertionError(f"unhandled memory op {code.name}")

    # -- fault plumbing ------------------------------------------------------

    @staticmethod
    def _fault_site(bundle: Bundle, cause: Exception) -> str:
        if isinstance(cause, TrapFault):
            return "trap"
        for op in bundle.operations:
            if op.opcode not in (Opcode.NOP, Opcode.FNOP):
                return op.opcode.name.lower()
        return "bundle"

    def _fault(self, thread: Thread, cause: Exception, site: str, now: int) -> None:
        if not isinstance(cause, GuardedPointerFault):
            cause = PermissionFault(f"{type(cause).__name__}: {cause}")
        record = FaultRecord(
            thread_id=thread.tid,
            cycle=now,
            cause=cause,
            opcode_name=site,
            ip_address=thread.ip.address,
        )
        thread.record_fault(record)
        self.chip.report_fault(record, thread)
