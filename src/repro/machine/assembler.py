"""Two-pass assembler for MAP programs.

Syntax (one bundle per line; ``|`` separates slot operations; ``;``
starts a comment)::

    ; sum the array at r1, length in r2
    loop:
        beq r2, done      | ld r3, r1, 0
        add r4, r4, r3    | lea r1, r1, 8
        subi r2, r2, 1
        br loop
    done:
        halt

Operands are registers (``r0``–``r15``, ``f0``–``f15``), signed
integers (decimal or ``0x`` hex), permission names (``perm:read_only``
etc., which assemble to their 4-bit codes), or labels.  Branches
(``br``, ``beq``, ``bne``) and ``getip`` take a label or an explicit
byte displacement; the assembler converts labels to displacements
relative to the *current* bundle's address, matching the hardware's
LEA-on-IP semantics.

A ``.word <int>`` directive emits a bundle-sized data item (the value
in its first word).  Protected subsystems use labelled ``.word 0``
slots for the pointers they keep in their code segment (Figure 3); the
loader patches real pointers into those slots at install time.

``assemble`` returns a :class:`Program` that knows its items and its
label table; the loader places the encoded words in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.permissions import Permission
from repro.core.word import TaggedWord
from repro.machine.isa import (
    BUNDLE_BYTES,
    NUM_REGS,
    OP_INFO,
    Bundle,
    Opcode,
    Operation,
)


class AssemblyError(Exception):
    """Bad assembly source; message carries the line number."""


#: integer-slot opcodes whose immediate may be written as a label
_LABEL_IMM = {Opcode.BR, Opcode.BEQ, Opcode.BNE, Opcode.GETIP}

#: mnemonics, lowercased opcode names
_MNEMONICS = {op.name.lower(): op for op in Opcode}


@dataclass(frozen=True, slots=True)
class DataItem:
    """A bundle-sized data slot in the instruction stream (``.word``)."""

    value: int

    def encode(self) -> list[TaggedWord]:
        return [TaggedWord.integer(self.value), TaggedWord.zero(), TaggedWord.zero()]


@dataclass(frozen=True, slots=True)
class Program:
    """Assembled program: a sequence of bundles and data items."""

    items: tuple  #: Bundle | DataItem, each BUNDLE_BYTES long
    labels: dict[str, int]  #: label → byte offset from program start

    @property
    def bundles(self) -> tuple[Bundle, ...]:
        return tuple(item for item in self.items if isinstance(item, Bundle))

    @property
    def size_bytes(self) -> int:
        return len(self.items) * BUNDLE_BYTES

    def encode(self) -> list:
        """Flat list of encoded words, 3 per item."""
        words = []
        for item in self.items:
            words.extend(item.encode())
        return words


@dataclass
class _PendingOp:
    opcode: Opcode
    fields: dict[str, int]
    label: str | None  # unresolved label for the immediate
    line_no: int


def _parse_register(token: str, line_no: int) -> tuple[str, int]:
    bank = token[0]
    if bank not in ("r", "f") or not token[1:].isdigit():
        raise AssemblyError(f"line {line_no}: expected register, got {token!r}")
    index = int(token[1:])
    if index >= NUM_REGS:
        raise AssemblyError(f"line {line_no}: register index out of range: {token}")
    return bank, index


def _parse_immediate(token: str, line_no: int) -> int:
    if token.startswith("perm:"):
        name = token[5:].upper()
        try:
            return int(Permission[name])
        except KeyError:
            raise AssemblyError(f"line {line_no}: unknown permission {name!r}") from None
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"line {line_no}: bad immediate {token!r}") from None


def _parse_op(text: str, line_no: int) -> _PendingOp:
    parts = text.replace(",", " ").split()
    mnemonic, operands = parts[0].lower(), parts[1:]
    opcode = _MNEMONICS.get(mnemonic)
    if opcode is None:
        raise AssemblyError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
    expected = OP_INFO[opcode][1].value
    if len(operands) != len(expected):
        raise AssemblyError(
            f"line {line_no}: {mnemonic} expects {len(expected)} operands "
            f"({', '.join(expected)}), got {len(operands)}"
        )
    fields: dict[str, int] = {}
    label: str | None = None
    for name, token in zip(expected, operands):
        if name == "imm":
            is_label_ok = opcode in _LABEL_IMM
            looks_numeric = token.lstrip("+-").replace("_", "")[:1].isdigit() \
                or token.startswith("perm:")
            if is_label_ok and not looks_numeric:
                label = token
                fields["imm"] = 0
            else:
                fields["imm"] = _parse_immediate(token, line_no)
        else:
            bank, index = _parse_register(token, line_no)
            # float registers are encoded in the same 4-bit fields; the
            # opcode determines which bank an index names.
            fields[name] = index
            _check_bank(opcode, name, bank, line_no)
    return _PendingOp(opcode, fields, label, line_no)


#: which register bank each operand of each opcode uses
_FP_BANK_OPERANDS: dict[Opcode, set[str]] = {
    Opcode.LDF: {"rd"},
    Opcode.STF: {"rd"},
    Opcode.FADD: {"rd", "ra", "rb"},
    Opcode.FSUB: {"rd", "ra", "rb"},
    Opcode.FMUL: {"rd", "ra", "rb"},
    Opcode.FDIV: {"rd", "ra", "rb"},
    Opcode.FMOV: {"rd", "ra"},
    Opcode.ITOF: {"rd"},
    Opcode.FTOI: {"ra"},
}


def _check_bank(opcode: Opcode, operand: str, bank: str, line_no: int) -> None:
    wants_fp = operand in _FP_BANK_OPERANDS.get(opcode, set())
    if wants_fp and bank != "f":
        raise AssemblyError(
            f"line {line_no}: {opcode.name.lower()} operand {operand} must be "
            f"an f register"
        )
    if not wants_fp and bank != "r":
        raise AssemblyError(
            f"line {line_no}: {opcode.name.lower()} operand {operand} must be "
            f"an r register"
        )


def assemble(source: str) -> Program:
    """Assemble MAP assembly text into a :class:`Program`."""
    # pass 1: split lines into labels and pending items
    pending: list[list[_PendingOp] | DataItem] = []
    labels: dict[str, int] = {}
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        while line and ":" in line.split()[0]:
            head, _, rest = line.partition(":")
            label = head.strip()
            if not label.isidentifier():
                raise AssemblyError(f"line {line_no}: bad label {label!r}")
            if label in labels:
                raise AssemblyError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = len(pending) * BUNDLE_BYTES
            line = rest.strip()
        if not line:
            continue
        if line.startswith(".word"):
            token = line[len(".word"):].strip()
            pending.append(DataItem(_parse_immediate(token, line_no)))
            continue
        if line.startswith("."):
            raise AssemblyError(f"line {line_no}: unknown directive {line.split()[0]!r}")
        ops = [_parse_op(part.strip(), line_no) for part in line.split("|")]
        if len(ops) > 3:
            raise AssemblyError(f"line {line_no}: more than three slot operations")
        pending.append(ops)

    # pass 2: resolve labels, build bundles, check slot/write conflicts
    items: list = []
    for index, entry in enumerate(pending):
        if isinstance(entry, DataItem):
            items.append(entry)
            continue
        ops = entry
        here = index * BUNDLE_BYTES
        resolved: list[Operation] = []
        for op in ops:
            fields = dict(op.fields)
            if op.label is not None:
                target = labels.get(op.label)
                if target is None:
                    raise AssemblyError(
                        f"line {op.line_no}: undefined label {op.label!r}"
                    )
                fields["imm"] = target - here
            try:
                resolved.append(Operation(op.opcode, **fields))
            except ValueError as e:
                raise AssemblyError(f"line {op.line_no}: {e}") from None
        try:
            bundle = Bundle.of(*resolved)
        except ValueError as e:
            raise AssemblyError(f"line {ops[0].line_no}: {e}") from None
        seen: set[tuple[str, int]] = set()
        for o in bundle.operations:
            for target in Bundle.of(o).written_registers():
                if target in seen:
                    raise AssemblyError(
                        f"line {ops[0].line_no}: two writes to "
                        f"{target[0]}{target[1]} in one bundle"
                    )
                seen.add(target)
        items.append(bundle)
    return Program(items=tuple(items), labels=labels)
