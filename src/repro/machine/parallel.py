"""Sharded execution of one multicomputer across OS processes.

The window protocol (see :mod:`repro.machine.multicomputer`) already
guarantees that nodes never interact *inside* a window — all cross-node
traffic queues in per-node outboxes and is exchanged at the barrier in
the deterministic ``(cycle, src_node, seq)`` order.  That makes the
serial engine embarrassingly partitionable: hand each OS process a
contiguous slice of the nodes, let every process advance its slice to
the barrier independently, ship the queued messages to a coordinator,
and replay the *same* barrier the serial engine would have run:

* **phase A** (network timing + per-home service lists) runs on the
  coordinator via :meth:`Multicomputer._plan_barrier` — the mesh and
  the migration forwarding map live only there;
* **home ops** are executed by the worker that owns each home node
  (:meth:`Multicomputer._apply_home_op`), in global batch order;
* **phase B** effects are routed per destination
  (:meth:`Multicomputer._route_effects`) and applied by each owning
  worker (:meth:`Multicomputer._apply_effects`), again in batch order.

Every machine-state mutation for node ``n`` happens in the one worker
that owns ``n`` — chip advance, home-side demand paging, reply
effects, even the sequence counters — so the partition map cannot
change the interleaving and any ownership map produces **bit-identical**
machines.  The partitioned-vs-lockstep fuzz axis and the determinism
tests prove this continuously.

Workers warm-start from snapshots: the coordinator runs all workload
setup (load / allocate / spawn) on its own in-process machine, then on
the first clock-advancing call captures the whole machine
(:func:`repro.persist.image.capture_multicomputer`) and ships the
payload to freshly forked workers, each of which restores it and from
then on advances only its owned nodes.  The same capture → restore →
re-ship path implements mid-run **rebalancing** (changing the
ownership map) and migration support.

The coordinator replicates the serial engine's control flow *exactly*
— the same advance / idle-skip / barrier order on both the alive and
the stopped paths — because barrier effects read ``chip.now`` when
they fault a thread, and a one-cycle clock skew would diverge the
machines.
"""

from __future__ import annotations

import json
import os
import pickle
import traceback
from multiprocessing import get_context
from pathlib import Path

from repro.machine.chip import RunReason, RunResult
from repro.machine.counters import merge_snapshots
from repro.machine.thread import ThreadState


class ParallelError(Exception):
    """The sharded engine cannot continue (a worker crashed or the
    coordinator was used after :meth:`ParallelMulticomputer.close`)."""


def partition_nodes(nodes: int, workers: int) -> list[list[int]]:
    """Contiguous, nearly equal node slices — worker ``w`` owns
    ``owned[w]``.  Every node appears exactly once."""
    if workers < 1:
        raise ValueError("need at least one worker")
    workers = min(workers, nodes)
    base, extra = divmod(nodes, workers)
    owned: list[list[int]] = []
    start = 0
    for w in range(workers):
        count = base + (1 if w < extra else 0)
        owned.append(list(range(start, start + count)))
        start += count
    return owned


def retire_on_chip(chip, tids: list[int], result_reg: int) -> list[list]:
    """Retire finished request threads on one chip, preserving the
    caller's order.  For each tid whose thread has stopped, returns
    ``[tid, state_name, halted_at, result_reg_value]`` and removes the
    thread from its cluster; running threads are skipped.  A tid with
    no resident thread (reaped by the kernel after a kill) reports as
    FAULTED.  Shared by the serial facade and the worker verb so both
    engines retire in the identical order with identical side effects."""
    finished: list[list] = []
    by_tid = {t.tid: t for cluster in chip.clusters
              for t in cluster.slots if t is not None}
    for tid in tids:
        thread = by_tid.get(tid)
        if thread is None:
            finished.append([tid, "FAULTED", chip.now, 0])
            continue
        if thread.state is ThreadState.HALTED:
            finished.append([tid, "HALTED", thread.halted_at,
                             thread.regs.read(result_reg).value])
        elif thread.state is ThreadState.FAULTED:
            finished.append([tid, "FAULTED", chip.now, 0])
        else:
            continue
        thread.scheduler.remove_thread(thread)
    return finished


# -- the worker process -------------------------------------------------

class _Worker:
    """One OS process owning a slice of the nodes.  Holds a full
    restored machine (so every :class:`Multicomputer` method works
    unchanged) but only ever advances / mutates its owned nodes."""

    def __init__(self):
        self.machine = None
        self.owned: list[int] = []
        #: per-owned-node span-level sinks (the request tracer's
        #: worker half); attached by "trace_on", drained by "trace_drain"
        self._span_sinks: dict[int, list] = {}

    # every mutating verb replies with this so the coordinator's
    # mirrors of the per-node clocks / runnable / faulted states stay
    # exact without extra round trips
    def _report(self) -> dict:
        out = {}
        for n in self.owned:
            chip = self.machine.chips[n]
            out[n] = [chip.now, chip._runnable_count,
                      sum(cl.faulted_count for cl in chip.clusters)]
        return out

    def _drain(self) -> list[list]:
        messages: list[list] = []
        for n in self.owned:
            box = self.machine._outbox[n]
            messages.extend(box)
            box.clear()
        return messages

    def init(self, payload: dict, owned: list[int]) -> dict:
        from repro.persist.image import restore_multicomputer

        self.machine = restore_multicomputer(payload)
        self.owned = list(owned)
        return {"nodes": self._report()}

    def reload(self, payload: dict, owned: list[int]) -> dict:
        from repro.persist.image import restore_multicomputer_state

        restore_multicomputer_state(self.machine, payload)
        self.owned = list(owned)
        return {"nodes": self._report()}

    def advance(self, end: int, next_barrier: int, drain: bool) -> dict:
        machine = self.machine
        machine._next_barrier = next_barrier  # fetch_remote reads it
        issued = 0
        for n in self.owned:
            issued += machine._advance_chip(machine.chips[n], end)
        return {"issued": issued, "nodes": self._report(),
                "messages": self._drain() if drain else []}

    def step(self, k: int, next_barrier: int, drain: bool) -> dict:
        machine = self.machine
        machine._next_barrier = next_barrier
        issued = 0
        for n in self.owned:
            chip = machine.chips[n]
            for _ in range(k):
                issued += chip.step()
        return {"issued": issued, "nodes": self._report(),
                "messages": self._drain() if drain else []}

    def collect(self) -> dict:
        return {"nodes": self._report(), "messages": self._drain()}

    def skip(self, targets: dict[int, int]) -> dict:
        for n, target in targets.items():
            chip = self.machine.chips[n]
            if target > chip.now:
                chip._skip_idle(target - chip.now)
        return {"nodes": self._report()}

    def skip_all(self, cycles: int) -> dict:
        for n in self.owned:
            self.machine.chips[n]._skip_idle(cycles)
        return {"nodes": self._report()}

    def home_ops(self, ops: list) -> dict:
        replies = {}
        for index, msg, home in ops:
            replies[index] = self.machine._apply_home_op(msg, home)
        return {"replies": replies, "nodes": self._report()}

    def effects(self, per_node: dict[int, list]) -> dict:
        for n in sorted(per_node):
            self.machine._apply_effects(self.machine.chips[n], per_node[n])
        return {"nodes": self._report()}

    def spawn(self, node: int, entry, kwargs: dict) -> dict:
        thread = self.machine.kernels[node].spawn(entry, **kwargs)
        return {"tid": thread.tid, "nodes": self._report()}

    def retire(self, per_node: list, result_reg: int) -> dict:
        finished = []
        for node, tids in per_node:
            for entry in retire_on_chip(self.machine.chips[node], tids,
                                        result_reg):
                finished.append([node] + entry)
        return {"finished": finished, "nodes": self._report()}

    def hist(self, node: int, name: str, value: int) -> dict:
        chip = self.machine.chips[node]
        chip.obs.add_histogram(name).add(value)
        return {}

    def emit(self, node: int, name: str, cycle: int, tid, dur,
             args: dict) -> dict:
        self.machine.chips[node].obs.emit(name, cycle, tid=tid, dur=dur,
                                          **args)
        return {}

    def trace_on(self) -> dict:
        """Attach a span-level (``hot=False``) sink to every owned
        node's hub — per-miss and cold events start accumulating, the
        per-bundle path stays dark and turbo stays engaged.  Sinks
        survive ``reload`` (restore mutates chips in place)."""
        for n in self.owned:
            if n not in self._span_sinks:
                sink: list = []
                self.machine.chips[n].obs.attach(sink, hot=False)
                self._span_sinks[n] = sink
        return {}

    def trace_drain(self) -> dict:
        from repro.obs.events import encode_event

        out = {}
        for n, sink in sorted(self._span_sinks.items()):
            self.machine.chips[n].obs.detach(sink)
            out[n] = [encode_event(e) for e in sink]
        self._span_sinks = {}
        return {"events": out}

    def counters(self) -> dict:
        return {n: self.machine.chips[n].counters.snapshot()
                for n in self.owned}

    def flights(self) -> dict:
        return {n: self.machine.chips[n].obs.flight.dump()
                for n in self.owned}

    def capture(self) -> dict:
        from repro.persist.image import capture_node

        return {"nodes": {n: capture_node(self.machine.kernels[n])
                          for n in self.owned},
                "seq": {n: self.machine._seq[n] for n in self.owned}}


def _worker_main(conn) -> None:
    worker = _Worker()
    while True:
        try:
            command = conn.recv()
        except (EOFError, OSError):
            return
        verb, args = command[0], command[1:]
        if verb == "stop":
            conn.send(["ok", None])
            conn.close()
            return
        try:
            reply = getattr(worker, verb)(*args)
        except Exception:  # ship the debris home, keep serving
            dumps = {}
            if worker.machine is not None:
                for n in worker.owned:
                    try:
                        dumps[n] = worker.machine.chips[n].obs.flight.dump()
                    except Exception:
                        pass
            conn.send(["error", traceback.format_exc(), dumps])
            continue
        conn.send(["ok", reply])


# -- the coordinator ----------------------------------------------------

class ParallelMulticomputer:
    """Drives one :class:`Multicomputer` sharded across worker
    processes, bit-identically to the serial engine.

    The wrapped ``machine`` is authoritative for the mesh network, the
    migration forwarding map and the barrier position; the workers are
    authoritative for node state (chips, kernels, sequence counters)
    once started.  Until the first clock-advancing call the workers do
    not exist and the machine is live — build workloads first, then
    run."""

    def __init__(self, machine, workers: int):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.machine = machine
        self.owned = partition_nodes(len(machine.chips), workers)
        self.workers = len(self.owned)
        self._owner = {n: w for w, nodes in enumerate(self.owned)
                       for n in nodes}
        self._conns: list = []
        self._procs: list = []
        self._started = False
        self._closed = False
        #: coordinator-held messages drained from workers but not yet
        #: barrier-processed; the (cycle, src, seq) sort at the barrier
        #: makes the buffering location irrelevant
        self._msgbuf: list[list] = []
        nodes = len(machine.chips)
        self._now = [0] * nodes
        self._runnable = [0] * nodes
        self._faulted = [0] * nodes
        #: True while worker state has advanced past the wrapped
        #: machine's; cleared by :meth:`sync_back`
        self.dirty = False

    # -- lifecycle -------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> None:
        """Fork the workers and warm-start each from a snapshot of the
        wrapped machine (the same capture/restore path snapshots and
        rebalancing use)."""
        if self._started or self._closed:
            return
        from repro.persist.image import capture_multicomputer

        payload = capture_multicomputer(self.machine)
        ctx = get_context("fork")
        for w in range(self.workers):
            parent_end, child_end = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child_end,),
                               daemon=True)
            proc.start()
            child_end.close()
            self._conns.append(parent_end)
            self._procs.append(proc)
        self._started = True
        replies = self._broadcast([["init", payload, self.owned[w]]
                                   for w in range(self.workers)])
        for reply in replies:
            self._ingest(reply["nodes"])

    def _ensure_started(self) -> None:
        if self._closed:
            raise ParallelError("the parallel engine is closed")
        if not self._started:
            self.start()

    def close(self, force: bool = False) -> None:
        """Stop the workers.  The wrapped machine keeps whatever state
        the last :meth:`sync_back` gave it."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                if not force:
                    conn.send(["stop"])
                    conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
        self._conns = []
        self._procs = []

    # -- RPC plumbing ----------------------------------------------------

    def _send(self, w: int, command: list) -> None:
        try:
            self._conns[w].send(command)
        except (OSError, BrokenPipeError) as exc:
            self._worker_down(w, f"pipe to worker {w} broke: {exc}")

    def _recv(self, w: int):
        try:
            reply = self._conns[w].recv()
        except (EOFError, OSError) as exc:
            self._worker_down(w, f"worker {w} died mid-reply: {exc}")
        if reply[0] == "error":
            self._worker_crashed(w, reply)
        return reply[1]

    def _call(self, w: int, command: list):
        self._send(w, command)
        return self._recv(w)

    def _broadcast(self, commands: list[list]) -> list:
        """One command per worker, sent before any reply is awaited so
        the workers overlap."""
        for w, command in enumerate(commands):
            if command is not None:
                self._send(w, command)
        return [self._recv(w) if commands[w] is not None else None
                for w in range(self.workers)]

    def _worker_down(self, w: int, why: str):
        self.close(force=True)
        raise ParallelError(why)

    def _worker_crashed(self, w: int, reply):
        _, tb, dumps = reply
        directory = Path(os.environ.get("REPRO_CRASH_DIR", "crashes"))
        directory = directory / f"parallel-worker-{w}"
        try:
            directory.mkdir(parents=True, exist_ok=True)
            (directory / "traceback.txt").write_text(tb)
            for node, dump in dumps.items():
                (directory / f"flight-node{node}.json").write_text(
                    json.dumps(dump, indent=2, sort_keys=True))
        except OSError:
            pass
        self.close(force=True)
        raise ParallelError(
            f"worker {w} crashed (flight recorders under {directory}):\n{tb}")

    def _ingest(self, nodes: dict) -> None:
        for n, (now, runnable, faulted) in nodes.items():
            n = int(n)
            self._now[n] = now
            self._runnable[n] = runnable
            self._faulted[n] = faulted

    # -- the clock (serial control flow, sharded) ------------------------

    def _advance(self, end: int, drain: bool) -> int:
        nb = self.machine._next_barrier
        replies = self._broadcast([["advance", end, nb, drain]]
                                  * self.workers)
        issued = 0
        for reply in replies:
            issued += reply["issued"]
            self._ingest(reply["nodes"])
            self._msgbuf.extend(reply["messages"])
        self.dirty = True
        return issued

    def _collect(self) -> None:
        replies = self._broadcast([["collect"]] * self.workers)
        for reply in replies:
            self._ingest(reply["nodes"])
            self._msgbuf.extend(reply["messages"])

    def _skip_to(self, target: int) -> None:
        commands: list = [None] * self.workers
        for w, nodes in enumerate(self.owned):
            behind = {n: target for n in nodes if self._now[n] < target}
            if behind:
                commands[w] = ["skip", behind]
        for reply in self._broadcast(commands):
            if reply is not None:
                self._ingest(reply["nodes"])
        self.dirty = True

    def _barrier(self) -> None:
        """The serial :meth:`Multicomputer._process_barrier`, with the
        home ops and effects executed by the owning workers."""
        messages = self._msgbuf
        self._msgbuf = []
        if not messages:
            return
        messages.sort(key=lambda m: (m[1], m[2], m[3]))
        home_ops, timing = self.machine._plan_barrier(messages)
        commands: list = [None] * self.workers
        for home in sorted(home_ops):
            w = self._owner[home]
            if commands[w] is None:
                commands[w] = ["home_ops", []]
            commands[w][1].extend((index, msg, home)
                                  for index, msg in home_ops[home])
        replies: dict[int, list] = {}
        for reply in self._broadcast(commands):
            if reply is not None:
                replies.update(reply["replies"])
                self._ingest(reply["nodes"])
        per_node = self.machine._route_effects(messages, timing, replies)
        commands = [None] * self.workers
        for node, effects in per_node.items():
            if effects:
                w = self._owner[node]
                if commands[w] is None:
                    commands[w] = ["effects", {}]
                commands[w][1][node] = effects
        for reply in self._broadcast(commands):
            if reply is not None:
                self._ingest(reply["nodes"])
        self.dirty = True

    def run(self, max_cycles: int = 1_000_000) -> RunResult:
        """Mirror of :meth:`Multicomputer.run` over the shards; the
        statement order matches the serial engine exactly (see the
        module docstring)."""
        self._ensure_started()
        machine = self.machine
        start = max(self._now)
        deadline = start + max_cycles
        issued = 0
        while True:
            if sum(self._runnable) == 0:
                self._collect()
                self._barrier()
                last = max(self._now)
                self._skip_to(last)
                if any(self._runnable):
                    continue  # defensive, as in the serial engine
                reason = (RunReason.FAULTED if any(self._faulted)
                          else RunReason.HALTED)
                return RunResult(last - start, issued, reason)
            now = max(self._now)
            if now >= deadline:
                return RunResult(now - start, issued, RunReason.MAX_CYCLES)
            end = min(machine._next_barrier, deadline)
            at_barrier = end == machine._next_barrier
            issued += self._advance(end, drain=at_barrier)
            if any(self._runnable):
                self._skip_to(end)
            if at_barrier:
                self._barrier()
                machine._next_barrier += machine.window
        # unreachable

    def step_many(self, cycles: int) -> int:
        """``cycles`` single-cycle steps of every node, with barriers
        firing exactly where :meth:`Multicomputer.step` fires them.
        Within a window nodes are independent, so block-stepping each
        shard ``k = min(cycles, barrier - now)`` cycles is identical to
        interleaving."""
        self._ensure_started()
        machine = self.machine
        issued = 0
        while cycles > 0:
            now = self._now[0]
            k = min(cycles, max(1, machine._next_barrier - now))
            at_barrier = now + k >= machine._next_barrier
            replies = self._broadcast(
                [["step", k, machine._next_barrier, at_barrier]]
                * self.workers)
            for reply in replies:
                issued += reply["issued"]
                self._ingest(reply["nodes"])
                self._msgbuf.extend(reply["messages"])
            self.dirty = True
            if at_barrier:
                self._barrier()
                machine._next_barrier += machine.window
            cycles -= k
        return issued

    def advance_idle(self, cycles: int) -> None:
        self._ensure_started()
        if any(self._runnable):
            raise ValueError("cannot skip cycles while threads are runnable")
        if cycles <= 0:
            return
        self._collect()
        self._barrier()
        for reply in self._broadcast([["skip_all", cycles]] * self.workers):
            self._ingest(reply["nodes"])
        self.dirty = True
        now = self._now[0]
        if self.machine._next_barrier <= now:
            self.machine._next_barrier = now + self.machine.window

    @property
    def now(self) -> int:
        if not self._started:
            return self.machine.chips[0].now
        return max(self._now)

    # -- workload verbs (post-start) -------------------------------------

    def spawn_request(self, node: int, entry, kwargs: dict) -> int:
        self._ensure_started()
        reply = self._call(self._owner[node], ["spawn", node, entry, kwargs])
        self._ingest(reply["nodes"])
        self.dirty = True
        return reply["tid"]

    def retire_finished(self, pending: list[tuple[int, int]],
                        result_reg: int) -> list[dict]:
        """Retire the finished threads among ``pending`` (node, tid)
        pairs, returned in ``pending`` order."""
        self._ensure_started()
        commands: list = [None] * self.workers
        for node, tid in pending:
            w = self._owner[node]
            if commands[w] is None:
                commands[w] = ["retire", [], result_reg]
            per_node = commands[w][1]
            if per_node and per_node[-1][0] == node:
                per_node[-1][1].append(tid)
            else:
                per_node.append((node, [tid]))
        by_key: dict[tuple[int, int], dict] = {}
        for reply in self._broadcast(commands):
            if reply is None:
                continue
            self._ingest(reply["nodes"])
            for node, tid, state, halted_at, result in reply["finished"]:
                by_key[(node, tid)] = {"node": node, "tid": tid,
                                       "state": state,
                                       "halted_at": halted_at,
                                       "result": result}
        self.dirty = True
        return [by_key[key] for key in pending if key in by_key]

    def record_sample(self, node: int, name: str, value: int) -> None:
        self._ensure_started()
        self._call(self._owner[node], ["hist", node, name, value])
        self.dirty = True

    def emit(self, node: int, name: str, cycle: int, tid, dur,
             args: dict) -> None:
        """Emit one event into ``node``'s hub, wherever it lives — the
        owning worker's flight recorder (and any attached sinks) gets
        it, exactly as a lockstep emit would."""
        self._ensure_started()
        self._call(self._owner[node], ["emit", node, name, cycle, tid,
                                       dur, args])
        self.dirty = True

    def counters_per_node(self) -> dict[int, dict]:
        """Every node's counter snapshot, pulled from its owning worker
        (the time-series sampler's per-window read)."""
        self._ensure_started()
        per_node: dict[int, dict] = {}
        for reply in self._broadcast([["counters"]] * self.workers):
            per_node.update({int(n): snap for n, snap in reply.items()})
        return per_node

    def counters_snapshot(self) -> dict:
        return merge_snapshots(self.counters_per_node())

    def span_collector(self) -> "_ParallelSpanCollector":
        """Span-level recording across the shards: worker-side sinks
        catch chip events (misses, faults, enter crossings, swap,
        halts); coordinator-side sinks catch what only the coordinator
        runs — ``router.hop`` from barrier planning and the serial
        migration path's ``migrate.*``.  The two sets are disjoint, so
        their union is exactly the lockstep engine's stream."""
        self._ensure_started()
        return _ParallelSpanCollector(self)

    def flight_dumps(self) -> dict[int, dict]:
        self._ensure_started()
        dumps: dict[int, dict] = {}
        for reply in self._broadcast([["flights"]] * self.workers):
            dumps.update({int(n): d for n, d in reply.items()})
        return dumps

    # -- draining, snapshots, rebalancing --------------------------------

    def drain_to_barrier(self) -> None:
        """Bring the machine to a message-quiet point: if any window
        traffic is pending, advance to the next barrier and exchange it
        (the documented save/migrate semantics for the sharded engine:
        the clock may move forward by up to one window).  At a quiet
        point — right after any barrier — this moves nothing."""
        self._ensure_started()
        self._collect()
        if not self._msgbuf:
            return
        machine = self.machine
        end = machine._next_barrier
        if any(self._runnable) and max(self._now) < end:
            self._advance(end, drain=True)
            if any(self._runnable):
                self._skip_to(end)
            self._barrier()
            machine._next_barrier += machine.window
        else:
            self._barrier()
        # home-side demand paging at the barrier can evict (swap) and
        # re-queue flush broadcasts; pull those into the coordinator
        # buffer so a subsequent capture records them
        self._collect()

    def sync_back(self) -> None:
        """Drain to a barrier and restore every node's true state into
        the wrapped machine, making it authoritative again (for
        capture, digesting, or migration)."""
        self._ensure_started()
        self.drain_to_barrier()
        from repro.persist.image import restore_node

        machine = self.machine
        for reply in self._broadcast([["capture"]] * self.workers):
            for n, node_state in reply["nodes"].items():
                restore_node(machine.kernels[int(n)], node_state)
            for n, seq in reply["seq"].items():
                machine._seq[int(n)] = seq
        # straggler messages live in the coordinator buffer; mirror
        # them into the machine's outboxes so a capture carries them
        # (the buffer itself stays queued for the next barrier)
        machine._outbox = [[] for _ in machine.chips]
        for msg in sorted(self._msgbuf, key=lambda m: (m[1], m[2], m[3])):
            machine._outbox[msg[2]].append(msg)
        self.dirty = False

    def capture_state(self) -> dict:
        from repro.persist.image import capture_multicomputer

        self.sync_back()
        return capture_multicomputer(self.machine)

    def rebalance(self, owned: list[list[int]] | None = None) -> None:
        """Re-shard: drain, sync the machine, optionally install a new
        ownership map, and warm-start every worker from the fresh
        snapshot.  The window protocol makes execution independent of
        the map, so this is bit-exact."""
        self.sync_back()
        if owned is not None:
            flat = sorted(n for nodes in owned for n in nodes)
            if flat != list(range(len(self.machine.chips))) or \
                    len(owned) != self.workers:
                raise ValueError(
                    "ownership map must cover every node exactly once "
                    "across the existing workers")
            self.owned = [list(nodes) for nodes in owned]
            self._owner = {n: w for w, nodes in enumerate(self.owned)
                           for n in nodes}
        self._reship()

    def _reship(self) -> None:
        from repro.persist.image import capture_multicomputer

        payload = capture_multicomputer(self.machine)
        self._msgbuf = []  # rides inside the payload's outboxes now
        replies = self._broadcast([["reload", payload, self.owned[w]]
                                   for w in range(self.workers)])
        for reply in replies:
            self._ingest(reply["nodes"])

    # -- migration -------------------------------------------------------

    def migrate(self, process, destination: int, pin=()):
        """Live-migrate ``process``: drain to a barrier, sync the
        machine, re-bind the process's thread handles to the restored
        thread objects, run the serial migration there, and warm-start
        the workers from the result.  The drain means the clock may sit
        up to one window past where a serial engine would have migrated
        — bit-equality with lockstep is guaranteed for non-migrating
        workloads and preserved *from this point on* for migrating
        ones."""
        from repro.persist.migrate import MigrationError, MigrationService
        from repro.persist.state import threads_by_tid

        self.sync_back()
        mapping = threads_by_tid(process.kernel.chip)
        missing = [t.tid for t in process.threads if t.tid not in mapping]
        if missing:
            raise MigrationError(
                f"threads {missing} are not resident on the process's node")
        process.threads = [mapping[t.tid] for t in process.threads]
        report = MigrationService(self.machine).migrate(process, destination,
                                                        pin)
        self._reship()
        self.dirty = True
        return report


class _ParallelSpanCollector:
    """Worker-side span sinks plus coordinator-side sinks, drained as
    one event list (see :meth:`ParallelMulticomputer.span_collector`)."""

    def __init__(self, engine: ParallelMulticomputer):
        from repro.obs.requests import LockstepSpanCollector

        self._engine = engine
        # coordinator chips never advance, but their hubs receive
        # router.hop (barrier planning) and migrate/swap events from
        # the serial migration path run after sync_back
        self._local = LockstepSpanCollector(
            [chip.obs for chip in engine.machine.chips])
        engine._broadcast([["trace_on"]] * engine.workers)
        self._drained = None

    def drain(self):
        from repro.obs.events import decode_event

        if self._drained is None:
            events = list(self._local.drain())
            replies = self._engine._broadcast(
                [["trace_drain"]] * self._engine.workers)
            for reply in replies:
                for _, encoded in sorted(reply["events"].items()):
                    events.extend(decode_event(e) for e in encoded)
            self._drained = events
        return self._drained
