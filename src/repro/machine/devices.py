"""Memory-mapped devices.

§2.3: "Even an I/O driver can be implemented as an unprivileged
protected subsystem by protecting access to the read/write pointer of a
memory-mapped I/O device."  These devices give that sentence something
to run against: each is a word-addressed register file living in a
physical range claimed via
:meth:`~repro.mem.tagged_memory.TaggedMemory.attach_device`.

:func:`map_device` wires one into a kernel: it reserves a page-sized
virtual segment, backs it with a dedicated frame, attaches the device
to that frame, and returns the read/write pointer — *the* capability
for the device, which system software then locks inside a driver
subsystem's code segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord
from repro.runtime.kernel import Kernel


class ConsoleDevice:
    """A write-only character console.

    Register map (word offsets in bytes):

    =====  =========================================
    0x00   DATA  — store: append ``chr(value & 0xff)``
    0x08   STATUS — load: 1 (always ready)
    0x10   COUNT — load: characters written so far
    =====  =========================================
    """

    DATA = 0x00
    STATUS = 0x08
    COUNT = 0x10

    def __init__(self) -> None:
        self.output: list[str] = []

    @property
    def text(self) -> str:
        return "".join(self.output)

    def store(self, offset: int, word: TaggedWord) -> None:
        if offset == self.DATA:
            self.output.append(chr(word.value & 0xFF))
        # stores to other registers are ignored (write-only console)

    def load(self, offset: int) -> TaggedWord:
        if offset == self.STATUS:
            return TaggedWord.integer(1)
        if offset == self.COUNT:
            return TaggedWord.integer(len(self.output))
        return TaggedWord.zero()


class BlockDevice:
    """A trivially simple storage device: a seek register and a data
    window.

    =====  ==================================================
    0x00   SECTOR — store: select the active 8-byte sector
    0x08   DATA   — load/store: the selected sector's word
    =====  ==================================================
    """

    SECTOR = 0x00
    DATA = 0x08

    def __init__(self, sectors: int = 64):
        self.sectors = sectors
        self._store: dict[int, TaggedWord] = {}
        self._selected = 0

    def store(self, offset: int, word: TaggedWord) -> None:
        if offset == self.SECTOR:
            self._selected = word.value % self.sectors
        elif offset == self.DATA:
            self._store[self._selected] = word

    def load(self, offset: int) -> TaggedWord:
        if offset == self.SECTOR:
            return TaggedWord.integer(self._selected)
        if offset == self.DATA:
            return self._store.get(self._selected, TaggedWord.zero())
        return TaggedWord.zero()


def map_device(kernel: Kernel, device) -> GuardedPointer:
    """Back a fresh page-sized segment with ``device`` and return the
    read/write pointer — the single capability that controls it."""
    page_bytes = kernel.chip.page_table.page_bytes
    pointer = kernel.allocate_segment(page_bytes, Permission.READ_WRITE)
    frame = kernel.chip.frames.allocate()
    kernel.chip.page_table.map(
        pointer.segment_base // page_bytes, physical_address=frame)
    kernel.chip.memory.attach_device(frame, page_bytes, device)
    return pointer
