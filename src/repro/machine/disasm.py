"""Disassembler for MAP code.

Produces assembler-compatible text: ``assemble(disassemble_program(p))``
re-encodes to the same words (modulo labels, which decompile to explicit
byte displacements the assembler accepts).  Used by debugging tools and
by the round-trip property tests.
"""

from __future__ import annotations

from repro.core.word import TaggedWord
from repro.machine.isa import (
    OP_INFO,
    SLOTS,
    Bundle,
    DecodeError,
    Fmt,
    Opcode,
    Operation,
)

#: operands of each opcode that name f registers (mirrors the
#: assembler's bank table)
_FP_OPERANDS: dict[Opcode, set[str]] = {
    Opcode.LDF: {"rd"},
    Opcode.STF: {"rd"},
    Opcode.FADD: {"rd", "ra", "rb"},
    Opcode.FSUB: {"rd", "ra", "rb"},
    Opcode.FMUL: {"rd", "ra", "rb"},
    Opcode.FDIV: {"rd", "ra", "rb"},
    Opcode.FMOV: {"rd", "ra"},
    Opcode.ITOF: {"rd"},
    Opcode.FTOI: {"ra"},
}


def disassemble_op(op: Operation) -> str:
    """One operation as assembler text."""
    fmt = OP_INFO[op.opcode][1]
    fp_operands = _FP_OPERANDS.get(op.opcode, set())
    parts = []
    for name in fmt.value:
        if name == "imm":
            parts.append(str(op.imm))
        else:
            bank = "f" if name in fp_operands else "r"
            parts.append(f"{bank}{getattr(op, name)}")
    mnemonic = op.opcode.name.lower()
    return f"{mnemonic} {', '.join(parts)}".strip()


def disassemble_bundle(bundle: Bundle) -> str:
    """One bundle as a source line, omitting filler NOPs where other
    slots carry work."""
    ops = [op for op in bundle.operations
           if op.opcode not in (Opcode.NOP, Opcode.FNOP)]
    if not ops:
        return "nop"
    return " | ".join(disassemble_op(op) for op in ops)


def disassemble_words(words: list[TaggedWord]) -> str:
    """A flat word list (3 per item) back to source text.

    Words that do not decode as instructions (``.word`` data items)
    are emitted as ``.word`` directives, so mixed code/data programs —
    e.g. protected subsystems with pointer slots — survive the trip.
    """
    if len(words) % SLOTS:
        raise ValueError(f"word count not a multiple of {SLOTS}")
    lines = []
    for i in range(0, len(words), SLOTS):
        chunk = words[i:i + SLOTS]
        try:
            bundle = Bundle.decode(chunk)
        except DecodeError:
            lines.append(f".word {chunk[0].value:#x}")
            continue
        lines.append(disassemble_bundle(bundle))
    return "\n".join(lines)
