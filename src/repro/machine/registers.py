"""Per-thread register state.

Each thread owns sixteen 64-bit general-purpose registers, each with
its tag bit — "guarded pointers concentrate process state in general
purpose registers instead of auxiliary or special memory" (§6) — plus
sixteen floating-point registers and the instruction pointer, which is
itself a guarded execute pointer.
"""

from __future__ import annotations

import struct

from repro.core.word import TaggedWord
from repro.machine.isa import NUM_REGS


def float_to_word(value: float) -> TaggedWord:
    """IEEE-754 bit pattern of a float as an untagged word, so floats
    stored to memory occupy ordinary data words."""
    raw = struct.unpack("<Q", struct.pack("<d", value))[0]
    return TaggedWord.integer(raw)


def word_to_float(word: TaggedWord) -> float:
    """Reinterpret a word's 64 bits as an IEEE-754 double."""
    return struct.unpack("<d", struct.pack("<Q", word.value))[0]


_S64_MIN = -(1 << 63)
_S64_MAX = (1 << 63) - 1


def saturating_ftoi(value: float) -> int:
    """FTOI semantics shared by the cluster and the reference
    interpreter: truncate toward zero, saturate at the signed 64-bit
    limits, and convert NaN to 0 (the invalid-operation default).

    Bare ``int()`` raises on non-finite input, which is a host artifact
    — hardware delivers a defined result for every bit pattern.
    """
    if value != value:  # NaN
        return 0
    if value >= _S64_MAX:
        return _S64_MAX
    if value <= _S64_MIN:
        return _S64_MIN
    return int(value)


class RegisterFile:
    """Sixteen tagged integer registers and sixteen FP registers."""

    def __init__(self) -> None:
        self._regs = [TaggedWord.zero()] * NUM_REGS
        self._fregs = [0.0] * NUM_REGS

    def read(self, index: int) -> TaggedWord:
        return self._regs[index]

    def write(self, index: int, word: TaggedWord) -> None:
        self._regs[index] = word

    def read_f(self, index: int) -> float:
        return self._fregs[index]

    def write_f(self, index: int, value: float) -> None:
        self._fregs[index] = float(value)

    def pointers(self) -> list[TaggedWord]:
        """All tagged words currently in integer registers — what a
        caller must spill/clear around a protected subsystem call
        (Figure 4)."""
        return [w for w in self._regs if w.tag]

    def snapshot(self) -> tuple[tuple[TaggedWord, ...], tuple[float, ...]]:
        return tuple(self._regs), tuple(self._fregs)
