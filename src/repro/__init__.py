"""repro — reproduction of "Hardware Support for Fast Capability-based
Addressing" (Carter, Keckler & Dally, ASPLOS 1994).

Subpackages:

* :mod:`repro.core` — guarded pointers (tagged words, permissions, the
  checked pointer ISA).
* :mod:`repro.mem` — tagged memory, paging, TLB, 4-bank interleaved
  virtual cache, buddy segment allocator.
* :mod:`repro.machine` — the M-Machine MAP chip simulator (LIW ISA,
  assembler, multithreaded clusters).
* :mod:`repro.runtime` — privileged kernel services, protected
  subsystems, malloc, address-space GC.
* :mod:`repro.baselines` — comparison protection schemes (§5).
* :mod:`repro.sim` — workload generators, cost model, experiment
  driver.
* :mod:`repro.analysis` — fragmentation and overhead models (§4).

The most common entry points are re-exported here.
"""

from repro.core import (
    GuardedPointer,
    Permission,
    TaggedWord,
    check_jump,
    check_load,
    check_store,
    ispointer,
    lea,
    leab,
    restrict,
    setptr,
    subseg,
)
from repro.machine.chip import ChipConfig, MAPChip, RunReason, RunResult
from repro.machine.counters import PerfCounters
from repro.machine.multicomputer import Multicomputer
from repro.runtime.kernel import Kernel
from repro.runtime.subsystem import ProtectedSubsystem, ReturnSegment
from repro.sim.api import Simulation

__version__ = "1.1.0"

__all__ = [
    "GuardedPointer",
    "Permission",
    "TaggedWord",
    "check_jump",
    "check_load",
    "check_store",
    "ispointer",
    "lea",
    "leab",
    "restrict",
    "setptr",
    "subseg",
    "ChipConfig",
    "MAPChip",
    "RunReason",
    "RunResult",
    "PerfCounters",
    "Simulation",
    "Multicomputer",
    "Kernel",
    "ProtectedSubsystem",
    "ReturnSegment",
    "__version__",
]
