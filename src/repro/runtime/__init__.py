"""System software on top of the MAP chip: the privileged kernel,
processes as protection domains, protected subsystems (Figures 3/4), a
bounds-checked heap, and address-space garbage collection (§4.3)."""

from repro.runtime import abi
from repro.runtime.acl import DENIED, AccessControlledObject
from repro.runtime.gc import AddressSpaceGC, GCStats, sweep_revoke
from repro.runtime.kernel import Kernel, KernelStats, Segment
from repro.runtime.malloc import Heap, OutOfHeap
from repro.runtime.process import Process, ProcessManager
from repro.runtime.relocation import Forwarding, RelocationStats, Relocator
from repro.runtime.services import Services, install as install_services
from repro.runtime.subsystem import ProtectedSubsystem, ReturnSegment
from repro.runtime.swap import SwapManager, SwapStats

__all__ = [
    "abi",
    "DENIED",
    "AccessControlledObject",
    "AddressSpaceGC",
    "GCStats",
    "sweep_revoke",
    "Kernel",
    "KernelStats",
    "Segment",
    "Heap",
    "OutOfHeap",
    "Process",
    "ProcessManager",
    "Forwarding",
    "RelocationStats",
    "Relocator",
    "Services",
    "install_services",
    "ProtectedSubsystem",
    "ReturnSegment",
    "SwapManager",
    "SwapStats",
]
