"""Standard system services, both ways the paper describes.

§2.2: "The RESTRICT and SUBSEG instructions are not completely
necessary, as they can be emulated by providing user processes with
enter-privileged pointers to routines that use the SETPTR instruction
... The M-Machine ... takes this approach."

This module provides exactly those routines — RESTRICT and SUBSEG
implemented *in MAP assembly* behind enter-privileged gateways, with the
permission-subset check done in software against a rights table kept in
the gateway's code segment — plus the small set of services that truly
need kernel state (segment allocation/free), reached by TRAP.

Gateway calling convention (registers):

=====  =========================================
r3     pointer argument
r4     permission code / new length
r5     result (0 on refusal)
r15    return instruction pointer (caller GETIPs)
=====  =========================================

The gateways clobber r6–r13 (documented scratch); r14 — the stack
pointer convention register — is preserved.

Trap ABI: ``TRAP code`` with r3/r4 as arguments, result in r5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import LENGTH_SHIFT, PERM_SHIFT
from repro.core.permissions import Permission, rights_of
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord
from repro.machine.faults import FaultRecord
from repro.machine.thread import Thread
from repro.runtime.kernel import Kernel
from repro.runtime.subsystem import ProtectedSubsystem

#: trap codes for the kernel-state services
TRAP_ALLOC = 0x10   #: r3 = bytes, r4 = permission code → r5 = pointer
TRAP_FREE = 0x11    #: r3 = pointer → r5 = 1 on success
TRAP_SPAWN = 0x12   #: r3 = code pointer, r4 = argument (→ child r1),
                    #: r6 = optional data pointer (→ child r2);
                    #: returns r5 = child tid + 1, or 0 on refusal
TRAP_TID = 0x13     #: → r5 = caller's thread id


def _rights_table_words() -> list[str]:
    """.word lines encoding rights_of(perm) for codes 0..6, used by the
    in-assembly subset check."""
    lines = []
    for code in range(7):
        rights = rights_of(Permission(code)).value
        lines.append(f"    .word {rights}")
    return lines


#: RESTRICT as an enter-privileged routine: software subset check, then
#: SETPTR-forged result.  Refusal returns 0 rather than faulting, so the
#: caller can branch on it (a fault would kill the caller's thread).
RESTRICT_GATEWAY = "\n".join([
    "entry:",
    "    mov r6, r3",
    "    addi r6, r6, 0          ; strip the tag: pointer bits as integer",
    f"    shri r7, r6, {PERM_SHIFT}   ; old permission code",
    "    getip r8, rights",
    "    shli r9, r7, 4          ; rights table stride is 24 bytes:",
    "    shli r10, r7, 3         ;   offset = code*16 + code*8",
    "    add r9, r9, r10",
    "    lear r9, r8, r9",
    "    ld r9, r9, 0            ; rights[old]",
    "    shli r10, r4, 4",
    "    shli r11, r4, 3",
    "    add r10, r10, r11",
    "    lear r10, r8, r10",
    "    ld r10, r10, 0          ; rights[new]",
    "    and r12, r10, r9",
    "    seq r12, r12, r10       ; subset of old?",
    "    seq r13, r10, r9        ; identical rights?",
    "    xori r13, r13, 1",
    "    and r12, r12, r13       ; strict subset",
    "    beq r12, refuse",
    "    movi r13, 15",
    f"    shli r13, r13, {PERM_SHIFT}",
    "    xori r13, r13, -1       ; ~perm-field mask",
    "    and r6, r6, r13         ; clear the old permission",
    f"    shli r13, r4, {PERM_SHIFT}",
    "    or r6, r6, r13          ; insert the new one",
    "    setptr r5, r6           ; privileged forge",
    "    movi r6, 0              ; wipe temporaries (incl. our own",
    "    movi r8, 0              ;  execute-priv self-pointer!)",
    "    movi r9, 0",
    "    jmp r15",
    "refuse:",
    "    movi r5, 0",
    "    movi r6, 0",
    "    movi r8, 0",
    "    movi r9, 0",
    "    jmp r15",
    "rights:",
    *_rights_table_words(),
])


#: SUBSEG as an enter-privileged routine: new length must be strictly
#: smaller; field replaced, pointer re-forged with SETPTR.
SUBSEG_GATEWAY = "\n".join([
    "entry:",
    "    mov r6, r3",
    "    addi r6, r6, 0          ; strip the tag",
    f"    shri r7, r6, {LENGTH_SHIFT}",
    "    andi r7, r7, 63         ; old length field",
    "    slt r8, r4, r7          ; new < old ?",
    "    beq r8, refuse",
    "    movi r9, 63",
    f"    shli r9, r9, {LENGTH_SHIFT}",
    "    xori r9, r9, -1         ; ~length-field mask",
    "    and r6, r6, r9",
    f"    shli r9, r4, {LENGTH_SHIFT}",
    "    or r6, r6, r9",
    "    setptr r5, r6",
    "    movi r6, 0",
    "    movi r9, 0",
    "    jmp r15",
    "refuse:",
    "    movi r5, 0",
    "    movi r6, 0",
    "    jmp r15",
])


@dataclass(frozen=True)
class Services:
    """Handles user code needs to reach the standard services."""

    restrict_gateway: GuardedPointer   #: enter-privileged
    subseg_gateway: GuardedPointer     #: enter-privileged


def install(kernel: Kernel) -> Services:
    """Install the gateway routines and the kernel trap services;
    returns the enter pointers to hand to user programs."""
    restrict_sub = ProtectedSubsystem.install(kernel, RESTRICT_GATEWAY,
                                              privileged=True)
    subseg_sub = ProtectedSubsystem.install(kernel, SUBSEG_GATEWAY,
                                            privileged=True)

    def alloc_service(thread: Thread, record: FaultRecord) -> None:
        nbytes = thread.regs.read(3).value
        perm_code = thread.regs.read(4).value
        try:
            perm = Permission(perm_code)
            pointer = kernel.allocate_segment(max(nbytes, 1), perm)
            thread.regs.write(5, pointer.word)
        except Exception:
            thread.regs.write(5, TaggedWord.zero())

    def free_service(thread: Thread, record: FaultRecord) -> None:
        word = thread.regs.read(3)
        try:
            kernel.free_segment(GuardedPointer.from_word(word))
            thread.regs.write(5, TaggedWord.integer(1))
        except Exception:
            thread.regs.write(5, TaggedWord.zero())

    def spawn_service(thread: Thread, record: FaultRecord) -> None:
        """Create a thread in the caller's protection domain.

        The child starts at the given code pointer with the argument in
        r1 and the optional data pointer in r2 — the caller can only
        hand the child pointers it already holds, so spawning cannot
        amplify rights.
        """
        from repro.core.operations import check_jump
        try:
            entry = check_jump(thread.regs.read(3), privileged=False)
            regs: dict[int, object] = {1: thread.regs.read(4)}
            if thread.regs.read(6).tag:
                regs[2] = thread.regs.read(6)
            child = kernel.spawn(entry, domain=thread.domain, regs=regs,
                                 stack_bytes=4096)
            thread.regs.write(5, TaggedWord.integer(child.tid + 1))
        except Exception:
            thread.regs.write(5, TaggedWord.zero())

    def tid_service(thread: Thread, record: FaultRecord) -> None:
        thread.regs.write(5, TaggedWord.integer(thread.tid))

    kernel.register_trap(TRAP_ALLOC, alloc_service)
    kernel.register_trap(TRAP_FREE, free_service)
    kernel.register_trap(TRAP_SPAWN, spawn_service)
    kernel.register_trap(TRAP_TID, tid_service)
    return Services(
        restrict_gateway=restrict_sub.enter,
        subseg_gateway=subseg_sub.enter,
    )
