"""Protected indirection with access-control lists (paper §4.3).

Plain capabilities cannot revoke one process's rights without touching
everyone's pointers.  The paper's answer: "protected indirection can be
implemented by requiring that all accesses to an object be made through
a protected subsystem.  In addition to restricting the access methods
for the object, the subsystem ... can implement arbitrary protection
mechanisms, such as per-process access control lists.  Revoking a
single process' access rights can be performed by updating the access
control list."

:class:`AccessControlledObject` is that construction, end to end:

* clients are named by **KEY pointers** (§2.1) — unforgeable tickets;
* the mediating subsystem holds the only data pointer to the object
  and an ACL segment of key slots, both sealed in its code segment;
* a call presents a key in r3; the subsystem (in MAP assembly) verifies
  the tag with ISPTR and scans the ACL by word equality;
* :meth:`grant` and :meth:`revoke` edit ACL slots — revocation takes
  one store, touches no client, and needs no memory sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.operations import restrict
from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord
from repro.machine.isa import BUNDLE_BYTES
from repro.runtime.kernel import Kernel
from repro.runtime.subsystem import ProtectedSubsystem

#: value returned in r11 when the ACL denies the caller
DENIED = (1 << 64) - 1


def _mediator_source(slots: int) -> str:
    """The ACL-checking read mediator.

    ABI: r3 = caller's key, r15 = return IP; r11 = object word 0, or
    all-ones when denied.  Clobbers r6–r10.
    """
    return f"""
entry:
    isptr r9, r3          ; a key must be a real pointer, not leaked bits
    beq r9, deny
    getip r10, aclptr
    ld r10, r10, 0        ; the ACL segment
    movi r6, {slots}
scan:
    ld r7, r10, 0
    seq r8, r7, r3        ; unforgeable keys compare by word equality
    bne r8, allow
    subi r6, r6, 1
    beq r6, deny          ; exhausted — and never LEA past the table
    lea r10, r10, 8
    br scan
allow:
    getip r9, objptr
    ld r9, r9, 0          ; the one data pointer to the object
    ld r11, r9, 0
    movi r9, 0
    movi r10, 0
    jmp r15
deny:
    movi r11, -1
    movi r9, 0
    movi r10, 0
    jmp r15
aclptr:
    .word 0
objptr:
    .word 0
"""


@dataclass
class AccessControlledObject:
    """A kernel-installed ACL-mediated object."""

    kernel: Kernel
    subsystem: ProtectedSubsystem
    acl_segment: GuardedPointer
    object_segment: GuardedPointer
    slots: int

    @property
    def enter(self) -> GuardedPointer:
        """What clients call (plus a key they were granted)."""
        return self.subsystem.enter

    @staticmethod
    def install(kernel: Kernel, object_segment: GuardedPointer,
                slots: int = 8) -> "AccessControlledObject":
        acl = kernel.allocate_segment(slots * 8, Permission.READ_WRITE,
                                      eager=True)
        subsystem = ProtectedSubsystem.install(
            kernel, _mediator_source(slots),
            data={"aclptr": acl, "objptr": object_segment})
        return AccessControlledObject(
            kernel=kernel, subsystem=subsystem, acl_segment=acl,
            object_segment=object_segment, slots=slots)

    # -- key management (run by the object's owner) --------------------

    def mint_key(self) -> GuardedPointer:
        """A fresh unforgeable ticket: a KEY pointer to a unique
        one-byte segment."""
        name = self.kernel.allocate_segment(1)
        return restrict(name.word, Permission.KEY)

    def _slot_address(self, index: int) -> int:
        return self.acl_segment.segment_base + index * 8

    def _write_slot(self, index: int, word: TaggedWord) -> None:
        paddr = self.kernel.chip.page_table.walk(self._slot_address(index))
        self.kernel.chip.memory.store_word(paddr, word)

    def _read_slot(self, index: int) -> TaggedWord:
        paddr = self.kernel.chip.page_table.walk(self._slot_address(index))
        return self.kernel.chip.memory.load_word(paddr)

    def grant(self, key: GuardedPointer) -> None:
        """Add ``key`` to the ACL (idempotent)."""
        free = None
        for index in range(self.slots):
            slot = self._read_slot(index)
            if slot == key.word:
                return
            if free is None and not slot.tag and slot.value == 0:
                free = index
        if free is None:
            raise RuntimeError("ACL full")
        self._write_slot(free, key.word)

    def revoke(self, key: GuardedPointer) -> bool:
        """Remove ``key`` — one store; no client pointer is touched."""
        for index in range(self.slots):
            if self._read_slot(index) == key.word:
                self._write_slot(index, TaggedWord.zero())
                return True
        return False
