"""Address-space garbage collection and revocation (paper §4.3).

Without enforced indirection, virtual addresses are allocated "for all
time", so system software periodically garbage-collects the address
space.  Guarded pointers make this tractable: pointers are
self-identifying via the tag bit, so live segments are found by
recursively scanning reachable segments from the roots (thread
registers plus any persistent roots).

The same tag-driven sweep implements the expensive side of revocation:
overwriting every copy of a capability (``sweep_revoke``), which the
paper contrasts with the cheap page-table unmap
(:meth:`~repro.runtime.kernel.Kernel.free_segment`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constants import WORD_BYTES
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord
from repro.runtime.kernel import Kernel, Segment


@dataclass
class GCStats:
    """Work accounting for one collection (feeds experiment E13)."""

    roots: int = 0
    segments_scanned: int = 0
    words_scanned: int = 0
    pointers_found: int = 0
    segments_live: int = 0
    segments_freed: int = 0
    bytes_freed: int = 0


class AddressSpaceGC:
    """Mark-and-free collector over the kernel's segment table."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel

    # -- root discovery ----------------------------------------------------

    def thread_roots(self) -> list[GuardedPointer]:
        """Pointers live in any thread's registers or IP."""
        roots = []
        for thread in self.kernel.chip.all_threads():
            roots.append(thread.ip)
            for word in thread.regs.pointers():
                roots.append(GuardedPointer.from_word(word))
        return roots

    # -- collection -------------------------------------------------------------

    def collect(self, extra_roots: list[GuardedPointer] | None = None,
                free: bool = True) -> GCStats:
        """Mark segments reachable from thread registers (plus
        ``extra_roots``), then free the rest.  Returns work accounting.
        """
        stats = GCStats()
        roots = self.thread_roots() + list(extra_roots or [])
        stats.roots = len(roots)

        live: set[int] = set()  # segment bases
        work: list[Segment] = []
        for root in roots:
            segment = self.kernel.segment_of(root.address)
            if segment is not None and segment.base not in live:
                live.add(segment.base)
                work.append(segment)

        while work:
            segment = work.pop()
            stats.segments_scanned += 1
            for pointer in self._scan_segment(segment, stats):
                target = self.kernel.segment_of(pointer.address)
                if target is not None and target.base not in live:
                    live.add(target.base)
                    work.append(target)

        stats.segments_live = len(live)
        if free:
            for segment in list(self.kernel.segments.values()):
                if segment.base not in live:
                    self.kernel.free_segment(segment.pointer)
                    stats.segments_freed += 1
                    stats.bytes_freed += segment.size
        return stats

    def _scan_segment(self, segment: Segment, stats: GCStats):
        """Yield every guarded pointer stored in the segment's mapped
        pages.  Unmapped pages hold no data and are skipped — demand
        paging keeps the scan proportional to memory actually touched.
        """
        table = self.kernel.chip.page_table
        memory = self.kernel.chip.memory
        page_bytes = table.page_bytes
        start = segment.base
        end = segment.base + segment.size
        vaddr = start
        while vaddr < end:
            page = table.page_of(vaddr)
            page_end = min((page + 1) * page_bytes, end)
            if table.is_mapped(page):
                physical = table.walk(vaddr)
                span = page_end - vaddr
                stats.words_scanned += span // WORD_BYTES
                for _, word in memory.scan_tagged(physical, span):
                    stats.pointers_found += 1
                    yield GuardedPointer.from_word(word)
            vaddr = page_end


def sweep_revoke(kernel: Kernel, target: GuardedPointer) -> tuple[int, int]:
    """Revoke by exhaustive sweep: overwrite every stored copy of a
    pointer into ``target``'s segment with an untagged zero, and clear
    any such pointer from thread registers.

    Returns ``(words_scanned, pointers_overwritten)`` — the cost the
    paper says makes unmap-based revocation preferable.
    """
    base, limit = target.segment_base, target.segment_limit
    chip = kernel.chip
    memory = chip.memory
    overwritten = 0
    for address, word in list(memory.scan_tagged()):
        pointer = GuardedPointer.from_word(word)
        if base <= pointer.address < limit:
            # the sweep works on physical addresses, below translation —
            # the chip-level runtime-store hook keeps the decoded-bundle
            # cache coherent (a swept word may sit in a code segment)
            chip.store_runtime_word(address, TaggedWord.zero())
            overwritten += 1
    for thread in kernel.chip.all_threads():
        for index in range(16):
            word = thread.regs.read(index)
            if word.tag and base <= GuardedPointer.from_word(word).address < limit:
                thread.regs.write(index, TaggedWord.zero())
                overwritten += 1
    return memory.size_words, overwritten
