"""A guarded-pointer-native heap allocator.

``Heap`` carves a kernel segment into power-of-two chunks and hands out
pointers **bounded to the chunk**: every allocation is SUBSEG-derived
from the heap's segment pointer, so buffer overruns past an object's
end fault in hardware instead of corrupting the neighbour.  This is the
paper's RESTRICT/SUBSEG story (§2.2) applied to a classic segregated
free-list malloc.

Because SUBSEG only shrinks, the heap needs no privilege: any user
process holding a read/write segment pointer can run this allocator on
it.
"""

from __future__ import annotations

from repro.core.operations import leab, subseg
from repro.core.pointer import GuardedPointer
from repro.mem.allocator import Block, BuddyAllocator, OutOfVirtualSpace, round_up_log2


class OutOfHeap(Exception):
    """The heap segment cannot satisfy the request."""


class Heap:
    """Sub-allocates one segment into bounds-checked chunks.

    The internal bookkeeping reuses :class:`BuddyAllocator` over the
    segment's address range, so chunks are aligned powers of two — a
    requirement for the derived pointers' SUBSEG lengths to describe
    them exactly.
    """

    def __init__(self, segment: GuardedPointer, min_chunk: int = 16):
        if segment.offset != 0:
            segment = leab(segment.word, 0)
        self.segment = segment
        self._buddy = BuddyAllocator(
            base=segment.segment_base,
            order=segment.seglen,
            min_order=round_up_log2(min_chunk),
        )
        self._live: dict[int, int] = {}  # base -> order

    def allocate(self, nbytes: int) -> GuardedPointer:
        """Return a pointer whose segment is exactly the chunk."""
        try:
            block = self._buddy.allocate(nbytes)
        except OutOfVirtualSpace as e:
            raise OutOfHeap(str(e)) from None
        self._live[block.base] = block.order
        # derive: move to the chunk, then shrink the bounds to it
        at_chunk = leab(self.segment.word, block.base - self.segment.segment_base)
        if block.order == self.segment.seglen:
            return at_chunk  # the chunk is the whole segment
        return subseg(at_chunk.word, block.order)

    def free(self, pointer: GuardedPointer) -> None:
        """Release a chunk previously returned by :meth:`allocate`."""
        order = self._live.pop(pointer.segment_base, None)
        if order is None or order != pointer.seglen:
            raise ValueError("not a live allocation of this heap")
        self._buddy.free(Block(pointer.segment_base, order))

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    @property
    def free_bytes(self) -> int:
        return self._buddy.free_bytes

    def internal_fragmentation(self) -> float:
        return self._buddy.internal_fragmentation()

    def external_fragmentation(self) -> float:
        return self._buddy.external_fragmentation()
