"""Demand paging with eviction to a backing store.

§4.2 leans on paging beneath segmentation: "physical space is allocated
on a page-by-page basis, independent of segmentation."  The base kernel
demand-maps pages but dies when frames run out; :class:`SwapManager`
completes the story with an LRU evictor and a software backing store,
so over-committed address space keeps working — just slower.

Tags swap too: the backing store holds :class:`TaggedWord` values, so a
pointer paged out and back in is still a pointer.  (On real hardware
the tag bits travel with the DRAM words into the swap device's format.)

Timing is charged through the chip's fault path: an evicting demand
fault blocks the thread for ``swap_cycles`` before it resumes, standing
in for the (enormously larger) disk latency of the era at a magnitude
the cycle-level experiments can still afford.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.exceptions import PageFault
from repro.core.word import TaggedWord
from repro.machine.faults import FaultRecord
from repro.machine.thread import Thread
from repro.mem.physical import OutOfPhysicalMemory
from repro.runtime.kernel import Kernel


@dataclass
class SwapStats:
    demand_pages: int = 0
    evictions: int = 0
    swap_ins: int = 0


class SwapManager:
    """LRU page eviction layered over a kernel's fault handling."""

    def __init__(self, kernel: Kernel, reserve_frames: int = 2,
                 swap_cycles: int = 200):
        self.kernel = kernel
        self.reserve_frames = reserve_frames
        self.swap_cycles = swap_cycles
        self.stats = SwapStats()
        #: page number → list of tagged words (page-sized)
        self._store: dict[int, list[TaggedWord]] = {}
        #: LRU over resident pages (approximated by fault order — the
        #: model has no access bits; touched-most-recently-faulted)
        self._resident: OrderedDict[int, bool] = OrderedDict()
        self._inner = kernel.chip.fault_handler
        kernel.chip.fault_handler = self._handle_fault
        kernel.swap = self  # so repro.persist snapshots find the store

    # -- bookkeeping ------------------------------------------------------

    @property
    def swapped_pages(self) -> int:
        return len(self._store)

    def note_use(self, page: int) -> None:
        if page in self._resident:
            self._resident.move_to_end(page)

    # -- the page mover ------------------------------------------------------

    def _page_words(self, physical_base: int) -> list[TaggedWord]:
        memory = self.kernel.chip.memory
        page_bytes = self.kernel.chip.page_table.page_bytes
        return [memory.load_word(physical_base + i * 8)
                for i in range(page_bytes // 8)]

    def _write_page(self, physical_base: int, words: list[TaggedWord],
                    *, virtual_base: int) -> None:
        """Rewrite a page's words and drop any decoded bundles in its
        virtual range — a swapped page may be code, and the decode
        cache must never outlive the words it decoded."""
        memory = self.kernel.chip.memory
        for i, word in enumerate(words):
            memory.store_word(physical_base + i * 8, word)
        self.kernel.chip.invalidate_decoded_range(virtual_base,
                                                  len(words) * 8)

    def swap_out(self, page: int) -> bool:
        """Push one resident page to the backing store now.  Returns
        False when the page is not mapped.  The LRU evictor uses this;
        tests and the fuzz harness call it to schedule evictions
        deterministically."""
        table = self.kernel.chip.page_table
        if not table.is_mapped(page):
            return False
        virtual_base = page * table.page_bytes
        physical = table.walk(virtual_base)
        self._store[page] = self._page_words(physical)
        self._write_page(physical,
                         [TaggedWord.zero()] * (table.page_bytes // 8),
                         virtual_base=virtual_base)
        table.unmap(page)
        self._resident.pop(page, None)
        self.stats.evictions += 1
        chip = self.kernel.chip
        if chip.obs.enabled:
            chip.obs.emit("swap.out", chip.now, page=page)
        return True

    def _evict_one(self) -> None:
        """Push the least-recently-faulted resident page to the store."""
        while self._resident:
            victim, _ = self._resident.popitem(last=False)
            if self.swap_out(victim):
                return
            # else: unmapped behind our back (free/revoke); keep looking
        raise OutOfPhysicalMemory("nothing left to evict")

    def _ensure_frame_available(self) -> None:
        frames = self.kernel.chip.frames
        while frames.free_frames < max(self.reserve_frames, 1):
            self._evict_one()

    def _fault_in(self, vaddr: int) -> bool:
        """Map the page at ``vaddr``, evicting if needed; restores
        swapped contents.  Returns False for stray addresses."""
        if self.kernel.segment_of(vaddr) is None:
            return False
        table = self.kernel.chip.page_table
        page = table.page_of(vaddr)
        if table.is_mapped(page):
            self.note_use(page)
            return True
        self._ensure_frame_available()
        translation = table.map(page)
        self.stats.demand_pages += 1
        stored = self._store.pop(page, None)
        if stored is not None:
            # restore through the invalidating writer: swapping a code
            # page back in rewrites its words, so stale decoded bundles
            # for this range must go
            self._write_page(translation.physical_address, stored,
                             virtual_base=page * table.page_bytes)
            self.stats.swap_ins += 1
            chip = self.kernel.chip
            if chip.obs.enabled:
                chip.obs.emit("swap.in", chip.now, page=page)
        self._resident[page] = True
        return True

    # -- fault handling ---------------------------------------------------------

    def _handle_fault(self, record: FaultRecord, thread: Thread) -> None:
        cause = record.cause
        if isinstance(cause, PageFault):
            moved_before = self.stats.evictions + self.stats.swap_ins
            try:
                serviced = self._fault_in(cause.vaddr)
            except OutOfPhysicalMemory:
                serviced = False
            if serviced:
                thread.resume()
                if self.stats.evictions + self.stats.swap_ins > moved_before:
                    # this fault moved pages: pay the device latency
                    thread.block_until(record.cycle + self.swap_cycles)
                return
        if self._inner is not None:
            self._inner(record, thread)
