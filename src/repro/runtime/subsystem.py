"""Protected subsystems (paper §2.3, Figures 3 and 4).

A protected subsystem is code that executes in its own protection
domain and can only be entered at published entry points — *without
kernel intervention*.  The machinery is pure guarded pointers:

* The subsystem's code segment holds pointers to its private data
  structures (``.word`` slots patched at install time).  Callers hold
  only an **enter** pointer, which confers no read/write/modify rights;
  jumping through it converts it to an execute pointer, and only then
  can the subsystem code load its private pointers out of the segment
  (Figure 3 — one-way protection: the subsystem's data is safe from the
  caller).

* For **two-way** protection (Figure 4) the caller encapsulates its own
  protection domain in a *return segment*: it writes its live pointers
  into the segment, wipes them from the register file, and passes only
  an enter pointer to the return segment.  The segment begins with a
  reload trampoline; the subsystem returns by jumping to it, which
  restores the caller's registers and jumps to the saved return IP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.isa import BUNDLE_BYTES
from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord
from repro.machine.assembler import Program, assemble
from repro.runtime.kernel import Kernel


@dataclass(frozen=True)
class ProtectedSubsystem:
    """An installed subsystem: callers get :attr:`enter`, nothing else."""

    enter: GuardedPointer          #: what callers hold (ENTER_USER/PRIV)
    execute: GuardedPointer        #: kernel-held execute pointer (debugging)
    program: Program

    @staticmethod
    def install(
        kernel: Kernel,
        source: str | Program,
        data: dict[str, GuardedPointer | TaggedWord] | None = None,
        privileged: bool = False,
    ) -> "ProtectedSubsystem":
        """Load subsystem code and patch its private-data pointer slots.

        ``data`` maps ``.word`` labels in ``source`` to the pointers the
        subsystem owns.  With ``privileged=True`` the result is an
        enter-privileged gateway — the M-Machine's mechanism for
        exposing SETPTR-based services to user code (§2.2).
        """
        program = assemble(source) if isinstance(source, str) else source
        exec_perm = Permission.EXECUTE_PRIV if privileged else Permission.EXECUTE_USER
        enter_perm = Permission.ENTER_PRIV if privileged else Permission.ENTER_USER
        execute = kernel.load_program(program, perm=exec_perm, patches=data)
        # Enter pointers cannot be derived by RESTRICT (entry is not a
        # subset of execute rights); the privileged kernel forges them.
        enter = GuardedPointer.make(enter_perm, execute.seglen, execute.address)
        return ProtectedSubsystem(enter=enter, execute=execute, program=program)


@dataclass(frozen=True)
class ReturnSegment:
    """A Figure-4 return segment: trampoline code plus save slots.

    The caller holds two pointers to the same segment — :attr:`enter`
    (passed to the subsystem; confers entry only) and
    :attr:`readwrite` (used to write the saved state, then wiped from
    the register file before the call).

    Layout: ``save_slots`` pointer slots, then the RETIP slot, then the
    reload trampoline.  The trampoline restores r1..r<save_slots> and
    jumps to the saved return pointer.
    """

    enter: GuardedPointer
    readwrite: GuardedPointer
    save_slots: int
    program: Program

    #: register that receives the return-segment enter pointer by
    #: convention (the one register the caller does not wipe)
    ENTER_REG = 13

    def slot_offset(self, index: int) -> int:
        """Byte offset of save slot ``index`` (for the caller's STs)."""
        if not 0 <= index < self.save_slots:
            raise IndexError(f"save slot out of range: {index}")
        return self.program.labels[f"slot{index}"]

    @property
    def retip_offset(self) -> int:
        """Byte offset of the saved-return-IP slot."""
        return self.program.labels["retip"]

    @staticmethod
    def build(kernel: Kernel, save_slots: int = 4) -> "ReturnSegment":
        """Install a return segment with ``save_slots`` pointer slots.

        The trampoline reloads slot *i* into register *i+1* (r1..r12 are
        usable; r13 is the enter-pointer convention register, r15 the
        jump target), so ``save_slots`` must be ≤ 12.
        """
        if not 0 <= save_slots <= 12:
            raise ValueError("save_slots must be between 0 and 12")
        lines = ["entry:", "    getip r15, slot_area"]
        # reload each saved register through an execute-derived pointer;
        # .word slots are bundle-sized, hence the BUNDLE_BYTES stride
        for i in range(save_slots):
            lines.append(f"    ld r{i + 1}, r15, {i * BUNDLE_BYTES}")
        lines.append(f"    ld r15, r15, {save_slots * BUNDLE_BYTES} ; saved RETIP")
        lines.append("    jmp r15")
        lines.append("slot_area:")
        for i in range(save_slots):
            lines.append(f"slot{i}:")
            lines.append("    .word 0")
        lines.append("retip:")
        lines.append("    .word 0")
        source = "\n".join(lines)
        program = assemble(source)
        execute = kernel.load_program(program, perm=Permission.EXECUTE_USER)
        base = execute.segment_base
        enter = GuardedPointer.make(Permission.ENTER_USER, execute.seglen, base)
        readwrite = GuardedPointer.make(Permission.READ_WRITE, execute.seglen, base)
        return ReturnSegment(enter=enter, readwrite=readwrite,
                             save_slots=save_slots, program=program)
