"""Segment relocation by unmap-and-patch (paper §4.3).

Without protected indirection, moving a segment would mean finding
every copy of every pointer into it.  The paper's recipe avoids the
sweep:

  "All guarded pointers to a segment can be simultaneously invalidated
   by unmapping the segment's address space in the page table. ...
   Segments can be relocated by updating the pointer causing the
   exception on each reference to the relocated segment."

:class:`Relocator` implements exactly that:

1. ``relocate(old, size)`` copies the segment's live pages to a fresh
   virtual range, unmaps the old range and records the forwarding entry.
2. Its fault handler intercepts :class:`PageFault`\\ s whose address
   falls in a forwarded range, rewrites the *faulting thread's* stale
   register pointers to the new base, and resumes the thread — the
   bundle re-executes with the updated pointer and never knows.

Stale pointers in *memory* are patched the same lazy way: they fault
when loaded and used.  (We patch registers because that is where the
faulting pointer lives at trap time — the paper's "updating the pointer
causing the exception".)

The limitation the paper notes is visible here too: unmapping works at
page granularity, so relocating a sub-page segment would take its page
neighbours with it; :meth:`relocate` therefore requires page-aligned
segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import PageFault
from repro.core.pointer import GuardedPointer
from repro.machine.faults import FaultRecord
from repro.machine.thread import Thread
from repro.runtime.kernel import Kernel


@dataclass(frozen=True, slots=True)
class Forwarding:
    """One relocated range: [old_base, old_base+size) → new_base."""

    old_base: int
    new_base: int
    size: int

    def covers(self, address: int) -> bool:
        return self.old_base <= address < self.old_base + self.size

    def translate(self, address: int) -> int:
        return self.new_base + (address - self.old_base)


@dataclass
class RelocationStats:
    relocations: int = 0
    pages_moved: int = 0
    pointers_patched: int = 0
    faults_serviced: int = 0


class Relocator:
    """Installs itself as the kernel's page-fault layer for forwarded
    ranges; all other faults fall through to the kernel's handler."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.forwardings: list[Forwarding] = []
        self._retired_blocks: dict[int, object] = {}
        self.stats = RelocationStats()
        self._inner = kernel.chip.fault_handler
        kernel.chip.fault_handler = self._handle_fault

    # -- the move ---------------------------------------------------------

    def relocate(self, pointer: GuardedPointer) -> GuardedPointer:
        """Move the segment behind ``pointer`` to fresh address space;
        returns the new canonical pointer.  Existing pointers keep
        working lazily through the fault path."""
        segment = self.kernel.segments.get(pointer.segment_base)
        if segment is None:
            raise ValueError(f"no segment at {pointer.segment_base:#x}")
        table = self.kernel.chip.page_table
        if segment.size < table.page_bytes:
            raise ValueError(
                "relocation works at page granularity (§4.3); "
                f"segment is only {segment.size} bytes"
            )
        old_base, size = segment.base, segment.size
        new_pointer = self.kernel.allocate_segment(size, pointer.permission)
        new_base = new_pointer.segment_base

        # move the *mapped* pages: remap each backing frame at the new
        # virtual page and unmap the old one (no data copy needed — the
        # frame itself moves)
        pages = size // table.page_bytes
        for i in range(pages):
            old_page = old_base // table.page_bytes + i
            if not table.is_mapped(old_page):
                continue
            frame = table.walk(old_page * table.page_bytes)
            table.unmap(old_page, release_frame=False)
            new_page = new_base // table.page_bytes + i
            if table.is_mapped(new_page):
                table.unmap(new_page)
            table.map(new_page, physical_address=frame)
            self.stats.pages_moved += 1

        # Record the forwarding.  The old *address space* stays reserved
        # (not returned to the buddy) while stale pointers may exist —
        # recycling it would let a fresh segment's demand faults be
        # mistaken for forwarded ones.  §4.3's address-space GC is the
        # eventual reclaimer; retire() releases it explicitly.
        del self.kernel.segments[old_base]
        fwd = Forwarding(old_base, new_base, size)
        self.forwardings.append(fwd)
        self._retired_blocks[old_base] = segment.block
        self.stats.relocations += 1
        return new_pointer

    def retire(self, fwd: Forwarding) -> None:
        """Drop a forwarding and recycle its old address space — legal
        once no stale pointers remain (e.g. after a GC sweep)."""
        self.forwardings.remove(fwd)
        block = self._retired_blocks.pop(fwd.old_base)
        self.kernel.allocator.free(block)

    # -- the lazy patch ------------------------------------------------------

    def _forwarding_for(self, address: int) -> Forwarding | None:
        for fwd in self.forwardings:
            if fwd.covers(address):
                return fwd
        return None

    def _handle_fault(self, record: FaultRecord, thread: Thread) -> None:
        cause = record.cause
        if isinstance(cause, PageFault):
            fwd = self._forwarding_for(cause.vaddr)
            if fwd is not None:
                self._patch_thread(thread, fwd)
                self.stats.faults_serviced += 1
                thread.resume()
                return
        if self._inner is not None:
            self._inner(record, thread)

    def _patch_thread(self, thread: Thread, fwd: Forwarding) -> None:
        """Rewrite every stale register pointer into the forwarded range
        — 'updating the pointer causing the exception' (§4.3)."""
        for index in range(16):
            word = thread.regs.read(index)
            if not word.tag:
                continue
            pointer = GuardedPointer.from_word(word)
            if fwd.covers(pointer.address):
                moved = pointer.with_fields(
                    address=fwd.translate(pointer.address))
                thread.regs.write(index, moved.word)
                self.stats.pointers_patched += 1
