"""A software calling convention for MAP programs.

The paper's ISA has no call/return instructions — calls are GETIP +
JMP, and the stack is just a read/write segment (here: a guarded
pointer, so overflow faults in hardware instead of smashing anything).
This module packages the convention as assembly-text macros so tests
and examples can write recursive code.

Convention:

=====  =================================================
r13    scratch used by the macros (return-IP shuttling)
r14    stack pointer (grows downward, 8-byte slots)
r15    return instruction pointer (live across a call)
=====  =================================================

``prologue(n)`` saves r15 and makes room for ``n`` locals;
``epilogue(n)`` restores and returns.  ``push``/``pop`` move single
registers.  ``call`` names a label in the same program; for calls
through pointers use ``call_reg``.

A frame looks like::

    high addresses
      caller frame ...
      saved r15            <- sp after prologue header
      local n-1
      ...
      local 0              <- sp
    low addresses
"""

from __future__ import annotations

from repro.machine.isa import BUNDLE_BYTES

#: stack-pointer register index, by convention
SP = 14

#: return-IP register index, by convention
RA = 15


def push(reg: str) -> str:
    """Push one register (grows the stack down)."""
    return f"""
    lea r{SP}, r{SP}, -8
    st {reg}, r{SP}, 0
    """


def pop(reg: str) -> str:
    """Pop into one register."""
    return f"""
    ld {reg}, r{SP}, 0
    lea r{SP}, r{SP}, 8
    """


def prologue(locals_count: int = 0) -> str:
    """Function entry: save the return IP, reserve locals."""
    reserve = f"\n    lea r{SP}, r{SP}, -{8 * locals_count}" if locals_count else ""
    return push(f"r{RA}") + reserve


def epilogue(locals_count: int = 0) -> str:
    """Function exit: drop locals, restore the return IP, return."""
    drop = f"\n    lea r{SP}, r{SP}, {8 * locals_count}" if locals_count else ""
    return f"""{drop}
    ld r{RA}, r{SP}, 0
    lea r{SP}, r{SP}, 8
    jmp r{RA}
    """


def call(label: str, _tmp: int = 13) -> str:
    """Call a label in the same program.

    GETIP needs the *byte displacement to the bundle after the jump*;
    the macro expands to exactly two bundles, so the return point is
    2 bundles ahead of the GETIP.
    """
    return f"""
    getip r{RA}, {2 * BUNDLE_BYTES}
    br {label}
    """


def call_reg(reg: str) -> str:
    """Call through a pointer (execute or enter) held in ``reg``."""
    return f"""
    getip r{RA}, {2 * BUNDLE_BYTES}
    jmp {reg}
    """


def local_offset(index: int) -> int:
    """Byte offset of local ``index`` from the post-prologue SP."""
    if index < 0:
        raise ValueError("local index must be non-negative")
    return 8 * index


def store_local(reg: str, index: int) -> str:
    return f"\n    st {reg}, r{SP}, {local_offset(index)}\n"


def load_local(reg: str, index: int) -> str:
    return f"\n    ld {reg}, r{SP}, {local_offset(index)}\n"
