"""Processes as protection domains.

Under guarded pointers a "process" is not an address space — everyone
shares the single 54-bit space.  A process is exactly *the set of
pointers it has been issued* (§1): its protection domain.  This module
is therefore bookkeeping: it groups a code segment, data segments and
threads under a domain id, and its sharing operations are nothing more
than handing a pointer (possibly RESTRICTed) to another process —
the paper's point that sharing needs no operating-system tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import RestrictFault
from repro.core.operations import restrict
from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer
from repro.machine.thread import Thread
from repro.runtime.kernel import Kernel


@dataclass
class Process:
    """One protection domain: an entry point, its segments and threads."""

    kernel: Kernel
    domain: int
    entry: GuardedPointer
    segments: list[GuardedPointer] = field(default_factory=list)
    threads: list[Thread] = field(default_factory=list)

    def start(self, regs: dict[int, object] | None = None,
              cluster: int | None = None) -> Thread:
        """Spawn a thread at the process entry point."""
        thread = self.kernel.spawn(self.entry, domain=self.domain,
                                   regs=regs, cluster=cluster)
        self.threads.append(thread)
        return thread

    def grant(self, pointer: GuardedPointer, to: "Process",
              perm: Permission | None = None) -> GuardedPointer:
        """Share a segment with another process by giving it a pointer —
        optionally RESTRICTed first.  This is the *entire* sharing
        mechanism; contrast with the n×m page-table entries a paged
        system needs (E8)."""
        if perm is not None and perm is not pointer.permission:
            try:
                pointer = restrict(pointer.word, perm)
            except RestrictFault:
                raise
        to.segments.append(pointer)
        return pointer


class ProcessManager:
    """Creates processes with fresh domains."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._next_domain = 1
        self.processes: list[Process] = []

    def create(self, source: str,
               data_bytes: int = 0,
               perm: Permission = Permission.EXECUTE_USER) -> Process:
        """Load ``source`` into a new code segment and wrap it in a new
        protection domain.  A data segment of ``data_bytes`` (pointer in
        ``segments[0]``) is allocated when requested."""
        entry = self.kernel.load_program(source, perm=perm)
        process = Process(kernel=self.kernel, domain=self._next_domain, entry=entry)
        self._next_domain += 1
        if data_bytes:
            process.segments.append(
                self.kernel.allocate_segment(data_bytes, Permission.READ_WRITE)
            )
        self.processes.append(process)
        return process
