"""Privileged system software for the MAP chip.

The kernel is the only software that may forge pointers (SETPTR runs in
privileged mode), so it owns:

* the **virtual address space** — a buddy allocator hands out
  power-of-two aligned segments (§4.2), physical pages are demand-mapped
  on first touch;
* **program loading** — assembling code into fresh execute segments and
  patching pointer slots (the pointers a protected subsystem keeps in
  its code segment, Figure 3);
* **fault handling** — demand paging on :class:`PageFault`, TRAP
  dispatch, and killing threads with unservable faults;
* **privileged services** reached two ways, so experiment E3 can compare
  them: TRAP (conventional trap into the kernel) and enter-privileged
  gateway routines written in MAP assembly that use SETPTR directly —
  the M-Machine's preferred style (§2.2).

The kernel is deliberately small: guarded pointers make most services
unprivileged (§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.constants import WORD_BYTES
from repro.core.exceptions import PageFault
from repro.core.operations import lea
from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord
from repro.machine.assembler import Program, assemble
from repro.machine.chip import MAPChip
from repro.machine.faults import FaultRecord, TrapFault
from repro.machine.isa import BUNDLE_BYTES
from repro.machine.thread import Thread, ThreadState
from repro.mem.allocator import Block, BuddyAllocator, round_up_log2
from repro.mem.physical import OutOfPhysicalMemory


@dataclass
class Segment:
    """A kernel-tracked virtual segment and its canonical pointer."""

    block: Block
    pointer: GuardedPointer

    @property
    def base(self) -> int:
        return self.block.base

    @property
    def size(self) -> int:
        return self.block.size


@dataclass
class KernelStats:
    demand_pages: int = 0
    traps: int = 0
    killed_threads: int = 0


class Kernel:
    """System software state for one MAP node."""

    #: default virtual arena: 1 GiB at 1 GiB (the buddy system needs the
    #: base aligned on the arena size; keeping the bottom of the address
    #: space unmapped catches null-ish pointers)
    ARENA_BASE = 1 << 30
    ARENA_ORDER = 30

    def __init__(self, chip: MAPChip | None = None,
                 arena_base: int | None = None, arena_order: int | None = None):
        self.chip = chip or MAPChip()
        self.allocator = BuddyAllocator(
            base=self.ARENA_BASE if arena_base is None else arena_base,
            order=self.ARENA_ORDER if arena_order is None else arena_order,
            min_order=0,
        )
        self.segments: dict[int, Segment] = {}  # base -> Segment
        self.stats = KernelStats()
        self.trap_handlers: dict[int, Callable[[Thread, FaultRecord], None]] = {}
        #: the SwapManager layered over this kernel, if any (set by
        #: SwapManager.__init__; repro.persist captures it with the rest
        #: of the machine)
        self.swap = None
        self.chip.fault_handler = self._handle_fault

    # -- segments ---------------------------------------------------------

    def allocate_segment(
        self,
        nbytes: int,
        perm: Permission = Permission.READ_WRITE,
        eager: bool = False,
    ) -> GuardedPointer:
        """Carve a fresh segment out of the arena and return its
        pointer.  Pages are mapped on first touch unless ``eager``."""
        block = self.allocator.allocate(nbytes)
        pointer = GuardedPointer.make(perm, block.order, block.base)
        self.segments[block.base] = Segment(block, pointer)
        if eager:
            self.chip.page_table.ensure_mapped(block.base, block.size)
        return pointer

    def free_segment(self, pointer: GuardedPointer) -> None:
        """Release a segment's address space and unmap its pages.

        The capability caveat of §4.3 applies: copies of the pointer may
        survive elsewhere; unmapping guarantees they fault.
        """
        segment = self.segments.pop(pointer.segment_base, None)
        if segment is None:
            raise ValueError(f"no segment at {pointer.segment_base:#x}")
        self._unmap_range(segment.base, segment.size)
        self.allocator.free(segment.block)

    def _unmap_range(self, base: int, size: int) -> int:
        """Unmap every page fully covered by ``[base, base+size)``.

        Sub-page segments share their page with neighbours, so nothing
        is unmapped for them — the granularity mismatch the paper notes
        in §4.3.  Page-sized-or-larger segments are page-aligned
        (power-of-two alignment), so they cover their pages exactly.
        """
        table = self.chip.page_table
        if size < table.page_bytes:
            return 0
        unmapped = 0
        for page in range(base // table.page_bytes, (base + size) // table.page_bytes):
            if table.is_mapped(page):
                table.unmap(page)
                unmapped += 1
        return unmapped

    def segment_of(self, address: int) -> Segment | None:
        """The kernel segment containing ``address``, if any."""
        for segment in self.segments.values():
            if segment.base <= address < segment.base + segment.size:
                return segment
        return None

    # -- program loading -----------------------------------------------------

    def load_program(
        self,
        program: Program | str,
        perm: Permission = Permission.EXECUTE_USER,
        patches: dict[str, GuardedPointer | TaggedWord] | None = None,
    ) -> GuardedPointer:
        """Install a program in a fresh code segment.

        ``patches`` maps label names to pointers (or raw words) written
        into the labelled ``.word`` slots — this is how a protected
        subsystem gets the pointers to its private data structures into
        its code segment (Figure 3).  Returns a pointer to the entry
        (first bundle) with permission ``perm``.
        """
        if isinstance(program, str):
            program = assemble(program)
        pointer = self.allocate_segment(program.size_bytes, perm=perm, eager=True)
        base = pointer.segment_base
        table = self.chip.page_table
        # the virtual range may be recycled from a freed sub-page code
        # segment (too small for unmap to have flushed anything): drop
        # any decoded bundles that overlap it before rewriting the words
        self.chip.invalidate_decoded_range(base, program.size_bytes)
        for i, word in enumerate(program.encode()):
            self.chip.memory.store_word(table.walk(base + i * WORD_BYTES), word)
        for label, value in (patches or {}).items():
            offset = program.labels.get(label)
            if offset is None:
                raise ValueError(f"no label {label!r} in program")
            word = value.word if isinstance(value, GuardedPointer) else value
            self.chip.memory.store_word(table.walk(base + offset), word)
        # the entry pointer addresses bundle 0 but spans the whole segment
        return pointer.with_fields(address=base)

    # -- threads ----------------------------------------------------------------

    def spawn(self, entry: GuardedPointer, domain: int = 0,
              regs: dict[int, object] | None = None,
              cluster: int | None = None,
              stack_bytes: int = 4096) -> Thread:
        """Start a thread at ``entry`` with a fresh stack segment in r14
        (if ``stack_bytes``).

        The stack grows downward (see :mod:`repro.runtime.abi`), so r14
        points at the segment's top word; overflowing the stack walks
        off the segment's *bottom* and faults in hardware.
        """
        regs = dict(regs or {})
        if stack_bytes:
            stack = self.allocate_segment(stack_bytes, Permission.READ_WRITE)
            top = lea(stack.word, stack.segment_size - WORD_BYTES)
            regs.setdefault(14, top.word)
        return self.chip.spawn(entry, domain=domain, regs=regs, cluster=cluster)

    def run(self, max_cycles: int = 1_000_000):
        return self.chip.run(max_cycles)

    # -- fault handling ------------------------------------------------------------

    def register_trap(self, code: int,
                      handler: Callable[[Thread, FaultRecord], None]) -> None:
        self.trap_handlers[code] = handler

    def _handle_fault(self, record: FaultRecord, thread: Thread) -> None:
        cause = record.cause
        if isinstance(cause, PageFault):
            if self._demand_page(cause.vaddr):
                thread.resume()
                return
            self.stats.killed_threads += 1
            return  # leave the thread faulted: unserviceable
        if isinstance(cause, TrapFault):
            self.stats.traps += 1
            handler = self.trap_handlers.get(cause.code)
            if handler is not None:
                handler(thread, record)
                if thread.fault is record and thread.state is ThreadState.FAULTED:
                    # handler did not resume explicitly: service-and-return
                    # semantics — skip the trap bundle
                    thread.resume()
                    self.advance_past_fault(thread)
                return
            self.stats.killed_threads += 1
            return
        # protection faults are program errors: the thread stays dead
        self.stats.killed_threads += 1

    def _demand_page(self, vaddr: int) -> bool:
        """Map the faulting page iff it belongs to a live segment.

        Returns False — leaving the thread faulted — for stray
        addresses *and* when physical memory is exhausted (this kernel
        has no swap; a production one would evict here).
        """
        segment = self.segment_of(vaddr)
        if segment is None:
            return False
        page = self.chip.page_table.page_of(vaddr)
        if not self.chip.page_table.is_mapped(page):
            try:
                self.chip.page_table.map(page)
            except OutOfPhysicalMemory:
                return False
            self.stats.demand_pages += 1
        return True

    @staticmethod
    def advance_past_fault(thread: Thread) -> None:
        """Move a resumed thread past its faulting bundle (used by trap
        handlers that service-and-return)."""
        thread.ip = thread.ip.with_fields(address=thread.ip.address + BUNDLE_BYTES)
