"""Buddy allocator for the virtual address space (§4.2).

Guarded-pointer segments must be a power of two bytes long and aligned
on their length, so the virtual address space is carved with a buddy
system: splits produce aligned power-of-two blocks, and frees coalesce
adjacent buddies back into larger blocks, countering external
fragmentation — exactly the remedy §4.2 prescribes.

The allocator tracks the statistics experiment E7 reports: requested
vs. granted bytes (internal fragmentation) and the largest allocatable
block vs. total free bytes (external fragmentation).
"""

from __future__ import annotations

from dataclasses import dataclass


class OutOfVirtualSpace(Exception):
    """No free block large enough for the request."""


def round_up_log2(nbytes: int) -> int:
    """Smallest k with 2**k >= nbytes (and >= 1 byte)."""
    if nbytes <= 0:
        raise ValueError("allocation size must be positive")
    return max(nbytes - 1, 0).bit_length()


@dataclass(frozen=True, slots=True)
class Block:
    """An allocated virtual block: ``2**order`` bytes at ``base``."""

    base: int
    order: int

    @property
    def size(self) -> int:
        return 1 << self.order

    @property
    def limit(self) -> int:
        return self.base + self.size


class BuddyAllocator:
    """Classic binary buddy allocator over ``[base, base + 2**order)``.

    ``min_order`` bounds the smallest block handed out (default 0 — a
    single byte, which the architecture permits).
    """

    def __init__(self, base: int, order: int, min_order: int = 0):
        if base % (1 << order):
            raise ValueError("arena base must be aligned on its size")
        if not 0 <= min_order <= order:
            raise ValueError("min_order out of range")
        self.base = base
        self.order = order
        self.min_order = min_order
        # free lists per order; the arena starts as one maximal block
        self._free: dict[int, set[int]] = {k: set() for k in range(min_order, order + 1)}
        self._free[order].add(base)
        self._allocated: dict[int, int] = {}  # base -> order
        # E7 accounting
        self.requested_bytes = 0
        self.granted_bytes = 0

    # -- queries ---------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return 1 << self.order

    @property
    def free_bytes(self) -> int:
        return sum((1 << k) * len(s) for k, s in self._free.items())

    @property
    def used_bytes(self) -> int:
        return self.total_bytes - self.free_bytes

    def largest_free_order(self) -> int | None:
        """Order of the largest free block, or None when full."""
        for k in range(self.order, self.min_order - 1, -1):
            if self._free[k]:
                return k
        return None

    def external_fragmentation(self) -> float:
        """1 − (largest free block / total free bytes).

        0 when all free space is one block; approaches 1 when free
        space is shattered into many small blocks.
        """
        free = self.free_bytes
        if free == 0:
            return 0.0
        largest = self.largest_free_order()
        return 1.0 - (1 << largest) / free

    def internal_fragmentation(self) -> float:
        """Fraction of granted bytes wasted by power-of-two rounding."""
        if self.granted_bytes == 0:
            return 0.0
        return 1.0 - self.requested_bytes / self.granted_bytes

    # -- allocation --------------------------------------------------------

    def allocate(self, nbytes: int) -> Block:
        """Allocate the smallest aligned power-of-two block covering
        ``nbytes`` bytes."""
        want = max(round_up_log2(nbytes), self.min_order)
        if want > self.order:
            raise OutOfVirtualSpace(
                f"request of 2**{want} bytes exceeds arena of 2**{self.order}"
            )
        # find the smallest free order that can satisfy the request
        k = want
        while k <= self.order and not self._free[k]:
            k += 1
        if k > self.order:
            raise OutOfVirtualSpace(
                f"no free block of 2**{want} bytes (external fragmentation: "
                f"{self.external_fragmentation():.2%})"
            )
        base = min(self._free[k])
        self._free[k].remove(base)
        # split down to the wanted order, freeing the upper buddies
        while k > want:
            k -= 1
            self._free[k].add(base + (1 << k))
        self._allocated[base] = want
        self.requested_bytes += nbytes
        self.granted_bytes += 1 << want
        return Block(base, want)

    def free(self, block: Block) -> None:
        """Release a block, coalescing with free buddies as far as
        possible."""
        order = self._allocated.pop(block.base, None)
        if order is None or order != block.order:
            raise ValueError(f"block not allocated: {block}")
        base, k = block.base, block.order
        while k < self.order:
            buddy = base ^ (1 << k)
            if buddy not in self._free[k]:
                break
            self._free[k].remove(buddy)
            base = min(base, buddy)
            k += 1
        self._free[k].add(base)

    def allocated_blocks(self) -> list[Block]:
        """All live blocks, ordered by base address."""
        return [Block(b, o) for b, o in sorted(self._allocated.items())]

    # -- persistence (repro.persist) -----------------------------------

    def capture_state(self) -> dict:
        """Free lists, live blocks and the E7 accounting.  Free bases
        are sorted: ``allocate`` picks ``min()`` of a free list, so sets
        restore order-independently."""
        return {
            "base": self.base,
            "order": self.order,
            "min_order": self.min_order,
            "free": {str(k): sorted(s) for k, s in self._free.items() if s},
            "allocated": sorted(self._allocated.items()),
            "requested_bytes": self.requested_bytes,
            "granted_bytes": self.granted_bytes,
        }

    def restore_state(self, state: dict) -> None:
        if (state["base"], state["order"], state["min_order"]) != (
                self.base, self.order, self.min_order):
            raise ValueError("snapshot arena geometry differs from allocator's")
        self._free = {k: set() for k in range(self.min_order, self.order + 1)}
        for order, bases in state["free"].items():
            self._free[int(order)] = set(bases)
        self._allocated = {int(b): int(o) for b, o in state["allocated"]}
        self.requested_bytes = int(state["requested_bytes"])
        self.granted_bytes = int(state["granted_bytes"])
