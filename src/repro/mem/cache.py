"""The MAP chip's interleaved, virtually-addressed cache (§3, Figure 5).

Four banks, interleaved on low-order line-address bits, so the memory
system accepts up to four requests per cycle — one per bank — matching
the peak issue rate of the four clusters.  The cache is virtually
addressed *and* virtually tagged; translation happens only on a miss,
through the shared TLB.  Requests that miss arbitrate for the single
external memory interface, which handles one request at a time.

The cache here is a *timing* model: data moves functionally through
:class:`~repro.mem.tagged_memory.TaggedMemory` via the page table, while
this module decides how many cycles each access costs.  That split keeps
functional correctness independent of timing parameters, which the
benchmarks vary.

Because guarded pointers carry all protection state, nothing in this
module checks permissions — exactly the paper's point: "encoding all
protection information in a guarded pointer eliminates any need for
table lookup prior to or during cache access."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.word import TaggedWord
from repro.mem.tagged_memory import TaggedMemory
from repro.mem.tlb import TLB

#: the (immutable) word every store returns — shared, not re-allocated
_ZERO_WORD = TaggedWord.zero()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    bank_conflicts: int = 0
    writebacks: int = 0
    external_accesses: int = 0
    flushes: int = 0
    #: translation-line-memo traffic (the data-path fast path; zero
    #: when the memo is disabled)
    xlate_memo_hits: int = 0
    xlate_memo_misses: int = 0
    xlate_memo_invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def as_counters(self) -> dict[str, int | float]:
        """This bank-file's view for :class:`~repro.machine.counters.PerfCounters`."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bank_conflicts": self.bank_conflicts,
            "writebacks": self.writebacks,
            "external_accesses": self.external_accesses,
            "flushes": self.flushes,
            "hit_rate": round(self.hit_rate, 6),
            "xlate_memo_hits": self.xlate_memo_hits,
            "xlate_memo_misses": self.xlate_memo_misses,
            "xlate_memo_invalidations": self.xlate_memo_invalidations,
        }


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one cache access."""

    word: TaggedWord        #: data (untagged zero for stores)
    ready_cycle: int        #: cycle at which the result is available
    hit: bool
    bank: int


class _Bank:
    """One set-associative bank holding virtual line tags."""

    def __init__(self, sets: int, ways: int):
        self.sets = sets
        self.ways = ways
        # per-set LRU list of (virtual line number, dirty)
        self._lines: list[list[tuple[int, bool]]] = [[] for _ in range(sets)]
        #: cycle until which this bank's port is busy
        self.busy_until = 0

    def lookup(self, line: int, index: int) -> bool:
        entry = self._lines[index]
        for i, (tag, dirty) in enumerate(entry):
            if tag == line:
                entry.append(entry.pop(i))  # LRU update
                return True
        return False

    def fill(self, line: int, dirty: bool, index: int) -> tuple[int, bool] | None:
        """Insert a line; returns the evicted (line, dirty) if any."""
        entry = self._lines[index]
        victim = None
        if len(entry) >= self.ways:
            victim = entry.pop(0)
        entry.append((line, dirty))
        return victim

    def mark_dirty(self, line: int, index: int) -> None:
        entry = self._lines[index]
        for i, (tag, _) in enumerate(entry):
            if tag == line:
                entry[i] = (tag, True)
                return

    def invalidate_all(self) -> int:
        count = sum(len(s) for s in self._lines)
        for s in self._lines:
            s.clear()
        return count


class BankedCache:
    """4-bank interleaved virtually-addressed cache over tagged memory.

    Default geometry mirrors the MAP chip: 128 KB total, 4 banks,
    64-byte lines, 2-way associative.  Timing parameters:

    * ``hit_cycles`` — latency of a bank hit.
    * ``external_cycles`` — latency of one external-memory transfer
      (line fill or writeback), serialised through the single port.
    * TLB walk cycles are charged on misses only (virtual tags).
    """

    def __init__(
        self,
        memory: TaggedMemory,
        tlb: TLB,
        total_bytes: int = 128 * 1024,
        banks: int = 4,
        line_bytes: int = 64,
        ways: int = 2,
        hit_cycles: int = 1,
        external_cycles: int = 10,
        xlate_memo: bool = True,
    ):
        if banks <= 0 or banks & (banks - 1):
            raise ValueError("bank count must be a power of two")
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        lines_total = total_bytes // line_bytes
        sets = lines_total // (banks * ways)
        if sets <= 0:
            raise ValueError("cache too small for its geometry")
        self.memory = memory
        self.tlb = tlb
        self.banks = banks
        self.line_bytes = line_bytes
        self.hit_cycles = hit_cycles
        self.external_cycles = external_cycles
        self._banks = [_Bank(sets, ways) for _ in range(banks)]
        #: cycle until which the single external interface is busy
        self._external_busy_until = 0
        self.stats = CacheStats()
        #: trace hub handle (set by the chip); miss fills emit
        #: ``cache.miss_fill`` spans when a sink is attached
        self.obs = None
        self._line_mask = line_bytes - 1
        # shift/mask forms of the geometry for the per-access hot path
        self._line_shift = line_bytes.bit_length() - 1
        self._bank_mask = banks - 1
        self._bank_shift = banks.bit_length() - 1
        # -- the translation line memo (the data-path fast path) ------
        # virtual line base → physical line base, valid because a line
        # never spans a page (lines divide pages) and any translation
        # change must pass through PageTable.unmap, which clears the
        # memo via the same push-invalidation hook the decoded-bundle
        # cache uses.  Purely functional: timing still comes from the
        # TLB model, so cycle counts are identical with it on or off.
        page_bytes = tlb.page_table.page_bytes
        if xlate_memo and page_bytes % line_bytes == 0:
            self._xlate: dict[int, int] | None = {}
        else:
            self._xlate = None
        tlb.page_table.add_invalidation_hook(self._on_unmap)

    # -- geometry ------------------------------------------------------

    def line_of(self, vaddr: int) -> int:
        return vaddr // self.line_bytes

    def bank_of(self, vaddr: int) -> int:
        """Addresses are interleaved across banks on low-order line bits."""
        return self.line_of(vaddr) % self.banks

    # -- functional translation (the translation line memo) ------------

    def translate_functional(self, vaddr: int) -> int:
        """Translate ``vaddr`` for the functional data path.

        With the memo enabled, a line already translated is one
        dictionary probe; a miss walks the page table (so an unmapped
        page faults exactly as before) and primes the line.  The memo
        is cleared on every :meth:`~repro.mem.page_table.PageTable.unmap`
        — revocation, relocation, swap and loader reuse all pass through
        unmap before any remap, so a stale physical line can never be
        served.
        """
        memo = self._xlate
        if memo is None:
            return self.tlb.page_table.walk(vaddr)
        offset = vaddr & self._line_mask
        line_base = vaddr - offset
        physical_base = memo.get(line_base)
        if physical_base is not None:
            self.stats.xlate_memo_hits += 1
            return physical_base + offset
        self.stats.xlate_memo_misses += 1
        physical = self.tlb.page_table.walk(vaddr)
        memo[line_base] = physical - offset
        return physical

    def _on_unmap(self, _virtual_page: int) -> None:
        """Page-table hook: any unmap conservatively clears the memo
        (mirrors the TLB's and decode cache's flush-on-unmap policy —
        unmaps are rare, a stale translation is never acceptable)."""
        memo = self._xlate
        if memo:
            self.stats.xlate_memo_invalidations += len(memo)
            memo.clear()

    # -- the access path ------------------------------------------------

    def access(self, vaddr: int, *, write: bool, now: int,
               value: TaggedWord | None = None) -> AccessResult:
        """Perform one word access at cycle ``now``.

        ``write``, ``now`` and ``value`` are keyword-only: every memory
        port in the simulator (:meth:`repro.machine.chip.MAPChip.access_memory`,
        this method, and
        :meth:`repro.machine.multicomputer.Multicomputer.remote_access`)
        shares the same keyword signature, so call sites read the same
        everywhere and the ports stay swappable.

        Loads return the word; stores require ``value``.  Functional
        data always reaches physical memory through the page table, so
        :class:`~repro.core.exceptions.PageFault` propagates from here
        when the page is unmapped — translation is attempted even on
        cache hits for stores-through, keeping revocation-by-unmap
        (§4.3) airtight in the model.
        """
        line = vaddr >> self._line_shift
        bank_index = line & self._bank_mask
        bank = self._banks[bank_index]
        # standard interleaved indexing: the bank bits do not feed the
        # set index, so consecutive same-bank lines use consecutive sets
        set_index = (line >> self._bank_shift) % bank.sets

        # Bank port arbitration: a busy bank delays the request.
        start = max(now, bank.busy_until)
        if start > now:
            self.stats.bank_conflicts += 1

        was_hit = bank.lookup(line, set_index)
        if was_hit:
            self.stats.hits += 1
            ready = start + self.hit_cycles
            bank.busy_until = ready
            if write:
                bank.mark_dirty(line, set_index)
        else:
            self.stats.misses += 1
            # Miss: translate (TLB), then fetch the line through the
            # single external port.
            _, walk = self.tlb.translate(vaddr)
            request_at = start + self.hit_cycles + walk
            begin = max(request_at, self._external_busy_until)
            done = begin + self.external_cycles
            self.stats.external_accesses += 1
            victim = bank.fill(line, dirty=write, index=set_index)
            if victim is not None and victim[1]:
                # dirty writeback occupies the external port too
                self.stats.writebacks += 1
                self.stats.external_accesses += 1
                done += self.external_cycles
            self._external_busy_until = done
            ready = done
            bank.busy_until = ready
            obs = self.obs
            if obs is not None and obs.spans:
                obs.emit("cache.miss_fill", start, dur=ready - start,
                         vaddr=vaddr, bank=bank_index, write=write)

        # Functional path: move the data now (timing handled above).
        # Translation is attempted even on cache hits for stores-through
        # — via the line memo when enabled — keeping revocation-by-unmap
        # (§4.3) airtight in the model.
        physical = self.translate_functional(vaddr)
        if write:
            if value is None:
                raise ValueError("store requires a value")
            self.memory.store_word(physical, value)
            word = _ZERO_WORD
        else:
            word = self.memory.load_word(physical)
        return AccessResult(word=word, ready_cycle=ready, hit=was_hit, bank=bank_index)

    def flush(self) -> int:
        """Invalidate every line (no functional effect in this model,
        since data is written through).  Returns lines invalidated.
        Guarded pointers never require this; separate-address-space
        baselines flush on every protection-domain switch."""
        self.stats.flushes += 1
        return sum(bank.invalidate_all() for bank in self._banks)

    # -- persistence (repro.persist) -----------------------------------

    def capture_state(self) -> dict:
        """Exact timing state: every bank's per-set LRU line lists (with
        dirty bits, oldest first), the port busy cycles, and statistics.
        The translation line memo is *not* captured — it is a pure
        function of the page table and re-warms after restore without
        changing a single cycle."""
        return {
            "banks": [{"busy_until": bank.busy_until,
                       "sets": [[[line, dirty] for line, dirty in entry]
                                for entry in bank._lines]}
                      for bank in self._banks],
            "external_busy_until": self._external_busy_until,
            "stats": vars(self.stats).copy(),
        }

    def restore_state(self, state: dict) -> None:
        if len(state["banks"]) != len(self._banks):
            raise ValueError("snapshot bank count differs from cache geometry")
        for bank, bank_state in zip(self._banks, state["banks"]):
            if len(bank_state["sets"]) != bank.sets:
                raise ValueError("snapshot set count differs from cache geometry")
            bank.busy_until = int(bank_state["busy_until"])
            bank._lines = [[(int(line), bool(dirty)) for line, dirty in entry]
                           for entry in bank_state["sets"]]
        self._external_busy_until = int(state["external_busy_until"])
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)
        if self._xlate is not None:
            self._xlate.clear()
