"""The MAP chip's interleaved, virtually-addressed cache (§3, Figure 5).

Four banks, interleaved on low-order line-address bits, so the memory
system accepts up to four requests per cycle — one per bank — matching
the peak issue rate of the four clusters.  The cache is virtually
addressed *and* virtually tagged; translation happens only on a miss,
through the shared TLB.  Requests that miss arbitrate for the single
external memory interface, which handles one request at a time.

The cache here is a *timing* model: data moves functionally through
:class:`~repro.mem.tagged_memory.TaggedMemory` via the page table, while
this module decides how many cycles each access costs.  That split keeps
functional correctness independent of timing parameters, which the
benchmarks vary.

Because guarded pointers carry all protection state, nothing in this
module checks permissions — exactly the paper's point: "encoding all
protection information in a guarded pointer eliminates any need for
table lookup prior to or during cache access."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.word import TaggedWord
from repro.mem.tagged_memory import TaggedMemory
from repro.mem.tlb import TLB


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    bank_conflicts: int = 0
    writebacks: int = 0
    external_accesses: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def as_counters(self) -> dict[str, int | float]:
        """This bank-file's view for :class:`~repro.machine.counters.PerfCounters`."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bank_conflicts": self.bank_conflicts,
            "writebacks": self.writebacks,
            "external_accesses": self.external_accesses,
            "flushes": self.flushes,
            "hit_rate": round(self.hit_rate, 6),
        }


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one cache access."""

    word: TaggedWord        #: data (untagged zero for stores)
    ready_cycle: int        #: cycle at which the result is available
    hit: bool
    bank: int


class _Bank:
    """One set-associative bank holding virtual line tags."""

    def __init__(self, sets: int, ways: int):
        self.sets = sets
        self.ways = ways
        # per-set LRU list of (virtual line number, dirty)
        self._lines: list[list[tuple[int, bool]]] = [[] for _ in range(sets)]
        #: cycle until which this bank's port is busy
        self.busy_until = 0

    def lookup(self, line: int, index: int) -> bool:
        entry = self._lines[index]
        for i, (tag, dirty) in enumerate(entry):
            if tag == line:
                entry.append(entry.pop(i))  # LRU update
                return True
        return False

    def fill(self, line: int, dirty: bool, index: int) -> tuple[int, bool] | None:
        """Insert a line; returns the evicted (line, dirty) if any."""
        entry = self._lines[index]
        victim = None
        if len(entry) >= self.ways:
            victim = entry.pop(0)
        entry.append((line, dirty))
        return victim

    def mark_dirty(self, line: int, index: int) -> None:
        entry = self._lines[index]
        for i, (tag, _) in enumerate(entry):
            if tag == line:
                entry[i] = (tag, True)
                return

    def invalidate_all(self) -> int:
        count = sum(len(s) for s in self._lines)
        for s in self._lines:
            s.clear()
        return count


class BankedCache:
    """4-bank interleaved virtually-addressed cache over tagged memory.

    Default geometry mirrors the MAP chip: 128 KB total, 4 banks,
    64-byte lines, 2-way associative.  Timing parameters:

    * ``hit_cycles`` — latency of a bank hit.
    * ``external_cycles`` — latency of one external-memory transfer
      (line fill or writeback), serialised through the single port.
    * TLB walk cycles are charged on misses only (virtual tags).
    """

    def __init__(
        self,
        memory: TaggedMemory,
        tlb: TLB,
        total_bytes: int = 128 * 1024,
        banks: int = 4,
        line_bytes: int = 64,
        ways: int = 2,
        hit_cycles: int = 1,
        external_cycles: int = 10,
    ):
        if banks <= 0 or banks & (banks - 1):
            raise ValueError("bank count must be a power of two")
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        lines_total = total_bytes // line_bytes
        sets = lines_total // (banks * ways)
        if sets <= 0:
            raise ValueError("cache too small for its geometry")
        self.memory = memory
        self.tlb = tlb
        self.banks = banks
        self.line_bytes = line_bytes
        self.hit_cycles = hit_cycles
        self.external_cycles = external_cycles
        self._banks = [_Bank(sets, ways) for _ in range(banks)]
        #: cycle until which the single external interface is busy
        self._external_busy_until = 0
        self.stats = CacheStats()

    # -- geometry ------------------------------------------------------

    def line_of(self, vaddr: int) -> int:
        return vaddr // self.line_bytes

    def bank_of(self, vaddr: int) -> int:
        """Addresses are interleaved across banks on low-order line bits."""
        return self.line_of(vaddr) % self.banks

    # -- the access path ------------------------------------------------

    def access(self, vaddr: int, *, write: bool, now: int,
               value: TaggedWord | None = None) -> AccessResult:
        """Perform one word access at cycle ``now``.

        ``write``, ``now`` and ``value`` are keyword-only: every memory
        port in the simulator (:meth:`repro.machine.chip.MAPChip.access_memory`,
        this method, and
        :meth:`repro.machine.multicomputer.Multicomputer.remote_access`)
        shares the same keyword signature, so call sites read the same
        everywhere and the ports stay swappable.

        Loads return the word; stores require ``value``.  Functional
        data always reaches physical memory through the page table, so
        :class:`~repro.core.exceptions.PageFault` propagates from here
        when the page is unmapped — translation is attempted even on
        cache hits for stores-through, keeping revocation-by-unmap
        (§4.3) airtight in the model.
        """
        bank_index = self.bank_of(vaddr)
        bank = self._banks[bank_index]
        line = self.line_of(vaddr)
        # standard interleaved indexing: the bank bits do not feed the
        # set index, so consecutive same-bank lines use consecutive sets
        set_index = (line // self.banks) % bank.sets

        # Bank port arbitration: a busy bank delays the request.
        start = max(now, bank.busy_until)
        if start > now:
            self.stats.bank_conflicts += 1

        was_hit = bank.lookup(line, set_index)
        if was_hit:
            self.stats.hits += 1
            ready = start + self.hit_cycles
            bank.busy_until = ready
            if write:
                bank.mark_dirty(line, set_index)
        else:
            self.stats.misses += 1
            # Miss: translate (TLB), then fetch the line through the
            # single external port.
            _, walk = self.tlb.translate(vaddr)
            request_at = start + self.hit_cycles + walk
            begin = max(request_at, self._external_busy_until)
            done = begin + self.external_cycles
            self.stats.external_accesses += 1
            victim = bank.fill(line, dirty=write, index=set_index)
            if victim is not None and victim[1]:
                # dirty writeback occupies the external port too
                self.stats.writebacks += 1
                self.stats.external_accesses += 1
                done += self.external_cycles
            self._external_busy_until = done
            ready = done
            bank.busy_until = ready

        # Functional path: move the data now (timing handled above).
        physical = self.tlb.page_table.walk(vaddr)
        if write:
            if value is None:
                raise ValueError("store requires a value")
            self.memory.store_word(physical, value)
            word = TaggedWord.zero()
        else:
            word = self.memory.load_word(physical)
        return AccessResult(word=word, ready_cycle=ready, hit=was_hit, bank=bank_index)

    def flush(self) -> int:
        """Invalidate every line (no functional effect in this model,
        since data is written through).  Returns lines invalidated.
        Guarded pointers never require this; separate-address-space
        baselines flush on every protection-domain switch."""
        self.stats.flushes += 1
        return sum(bank.invalidate_all() for bank in self._banks)
