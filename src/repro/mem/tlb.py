"""Translation lookaside buffer.

Under guarded pointers the TLB is consulted only on cache misses (the
cache is virtually addressed and tagged, §3), is shared by every
process (single address space — no ASID field, no flush on context
switch), and holds translations only, not protection bits.

The TLB is modelled as fully-associative with LRU replacement, which is
what small hardware TLBs of the era approximated.  Statistics feed the
context-switch and translation-cost experiments (E9, E10).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.mem.page_table import PageTable


@dataclass
class TLBStats:
    hits: int = 0
    misses: int = 0
    flushes: int = 0
    walk_cycles: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def as_counters(self) -> dict[str, int | float]:
        """This TLB's view for :class:`~repro.machine.counters.PerfCounters`.
        ``walks`` equals ``misses``: every miss walks the page table."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "walks": self.misses,
            "walk_cycles": self.walk_cycles,
            "flushes": self.flushes,
            "hit_rate": round(self.hit_rate, 6),
        }


@dataclass
class TLB:
    """LRU translation cache in front of a :class:`PageTable`."""

    page_table: PageTable
    entries: int = 64
    walk_cycles: int = 20
    stats: TLBStats = field(default_factory=TLBStats)

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self._cache: OrderedDict[int, int] = OrderedDict()
        self._generation = self.page_table.generation
        #: trace hub handle (set by the chip); misses emit
        #: ``tlb.miss_walk`` spans when a sink is attached
        self.obs = None
        # Push invalidation: clear synchronously on every unmap, like
        # the decoded-bundle cache and the data cache's translation
        # line memo, so a revoked translation is gone the moment the
        # unmap returns — not at the next generation poll.
        self.page_table.add_invalidation_hook(self._on_unmap)

    def _on_unmap(self, _virtual_page: int) -> None:
        self._cache.clear()
        self._generation = self.page_table.generation

    def _check_generation(self) -> None:
        # Backstop for page tables mutated before this TLB registered
        # its hook (the push hook normally keeps generations in sync).
        # (Real hardware would shoot down individual entries; a full
        # flush is conservative and simpler, and unmaps are rare.)
        if self._generation != self.page_table.generation:
            self._cache.clear()
            self._generation = self.page_table.generation

    def translate(self, vaddr: int) -> tuple[int, int]:
        """Translate a virtual byte address.

        Returns ``(physical_address, cycles)`` where ``cycles`` is 0 on
        a hit (lookup overlaps the cache-miss handling) and
        ``walk_cycles`` on a miss.  Raises
        :class:`~repro.core.exceptions.PageFault` through the walk.
        """
        self._check_generation()
        page = self.page_table.page_of(vaddr)
        frame = self._cache.get(page)
        if frame is not None:
            self._cache.move_to_end(page)
            self.stats.hits += 1
            return frame + self.page_table.page_offset(vaddr), 0
        self.stats.misses += 1
        self.stats.walk_cycles += self.walk_cycles
        obs = self.obs
        if obs is not None and obs.spans:
            obs.emit("tlb.miss_walk", obs.now(), dur=self.walk_cycles,
                     vaddr=vaddr)
        physical = self.page_table.walk(vaddr)
        frame = physical - self.page_table.page_offset(vaddr)
        self._cache[page] = frame
        if len(self._cache) > self.entries:
            self._cache.popitem(last=False)
        return physical, self.walk_cycles

    def flush(self) -> None:
        """Discard all cached translations.  Guarded pointers never need
        this on a context switch; baselines without ASIDs do."""
        self._cache.clear()
        self.stats.flushes += 1

    # -- persistence (repro.persist) -----------------------------------

    def capture_state(self) -> dict:
        """Entries in LRU order (oldest first) plus statistics.  A TLB
        hit costs 0 cycles and a miss ``walk_cycles``, so the resident
        set — and its eviction order — must round-trip exactly for
        restored runs to stay cycle-identical."""
        return {"entries": list(self._cache.items()),
                "stats": vars(self.stats).copy()}

    def restore_state(self, state: dict) -> None:
        self._cache = OrderedDict((int(p), int(f))
                                  for p, f in state["entries"])
        self._generation = self.page_table.generation
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)

    @property
    def occupancy(self) -> int:
        return len(self._cache)
