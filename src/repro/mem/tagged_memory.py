"""Tagged physical memory.

Every 64-bit word of M-Machine memory carries one extra tag bit (§4.1),
so a pointer stored to memory remains a pointer when reloaded, and an
integer can never masquerade as one.  Storage is word-granular: the
architecture is byte-addressed but loads and stores move whole words,
and word addresses must be 8-byte aligned (the MAP's memory units).

Storage is *flat*, like the DRAM it models: one word array plus a tag
bitmap, both sized at construction.  A load is a single array index and
a store a single array write — the simulator's data path never probes a
sparse structure.  Unwritten words read as untagged zero (zero-filled
DRAM), and :meth:`words_in_use` still reports only words holding a
nonzero value or a tag, so footprint accounting matches the historical
sparse semantics exactly.

The class also keeps the bit-accounting used by experiment E6: the tag
adds exactly 1 bit per 64, a 1.5625 % capacity overhead.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.core.constants import WORD_BYTES
from repro.core.exceptions import GuardedPointerFault
from repro.core.word import TaggedWord

#: the shared zero-fill word every unwritten cell aliases
_ZERO = TaggedWord(0, tag=False)

#: bit positions set in each possible tag-bitmap byte, precomputed so
#: :meth:`TaggedMemory.scan_tagged` touches one table entry per byte
_BYTE_BITS = tuple(
    tuple(bit for bit in range(8) if value >> bit & 1) for value in range(256)
)


class AlignmentFault(GuardedPointerFault):
    """A word access used a non-word-aligned byte address.

    Part of the architectural fault hierarchy: an unaligned address is
    something a *program* produced (LEA arithmetic lands anywhere), so
    the machine must deliver it as a catchable fault like any other
    guarded-pointer check — not crash the simulator.
    """


class TaggedMemory:
    """Word-addressable physical memory with a tag bit per word.

    Words live in a flat array; unwritten words read as untagged zero,
    like zero-filled DRAM.  Addresses given to :meth:`load_word` /
    :meth:`store_word` are *byte* addresses and must be word-aligned.

    Memory-mapped devices may claim physical ranges with
    :meth:`attach_device`; accesses there go to the device instead of
    DRAM (the paper's I/O story: a device is just a physical range some
    pointer names, §2.3).
    """

    def __init__(self, size_bytes: int):
        if size_bytes <= 0 or size_bytes % WORD_BYTES:
            raise ValueError(f"memory size must be a positive multiple of {WORD_BYTES}")
        self.size_bytes = size_bytes
        words = size_bytes // WORD_BYTES
        #: the word array — every cell starts as the shared zero word
        self._data: list[TaggedWord] = [_ZERO] * words
        #: one bit per word, set when the word's tag bit is set
        self._tag_bits = bytearray((words + 7) // 8)
        #: words holding a nonzero value or a tag (words_in_use)
        self._in_use = 0
        #: (start, end, device) MMIO ranges, kept sorted by start
        self._devices: list[tuple[int, int, object]] = []
        #: the sorted range starts, for bisect in :meth:`_device_at`
        self._device_starts: list[int] = []
        # -- dirty-page tracking (repro.persist delta snapshots) -------
        #: word-index shift mapping a word index to its physical page,
        #: or None when tracking is off (the default)
        self._dirty_shift: int | None = None
        #: physical pages written since the last drain
        self._dirty_pages: set[int] | None = None

    # -- memory-mapped I/O ----------------------------------------------

    def attach_device(self, start: int, length: int, device) -> None:
        """Claim ``[start, start+length)`` for ``device``, which must
        provide ``load(offset) -> TaggedWord`` and
        ``store(offset, word)`` (offsets are word-aligned bytes)."""
        if start % WORD_BYTES or length % WORD_BYTES or length <= 0:
            raise ValueError("device range must be word-aligned and non-empty")
        end = start + length
        if end > self.size_bytes:
            raise ValueError("device range outside physical memory")
        for s, e, _ in self._devices:
            if start < e and s < end:
                raise ValueError("device ranges overlap")
        index = bisect_right(self._device_starts, start)
        self._devices.insert(index, (start, end, device))
        self._device_starts.insert(index, start)

    def _device_at(self, byte_address: int):
        """The (start, device) owning ``byte_address``, or None.

        The common machine has no devices at all, so the empty case is a
        single truth test; with devices attached, the sorted range list
        is probed by bisection instead of a linear scan.
        """
        if not self._devices:
            return None
        index = bisect_right(self._device_starts, byte_address) - 1
        if index < 0:
            return None
        start, end, device = self._devices[index]
        if byte_address < end:
            return start, device
        return None

    # -- capacity accounting (E6) -------------------------------------

    @property
    def size_words(self) -> int:
        return self.size_bytes // WORD_BYTES

    @property
    def data_bits(self) -> int:
        """Bits of untagged payload this memory holds."""
        return self.size_words * 64

    @property
    def tag_bits(self) -> int:
        """Bits spent on tags."""
        return self.size_words

    @property
    def tag_overhead(self) -> float:
        """Tag bits as a fraction of data bits (the paper's ~1.5 %)."""
        return self.tag_bits / self.data_bits

    # -- access --------------------------------------------------------

    def _word_index(self, byte_address: int) -> int:
        if byte_address % WORD_BYTES:
            raise AlignmentFault(f"unaligned word access at {byte_address:#x}")
        if not 0 <= byte_address < self.size_bytes:
            raise IndexError(f"physical address out of range: {byte_address:#x}")
        return byte_address // WORD_BYTES

    def load_word(self, byte_address: int) -> TaggedWord:
        """Read the tagged word at a word-aligned byte address."""
        index = self._word_index(byte_address)
        if self._devices:
            hit = self._device_at(byte_address)
            if hit is not None:
                start, device = hit
                return device.load(byte_address - start)
        return self._data[index]

    def store_word(self, byte_address: int, word: TaggedWord) -> None:
        """Write a tagged word at a word-aligned byte address.

        The tag travels with the word: storing a pointer keeps it a
        pointer.  User-mode software can only produce tagged words via
        the checked pointer operations, so no check is needed here.
        """
        index = self._word_index(byte_address)
        if self._devices:
            hit = self._device_at(byte_address)
            if hit is not None:
                start, device = hit
                device.store(byte_address - start, word)
                return
        old = self._data[index]
        self._data[index] = word
        if self._dirty_pages is not None:
            self._dirty_pages.add(index >> self._dirty_shift)
        if word.tag != old.tag:
            if word.tag:
                self._tag_bits[index >> 3] |= 1 << (index & 7)
            else:
                self._tag_bits[index >> 3] &= ~(1 << (index & 7))
        self._in_use += ((word.value != 0 or word.tag)
                         - (old.value != 0 or old.tag))

    def words_in_use(self) -> int:
        """Number of words holding a nonzero value or a tag (for tests
        and memory-footprint reporting)."""
        return self._in_use

    def scan_tagged(self, start: int = 0, length: int | None = None):
        """Yield ``(byte_address, word)`` for every tagged word in the
        given byte range, in ascending address order.  This is the
        hardware assist the paper notes for garbage collection: pointers
        are self-identifying (§2.2, §4.3).  A linear sweep of the tag
        bitmap — eight words per inspected byte, no sorting.
        """
        end_byte = self.size_bytes if length is None else min(start + length, self.size_bytes)
        first = (start + WORD_BYTES - 1) // WORD_BYTES
        last = end_byte // WORD_BYTES
        if first >= last:
            return
        data = self._data
        bits = self._tag_bits
        for byte_index in range(first >> 3, ((last - 1) >> 3) + 1):
            value = bits[byte_index]
            if not value:
                continue
            base = byte_index << 3
            for bit in _BYTE_BITS[value]:
                index = base + bit
                if first <= index < last:
                    yield index * WORD_BYTES, data[index]

    # -- persistence (repro.persist) -----------------------------------

    def dump_words(self) -> list[tuple[int, int, bool]]:
        """Sparse image of every word in use: ``(word_index, value,
        tag)`` triples in ascending index order.  Unlisted words are the
        untagged zero fill, so the dump plus :attr:`size_bytes` is a
        complete description of DRAM contents."""
        return [(i, w.value, w.tag) for i, w in enumerate(self._data)
                if w.value or w.tag]

    def load_words(self, words: list) -> None:
        """Replace the entire contents with a :meth:`dump_words` image
        (everything not listed becomes untagged zero)."""
        size = len(self._data)
        self._data = [_ZERO] * size
        self._tag_bits = bytearray((size + 7) // 8)
        self._in_use = 0
        data = self._data
        bits = self._tag_bits
        in_use = 0
        for index, value, tag in words:
            if not 0 <= index < size:
                raise IndexError(f"word index out of range: {index}")
            data[index] = TaggedWord(value, tag=bool(tag))
            if tag:
                bits[index >> 3] |= 1 << (index & 7)
            if value or tag:
                in_use += 1
        self._in_use = in_use
        if self._dirty_pages is not None:
            # a wholesale reload dirties every loaded page
            for index, _value, _tag in words:
                self._dirty_pages.add(index >> self._dirty_shift)

    def enable_dirty_tracking(self, page_bytes: int) -> None:
        """Record which physical pages :meth:`store_word` touches, for
        O(dirty pages) delta snapshots (:mod:`repro.persist.delta`).
        Idempotent; ``page_bytes`` must be a power of two."""
        page_words = page_bytes // WORD_BYTES
        if page_words <= 0 or page_words & (page_words - 1):
            raise ValueError("page size must be a power-of-two word count")
        self._dirty_shift = page_words.bit_length() - 1
        if self._dirty_pages is None:
            self._dirty_pages = set()

    def drain_dirty_pages(self) -> set[int]:
        """Return and clear the set of pages written since the last
        drain (physical page indices).  Requires tracking enabled."""
        if self._dirty_pages is None:
            raise ValueError("dirty tracking is not enabled")
        dirty, self._dirty_pages = self._dirty_pages, set()
        return dirty

    def page_words(self, page_index: int, page_bytes: int
                   ) -> list[tuple[int, bool]]:
        """All ``(value, tag)`` pairs of one physical page, in order —
        the payload of one delta-snapshot page record."""
        first = page_index * (page_bytes // WORD_BYTES)
        return [(w.value, w.tag)
                for w in self._data[first:first + page_bytes // WORD_BYTES]]
