"""Tagged physical memory.

Every 64-bit word of M-Machine memory carries one extra tag bit (§4.1),
so a pointer stored to memory remains a pointer when reloaded, and an
integer can never masquerade as one.  Storage is word-granular: the
architecture is byte-addressed but loads and stores move whole words,
and word addresses must be 8-byte aligned (the MAP's memory units).

The class also keeps the bit-accounting used by experiment E6: the tag
adds exactly 1 bit per 64, a 1.5625 % capacity overhead.
"""

from __future__ import annotations

from repro.core.constants import WORD_BYTES
from repro.core.exceptions import GuardedPointerFault
from repro.core.word import TaggedWord


class AlignmentFault(GuardedPointerFault):
    """A word access used a non-word-aligned byte address.

    Part of the architectural fault hierarchy: an unaligned address is
    something a *program* produced (LEA arithmetic lands anywhere), so
    the machine must deliver it as a catchable fault like any other
    guarded-pointer check — not crash the simulator.
    """


class TaggedMemory:
    """Word-addressable physical memory with a tag bit per word.

    Words are stored sparsely; unwritten words read as untagged zero,
    like zero-filled DRAM.  Addresses given to :meth:`load_word` /
    :meth:`store_word` are *byte* addresses and must be word-aligned.

    Memory-mapped devices may claim physical ranges with
    :meth:`attach_device`; accesses there go to the device instead of
    DRAM (the paper's I/O story: a device is just a physical range some
    pointer names, §2.3).
    """

    def __init__(self, size_bytes: int):
        if size_bytes <= 0 or size_bytes % WORD_BYTES:
            raise ValueError(f"memory size must be a positive multiple of {WORD_BYTES}")
        self.size_bytes = size_bytes
        self._words: dict[int, TaggedWord] = {}
        #: (start, end, device) MMIO ranges
        self._devices: list[tuple[int, int, object]] = []

    # -- memory-mapped I/O ----------------------------------------------

    def attach_device(self, start: int, length: int, device) -> None:
        """Claim ``[start, start+length)`` for ``device``, which must
        provide ``load(offset) -> TaggedWord`` and
        ``store(offset, word)`` (offsets are word-aligned bytes)."""
        if start % WORD_BYTES or length % WORD_BYTES or length <= 0:
            raise ValueError("device range must be word-aligned and non-empty")
        end = start + length
        if end > self.size_bytes:
            raise ValueError("device range outside physical memory")
        for s, e, _ in self._devices:
            if start < e and s < end:
                raise ValueError("device ranges overlap")
        self._devices.append((start, end, device))

    def _device_at(self, byte_address: int):
        for start, end, device in self._devices:
            if start <= byte_address < end:
                return start, device
        return None

    # -- capacity accounting (E6) -------------------------------------

    @property
    def size_words(self) -> int:
        return self.size_bytes // WORD_BYTES

    @property
    def data_bits(self) -> int:
        """Bits of untagged payload this memory holds."""
        return self.size_words * 64

    @property
    def tag_bits(self) -> int:
        """Bits spent on tags."""
        return self.size_words

    @property
    def tag_overhead(self) -> float:
        """Tag bits as a fraction of data bits (the paper's ~1.5 %)."""
        return self.tag_bits / self.data_bits

    # -- access --------------------------------------------------------

    def _word_index(self, byte_address: int) -> int:
        if byte_address % WORD_BYTES:
            raise AlignmentFault(f"unaligned word access at {byte_address:#x}")
        if not 0 <= byte_address < self.size_bytes:
            raise IndexError(f"physical address out of range: {byte_address:#x}")
        return byte_address // WORD_BYTES

    def load_word(self, byte_address: int) -> TaggedWord:
        """Read the tagged word at a word-aligned byte address."""
        index = self._word_index(byte_address)
        hit = self._device_at(byte_address)
        if hit is not None:
            start, device = hit
            return device.load(byte_address - start)
        return self._words.get(index, TaggedWord.zero())

    def store_word(self, byte_address: int, word: TaggedWord) -> None:
        """Write a tagged word at a word-aligned byte address.

        The tag travels with the word: storing a pointer keeps it a
        pointer.  User-mode software can only produce tagged words via
        the checked pointer operations, so no check is needed here.
        """
        index = self._word_index(byte_address)
        hit = self._device_at(byte_address)
        if hit is not None:
            start, device = hit
            device.store(byte_address - start, word)
            return
        if word.value == 0 and not word.tag:
            self._words.pop(index, None)
        else:
            self._words[index] = word

    def words_in_use(self) -> int:
        """Number of words holding a nonzero value or a tag (for tests
        and memory-footprint reporting)."""
        return len(self._words)

    def scan_tagged(self, start: int = 0, length: int | None = None):
        """Yield ``(byte_address, word)`` for every tagged word in the
        given byte range.  This is the hardware assist the paper notes
        for garbage collection: pointers are self-identifying (§2.2,
        §4.3)."""
        end_byte = self.size_bytes if length is None else min(start + length, self.size_bytes)
        first = (start + WORD_BYTES - 1) // WORD_BYTES
        last = end_byte // WORD_BYTES
        for index, word in sorted(self._words.items()):
            if first <= index < last and word.tag:
                yield index * WORD_BYTES, word
