"""Physical page-frame allocator.

Physical memory is allocated page-by-page, independent of segmentation
(§4.2) — this is why power-of-two *virtual* segments waste little
physical memory: only the pages a segment actually touches are backed
by frames.
"""

from __future__ import annotations


class OutOfPhysicalMemory(Exception):
    """No free page frames remain."""


class FrameAllocator:
    """Free-list allocator over a fixed pool of page frames."""

    def __init__(self, memory_bytes: int, page_bytes: int):
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ValueError("page size must be a power of two")
        if memory_bytes % page_bytes:
            raise ValueError("memory size must be a multiple of the page size")
        self.page_bytes = page_bytes
        self.total_frames = memory_bytes // page_bytes
        self._free = list(range(self.total_frames - 1, -1, -1))
        self._allocated: set[int] = set()

    @property
    def free_frames(self) -> int:
        return len(self._free)

    @property
    def used_frames(self) -> int:
        return len(self._allocated)

    def allocate(self) -> int:
        """Return the physical byte address of a free frame."""
        if not self._free:
            raise OutOfPhysicalMemory(
                f"all {self.total_frames} frames are in use"
            )
        frame = self._free.pop()
        self._allocated.add(frame)
        return frame * self.page_bytes

    def release(self, frame_address: int) -> None:
        """Return a frame (by byte address) to the free pool."""
        if frame_address % self.page_bytes:
            raise ValueError(f"not a frame address: {frame_address:#x}")
        frame = frame_address // self.page_bytes
        if frame not in self._allocated:
            raise ValueError(f"frame {frame} is not allocated")
        self._allocated.remove(frame)
        self._free.append(frame)

    # -- persistence (repro.persist) -----------------------------------

    def capture_state(self) -> dict:
        """Exact allocator state.  The free list is a *stack* (allocate
        pops from the end), so its order decides which frame backs the
        next demand-mapped page — it must round-trip exactly for
        deterministic replay."""
        return {"free": list(self._free), "allocated": sorted(self._allocated)}

    def restore_state(self, state: dict) -> None:
        self._free = list(state["free"])
        self._allocated = set(state["allocated"])
