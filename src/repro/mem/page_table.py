"""The single global page table.

Because protection lives in guarded pointers, *translation* is the page
table's only job, and one table serves every process on the node (§2,
§5.1): there is nothing per-process to swap on a context switch.

Unmapping a page is the architectural hook for revocation and
relocation (§4.3): every subsequent access through any pointer into the
page raises :class:`~repro.core.exceptions.PageFault`, and system
software repairs or rejects the access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.exceptions import PageFault
from repro.mem.physical import FrameAllocator


@dataclass(frozen=True, slots=True)
class Translation:
    """A virtual→physical page mapping."""

    virtual_page: int
    physical_address: int


class PageTable:
    """Maps virtual page numbers to physical frame addresses.

    No permission bits and no address-space identifier: both are made
    unnecessary by guarded pointers.  The table is software-walked; the
    TLB caches recent translations.
    """

    def __init__(self, page_bytes: int, frames: FrameAllocator | None = None):
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ValueError("page size must be a power of two")
        if frames is not None and frames.page_bytes != page_bytes:
            raise ValueError("frame allocator page size differs from page table's")
        self.page_bytes = page_bytes
        self._frames = frames
        self._map: dict[int, int] = {}
        #: generation counter bumped on every unmap, letting TLBs detect
        #: staleness cheaply (see :class:`repro.mem.tlb.TLB`).
        self.generation = 0
        #: push-style invalidation: each hook is called with the virtual
        #: page number on every unmap.  Structures that cache anything
        #: derived from a translation — the chip's decoded-bundle cache
        #: above all — register here so revocation-by-unmap (§4.3)
        #: reaches them synchronously, not at the next generation check.
        self._invalidation_hooks: list[Callable[[int], None]] = []

    # -- geometry ------------------------------------------------------

    def page_of(self, vaddr: int) -> int:
        return vaddr // self.page_bytes

    def page_offset(self, vaddr: int) -> int:
        return vaddr % self.page_bytes

    # -- mapping management (privileged software only) -----------------

    def map(self, virtual_page: int, physical_address: int | None = None) -> Translation:
        """Install a translation.  With no explicit frame, one is taken
        from the frame allocator (demand allocation)."""
        if virtual_page in self._map:
            raise ValueError(f"virtual page {virtual_page:#x} already mapped")
        if physical_address is None:
            if self._frames is None:
                raise ValueError("no frame allocator attached")
            physical_address = self._frames.allocate()
        if physical_address % self.page_bytes:
            raise ValueError(f"frame not page-aligned: {physical_address:#x}")
        self._map[virtual_page] = physical_address
        return Translation(virtual_page, physical_address)

    def unmap(self, virtual_page: int, release_frame: bool = True) -> None:
        """Remove a translation — the revocation primitive of §4.3."""
        try:
            frame = self._map.pop(virtual_page)
        except KeyError:
            raise ValueError(f"virtual page {virtual_page:#x} is not mapped") from None
        self.generation += 1
        for hook in self._invalidation_hooks:
            hook(virtual_page)
        if release_frame and self._frames is not None:
            self._frames.release(frame)

    def add_invalidation_hook(self, hook: Callable[[int], None]) -> None:
        """Call ``hook(virtual_page)`` on every subsequent unmap."""
        self._invalidation_hooks.append(hook)

    def is_mapped(self, virtual_page: int) -> bool:
        return virtual_page in self._map

    @property
    def mapped_pages(self) -> int:
        return len(self._map)

    # -- the walk --------------------------------------------------------

    def walk(self, vaddr: int) -> int:
        """Translate a virtual byte address to a physical byte address,
        raising :class:`PageFault` when the page is unmapped."""
        page = self.page_of(vaddr)
        try:
            frame = self._map[page]
        except KeyError:
            raise PageFault(vaddr) from None
        return frame + self.page_offset(vaddr)

    # -- persistence (repro.persist) -----------------------------------

    def capture_state(self) -> dict:
        """Every translation plus the staleness generation."""
        return {"map": sorted(self._map.items()),
                "generation": self.generation}

    def restore_state(self, state: dict) -> None:
        """Replace all translations **without** firing invalidation
        hooks: restore happens into a machine whose derived caches
        (TLB, decode cache, translation memos) are reset by their own
        restore paths, so pushing invalidations here would double-count
        and clobber freshly restored TLB contents."""
        self._map = {int(page): int(frame) for page, frame in state["map"]}
        self.generation = int(state["generation"])

    def ensure_mapped(self, vaddr: int, length: int) -> list[Translation]:
        """Demand-map every page overlapping ``[vaddr, vaddr+length)``;
        returns the translations that were newly installed."""
        installed = []
        first = self.page_of(vaddr)
        last = self.page_of(vaddr + max(length, 1) - 1)
        for page in range(first, last + 1):
            if page not in self._map:
                installed.append(self.map(page))
        return installed
