"""Memory substrate: tagged memory, paging, TLB, the MAP's 4-bank
interleaved virtual cache, and the buddy allocator for power-of-two
segments."""

from repro.mem.allocator import Block, BuddyAllocator, OutOfVirtualSpace, round_up_log2
from repro.mem.cache import AccessResult, BankedCache, CacheStats
from repro.mem.page_table import PageTable, Translation
from repro.mem.physical import FrameAllocator, OutOfPhysicalMemory
from repro.mem.tagged_memory import AlignmentFault, TaggedMemory
from repro.mem.tlb import TLB, TLBStats

__all__ = [
    "Block",
    "BuddyAllocator",
    "OutOfVirtualSpace",
    "round_up_log2",
    "AccessResult",
    "BankedCache",
    "CacheStats",
    "PageTable",
    "Translation",
    "FrameAllocator",
    "OutOfPhysicalMemory",
    "AlignmentFault",
    "TaggedMemory",
    "TLB",
    "TLBStats",
]
