"""Fault hierarchy for guarded-pointer hardware.

Every architectural check the paper describes raises a distinct fault so
tests and the machine's event plumbing can tell them apart:

* using a non-pointer where a pointer is required  → :class:`TagFault`
* using a pointer whose permission forbids the op  → :class:`PermissionFault`
* deriving a pointer outside its segment           → :class:`BoundsFault`
* executing a privileged op in user mode           → :class:`PrivilegeFault`
* referencing an unmapped page                     → :class:`PageFault`
"""

from __future__ import annotations


class GuardedPointerFault(Exception):
    """Base class for all architectural faults raised by pointer checks."""


class TagFault(GuardedPointerFault):
    """A word without the pointer tag bit was used where a guarded
    pointer is required (e.g. as the address of a load)."""


class PermissionFault(GuardedPointerFault):
    """A pointer's permission field forbids the attempted operation,
    e.g. storing through a read-only pointer, loading through an enter
    pointer, or jumping through a data pointer."""


class BoundsFault(GuardedPointerFault):
    """Pointer arithmetic produced an address outside the segment of the
    source pointer (the masked comparator of Figure 2 fired)."""


class PrivilegeFault(GuardedPointerFault):
    """A privileged operation (SETPTR, or a privileged instruction) was
    attempted without an execute-privileged instruction pointer."""


class RestrictFault(GuardedPointerFault):
    """RESTRICT was asked to substitute a permission that is not a
    strict subset of the source pointer's permission."""


class SubsegFault(GuardedPointerFault):
    """SUBSEG was asked for a segment that is not contained in the
    source pointer's segment."""


class PageFault(GuardedPointerFault):
    """The referenced virtual page has no translation.  Raised by the
    memory system, not by pointer checks; it is the hook §4.3 uses for
    revocation and relocation."""

    def __init__(self, vaddr: int, message: str = ""):
        self.vaddr = vaddr
        super().__init__(message or f"page fault at virtual address {vaddr:#x}")


class EncodingFault(GuardedPointerFault):
    """A pointer could not be encoded because a field is out of range
    (e.g. an address wider than 54 bits or a misaligned segment)."""


class FetchPending(Exception):
    """Not a fault: an instruction fetch needs code words homed on
    another node and the windowed mesh engine has requested them.  The
    cluster blocks the thread until ``resume_at`` (the next window
    barrier, when the words arrive in the chip's remote-code mirror)
    and retries the fetch.  Deliberately *not* a
    :class:`GuardedPointerFault` — nothing architectural went wrong."""

    def __init__(self, resume_at: int, vaddr: int):
        self.resume_at = resume_at
        self.vaddr = vaddr
        super().__init__(f"remote code words at {vaddr:#x} requested; "
                         f"resume at cycle {resume_at}")
