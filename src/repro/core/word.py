"""Tagged machine words.

The M-Machine extends every 64-bit word — in registers and in memory —
with one tag bit that marks the word as a guarded pointer.  User code
cannot set the tag; only the privileged SETPTR operation can (§2.2).

:class:`TaggedWord` is immutable.  Arithmetic on words is done on plain
ints masked to 64 bits; the helpers here centralise that masking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import WORD_MASK


def to_u64(value: int) -> int:
    """Truncate an int to an unsigned 64-bit value (two's complement)."""
    return value & WORD_MASK


def to_s64(value: int) -> int:
    """Interpret a 64-bit value as a signed two's-complement integer."""
    value &= WORD_MASK
    if value >= 1 << 63:
        value -= 1 << 64
    return value


@dataclass(frozen=True, slots=True)
class TaggedWord:
    """A 64-bit value plus the pointer tag bit.

    ``tag=True`` marks the word as a guarded pointer.  Equality and
    hashing include the tag, so a forged integer with pointer-shaped
    bits never compares equal to the pointer itself.
    """

    value: int
    tag: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.value <= WORD_MASK:
            object.__setattr__(self, "value", to_u64(self.value))

    @staticmethod
    def integer(value: int) -> "TaggedWord":
        """Build an untagged (integer) word from any int, truncating to
        64 bits."""
        return TaggedWord(to_u64(value), tag=False)

    @staticmethod
    def zero() -> "TaggedWord":
        """The all-zero untagged word — the reset value of registers and
        freshly allocated memory."""
        return TaggedWord(0, tag=False)

    @property
    def is_pointer(self) -> bool:
        """True when the tag bit is set (the ISPOINTER predicate)."""
        return self.tag

    def untagged(self) -> "TaggedWord":
        """The same bits with the tag cleared.

        This is what happens when a pointer is used as input to a
        non-pointer operation (§2.2): it silently becomes an integer
        with the same bit fields.
        """
        if not self.tag:
            return self
        return TaggedWord(self.value, tag=False)

    def as_signed(self) -> int:
        """The 64-bit value as a signed integer."""
        return to_s64(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        marker = "ptr" if self.tag else "int"
        return f"TaggedWord({marker}:{self.value:#018x})"
