"""Bit-field layout of a guarded pointer (paper, Figure 1).

A guarded pointer is a 64-bit word plus one out-of-band tag bit::

    tag | perm[63:60] | seglen[59:54] | address[53:0]

* ``perm``    — 4 bits naming the operations permitted on the segment.
* ``seglen``  — 6 bits holding log2 of the segment length in bytes.
* ``address`` — 54 bits naming a byte in the single global address space.

Segments are a power of two bytes long and aligned on their length, so
``seglen`` splits the address into a *fixed* segment field (the high
``54 - seglen`` bits) and a *variable* offset field (the low ``seglen``
bits).  The segment base is the address with every offset bit cleared.
"""

from __future__ import annotations

#: Width of a machine word in bits (excluding the tag bit).
WORD_BITS = 64

#: Width of a machine word in bytes.
WORD_BYTES = WORD_BITS // 8

#: Number of virtual-address bits in a guarded pointer.
ADDRESS_BITS = 54

#: Number of bits encoding log2(segment length).
LENGTH_BITS = 6

#: Number of bits encoding the permission field.
PERM_BITS = 4

#: Mask selecting the 54-bit address field of a pointer word.
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1

#: Bit position of the least-significant length bit.
LENGTH_SHIFT = ADDRESS_BITS

#: Mask selecting the (shifted-down) length field.
LENGTH_FIELD_MASK = (1 << LENGTH_BITS) - 1

#: Bit position of the least-significant permission bit.
PERM_SHIFT = ADDRESS_BITS + LENGTH_BITS

#: Mask selecting the (shifted-down) permission field.
PERM_FIELD_MASK = (1 << PERM_BITS) - 1

#: Mask selecting all 64 bits of a word.
WORD_MASK = (1 << WORD_BITS) - 1

#: Size of the virtual address space in bytes (2**54).
ADDRESS_SPACE_BYTES = 1 << ADDRESS_BITS

#: Largest legal value of the segment-length field: a segment may span
#: the entire 2**54-byte address space.
MAX_SEGLEN = ADDRESS_BITS

# Sanity: the three fields plus nothing else fill the word.
assert PERM_BITS + LENGTH_BITS + ADDRESS_BITS == WORD_BITS


def offset_mask(seglen: int) -> int:
    """Mask selecting the variable offset bits of a segment of log2 size
    ``seglen``."""
    if not 0 <= seglen <= MAX_SEGLEN:
        raise ValueError(f"segment length field out of range: {seglen}")
    return (1 << seglen) - 1


def segment_mask(seglen: int) -> int:
    """Mask selecting the fixed segment bits of the 54-bit address for a
    segment of log2 size ``seglen``.

    This is the mask the paper's *masked comparator* applies when
    validating pointer arithmetic (Figure 2): the masked bits must not
    change across an LEA.
    """
    return ADDRESS_MASK & ~offset_mask(seglen)
