"""Guarded pointers (paper §2, Figure 1).

A :class:`GuardedPointer` is a view over a tagged 64-bit word whose tag
bit is set.  It decodes the three architectural fields — permission,
segment length and address — and derives the segment geometry (base,
limit, offset) by pure masking, exactly as the hardware would.

Construction helpers:

* :meth:`GuardedPointer.make` — forge a pointer from fields.  This is
  the *privileged* path (SETPTR); user code must go through the checked
  operations in :mod:`repro.core.operations`.
* :meth:`GuardedPointer.from_word` — reinterpret an already-tagged word.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import constants as c
from repro.core.exceptions import EncodingFault, TagFault
from repro.core.permissions import Permission, decode_permission
from repro.core.word import TaggedWord


def encode_fields(perm: int, seglen: int, address: int) -> int:
    """Pack (perm, seglen, address) into a 64-bit pointer word."""
    if not 0 <= perm <= c.PERM_FIELD_MASK:
        raise EncodingFault(f"permission field out of range: {perm}")
    if not 0 <= seglen <= c.MAX_SEGLEN:
        raise EncodingFault(f"segment length field out of range: {seglen}")
    if not 0 <= address <= c.ADDRESS_MASK:
        raise EncodingFault(f"address wider than {c.ADDRESS_BITS} bits: {address:#x}")
    return (perm << c.PERM_SHIFT) | (seglen << c.LENGTH_SHIFT) | address


def decode_fields(word: int) -> tuple[int, int, int]:
    """Unpack a 64-bit pointer word into (perm, seglen, address)."""
    perm = (word >> c.PERM_SHIFT) & c.PERM_FIELD_MASK
    seglen = (word >> c.LENGTH_SHIFT) & c.LENGTH_FIELD_MASK
    address = word & c.ADDRESS_MASK
    return perm, seglen, address


@dataclass(frozen=True, slots=True)
class GuardedPointer:
    """An unforgeable handle to a byte within a segment.

    Immutable; every derivation (LEA, RESTRICT, ...) produces a new
    pointer.  The underlying representation is the word itself, so a
    pointer stored to memory and reloaded is bit-identical.
    """

    word: TaggedWord

    # -- construction ------------------------------------------------

    @staticmethod
    def make(perm: Permission, seglen: int, address: int) -> "GuardedPointer":
        """Forge a pointer from architectural fields.

        This models SETPTR's power and therefore performs only encoding
        checks (field widths); it does *not* check privilege — callers
        in the machine and runtime are responsible for that.  Segments
        must be aligned on their length, which here means the pointer's
        address may be anywhere inside the aligned segment; alignment
        itself is a property of the segment, automatically satisfied
        because base = address with offset bits cleared.
        """
        if seglen > c.MAX_SEGLEN:
            raise EncodingFault(f"segment larger than address space: 2**{seglen}")
        raw = encode_fields(int(perm), seglen, address)
        return GuardedPointer(TaggedWord(raw, tag=True))

    @staticmethod
    def from_word(word: TaggedWord) -> "GuardedPointer":
        """Reinterpret a tagged word as a guarded pointer.

        Raises :class:`TagFault` when the tag bit is clear and
        ``ValueError`` when the permission field holds a reserved code.
        """
        if not word.tag:
            raise TagFault("word is not tagged as a pointer")
        decode_permission((word.value >> c.PERM_SHIFT) & c.PERM_FIELD_MASK)
        return GuardedPointer(word)

    # -- architectural fields ----------------------------------------

    @property
    def permission(self) -> Permission:
        return decode_permission((self.word.value >> c.PERM_SHIFT) & c.PERM_FIELD_MASK)

    @property
    def seglen(self) -> int:
        """log2 of the segment length in bytes."""
        return (self.word.value >> c.LENGTH_SHIFT) & c.LENGTH_FIELD_MASK

    @property
    def address(self) -> int:
        """The 54-bit byte address this pointer names."""
        return self.word.value & c.ADDRESS_MASK

    # -- derived segment geometry ------------------------------------

    @property
    def segment_size(self) -> int:
        """Segment length in bytes (a power of two)."""
        return 1 << self.seglen

    @property
    def segment_base(self) -> int:
        """First byte of the segment: the address with all offset bits
        cleared (possible because segments are aligned on their
        length)."""
        return self.address & c.segment_mask(self.seglen)

    @property
    def segment_limit(self) -> int:
        """One past the last byte of the segment."""
        return self.segment_base + self.segment_size

    @property
    def offset(self) -> int:
        """Byte offset of the address within its segment."""
        return self.address & c.offset_mask(self.seglen)

    def contains(self, address: int) -> bool:
        """True when ``address`` lies inside this pointer's segment."""
        return self.segment_base <= address < self.segment_limit

    # -- conversions ---------------------------------------------------

    def with_fields(
        self,
        perm: Permission | None = None,
        seglen: int | None = None,
        address: int | None = None,
    ) -> "GuardedPointer":
        """Unchecked field substitution (hardware building block used by
        the checked operations; not part of the user-visible ISA)."""
        return GuardedPointer.make(
            self.permission if perm is None else perm,
            self.seglen if seglen is None else seglen,
            self.address if address is None else address,
        )

    def as_integer(self) -> TaggedWord:
        """The pointer's bits with the tag cleared — what a non-pointer
        operation sees if handed this pointer (§2.2)."""
        return self.word.untagged()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GuardedPointer({self.permission.name}, "
            f"seg=[{self.segment_base:#x},{self.segment_limit:#x}), "
            f"addr={self.address:#x})"
        )
