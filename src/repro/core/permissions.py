"""Permission types and the rights lattice (paper §2.1).

The 4-bit permission field names the set of operations a pointer
permits.  The paper's representative set:

* ``READ_ONLY``      — load only.
* ``READ_WRITE``     — load and store.
* ``EXECUTE_USER``   — read-only + usable as a jump target (user mode).
* ``EXECUTE_PRIV``   — as above, with the supervisor bit set; only an
  execute-privileged instruction pointer may issue privileged ops.
* ``ENTER_USER``     — opaque gateway: jumping converts it to
  ``EXECUTE_USER`` at the same address; no load/store/modify.
* ``ENTER_PRIV``     — gateway to privileged code.
* ``KEY``            — unforgeable identifier; no operation at all.

RESTRICT may substitute permission ``T`` for ``P`` only when the
*rights* of ``T`` are a strict subset of the rights of ``P``.  Rights
are modelled explicitly as frozensets so the subset test is literal.
"""

from __future__ import annotations

import enum
from typing import FrozenSet

from repro.core.constants import PERM_FIELD_MASK


class Right(enum.Flag):
    """Primitive rights a permission may confer."""

    NONE = 0
    READ = enum.auto()        #: may be the address of a load
    WRITE = enum.auto()       #: may be the address of a store
    EXECUTE = enum.auto()     #: may sit in the instruction pointer
    ENTER = enum.auto()       #: may be the target of a gateway jump
    MODIFY = enum.auto()      #: address arithmetic (LEA) is allowed
    PRIV = enum.auto()        #: supervisor: privileged ops legal


class Permission(enum.IntEnum):
    """4-bit architectural permission codes.

    The numeric values are the bit patterns stored in the pointer's
    permission field.  Codes 7..15 are reserved; decoding them raises
    in :func:`rights_of`.
    """

    READ_ONLY = 0
    READ_WRITE = 1
    EXECUTE_USER = 2
    EXECUTE_PRIV = 3
    ENTER_USER = 4
    ENTER_PRIV = 5
    KEY = 6

    @property
    def is_enter(self) -> bool:
        return self in (Permission.ENTER_USER, Permission.ENTER_PRIV)

    @property
    def is_execute(self) -> bool:
        return self in (Permission.EXECUTE_USER, Permission.EXECUTE_PRIV)

    @property
    def is_privileged(self) -> bool:
        return self in (Permission.EXECUTE_PRIV, Permission.ENTER_PRIV)


#: Rights conferred by each permission code.  Execute pointers are
#: "read-only pointers that may be used as targets for jump
#: instructions" (§2.1), hence READ|EXECUTE|MODIFY.  Enter pointers may
#: not be modified or dereferenced — their only right is ENTER.  Keys
#: confer nothing.
_RIGHTS: dict[Permission, Right] = {
    Permission.READ_ONLY: Right.READ | Right.MODIFY,
    Permission.READ_WRITE: Right.READ | Right.WRITE | Right.MODIFY,
    Permission.EXECUTE_USER: Right.READ | Right.EXECUTE | Right.MODIFY,
    Permission.EXECUTE_PRIV: Right.READ | Right.EXECUTE | Right.MODIFY | Right.PRIV,
    Permission.ENTER_USER: Right.ENTER,
    Permission.ENTER_PRIV: Right.ENTER | Right.PRIV,
    Permission.KEY: Right.NONE,
}


def decode_permission(field: int) -> Permission:
    """Decode a 4-bit permission field; reserved codes raise ValueError."""
    if not 0 <= field <= PERM_FIELD_MASK:
        raise ValueError(f"permission field out of range: {field}")
    try:
        return Permission(field)
    except ValueError:
        raise ValueError(f"reserved permission code: {field}") from None


def rights_of(perm: Permission) -> Right:
    """The rights conferred by ``perm``."""
    return _RIGHTS[perm]


def is_strict_subset(candidate: Permission, source: Permission) -> bool:
    """True when ``candidate``'s rights are a strict subset of
    ``source``'s rights — the legality condition for RESTRICT (§2.2).
    """
    c, s = rights_of(candidate), rights_of(source)
    return (c & s) == c and c != s


def restriction_targets(source: Permission) -> FrozenSet[Permission]:
    """All permissions a user process may RESTRICT ``source`` to."""
    return frozenset(p for p in Permission if is_strict_subset(p, source))
