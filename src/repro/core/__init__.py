"""Guarded pointers — the paper's core contribution.

Public surface:

* :class:`~repro.core.word.TaggedWord` — 64-bit word + tag bit.
* :class:`~repro.core.pointer.GuardedPointer` — decoded pointer view.
* :class:`~repro.core.permissions.Permission` — 4-bit permission codes.
* The checked operations in :mod:`repro.core.operations` (LEA, LEAB,
  RESTRICT, SUBSEG, SETPTR, ISPOINTER and the access/jump checks).
* The fault hierarchy in :mod:`repro.core.exceptions`.
"""

from repro.core.constants import (
    ADDRESS_BITS,
    ADDRESS_MASK,
    ADDRESS_SPACE_BYTES,
    MAX_SEGLEN,
    WORD_BITS,
    WORD_BYTES,
    offset_mask,
    segment_mask,
)
from repro.core.exceptions import (
    BoundsFault,
    EncodingFault,
    GuardedPointerFault,
    PageFault,
    PermissionFault,
    PrivilegeFault,
    RestrictFault,
    SubsegFault,
    TagFault,
)
from repro.core.operations import (
    check_jump,
    check_load,
    check_store,
    integer_to_pointer,
    ispointer,
    lea,
    leab,
    pointer_to_integer,
    restrict,
    setptr,
    subseg,
)
from repro.core.permissions import Permission, Right, is_strict_subset, rights_of
from repro.core.pointer import GuardedPointer, decode_fields, encode_fields
from repro.core.word import TaggedWord

__all__ = [
    "ADDRESS_BITS",
    "ADDRESS_MASK",
    "ADDRESS_SPACE_BYTES",
    "MAX_SEGLEN",
    "WORD_BITS",
    "WORD_BYTES",
    "offset_mask",
    "segment_mask",
    "BoundsFault",
    "EncodingFault",
    "GuardedPointerFault",
    "PageFault",
    "PermissionFault",
    "PrivilegeFault",
    "RestrictFault",
    "SubsegFault",
    "TagFault",
    "check_jump",
    "check_load",
    "check_store",
    "integer_to_pointer",
    "ispointer",
    "lea",
    "leab",
    "pointer_to_integer",
    "restrict",
    "setptr",
    "subseg",
    "Permission",
    "Right",
    "is_strict_subset",
    "rights_of",
    "GuardedPointer",
    "decode_fields",
    "encode_fields",
    "TaggedWord",
]
