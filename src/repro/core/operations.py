"""Checked pointer operations — the guarded-pointer ISA (paper §2.2).

These functions are the architectural semantics shared by the M-Machine
simulator's execution units and by the runtime.  Each models one
instruction or hardware check:

================  ====================================================
``lea``           pointer + offset, masked-comparator bounds check
``leab``          segment base + offset (used for pointer↔int casts)
``restrict``      substitute a strictly smaller permission
``subseg``        substitute a strictly smaller contained segment
``setptr``        privileged: forge any pointer from an integer
``ispointer``     test the tag bit
``check_load``    permission check for a load address
``check_store``   permission check for a store address
``check_jump``    permission check for a jump target; converts enter →
                  execute pointers (the gateway of §2.3)
``pointer_to_integer`` / ``integer_to_pointer``
                  the two-instruction cast sequences for C-like
                  languages
================  ====================================================

All checks happen *before* the operation issues; nothing downstream
(cache, memory) re-checks protection.
"""

from __future__ import annotations

from repro.core import constants as c
from repro.core.exceptions import (
    BoundsFault,
    PermissionFault,
    PrivilegeFault,
    RestrictFault,
    SubsegFault,
    TagFault,
)
from repro.core.permissions import Permission, Right, is_strict_subset, rights_of
from repro.core.pointer import GuardedPointer
from repro.core.word import TaggedWord


def _require_pointer(word: TaggedWord, what: str) -> GuardedPointer:
    if not word.tag:
        raise TagFault(f"{what} requires a guarded pointer, got an integer")
    return GuardedPointer.from_word(word)


def _require_right(ptr: GuardedPointer, right: Right, what: str) -> None:
    if not rights_of(ptr.permission) & right:
        raise PermissionFault(
            f"{what} not permitted by {ptr.permission.name} pointer"
        )


# ---------------------------------------------------------------------------
# Pointer arithmetic (Figure 2)
# ---------------------------------------------------------------------------

def lea(word: TaggedWord, offset: int) -> GuardedPointer:
    """LEA: derive ``pointer + offset``.

    The permission must allow modification (read-only, read/write or
    execute pointers; enter pointers and keys may not be modified).
    The add is performed on the 54-bit address field; a fault is raised
    if any *fixed* (segment) bit of the address changes — the masked
    comparator of Figure 2.  Over- and underflow out of the 54-bit
    space are likewise faults.
    """
    ptr = _require_pointer(word, "LEA")
    _require_right(ptr, Right.MODIFY, "pointer arithmetic")
    new_address = ptr.address + offset
    if not 0 <= new_address <= c.ADDRESS_MASK:
        raise BoundsFault(
            f"LEA overflowed the {c.ADDRESS_BITS}-bit address space: "
            f"{ptr.address:#x} + {offset}"
        )
    mask = c.segment_mask(ptr.seglen)
    if (new_address & mask) != (ptr.address & mask):
        raise BoundsFault(
            f"LEA left the segment: {ptr.address:#x} + {offset} is outside "
            f"[{ptr.segment_base:#x}, {ptr.segment_limit:#x})"
        )
    return ptr.with_fields(address=new_address)


def leab(word: TaggedWord, offset: int) -> GuardedPointer:
    """LEAB: derive ``segment_base + offset``.

    Provided "for efficiency" (§2.2); equivalent to an LEA relative to
    the base of the segment rather than the pointer's current address.
    """
    ptr = _require_pointer(word, "LEAB")
    _require_right(ptr, Right.MODIFY, "pointer arithmetic")
    if not 0 <= offset < ptr.segment_size:
        raise BoundsFault(
            f"LEAB offset {offset} outside segment of {ptr.segment_size} bytes"
        )
    return ptr.with_fields(address=ptr.segment_base + offset)


# ---------------------------------------------------------------------------
# Access-right restriction (user-mode, no system software)
# ---------------------------------------------------------------------------

def restrict(word: TaggedWord, perm: Permission) -> GuardedPointer:
    """RESTRICT: substitute permission ``perm`` into the pointer.

    Legal only when ``perm`` is a *strict* subset of the pointer's
    rights; otherwise :class:`RestrictFault`.
    """
    ptr = _require_pointer(word, "RESTRICT")
    if not is_strict_subset(perm, ptr.permission):
        raise RestrictFault(
            f"{perm.name} is not a strict subset of {ptr.permission.name}"
        )
    return ptr.with_fields(perm=perm)


def subseg(word: TaggedWord, seglen: int) -> GuardedPointer:
    """SUBSEG: substitute a smaller segment length into the pointer.

    The new length must be strictly smaller than the old one.  The
    pointer's address is unchanged; the new (smaller, aligned) segment
    is the one containing that address, which is necessarily contained
    in the old segment.
    """
    ptr = _require_pointer(word, "SUBSEG")
    _require_right(ptr, Right.MODIFY, "SUBSEG")
    if not 0 <= seglen < ptr.seglen:
        raise SubsegFault(
            f"SUBSEG length {seglen} is not smaller than {ptr.seglen}"
        )
    return ptr.with_fields(seglen=seglen)


# ---------------------------------------------------------------------------
# Privileged creation and the tag predicate
# ---------------------------------------------------------------------------

def setptr(word: TaggedWord, privileged: bool) -> GuardedPointer:
    """SETPTR: set the tag bit on an integer, forging a pointer.

    Only legal in privileged mode (an execute-privileged instruction
    pointer); this is the single amplification point of the whole
    architecture.
    """
    if not privileged:
        raise PrivilegeFault("SETPTR requires privileged mode")
    return GuardedPointer.from_word(TaggedWord(word.value, tag=True))


def ispointer(word: TaggedWord) -> TaggedWord:
    """ISPOINTER: return 1 if the word's tag bit is set, else 0.

    Used by storage reclamation (LISP-style GC) to find pointers.
    """
    return TaggedWord.integer(1 if word.tag else 0)


# ---------------------------------------------------------------------------
# Memory-access and jump checks
# ---------------------------------------------------------------------------

def check_load(word: TaggedWord) -> GuardedPointer:
    """Validate ``word`` as the address operand of a load."""
    ptr = _require_pointer(word, "load")
    _require_right(ptr, Right.READ, "load")
    return ptr


def check_store(word: TaggedWord) -> GuardedPointer:
    """Validate ``word`` as the address operand of a store."""
    ptr = _require_pointer(word, "store")
    _require_right(ptr, Right.WRITE, "store")
    return ptr


def check_jump(word: TaggedWord, privileged: bool) -> GuardedPointer:
    """Validate ``word`` as a jump target and return the new instruction
    pointer.

    * Execute pointers are used directly (a program may jump anywhere
      inside its code segment).
    * Enter pointers are *converted* to the corresponding execute
      pointer — the protected-subsystem gateway of §2.3.  Jumping to an
      enter-privileged pointer is how privileged mode is entered;
      jumping to any user pointer exits it.  No privilege is required
      to jump to an enter-privileged pointer — that is the point of the
      gateway — so ``privileged`` is unused for enter targets.
    * Anything else (data pointers, keys, integers) faults.
    """
    ptr = _require_pointer(word, "jump")
    perm = ptr.permission
    if perm.is_execute:
        return ptr
    if perm is Permission.ENTER_USER:
        return ptr.with_fields(perm=Permission.EXECUTE_USER)
    if perm is Permission.ENTER_PRIV:
        return ptr.with_fields(perm=Permission.EXECUTE_PRIV)
    raise PermissionFault(f"jump through {perm.name} pointer")


# ---------------------------------------------------------------------------
# C-style casts (§2.2) — unprivileged two-instruction sequences
# ---------------------------------------------------------------------------

def pointer_to_integer(word: TaggedWord) -> TaggedWord:
    """Cast pointer → int: the pointer's offset within its segment.

    Paper sequence::

        LEAB Ptr, 0, Base
        SUB  Ptr, Base, Int
    """
    base = leab(word, 0)
    ptr = GuardedPointer.from_word(word)
    return TaggedWord.integer(ptr.address - base.address)


def integer_to_pointer(data_segment: TaggedWord, value: TaggedWord) -> GuardedPointer:
    """Cast int → pointer: a pointer into ``data_segment`` with the
    integer as its offset (LEAB), legal only when the integer fits in
    the offset field of the segment."""
    return leab(data_segment, value.value)
