"""Workload generation, the shared cost model, the cross-scheme
experiment driver, and the stable :class:`Simulation` facade."""

from repro.sim.api import Simulation
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.metrics import (
    Summary,
    geometric_mean,
    histogram,
    page_footprint,
    speedup_table,
)
from repro.sim.multiprogram import interleave, switch_intensity
from repro.sim.runner import Row, format_table, relative_to, run_comparison
from repro.sim.trace import Event, MemRef, Switch, Trace
from repro.sim.workloads import (
    PROCESS_SPAN,
    SHARED_BASE,
    ZipfSampler,
    gups,
    matrix_traversal,
    multi_segment,
    pointer_chase,
    process_base,
    random_uniform,
    sequential,
    shared_access,
    working_set,
    zipf,
)

__all__ = [
    "Simulation",
    "DEFAULT_COSTS",
    "CostModel",
    "interleave",
    "switch_intensity",
    "Row",
    "format_table",
    "relative_to",
    "run_comparison",
    "Event",
    "MemRef",
    "Switch",
    "Trace",
    "PROCESS_SPAN",
    "SHARED_BASE",
    "ZipfSampler",
    "Summary",
    "geometric_mean",
    "histogram",
    "page_footprint",
    "speedup_table",
    "gups",
    "matrix_traversal",
    "multi_segment",
    "pointer_chase",
    "process_base",
    "random_uniform",
    "sequential",
    "shared_access",
    "working_set",
    "zipf",
]
