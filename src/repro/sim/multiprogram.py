"""Multiprogrammed trace construction.

Interleaves per-process traces with an explicit context-switch
schedule.  The quantum is in *references*: a quantum of 1 models the
M-Machine's cycle-by-cycle interleaving of protection domains (§1), a
large quantum models classic timeslicing.  The cost a scheme pays at
each :class:`~repro.sim.trace.Switch` is precisely what experiment E9
measures.
"""

from __future__ import annotations

from repro.sim.trace import MemRef, Switch, Trace


def interleave(traces: list[Trace], quantum: int = 100) -> Trace:
    """Round-robin the given single-process traces, emitting a
    :class:`Switch` whenever control moves to a different process.

    Each input trace must reference a single pid.  The result preserves
    each process's internal reference order.
    """
    if quantum <= 0:
        raise ValueError("quantum must be positive")
    streams = []
    for t in traces:
        pids = t.processes
        if len(pids) > 1:
            raise ValueError("interleave() needs single-process traces")
        streams.append(list(t.events))

    merged = Trace()
    cursors = [0] * len(streams)
    current_pid: int | None = None
    while True:
        progressed = False
        for index, stream in enumerate(streams):
            if cursors[index] >= len(stream):
                continue
            progressed = True
            pid = stream[cursors[index]].pid
            if pid != current_pid:
                merged.events.append(Switch(pid))
                current_pid = pid
            end = min(cursors[index] + quantum, len(stream))
            merged.events.extend(stream[cursors[index]:end])
            cursors[index] = end
        if not progressed:
            break
    return merged


def switch_intensity(trace: Trace) -> float:
    """Switches per reference — 0 for a single program, approaching 1
    for cycle-by-cycle interleaving."""
    refs = trace.references
    return trace.switches / refs if refs else 0.0
