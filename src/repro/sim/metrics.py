"""Aggregation helpers for experiment results.

Small, dependency-free statistics the benchmarks and report generator
share: summaries, geometric means (the right average for speedup
ratios), and simple text histograms for trace locality inspection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number summary plus mean."""

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float
    stddev: float

    @staticmethod
    def of(values: Sequence[float]) -> "Summary":
        if not values:
            raise ValueError("empty sample")
        ordered = sorted(values)
        n = len(ordered)
        mean = sum(ordered) / n
        mid = n // 2
        median = ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2
        variance = sum((v - mean) ** 2 for v in ordered) / n
        return Summary(count=n, minimum=ordered[0], maximum=ordered[-1],
                       mean=mean, median=median, stddev=math.sqrt(variance))


def geometric_mean(ratios: Iterable[float]) -> float:
    """The correct average of speedups/slowdowns."""
    values = list(ratios)
    if not values:
        raise ValueError("empty sample")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_table(cycles_by_scheme: dict[str, int],
                  baseline: str) -> dict[str, float]:
    """scheme → slowdown relative to ``baseline`` (1.0 for the baseline)."""
    base = cycles_by_scheme[baseline]
    if base <= 0:
        raise ValueError("baseline consumed no cycles")
    return {name: cycles / base for name, cycles in cycles_by_scheme.items()}


def histogram(values: Sequence[float], bins: int = 10,
              width: int = 40) -> str:
    """Plain-text histogram (for locality eyeballing in bench logs)."""
    if not values:
        raise ValueError("empty sample")
    lo, hi = min(values), max(values)
    if lo == hi:
        return f"[{lo}] {'#' * width} ({len(values)})"
    span = (hi - lo) / bins
    counts = [0] * bins
    for v in values:
        index = min(int((v - lo) / span), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * max(1 if count else 0, round(count / peak * width))
        lines.append(f"[{lo + i * span:>12.1f}] {bar} ({count})")
    return "\n".join(lines)


def page_footprint(addresses: Iterable[int], page_bytes: int = 4096) -> int:
    """Distinct pages a trace touches — the refill bill a flush incurs."""
    return len({a // page_bytes for a in addresses})
