"""Memory-reference traces.

A trace is the common currency of the baseline comparison (E9–E12):
every protection scheme consumes the same sequence of
:class:`MemRef`/:class:`Switch` events, so cross-scheme cycle counts are
commensurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class MemRef:
    """One memory reference issued by process ``pid``."""

    pid: int
    vaddr: int
    write: bool = False
    #: id of the segment/object the reference targets (used by
    #: segmentation and capability baselines to find the descriptor;
    #: page-based schemes ignore it)
    segment: int = 0
    #: True when a compiler could prove the access safe statically
    #: (SFI skips its check code for these)
    statically_safe: bool = False


@dataclass(frozen=True, slots=True)
class Switch:
    """A context switch to process ``pid``.

    ``handoff`` is the number of capabilities/pointers handed across
    the boundary with the switch (the enter pointer of a cross-domain
    call, arguments passed by reference).  Table- and page-based
    schemes ignore it; the modern capability baselines charge it —
    Capstone moves each one linearly, Capacity re-MACs each one for
    the receiving domain's key.
    """

    pid: int
    handoff: int = 0


Event = MemRef | Switch


@dataclass
class Trace:
    """An event sequence plus summary metadata."""

    events: list = field(default_factory=list)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def references(self) -> int:
        return sum(1 for e in self.events if isinstance(e, MemRef))

    @property
    def switches(self) -> int:
        return sum(1 for e in self.events if isinstance(e, Switch))

    @property
    def processes(self) -> set[int]:
        pids = set()
        for e in self.events:
            pids.add(e.pid)
        return pids

    def extend(self, events: Iterable[Event]) -> "Trace":
        self.events.extend(events)
        return self

    @staticmethod
    def concat(traces: Iterable["Trace"]) -> "Trace":
        merged = Trace()
        for t in traces:
            merged.events.extend(t.events)
        return merged
