"""The stable simulation API: one object from chip to counters — for
one node *or* a whole mesh.

Before this module, every benchmark, example and CLI command rebuilt
the same scaffolding by hand — construct a :class:`ChipConfig`, wrap a
:class:`MAPChip` in a :class:`Kernel`, load programs, spawn threads,
run, then reach into ``chip.stats``/``chip.cache.stats``/... for
numbers.  :class:`Simulation` packages that whole lifecycle behind one
facade so callers stop depending on chip internals:

    from repro import Simulation

    sim = Simulation(memory_bytes=4 * 1024 * 1024)
    data = sim.allocate(4096)
    thread = sim.spawn(PROGRAM, regs={1: data.word})
    result = sim.run()
    assert result.reason == RunReason.HALTED
    print(sim.counter_table())        # the chip-wide perf counters

The same surface fronts a multicomputer: ``Simulation(nodes=4)`` (or
``Simulation.mesh(MeshShape(2, 2, 1))``) builds a mesh of MAP nodes
over one 54-bit global address space, and every facade method keeps
working — ``load``/``allocate``/``spawn`` take a keyword-only ``node``
to place work, ``run``/``step`` drive every node in lockstep,
``snapshot()`` merges the per-node counter files, ``trace()`` records
all nodes onto one timeline, and ``save``/``restore`` round-trip the
whole machine.  A workload written against the facade runs unchanged
on 1 node or 16; ``examples/multinode_sharing.py`` and the service
load driver (:mod:`repro.service`) are the proof.

Everything underneath remains reachable (``sim.chip``, ``sim.kernel``,
``sim.machine`` on a mesh) for code that genuinely needs the lower
layers; the facade is the supported surface, and its methods are the
ones ``docs/PERF.md`` documents.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.exceptions import GuardedPointerFault
from repro.core.pointer import GuardedPointer
from repro.machine.assembler import Program
from repro.machine.chip import ChipConfig, MAPChip, RunResult
from repro.machine.counters import PerfCounters
from repro.machine.thread import Thread
from repro.runtime.kernel import Kernel


class SimulationError(RuntimeError):
    """A facade method was used in a way its machine shape forbids."""


def mesh_shape_for(nodes: int) -> "MeshShape":
    """The most compact mesh holding ``nodes`` nodes: factor into
    ``x >= y >= z`` as near a cube as the divisors allow (4 -> 2x2x1,
    8 -> 2x2x2, 6 -> 3x2x1, primes degrade to a chain)."""
    from repro.machine.network import MeshShape

    if nodes <= 0:
        raise ValueError("need at least one node")
    z = max(d for d in range(1, int(nodes ** (1 / 3) + 1e-9) + 1)
            if nodes % d == 0)
    rest = nodes // z
    y = max(d for d in range(1, int(rest ** 0.5 + 1e-9) + 1)
            if rest % d == 0)
    x = rest // y
    return MeshShape(x, y, z)


class Simulation:
    """A MAP machine — one node or a mesh — ready to load and run.

    ``config`` provides the architectural parameters; keyword overrides
    patch individual fields without spelling out a full config::

        Simulation()                                    # paper defaults
        Simulation(memory_bytes=1 << 20)                # one override
        Simulation(ChipConfig(clusters=2), tlb_entries=8)
        Simulation(nodes=4)                             # a 2x2x1 mesh
        Simulation.mesh(MeshShape(4, 2, 1), hop_cycles=3)

    On a mesh every chip shares one config; ``node=`` keywords place
    segments, programs and threads, and the single global address
    space means a pointer allocated on one node dereferences from any
    other (the multicomputer story of §3).
    """

    def __init__(self, config: ChipConfig | None = None, *,
                 nodes: int = 1, shape=None,
                 hop_cycles: int = 5, interface_cycles: int = 10,
                 arena_order: int | None = None, workers: int = 1,
                 **overrides):
        base = config or ChipConfig()
        self.config = replace(base, **overrides) if overrides else base
        if workers < 1:
            raise ValueError("need at least one worker")
        if shape is not None and nodes > 1 and shape.nodes != nodes:
            raise ValueError(f"shape has {shape.nodes} nodes, not {nodes}")
        if shape is None and nodes > 1:
            shape = mesh_shape_for(nodes)
        if shape is not None:
            from repro.machine.multicomputer import Multicomputer

            kwargs = {} if arena_order is None else {
                "arena_order": arena_order}
            self.machine = Multicomputer(
                shape=shape, chip_config=self.config,
                hop_cycles=hop_cycles, interface_cycles=interface_cycles,
                **kwargs)
            self.chips = self.machine.chips
            self.kernels = self.machine.kernels
        else:
            if arena_order is not None:
                raise ValueError("arena_order only applies to a mesh")
            self.machine = None
            chip = MAPChip(self.config)
            self.chips = [chip]
            self.kernels = [Kernel(chip)]
        self._engine = None
        if workers > 1:
            if self.machine is None:
                raise SimulationError(
                    "workers > 1 needs a mesh: a single node has nothing "
                    "to shard")
            from repro.machine.parallel import ParallelMulticomputer

            self._engine = ParallelMulticomputer(self.machine, workers)

    @classmethod
    def mesh(cls, shape=None, config: ChipConfig | None = None,
             **kwargs) -> "Simulation":
        """A mesh simulation with an explicit
        :class:`~repro.machine.network.MeshShape` (``None``: the 2x2x2
        default).  Keyword arguments are the constructor's
        (``hop_cycles``, ``interface_cycles``, ``arena_order``, chip
        overrides)."""
        from repro.machine.network import MeshShape

        return cls(config, shape=shape or MeshShape(), **kwargs)

    @classmethod
    def _from_multicomputer(cls, machine) -> "Simulation":
        """Wrap an already-built multicomputer (the restore path)."""
        sim = cls.__new__(cls)
        sim.config = machine.chips[0].config
        sim.machine = machine
        sim.chips = machine.chips
        sim.kernels = machine.kernels
        sim._engine = None
        return sim

    # -- the sharded engine (repro.machine.parallel) ------------------------

    @property
    def workers(self) -> int:
        """OS worker processes the clock runs across (1 = lockstep)."""
        return 1 if self._engine is None else self._engine.workers

    @property
    def engine(self):
        """The sharded coordinator, or ``None`` on the lockstep engine."""
        return self._engine

    def _guard_sharded(self, what: str) -> None:
        """Forbid direct machine access once worker state has advanced
        past the in-process machine's (the mirror is stale)."""
        if self._engine is not None and self._engine.started \
                and self._engine.dirty:
            raise SimulationError(
                f"{what}: the machine is sharded across worker processes "
                f"and the in-process copy is stale; use the facade verbs "
                f"(spawn_request / retire_finished / snapshot), or call "
                f"sync_back() first")

    def sync_back(self) -> None:
        """Make the in-process machine authoritative again: on the
        sharded engine, drain to a window barrier and pull every node's
        state back (no-op on the lockstep engine)."""
        if self._engine is not None and self._engine.started:
            self._engine.sync_back()

    def close(self) -> None:
        """Stop worker processes, if any (no-op on the lockstep
        engine).  The in-process machine keeps the state of the last
        :meth:`sync_back`."""
        if self._engine is not None:
            self._engine.close()

    def rebalance(self, owned: list[list[int]] | None = None) -> None:
        """Re-shard node ownership across the workers (sharded engine
        only): drain, sync, and warm-start every worker from the fresh
        snapshot — bit-exact, since the window protocol makes execution
        independent of the ownership map."""
        if self._engine is None:
            raise SimulationError("rebalance needs workers > 1")
        self._engine._ensure_started()
        self._engine.rebalance(owned)

    # -- machine shape -----------------------------------------------------

    @property
    def nodes(self) -> int:
        return len(self.chips)

    @property
    def chip(self) -> MAPChip:
        """Node 0's chip (the only chip on a single-node machine)."""
        return self.chips[0]

    @property
    def kernel(self) -> Kernel:
        """Node 0's kernel (the only kernel on a single-node machine)."""
        return self.kernels[0]

    def _require_mesh(self, what: str):
        if self.machine is None:
            raise SimulationError(
                f"{what} needs a mesh: build one with Simulation(nodes=N) "
                f"or Simulation.mesh(...)")
        return self.machine

    @property
    def shape(self):
        """The mesh dimensions (mesh machines only)."""
        return self._require_mesh("shape").shape

    @property
    def network(self):
        """The mesh network (mesh machines only)."""
        return self._require_mesh("network").network

    @property
    def partition(self):
        """The global-address-space carve-up (mesh machines only)."""
        return self._require_mesh("partition").partition

    def _check_node(self, node: int) -> int:
        if not 0 <= node < len(self.kernels):
            raise ValueError(
                f"node {node} out of range for a {len(self.kernels)}-node "
                f"machine")
        return node

    # -- workload loading --------------------------------------------------

    def load(self, program: Program | str, *, node: int = 0,
             **kwargs) -> GuardedPointer:
        """Assemble-and-install a program on ``node``; returns its entry
        pointer.  Keyword arguments pass through to
        ``Kernel.load_program`` (``perm``, ``patches``)."""
        self._guard_sharded("load")
        return self.kernels[self._check_node(node)].load_program(
            program, **kwargs)

    def allocate(self, nbytes: int, *, node: int = 0,
                 **kwargs) -> GuardedPointer:
        """A fresh data segment homed on ``node`` (``perm``/``eager``
        pass through)."""
        self._guard_sharded("allocate")
        return self.kernels[self._check_node(node)].allocate_segment(
            nbytes, **kwargs)

    def spawn(self, entry: GuardedPointer | Program | str, *,
              node: int | None = None, **kwargs) -> Thread:
        """Start a thread.  ``entry`` may be an entry pointer from
        :meth:`load`, or program source/a ``Program`` to load first.
        ``node`` places the thread; when omitted, a pointer entry runs
        on its home node (pointers name their home in the high address
        bits — §3) and source loads on node 0.  Keyword arguments pass
        through to ``Kernel.spawn`` (``domain``, ``regs``, ``cluster``,
        ``stack_bytes``).  On a started sharded machine use
        :meth:`spawn_request` instead (it returns a tid, not a live
        thread object)."""
        self._guard_sharded("spawn")
        if not isinstance(entry, GuardedPointer):
            entry = self.load(entry, node=node or 0)
        if node is None:
            if self.machine is not None:
                try:
                    node = self.machine.home_of(entry.address)
                except GuardedPointerFault as cause:
                    # non-power-of-two meshes leave high-bit patterns
                    # with no node behind them; an entry pointer there
                    # cannot run anywhere
                    raise SimulationError(
                        f"entry pointer has no home node: {cause}"
                    ) from cause
            else:
                node = 0
        return self.kernels[self._check_node(node)].spawn(entry, **kwargs)

    # -- the clock ---------------------------------------------------------

    def run(self, max_cycles: int = 1_000_000) -> RunResult:
        """Run to completion — every node in lockstep on a mesh (see
        :meth:`MAPChip.run` / :meth:`Multicomputer.run`), sharded
        across OS processes with ``workers > 1``."""
        if self._engine is not None:
            return self._engine.run(max_cycles)
        target = self.machine if self.machine is not None else self.chip
        return target.run(max_cycles)

    def step(self, cycles: int = 1) -> int:
        """Advance the clock ``cycles`` cycles (lockstep across nodes);
        returns bundles issued."""
        if self._engine is not None:
            return self._engine.step_many(cycles)
        target = self.machine if self.machine is not None else self.chip
        issued = 0
        for _ in range(cycles):
            issued += target.step()
        return issued

    def advance_idle(self, cycles: int) -> None:
        """Skip guaranteed-idle cycles (only legal when nothing is
        runnable; see :meth:`MAPChip.advance_idle`)."""
        if self._engine is not None:
            self._engine.advance_idle(cycles)
            return
        target = self.machine if self.machine is not None else self.chip
        target.advance_idle(cycles)

    @property
    def now(self) -> int:
        if self._engine is not None:
            return self._engine.now
        return self.chips[0].now

    # -- engine-neutral request handles -------------------------------------
    # (the service load driver runs on these, so the same driver code
    # drives the lockstep and the sharded engine bit-identically)

    def spawn_request(self, node: int, entry: GuardedPointer, *,
                      domain: int = 0, regs: dict | None = None,
                      stack_bytes: int = 0) -> int:
        """Spawn a request thread on ``node`` and return its tid — a
        handle that stays valid on both engines (a live
        :class:`Thread` object would not cross a process boundary)."""
        node = self._check_node(node)
        if self._engine is not None and self._engine.started:
            return self._engine.spawn_request(
                node, entry, {"domain": domain, "regs": regs,
                              "stack_bytes": stack_bytes})
        return self.kernels[node].spawn(entry, domain=domain, regs=regs,
                                        stack_bytes=stack_bytes).tid

    def retire_finished(self, pending, result_reg: int = 5) -> list[dict]:
        """Retire the finished threads among ``pending`` — an iterable
        of ``(node, tid)`` handles — removing each from its cluster
        slot.  Returns, in ``pending`` order, one dict per finished
        thread: ``node``, ``tid``, ``state`` ("HALTED"/"FAULTED"),
        ``halted_at`` and ``result`` (the value of ``result_reg`` at
        HALT).  Still-running handles are left alone; a handle whose
        thread the kernel already reaped reports as FAULTED."""
        pending = list(pending)
        if self._engine is not None and self._engine.started:
            return self._engine.retire_finished(pending, result_reg)
        from repro.machine.parallel import retire_on_chip

        per_node: list[tuple[int, list[int]]] = []
        for node, tid in pending:
            if per_node and per_node[-1][0] == node:
                per_node[-1][1].append(tid)
            else:
                per_node.append((self._check_node(node), [tid]))
        by_key = {}
        for node, tids in per_node:
            for tid, state, halted_at, result in retire_on_chip(
                    self.chips[node], tids, result_reg):
                by_key[(node, tid)] = {"node": node, "tid": tid,
                                       "state": state,
                                       "halted_at": halted_at,
                                       "result": result}
        return [by_key[key] for key in pending if key in by_key]

    def record_sample(self, node: int, name: str, value: int) -> None:
        """Add one sample to ``node``'s named histogram (created on
        first use; see :meth:`repro.obs.hub.TraceHub.add_histogram`) —
        works on both engines."""
        node = self._check_node(node)
        if self._engine is not None and self._engine.started:
            self._engine.record_sample(node, name, value)
            return
        self.chips[node].obs.add_histogram(name).add(value)

    def emit(self, node: int, name: str, cycle: int, *,
             tid: int | None = None, dur: int | None = None,
             **args) -> None:
        """Land one event in ``node``'s trace hub (flight recorder plus
        any attached sinks) — works on both engines.  This is how the
        service driver threads ``request.admit``/``request.done``
        instants into the event stream; ``name`` should come from
        :data:`repro.obs.EVENT_NAMES`."""
        node = self._check_node(node)
        if self._engine is not None and self._engine.started:
            self._engine.emit(node, name, cycle, tid, dur, args)
            return
        self.chips[node].obs.emit(name, cycle, tid=tid, dur=dur, **args)

    def counters_per_node(self) -> dict[int, dict]:
        """Each node's (unmerged) counter snapshot — on a started
        sharded machine pulled from the owning workers over RPC.  The
        time-series sampler reads this at every window boundary."""
        if self._engine is not None and self._engine.started:
            return self._engine.counters_per_node()
        return {n: chip.counters.snapshot()
                for n, chip in enumerate(self.chips)}

    # -- results and counters ---------------------------------------------

    @property
    def counters(self) -> PerfCounters:
        """The chip-wide performance-counter file.  Single-node only —
        a mesh has one file per node (:meth:`counters_of`) and a merged
        view (:meth:`snapshot`)."""
        if self.machine is not None:
            raise SimulationError(
                "a mesh has per-node counter files: use counters_of(node) "
                "for one node or snapshot() for the merged view")
        return self.chip.counters

    def counters_of(self, node: int) -> PerfCounters:
        """One node's performance-counter file."""
        self._guard_sharded("counters_of")
        return self.chips[self._check_node(node)].counters

    def snapshot(self) -> dict[str, int | float]:
        """One coherent reading of every perf counter (sorted names).
        On a mesh: the machine-wide merge — bare names are sums across
        nodes, ``node<N>.*`` names stay per-node (see
        :func:`repro.machine.counters.merge_snapshots`).  On a started
        sharded machine the workers' files are merged over RPC."""
        if self._engine is not None and self._engine.started:
            return self._engine.counters_snapshot()
        if self.machine is not None:
            return self.machine.counters_snapshot()
        return self.chip.counters.snapshot()

    def counter_table(self, title: str = "perf counters") -> str:
        """The counter snapshot rendered by the standard table
        formatter (:func:`repro.sim.runner.format_table`)."""
        from repro.sim.runner import format_table

        return format_table(self.snapshot(), title=title)

    @property
    def threads(self) -> list[Thread]:
        self._guard_sharded("threads")
        return [t for chip in self.chips for t in chip.all_threads()]

    # -- structured tracing (repro.obs) -------------------------------------

    def trace(self) -> "TraceSession":
        """Open a recording session over this machine's trace hubs —
        every node's, on a mesh (docs/OBSERVABILITY.md).  While the
        session is attached, every event — per-bundle issue, cache/TLB
        miss fills, faults, enter crossings, mesh hops, swap and
        migration — lands in ``session.events``; recording never
        changes cycle counts.  Use as a context manager, then export::

            with sim.trace() as session:
                sim.run()
            session.save_chrome("trace.json")   # ui.perfetto.dev
            print(session.text())               # greppable timeline
        """
        if self._engine is not None:
            raise SimulationError(
                "tracing needs the lockstep engine: a session cannot "
                "attach to chips living in worker processes (not even "
                "after sync_back() — the next run re-advances them "
                "there).  For time-resolved telemetry under workers>1 "
                "use Simulation.timeseries(window) / repro serve "
                "--timeseries-out (per-window counter deltas over RPC), "
                "or capture_state() and restore into a workers=1 "
                "Simulation to trace a replay")
        from repro.obs.hub import TraceSession

        return TraceSession([chip.obs for chip in self.chips])

    def span_collector(self):
        """Span-level event recording (``hot=False`` sinks: per-miss
        and cold events only, per-bundle path stays dark, superblock
        turbo stays engaged) — works on both engines; the request
        tracer builds on this.  Returns an object with ``drain()``."""
        if self._engine is not None:
            return self._engine.span_collector()
        from repro.obs.requests import LockstepSpanCollector

        return LockstepSpanCollector([chip.obs for chip in self.chips])

    def record_requests(self) -> "RequestTraceRecorder":
        """A request-scoped trace recorder for a service run: hand it
        to the :class:`~repro.service.driver.ServiceLoadDriver`
        (``recorder=``), then ``recorder.explain_tail(k)`` after the
        run (docs/OBSERVABILITY.md §"Reading a request trace").  On a
        sharded machine, create it after all workload setup — attaching
        starts the workers."""
        from repro.obs.requests import RequestTraceRecorder

        return RequestTraceRecorder(self)

    def timeseries(self, window: int) -> "TimeseriesSampler":
        """A windowed counter sampler (docs/OBSERVABILITY.md
        §"Time-series sampling"): poll it at deterministic points (the
        load driver does, via ``sampler=``), read ``rows`` or write
        JSON/CSV after :meth:`~repro.obs.timeseries.TimeseriesSampler.
        finish`.  Works on both engines — the sharded engine samples
        over RPC at window boundaries."""
        from repro.obs.timeseries import TimeseriesSampler

        return TimeseriesSampler(self, window)

    # -- migration (repro.persist) ------------------------------------------

    def migrate(self, process, destination: int, pin=()) -> "MigrationReport":
        """Live-migrate ``process`` to node ``destination`` (mesh
        machines only; see
        :class:`repro.persist.migrate.MigrationService`).  ``pin``
        lists pointers whose segments stay home."""
        machine = self._require_mesh("migrate")
        if self._engine is not None and self._engine.started:
            return self._engine.migrate(process, destination, pin)
        from repro.persist.migrate import MigrationService

        return MigrationService(machine).migrate(
            process, destination=destination, pin=pin)

    # -- persistence (repro.persist) ---------------------------------------

    def capture_state(self) -> dict:
        """The whole machine — one node or every node plus the mesh —
        as one JSON-safe payload (pair with :meth:`restore_state`).  On
        a started sharded machine this drains in-flight window traffic
        to the barrier first (the clock may advance by up to one
        window), then syncs every shard back; the image is
        engine-neutral and restores onto either engine."""
        if self._engine is not None and self._engine.started:
            return self._engine.capture_state()
        if self.machine is not None:
            return self.machine.capture_state()
        from repro.persist.image import capture_simulation

        return capture_simulation(self)

    def restore_state(self, state: dict) -> None:
        """Overwrite this machine's state with a captured image (the
        machine must have the image's shape)."""
        if self._engine is not None and self._engine.started:
            raise SimulationError(
                "cannot restore into running workers; build a fresh "
                "Simulation from the image instead")
        if self.machine is not None:
            self.machine.restore_state(state)
            return
        from repro.persist.image import restore_node
        from repro.persist.snapshot import SnapshotError

        if state.get("kind") != "simulation":
            raise SnapshotError(
                f"expected a simulation image, got {state.get('kind')!r}")
        restore_node(self.kernel, state["node"])

    def save(self, path) -> "Path":
        """Write this machine's complete state — memory with tags,
        registers, page tables, cache/TLB/network timing, counters —
        to a snapshot file.  ``Simulation.restore(path)`` (same process
        or a different one, days later) resumes cycle-exactly.  A
        sharded machine drains to its window barrier first; the image
        is engine-neutral, so a parallel-captured file restores into a
        lockstep simulation bit-identically (and vice versa)."""
        if self._engine is not None and self._engine.started:
            from repro.persist.snapshot import write_snapshot

            return write_snapshot(self._engine.capture_state(), path)
        if self.machine is not None:
            from repro.persist.image import save_multicomputer

            return save_multicomputer(self.machine, path)
        from repro.persist.image import save_simulation

        return save_simulation(self, path)

    @classmethod
    def restore(cls, path, **overrides) -> "Simulation":
        """Rebuild a simulation from a :meth:`save` file — single-node
        and mesh images both come back behind this same facade.
        Keyword overrides may flip the simulator speed knobs
        (``decode_cache``, ``data_fast_path``, ``idle_fast_forward``,
        ``superblock``);
        architectural overrides are rejected.  (Named ``restore``
        because ``load`` is the facade's program loader.)"""
        from repro.machine.multicomputer import Multicomputer
        from repro.persist.image import load_machine

        machine = load_machine(path, **overrides)
        if isinstance(machine, Multicomputer):
            return cls._from_multicomputer(machine)
        return machine

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.config
        mesh = ""
        if self.machine is not None:
            s = self.machine.shape
            mesh = f"nodes={s.nodes} ({s.x}x{s.y}x{s.z}), "
        return (f"Simulation({mesh}clusters={c.clusters}, "
                f"threads_per_cluster={c.threads_per_cluster}, "
                f"now={self.now})")
