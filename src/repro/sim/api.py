"""The stable simulation API: one object from chip to counters.

Before this module, every benchmark, example and CLI command rebuilt
the same scaffolding by hand — construct a :class:`ChipConfig`, wrap a
:class:`MAPChip` in a :class:`Kernel`, load programs, spawn threads,
run, then reach into ``chip.stats``/``chip.cache.stats``/... for
numbers.  :class:`Simulation` packages that whole lifecycle behind one
facade so callers stop depending on chip internals:

    from repro import Simulation

    sim = Simulation(memory_bytes=4 * 1024 * 1024)
    data = sim.allocate(4096)
    thread = sim.spawn(PROGRAM, regs={1: data.word})
    result = sim.run()
    assert result.reason == RunReason.HALTED
    print(sim.counter_table())        # the chip-wide perf counters

Everything underneath remains reachable (``sim.chip``, ``sim.kernel``)
for code that genuinely needs the lower layers; the facade is the
supported surface, and its methods are the ones ``docs/PERF.md``
documents.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.pointer import GuardedPointer
from repro.machine.assembler import Program
from repro.machine.chip import ChipConfig, MAPChip, RunResult
from repro.machine.counters import PerfCounters
from repro.machine.thread import Thread
from repro.runtime.kernel import Kernel


class Simulation:
    """A single-node MAP machine, ready to load and run programs.

    ``config`` provides the architectural parameters; keyword overrides
    patch individual fields without spelling out a full config::

        Simulation()                                    # paper defaults
        Simulation(memory_bytes=1 << 20)                # one override
        Simulation(ChipConfig(clusters=2), tlb_entries=8)
    """

    def __init__(self, config: ChipConfig | None = None, **overrides):
        base = config or ChipConfig()
        self.config = replace(base, **overrides) if overrides else base
        self.chip = MAPChip(self.config)
        self.kernel = Kernel(self.chip)

    # -- workload loading --------------------------------------------------

    def load(self, program: Program | str, **kwargs) -> GuardedPointer:
        """Assemble-and-install a program; returns its entry pointer.
        Keyword arguments pass through to ``Kernel.load_program``
        (``perm``, ``patches``)."""
        return self.kernel.load_program(program, **kwargs)

    def allocate(self, nbytes: int, **kwargs) -> GuardedPointer:
        """A fresh data segment (``perm``/``eager`` pass through)."""
        return self.kernel.allocate_segment(nbytes, **kwargs)

    def spawn(self, entry: GuardedPointer | Program | str, **kwargs) -> Thread:
        """Start a thread.  ``entry`` may be an entry pointer from
        :meth:`load`, or program source/a ``Program`` to load first.
        Keyword arguments pass through to ``Kernel.spawn`` (``domain``,
        ``regs``, ``cluster``, ``stack_bytes``)."""
        if not isinstance(entry, GuardedPointer):
            entry = self.load(entry)
        return self.kernel.spawn(entry, **kwargs)

    # -- the clock ---------------------------------------------------------

    def run(self, max_cycles: int = 1_000_000) -> RunResult:
        """Run to completion (see :meth:`MAPChip.run`)."""
        return self.chip.run(max_cycles)

    def step(self, cycles: int = 1) -> int:
        """Advance the clock ``cycles`` cycles; returns bundles issued."""
        issued = 0
        for _ in range(cycles):
            issued += self.chip.step()
        return issued

    @property
    def now(self) -> int:
        return self.chip.now

    # -- results and counters ---------------------------------------------

    @property
    def counters(self) -> PerfCounters:
        """The chip-wide performance-counter file."""
        return self.chip.counters

    def snapshot(self) -> dict[str, int | float]:
        """One coherent reading of every perf counter (sorted names)."""
        return self.chip.counters.snapshot()

    def counter_table(self, title: str = "perf counters") -> str:
        """The counter snapshot rendered by the standard table
        formatter (:func:`repro.sim.runner.format_table`)."""
        from repro.sim.runner import format_table

        return format_table(self.snapshot(), title=title)

    @property
    def threads(self) -> list[Thread]:
        return self.chip.all_threads()

    # -- structured tracing (repro.obs) -------------------------------------

    def trace(self) -> "TraceSession":
        """Open a recording session over this machine's trace hub
        (docs/OBSERVABILITY.md).  While the session is attached, every
        event — per-bundle issue, cache/TLB miss fills, faults, enter
        crossings, swap and migration — lands in ``session.events``;
        recording never changes cycle counts.  Use as a context
        manager, then export::

            with sim.trace() as session:
                sim.run()
            session.save_chrome("trace.json")   # ui.perfetto.dev
            print(session.text())               # greppable timeline
        """
        from repro.obs.hub import TraceSession

        return TraceSession([self.chip.obs])

    # -- persistence (repro.persist) ---------------------------------------

    def save(self, path) -> "Path":
        """Write this machine's complete state — memory with tags,
        registers, page table, cache/TLB/network timing, counters — to
        a snapshot file.  ``Simulation.restore(path)`` (same process or
        a different one, days later) resumes cycle-exactly."""
        from repro.persist.image import save_simulation

        return save_simulation(self, path)

    @classmethod
    def restore(cls, path, **overrides) -> "Simulation":
        """Rebuild a simulation from a :meth:`save` file.  Keyword
        overrides may flip the simulator speed knobs (``decode_cache``,
        ``data_fast_path``, ``idle_fast_forward``); architectural
        overrides are rejected.  (Named ``restore`` because ``load`` is
        the facade's program loader.)"""
        from repro.persist.image import load_simulation

        return load_simulation(path, **overrides)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.config
        return (f"Simulation(clusters={c.clusters}, "
                f"threads_per_cluster={c.threads_per_cluster}, "
                f"now={self.chip.now})")
