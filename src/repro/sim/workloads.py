"""Synthetic workload generators.

The paper's trace properties of interest are locality (how often the
TLB/PLB/caches hit), working-set size (how much refill a flush costs),
and sharing degree (how many processes touch the same data).  Each
generator parameterises one of these; all take explicit seeds.

Address-space convention: process ``p`` owns the 16 MiB region starting
at ``PROCESS_SPAN * (p + 1)``; shared regions live below
``PROCESS_SPAN``.  Under single-address-space schemes these are actual
virtual addresses; separate-address-space schemes treat them as
per-process addresses anyway, so the comparison stays fair.
"""

from __future__ import annotations

import random

from repro.sim.trace import MemRef, Trace

#: bytes of private virtual space per process
PROCESS_SPAN = 16 * 1024 * 1024

#: base of the shared region (below every process's private region)
SHARED_BASE = 0


def process_base(pid: int) -> int:
    return PROCESS_SPAN * (pid + 1)


def sequential(pid: int, n: int, stride: int = 8, write_ratio: float = 0.0,
               seed: int = 0, segment: int = 0) -> Trace:
    """A unit-stride sweep — the paper's §2.2 array-walk loop."""
    rng = random.Random(seed)
    base = process_base(pid)
    events = [
        MemRef(pid, base + i * stride, write=rng.random() < write_ratio,
               segment=segment, statically_safe=True)
        for i in range(n)
    ]
    return Trace(events)


def random_uniform(pid: int, n: int, span_bytes: int = 1 << 20,
                   write_ratio: float = 0.3, seed: int = 0,
                   segment: int = 0) -> Trace:
    """Uniformly random word accesses over ``span_bytes``."""
    rng = random.Random(seed)
    base = process_base(pid)
    events = [
        MemRef(pid, base + rng.randrange(span_bytes // 8) * 8,
               write=rng.random() < write_ratio, segment=segment)
        for _ in range(n)
    ]
    return Trace(events)


def working_set(pid: int, n: int, hot_pages: int = 8, cold_pages: int = 256,
                hot_fraction: float = 0.9, page_bytes: int = 4096,
                write_ratio: float = 0.3, seed: int = 0,
                segment: int = 0) -> Trace:
    """A 90/10-style model: ``hot_fraction`` of references land in
    ``hot_pages``, the rest spread over ``cold_pages``."""
    rng = random.Random(seed)
    base = process_base(pid)
    events = []
    for _ in range(n):
        if rng.random() < hot_fraction:
            page = rng.randrange(hot_pages)
        else:
            page = hot_pages + rng.randrange(cold_pages)
        vaddr = base + page * page_bytes + rng.randrange(page_bytes // 8) * 8
        events.append(MemRef(pid, vaddr, write=rng.random() < write_ratio,
                             segment=segment))
    return Trace(events)


def pointer_chase(pid: int, n: int, nodes: int = 1024, node_bytes: int = 64,
                  seed: int = 0, segment: int = 0) -> Trace:
    """Follow a random cyclic permutation of ``nodes`` — low locality,
    every access data-dependent (no access is statically safe)."""
    rng = random.Random(seed)
    order = list(range(nodes))
    rng.shuffle(order)
    base = process_base(pid)
    events = []
    node = 0
    for _ in range(n):
        events.append(MemRef(pid, base + order[node] * node_bytes,
                             segment=segment, statically_safe=False))
        node = (node + 1) % nodes
    return Trace(events)


def shared_access(pids: list[int], n_per_process: int,
                  shared_bytes: int = 1 << 16, write_ratio: float = 0.2,
                  seed: int = 0, segment: int = 1) -> Trace:
    """Every process references the same shared region (E8, in-cache
    sharing): references interleave round-robin across processes."""
    rng = random.Random(seed)
    events = []
    for _ in range(n_per_process):
        # one shared location per step, touched by every process — real
        # sharing, so schemes with per-space cache tags pay for synonyms
        vaddr = SHARED_BASE + rng.randrange(shared_bytes // 8) * 8
        write = rng.random() < write_ratio
        for pid in pids:
            events.append(MemRef(pid, vaddr, write=write, segment=segment))
    return Trace(events)


class ZipfSampler:
    """Rank sampling with Zipf popularity: rank ``r`` (0-based) is
    drawn with probability ∝ 1/(r+1)^exponent.

    This is the skew core shared by the :func:`zipf` page-locality
    trace and the multi-tenant traffic generator
    (:mod:`repro.service.traffic`), which uses it for tenant
    popularity.  Cumulative weights are precomputed once so each draw
    is a binary search, not an O(n) weight scan."""

    def __init__(self, n: int, exponent: float = 1.1):
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        if n <= 0:
            raise ValueError("need at least one rank")
        self.n = n
        self.exponent = exponent
        total = 0.0
        self._cum = []
        for rank in range(1, n + 1):
            total += 1.0 / (rank ** exponent)
            self._cum.append(total)

    def sample(self, rng: random.Random) -> int:
        """One rank in ``[0, n)`` drawn from ``rng``."""
        return rng.choices(range(self.n), cum_weights=self._cum)[0]


def zipf(pid: int, n: int, pages: int = 256, exponent: float = 1.1,
         page_bytes: int = 4096, write_ratio: float = 0.3,
         seed: int = 0, segment: int = 0) -> Trace:
    """Zipf-distributed page popularity — the long-tailed locality of
    real shared services (rank-r page drawn ∝ 1/r^exponent)."""
    rng = random.Random(seed)
    sampler = ZipfSampler(pages, exponent)
    base = process_base(pid)
    events = []
    for _ in range(n):
        page = sampler.sample(rng)
        vaddr = base + page * page_bytes + rng.randrange(page_bytes // 8) * 8
        events.append(MemRef(pid, vaddr, write=rng.random() < write_ratio,
                             segment=segment))
    return Trace(events)


def matrix_traversal(pid: int, rows: int = 64, cols: int = 64,
                     by_row: bool = True, element_bytes: int = 8,
                     seed: int = 0, segment: int = 0) -> Trace:
    """Row-major matrix walked by rows (unit stride) or by columns
    (stride = one row) — the classic locality contrast for cache
    studies.  Reads only; every access statically analysable."""
    base = process_base(pid)
    events = []
    if by_row:
        order = ((r, c) for r in range(rows) for c in range(cols))
    else:
        order = ((r, c) for c in range(cols) for r in range(rows))
    for r, c in order:
        vaddr = base + (r * cols + c) * element_bytes
        events.append(MemRef(pid, vaddr, segment=segment,
                             statically_safe=True))
    return Trace(events)


def gups(pid: int, n: int, table_bytes: int = 1 << 22, seed: int = 0,
         segment: int = 0) -> Trace:
    """Giga-updates-per-second style random read-modify-write over a
    large table: every access is a data-dependent write miss — the
    worst case for every protection scheme with per-access table
    lookups."""
    rng = random.Random(seed)
    base = process_base(pid)
    events = []
    for _ in range(n):
        vaddr = base + rng.randrange(table_bytes // 8) * 8
        events.append(MemRef(pid, vaddr, write=False, segment=segment))
        events.append(MemRef(pid, vaddr, write=True, segment=segment))
    return Trace(events)


def multi_segment(pid: int, n: int, segments: int = 16,
                  segment_bytes: int = 64 * 1024, seed: int = 0) -> Trace:
    """References spread over many segments/objects — stresses
    descriptor caches (segmentation) and capability caches (E10, E11),
    and page-group registers (a process with >4 live groups)."""
    rng = random.Random(seed)
    base = process_base(pid)
    events = []
    for _ in range(n):
        seg = rng.randrange(segments)
        vaddr = base + seg * segment_bytes + rng.randrange(segment_bytes // 8) * 8
        events.append(MemRef(pid, vaddr, segment=seg))
    return Trace(events)
