"""Experiment driver: run schemes over traces and tabulate results.

:func:`format_table` is the one table renderer in the repo: it accepts
either the cross-scheme comparison rows produced by
:func:`run_comparison` or a performance-counter snapshot
(``chip.counters.snapshot()`` /
:meth:`repro.sim.api.Simulation.snapshot`), so benchmarks print both
kinds of result through the same call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - circular at runtime, fine for types
    from repro.baselines.base import ProtectionScheme, SchemeMetrics


@dataclass(frozen=True)
class Row:
    """One scheme's results on one trace."""

    scheme: str
    metrics: "SchemeMetrics"

    @property
    def cycles_per_access(self) -> float:
        return self.metrics.cycles_per_access

    @property
    def total_cycles(self) -> int:
        return self.metrics.total_cycles


def run_comparison(schemes: list["ProtectionScheme"], trace: Trace) -> list[Row]:
    """Run every scheme over its own copy of the trace."""
    return [Row(scheme=s.name, metrics=s.run(trace)) for s in schemes]


def format_table(rows: "list[Row] | Mapping[str, int | float]",
                 title: str = "") -> str:
    """Plain-text results table (benchmarks print these).

    ``rows`` is either the scheme-comparison rows from
    :func:`run_comparison` or a counter snapshot mapping (dotted
    ``unit.event`` names to values), which renders grouped by unit.
    """
    if isinstance(rows, Mapping):
        return _format_counter_table(rows, title)
    lines = []
    if title:
        lines.append(title)
    header = (f"{'scheme':<20} {'accesses':>9} {'cyc/access':>10} "
              f"{'switches':>9} {'cyc/switch':>10} {'total cyc':>12}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        m = row.metrics
        lines.append(
            f"{row.scheme:<20} {m.accesses:>9} {m.cycles_per_access:>10.2f} "
            f"{m.switches:>9} {m.cycles_per_switch:>10.1f} {m.total_cycles:>12}"
        )
    return "\n".join(lines)


def _format_counter_table(snapshot: "Mapping[str, int | float]",
                          title: str = "") -> str:
    """Render a perf-counter snapshot, one block per counter unit."""
    lines = []
    if title:
        lines.append(title)
    width = max((len(name) for name in snapshot), default=20)
    header = f"{'counter':<{width}} {'value':>14}"
    lines.append(header)
    lines.append("-" * len(header))
    previous_unit = None
    for name, value in snapshot.items():
        unit = name.split(".", 1)[0]
        if previous_unit is not None and unit != previous_unit:
            lines.append("")
        previous_unit = unit
        if isinstance(value, float):
            lines.append(f"{name:<{width}} {value:>14.4f}")
        else:
            lines.append(f"{name:<{width}} {value:>14}")
    return "\n".join(lines)


def relative_to(rows: list[Row], baseline: str = "guarded-pointers") -> dict[str, float]:
    """Total cycles of each scheme relative to the named baseline."""
    base = next(r for r in rows if r.scheme == baseline).total_cycles
    if base == 0:
        raise ValueError("baseline consumed zero cycles")
    return {r.scheme: r.total_cycles / base for r in rows}
