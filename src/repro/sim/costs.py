"""Cycle-cost parameters shared by every protection scheme.

The paper's comparisons (§5) are architectural, not measured on one
testbed, so the harness makes every cost an explicit parameter with an
early-90s-plausible default.  Benchmarks print the model they used;
sweeping a parameter shows how robust each comparison's *shape* is.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CostModel:
    """All timing knobs, in cycles unless noted."""

    # -- common memory system -------------------------------------------
    cache_hit: int = 1               #: L1 access
    cache_miss_penalty: int = 10     #: line fill from external memory
    tlb_walk: int = 20               #: software page-table walk on TLB miss
    tlb_serial: int = 1              #: added when translation must finish
                                     #: *before* the cache can be indexed
                                     #: (physically-addressed designs)

    # -- page-based schemes -----------------------------------------------
    page_table_switch: int = 5       #: write the page-table base register
    tlb_flush: int = 10              #: invalidate the whole TLB
    cache_flush: int = 40            #: purge a virtually-addressed cache
    asid_switch: int = 1             #: write the ASID register

    # -- Domain-Page (PLB) [17] -------------------------------------------
    plb_walk: int = 20               #: protection-table walk on PLB miss
    plb_switch: int = 1              #: change the current-domain register

    # -- PA-RISC page groups [18] ------------------------------------------
    group_register_reload: int = 4   #: refill the four page-group registers
    group_miss_trap: int = 100       #: software trap when >4 groups are live

    # -- segmentation (§5.2) -------------------------------------------------
    segment_add: int = 1             #: base+offset add before the cache
    descriptor_miss: int = 12        #: fetch a descriptor from the segment table
    segment_table_switch: int = 5    #: swap the segment-table base

    # -- table-based capabilities (§5.3) ---------------------------------------
    captable_lookup: int = 12        #: capability → virtual address via table
    capcache_hit: int = 0            #: hit in the capability cache (parallel)

    # -- software fault isolation [25] --------------------------------------------
    sfi_check_instructions: int = 4  #: inserted per guarded store/jump
    sfi_read_check_instructions: int = 2  #: per guarded load (full SFI only)

    # -- kernel paths ------------------------------------------------------------------
    trap_entry: int = 50             #: enter the kernel on a trap
    trap_return: int = 30            #: return from the kernel

    # -- revocation paths (E17) ---------------------------------------------------------
    pte_invalidate: int = 2          #: drop one PTE / descriptor / table entry

    # -- Capstone linear/revocable capabilities (arxiv 2302.13863) ----------------------
    capstone_revnode_walk: int = 10  #: fetch a revocation-tree node from memory
    capstone_linear_move: int = 3    #: linear hand-off: invalidate source, install dest
    capstone_revoke_node: int = 6    #: flip one revnode (kills the dominated subtree)

    # -- Capacity MACed pointers (arxiv 2309.11151) -------------------------------------
    capacity_mac_verify: int = 4     #: PAC-style MAC check on dereference
    capacity_mac_sign: int = 4       #: (re-)MAC a pointer for a receiving domain
    capacity_key_switch: int = 1     #: load another domain's key register
    capacity_key_rotate: int = 8     #: mint a fresh key (bulk-revokes the old one)

    # -- uninitialized capabilities (arxiv 2006.01608) ----------------------------------
    uninit_promote: int = 1          #: advance the init frontier on a first write


#: The default model used by every benchmark unless overridden.
DEFAULT_COSTS = CostModel()
