"""ASID-tagged paging (§5.1, second variant).

Address-space identifiers remove the flushes: TLB entries and cache
tags carry the process id.  The cost moves elsewhere — shared data
becomes synonyms ("no data can be shared in a virtually addressed cache
using this system"), so the same shared line occupies one cache line
and one TLB entry *per process*, and sharing through main memory still
needs n×m page-table entries (E8).
"""

from __future__ import annotations

from repro.baselines.base import Lookaside, ProtectionScheme, SimpleCache
from repro.sim.costs import CostModel
from repro.sim.trace import MemRef

PAGE_BYTES = 4096


class AsidPagedScheme(ProtectionScheme):
    name = "paged-asid"

    def __init__(self, costs: CostModel | None = None,
                 cache_bytes: int = 128 * 1024, tlb_entries: int = 64):
        super().__init__(costs)
        self.cache = SimpleCache(total_bytes=cache_bytes)
        self.tlb = Lookaside(tlb_entries)

    def access(self, ref: MemRef) -> int:
        cycles = self.costs.cache_hit
        # cache tags are (ASID, vaddr): no cross-process sharing of lines
        if not self.cache.probe(ref.vaddr, space=ref.pid):
            cycles += self.costs.cache_miss_penalty
            if not self.tlb.probe((ref.pid, ref.vaddr // PAGE_BYTES)):
                cycles += self.costs.tlb_walk
        return cycles

    def switch(self, pid: int) -> int:
        if pid == self.current_pid:
            return 0
        return self.costs.asid_switch
