"""Common machinery for the §5 protection-scheme comparison.

Every scheme implements :class:`ProtectionScheme`: it consumes the same
:class:`~repro.sim.trace.MemRef`/:class:`~repro.sim.trace.Switch`
events and charges cycles through the same :class:`~repro.sim.costs.
CostModel`, so the cross-scheme numbers in E9–E12 are commensurable.

Two reusable hardware models live here:

* :class:`Lookaside` — an LRU lookaside buffer (TLB, PLB, descriptor
  cache, capability cache) keyed by arbitrary tuples, so a scheme that
  tags entries with an address-space or domain id just includes it in
  the key.
* :class:`SimpleCache` — a set-associative L1 model whose tag can
  optionally include a space id (that is how ASID schemes lose in-cache
  sharing: the same shared line occupies one way per address space).
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.sim.costs import CostModel
from repro.sim.trace import MemRef, Switch, Trace


class Lookaside:
    """Fully-associative LRU buffer over hashable keys."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError("lookaside buffer needs at least one entry")
        self.entries = entries
        self._cache: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def probe(self, key) -> bool:
        """Touch ``key``; True on hit.  A miss installs the entry."""
        if key in self._cache:
            self._cache.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._cache[key] = True
        if len(self._cache) > self.entries:
            self._cache.popitem(last=False)
        return False

    def flush(self) -> None:
        self._cache.clear()

    @property
    def occupancy(self) -> int:
        return len(self._cache)


class SimpleCache:
    """Set-associative cache; tags may include a space id.

    ``space`` is 0 for single-address-space schemes (everyone shares
    lines) and the ASID/process id for schemes whose virtual tags are
    qualified — which makes shared data occupy one line per space.
    """

    def __init__(self, total_bytes: int = 128 * 1024, line_bytes: int = 64,
                 ways: int = 2):
        self.line_bytes = line_bytes
        self.sets = total_bytes // line_bytes // ways
        self.ways = ways
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def probe(self, vaddr: int, space: int = 0) -> bool:
        line = vaddr // self.line_bytes
        index = line % self.sets
        key = (space, line)
        entry = self._sets[index]
        if key in entry:
            entry.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        entry[key] = True
        if len(entry) > self.ways:
            entry.popitem(last=False)
        return False

    def flush(self) -> None:
        for s in self._sets:
            s.clear()


@dataclass
class SchemeMetrics:
    """Per-run accounting for one scheme."""

    accesses: int = 0
    access_cycles: int = 0
    switches: int = 0
    switch_cycles: int = 0
    check_instructions: int = 0   #: SFI-style inserted instructions
    protection_faults: int = 0    #: access-control rejections/software traps

    @property
    def total_cycles(self) -> int:
        return self.access_cycles + self.switch_cycles

    @property
    def cycles_per_access(self) -> float:
        return self.access_cycles / self.accesses if self.accesses else 0.0

    @property
    def cycles_per_switch(self) -> float:
        return self.switch_cycles / self.switches if self.switches else 0.0


class ProtectionScheme(abc.ABC):
    """One §5 protection scheme as a trace-driven timing model."""

    #: human-readable name used in benchmark tables
    name: str = "abstract"

    def __init__(self, costs: CostModel | None = None):
        self.costs = costs or CostModel()
        self.metrics = SchemeMetrics()
        self.current_pid: int | None = None

    # -- the two scheme-defining operations ---------------------------------

    @abc.abstractmethod
    def access(self, ref: MemRef) -> int:
        """Cycles charged for one reference (protection + translation +
        cache), excluding the work the program itself does."""

    @abc.abstractmethod
    def switch(self, pid: int) -> int:
        """Cycles charged to change the protection domain to ``pid``."""

    # -- bookkeeping for the sharing experiment (E8) ----------------------------

    def share_cost_entries(self, pages: int, processes: int) -> int:
        """Protection-state entries needed for ``processes`` processes
        to share ``pages`` pages.  Page-table-based schemes need n×m;
        capability schemes need one pointer per process."""
        return pages * processes

    # -- driver ------------------------------------------------------------------

    def run(self, trace: Trace) -> SchemeMetrics:
        """Consume a trace, accumulating metrics."""
        for event in trace:
            if isinstance(event, Switch):
                cycles = self.switch(event.pid)
                self.current_pid = event.pid
                self.metrics.switches += 1
                self.metrics.switch_cycles += cycles
            else:
                cycles = self.access(event)
                self.metrics.accesses += 1
                self.metrics.access_cycles += cycles
        return self.metrics
