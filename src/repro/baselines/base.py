"""Common machinery for the §5 protection-scheme comparison.

Every scheme implements :class:`ProtectionScheme`: it consumes the same
:class:`~repro.sim.trace.MemRef`/:class:`~repro.sim.trace.Switch`
events and charges cycles through the same :class:`~repro.sim.costs.
CostModel`, so the cross-scheme numbers in E9–E12 and the E17
compartmentalization study are commensurable.  Beyond ``access`` and
``switch``, schemes can charge capability hand-offs (:meth:`
ProtectionScheme.handoff`), price a bulk domain revocation
(:meth:`ProtectionScheme.revoke_domain` — revoked domains' later
references trap uniformly), and report protection-metadata footprint
(:meth:`ProtectionScheme.memory_overhead_bytes`).  The contract is
documented in docs/BASELINES.md.

Two reusable hardware models live here:

* :class:`Lookaside` — an LRU lookaside buffer (TLB, PLB, descriptor
  cache, capability cache) keyed by arbitrary tuples, so a scheme that
  tags entries with an address-space or domain id just includes it in
  the key.
* :class:`SimpleCache` — a set-associative L1 model whose tag can
  optionally include a space id (that is how ASID schemes lose in-cache
  sharing: the same shared line occupies one way per address space).
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.sim.costs import CostModel
from repro.sim.trace import MemRef, Switch, Trace


class Lookaside:
    """Fully-associative LRU buffer over hashable keys."""

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError("lookaside buffer needs at least one entry")
        self.entries = entries
        self._cache: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def probe(self, key) -> bool:
        """Touch ``key``; True on hit.  A miss installs the entry."""
        if key in self._cache:
            self._cache.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._cache[key] = True
        if len(self._cache) > self.entries:
            self._cache.popitem(last=False)
        return False

    def flush(self) -> None:
        self._cache.clear()

    @property
    def occupancy(self) -> int:
        return len(self._cache)


class SimpleCache:
    """Set-associative cache; tags may include a space id.

    ``space`` is 0 for single-address-space schemes (everyone shares
    lines) and the ASID/process id for schemes whose virtual tags are
    qualified — which makes shared data occupy one line per space.
    """

    def __init__(self, total_bytes: int = 128 * 1024, line_bytes: int = 64,
                 ways: int = 2):
        self.line_bytes = line_bytes
        self.sets = total_bytes // line_bytes // ways
        self.ways = ways
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def probe(self, vaddr: int, space: int = 0) -> bool:
        line = vaddr // self.line_bytes
        index = line % self.sets
        key = (space, line)
        entry = self._sets[index]
        if key in entry:
            entry.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        entry[key] = True
        if len(entry) > self.ways:
            entry.popitem(last=False)
        return False

    def flush(self) -> None:
        for s in self._sets:
            s.clear()


#: page size every scheme's bookkeeping assumes (matches the per-scheme
#: PAGE_BYTES constants) and a PTE's size in a radix page table
PAGE_BYTES = 4096
PTE_BYTES = 8
#: one tag bit per 64-bit word = 1/64 of the data held (§4.1)
TAG_BITS_PER_WORD = 1


@dataclass
class SchemeMetrics:
    """Per-run accounting for one scheme."""

    accesses: int = 0
    access_cycles: int = 0
    switches: int = 0
    switch_cycles: int = 0
    check_instructions: int = 0   #: SFI-style inserted instructions
    protection_faults: int = 0    #: access-control rejections/software traps
    handoffs: int = 0             #: capabilities handed across switches
    revocations: int = 0          #: bulk domain revocations performed
    revoke_cycles: int = 0        #: cycles spent revoking

    @property
    def total_cycles(self) -> int:
        return self.access_cycles + self.switch_cycles

    @property
    def cycles_per_access(self) -> float:
        return self.access_cycles / self.accesses if self.accesses else 0.0

    @property
    def cycles_per_switch(self) -> float:
        return self.switch_cycles / self.switches if self.switches else 0.0


class ProtectionScheme(abc.ABC):
    """One §5 protection scheme as a trace-driven timing model."""

    #: human-readable name used in benchmark tables
    name: str = "abstract"

    def __init__(self, costs: CostModel | None = None):
        self.costs = costs or CostModel()
        self.metrics = SchemeMetrics()
        self.current_pid: int | None = None
        #: domains whose access rights were bulk-revoked; their later
        #: references trap to software (uniform across schemes, so the
        #: E17 post-revocation fault counts are comparable)
        self.revoked: set[int] = set()

    # -- the two scheme-defining operations ---------------------------------

    @abc.abstractmethod
    def access(self, ref: MemRef) -> int:
        """Cycles charged for one reference (protection + translation +
        cache), excluding the work the program itself does."""

    @abc.abstractmethod
    def switch(self, pid: int) -> int:
        """Cycles charged to change the protection domain to ``pid``."""

    # -- capability hand-off (modern schemes charge this) -------------------

    def handoff(self, pointers: int, crossed: bool) -> int:
        """Cycles to hand ``pointers`` capabilities across a switch
        (``crossed`` is False when the switch stayed in the same
        domain).  Free for the §5 schemes: pointers there are plain
        integers (or table indices) that copy for nothing.  Capstone
        pays a linear move per pointer; Capacity re-MACs each pointer
        for the receiving domain's key when the domain changed."""
        return 0

    # -- bookkeeping for the sharing experiment (E8) ----------------------------

    def share_cost_entries(self, pages: int, processes: int) -> int:
        """Protection-state entries needed for ``processes`` processes
        to share ``pages`` pages.  Page-table-based schemes need n×m;
        capability schemes need one pointer per process."""
        return pages * processes

    # -- revocation and memory overhead (E17) -------------------------------

    def revoke_domain(self, pid: int, *, pages: int = 1,
                      segments: int = 1) -> int:
        """Bulk-revoke every right domain ``pid`` holds (the tenant-
        eviction case): returns the cycles charged and marks the
        domain so its later references trap.  ``pages``/``segments``
        size the victim's footprint for cost models that walk it."""
        cycles = self._revoke_cost(max(pages, 1), max(segments, 1))
        self.revoked.add(pid)
        self.metrics.revocations += 1
        self.metrics.revoke_cycles += cycles
        return cycles

    def _revoke_cost(self, pages: int, segments: int) -> int:
        """Default: a kernel walks the victim's page table dropping
        every PTE, then flushes the TLB (the §5 page-based story)."""
        return (self.costs.trap_entry + pages * self.costs.pte_invalidate
                + self.costs.tlb_flush + self.costs.trap_return)

    def memory_overhead_bytes(self, domains: int,
                              words_per_domain: int) -> int:
        """Protection-metadata bytes for ``domains`` domains each
        owning ``words_per_domain`` private 64-bit words.  Default:
        one private radix page table per domain (the paged/ASID
        story) — its leaves are page-granular, so even a tiny domain
        pays a whole root page."""
        pages = max(1, -(-words_per_domain * 8 // PAGE_BYTES))
        table_bytes = -(-pages * PTE_BYTES // PAGE_BYTES) * PAGE_BYTES
        return domains * table_bytes

    def extras(self) -> dict:
        """Scheme-specific counters worth surfacing in reports."""
        return {}

    # -- driver ------------------------------------------------------------------

    def run(self, trace: Trace) -> SchemeMetrics:
        """Consume a trace, accumulating metrics.  References by a
        revoked domain do not reach the scheme's access path: they
        trap to software (counted as protection faults)."""
        for event in trace:
            if isinstance(event, Switch):
                cycles = self.switch(event.pid)
                handed = getattr(event, "handoff", 0)
                if handed:
                    cycles += self.handoff(handed,
                                           event.pid != self.current_pid)
                    self.metrics.handoffs += handed
                self.current_pid = event.pid
                self.metrics.switches += 1
                self.metrics.switch_cycles += cycles
            elif event.pid in self.revoked:
                self.metrics.protection_faults += 1
                self.metrics.accesses += 1
                self.metrics.access_cycles += (self.costs.trap_entry
                                               + self.costs.trap_return)
            else:
                cycles = self.access(event)
                self.metrics.accesses += 1
                self.metrics.access_cycles += cycles
        return self.metrics
