"""Separate-address-space paging (§5.1, first variant).

Each process has its own page table and the TLB has no address-space
identifiers, so every protection-domain change must install a new page
table, flush the TLB and purge the virtually-addressed cache.  Access
itself looks like the guarded-pointer path; the scheme loses on
switches and on the refill misses that follow them.
"""

from __future__ import annotations

from repro.baselines.base import Lookaside, ProtectionScheme, SimpleCache
from repro.sim.costs import CostModel
from repro.sim.trace import MemRef

PAGE_BYTES = 4096


class PagedSeparateScheme(ProtectionScheme):
    name = "paged-separate"

    def __init__(self, costs: CostModel | None = None,
                 cache_bytes: int = 128 * 1024, tlb_entries: int = 64):
        super().__init__(costs)
        self.cache = SimpleCache(total_bytes=cache_bytes)
        self.tlb = Lookaside(tlb_entries)

    def access(self, ref: MemRef) -> int:
        cycles = self.costs.cache_hit
        if not self.cache.probe(ref.vaddr, space=0):
            cycles += self.costs.cache_miss_penalty
            if not self.tlb.probe(ref.vaddr // PAGE_BYTES):
                cycles += self.costs.tlb_walk
        return cycles

    def switch(self, pid: int) -> int:
        if pid == self.current_pid:
            return 0
        self.tlb.flush()
        self.cache.flush()
        return (self.costs.page_table_switch
                + self.costs.tlb_flush
                + self.costs.cache_flush)
