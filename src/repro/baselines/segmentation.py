"""Classical table-based segmentation (§5.2 — B5000, Multics, Monads).

Each process owns a table of segment descriptors.  Every reference
first resolves its segment descriptor (descriptor cache, else a memory
lookup into the table) and adds base+offset *before* the cache can be
indexed — the extra serial translation level the paper charges against
segmentation — then proceeds through paging (two-level translation).
Switching processes swaps the descriptor-table base and invalidates the
descriptor cache.
"""

from __future__ import annotations

from repro.baselines.base import Lookaside, ProtectionScheme, SimpleCache
from repro.sim.costs import CostModel
from repro.sim.trace import MemRef

PAGE_BYTES = 4096


class SegmentationScheme(ProtectionScheme):
    name = "segmentation"

    def __init__(self, costs: CostModel | None = None,
                 cache_bytes: int = 128 * 1024, tlb_entries: int = 64,
                 descriptor_entries: int = 16):
        super().__init__(costs)
        self.cache = SimpleCache(total_bytes=cache_bytes)
        self.tlb = Lookaside(tlb_entries)
        self.descriptors = Lookaside(descriptor_entries)

    def access(self, ref: MemRef) -> int:
        # level 1: segment descriptor + relocation add, serial with cache
        cycles = self.costs.segment_add
        if not self.descriptors.probe((ref.pid, ref.segment)):
            cycles += self.costs.descriptor_miss
        # level 2: the ordinary paged memory path
        cycles += self.costs.cache_hit
        if not self.cache.probe(ref.vaddr, space=0):
            cycles += self.costs.cache_miss_penalty
            if not self.tlb.probe(ref.vaddr // PAGE_BYTES):
                cycles += self.costs.tlb_walk
        return cycles

    def switch(self, pid: int) -> int:
        if pid == self.current_pid:
            return 0
        # per-process descriptor tables: the cached descriptors die
        self.descriptors.flush()
        return self.costs.segment_table_switch

    def share_cost_entries(self, pages: int, processes: int) -> int:
        # "Every process must have its own segment descriptor for each
        # shared segment and only the operating system can make these
        # available" (§5.2) — one descriptor per process, regardless of
        # size, but each requires OS intervention to install.
        return processes

    def _revoke_cost(self, pages: int, segments: int) -> int:
        # invalidate the victim's descriptors, then drop the pages
        # beneath them (segmentation here rides on paging)
        self.descriptors.flush()
        return (self.costs.trap_entry
                + segments * self.costs.pte_invalidate
                + pages * self.costs.pte_invalidate
                + self.costs.trap_return)

    def memory_overhead_bytes(self, domains: int,
                              words_per_domain: int) -> int:
        # a per-domain descriptor table over a per-domain page table
        # (page-granular, like the base paged story)
        from repro.baselines.base import PTE_BYTES
        segments = max(1, words_per_domain // 512)
        pages = max(1, -(-words_per_domain * 8 // PAGE_BYTES))
        table_bytes = -(-pages * PTE_BYTES // PAGE_BYTES) * PAGE_BYTES
        return domains * (segments * 8 + table_bytes)
