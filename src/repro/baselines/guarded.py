"""Guarded pointers in the trace harness (the paper's scheme).

Protection is checked in the execution unit before the access issues —
off the memory critical path, zero cycles here.  The cache is virtually
addressed and shared by all processes (one space), translation happens
only on cache misses through the single shared TLB, and a context
switch performs no protection work at all.
"""

from __future__ import annotations

from repro.baselines.base import Lookaside, ProtectionScheme, SimpleCache
from repro.sim.costs import CostModel
from repro.sim.trace import MemRef

PAGE_BYTES = 4096


class GuardedPointerScheme(ProtectionScheme):
    name = "guarded-pointers"

    def __init__(self, costs: CostModel | None = None,
                 cache_bytes: int = 128 * 1024, tlb_entries: int = 64):
        super().__init__(costs)
        self.cache = SimpleCache(total_bytes=cache_bytes)
        self.tlb = Lookaside(tlb_entries)

    def access(self, ref: MemRef) -> int:
        cycles = self.costs.cache_hit
        if not self.cache.probe(ref.vaddr, space=0):
            cycles += self.costs.cache_miss_penalty
            if not self.tlb.probe(ref.vaddr // PAGE_BYTES):
                cycles += self.costs.tlb_walk
        return cycles

    def switch(self, pid: int) -> int:
        return 0  # the whole point (§3: zero-cost context switching)

    def share_cost_entries(self, pages: int, processes: int) -> int:
        # one guarded pointer per process, independent of region size
        return processes

    # revocation keeps the base-class cost: §4.3's cheap path *is* the
    # page-based one — unmap the segment's pages and flush the TLB.

    def memory_overhead_bytes(self, domains: int,
                              words_per_domain: int) -> int:
        # no tables at all; the cost is the tag bit on every word the
        # domain holds (1/64 ≈ 1.5625%, §4.1)
        return domains * words_per_domain // 8
