"""The 2020s capability successors as trace-driven timing models (E17).

The paper's §5 rivals are all early-90s designs.  These three schemes
are the modern battleground — each keeps guarded pointers'
single-address-space memory path (shared virtually-addressed cache,
translation only on misses) but answers the questions the 1994 design
left open, and pays for the answer somewhere measurable:

* :class:`CapstoneScheme` — Capstone's linear + revocable capabilities
  (arxiv 2302.13863).  Every capability is dominated by a node in a
  revocation tree; a dereference must observe the node's state (a
  revocation-cache probe, else a revnode fetch from memory), and
  handing a linear capability to another party *moves* it — the source
  is invalidated, which costs cycles on every cross-domain hand-off.
  In exchange, revoking a whole subtree is one node flip: bulk
  revocation is O(1) and needs no privileged software.

* :class:`CapacityScheme` — Capacity's PAC-style MACed pointers
  (arxiv 2309.11151).  No tag bit at all (the memory-overhead win):
  authenticity comes from a per-domain MAC folded into the pointer's
  unused high bits.  The price is a MAC verification on dereference
  (cached for already-verified pointers) and a re-sign whenever a
  pointer is handed to a domain with a different key.  Bulk revocation
  is a key rotation.

* :class:`UninitCapScheme` — uninitialized capabilities
  (arxiv 2006.01608).  A guarded-pointer machine whose fresh segments
  carry write-before-read permission: memory can be passed to an
  untrusted allocatee *without zeroing it first*, because reads of
  never-written words are refused by the same issue-site comparator
  that checks bounds.  The model charges a permission-state transition
  (frontier advance) on each first write and counts refused
  uninitialized reads; the win is the zero-fill traffic every other
  scheme spends at allocation, reported via :meth:`extras`.

All three share :class:`~repro.baselines.base.Lookaside` /
:class:`~repro.baselines.base.SimpleCache` and charge through the one
:class:`~repro.sim.costs.CostModel`, so their numbers are commensurable
with the §5 schemes (docs/BASELINES.md has the full contract).
"""

from __future__ import annotations

from repro.baselines.base import Lookaside, ProtectionScheme, SimpleCache
from repro.sim.costs import CostModel
from repro.sim.trace import MemRef

PAGE_BYTES = 4096

#: bytes of one revocation-tree node (parent link, state, bounds)
REVNODE_BYTES = 32
#: bytes of one per-domain MAC key
KEY_BYTES = 16


class CapstoneScheme(ProtectionScheme):
    """Capstone-style linear/revocable capabilities."""

    name = "capstone-linear"

    def __init__(self, costs: CostModel | None = None,
                 cache_bytes: int = 128 * 1024, tlb_entries: int = 64,
                 revcache_entries: int = 64):
        super().__init__(costs)
        self.cache = SimpleCache(total_bytes=cache_bytes)
        self.tlb = Lookaside(tlb_entries)
        #: recently-checked revocation-tree nodes, keyed by segment
        self.revcache = Lookaside(revcache_entries)
        self.revnode_walks = 0
        self.linear_moves = 0

    def access(self, ref: MemRef) -> int:
        # the capability's revnode state must be observed before the
        # access commits: a revcache hit overlaps the cache probe, a
        # miss fetches the node from memory (the Capstone tax)
        cycles = self.costs.cache_hit
        if not self.revcache.probe(ref.segment):
            cycles += self.costs.capstone_revnode_walk
            self.revnode_walks += 1
        if not self.cache.probe(ref.vaddr, space=0):
            cycles += self.costs.cache_miss_penalty
            if not self.tlb.probe(ref.vaddr // PAGE_BYTES):
                cycles += self.costs.tlb_walk
        return cycles

    def switch(self, pid: int) -> int:
        return 0  # capabilities are possessions — no tables to swap

    def handoff(self, pointers: int, crossed: bool) -> int:
        # a linear capability *moves*: delete at the source, install
        # at the destination — charged whether or not the receiving
        # thread runs in the same domain
        self.linear_moves += pointers
        return pointers * self.costs.capstone_linear_move

    def _revoke_cost(self, pages: int, segments: int) -> int:
        # flip the node dominating the victim's subtree: every
        # capability under it dies at once, no kernel involved —
        # the cached copies of the node must go, nothing else
        self.revcache.flush()
        return self.costs.capstone_revoke_node

    def share_cost_entries(self, pages: int, processes: int) -> int:
        return processes  # one capability per sharer

    def memory_overhead_bytes(self, domains: int,
                              words_per_domain: int) -> int:
        # tag bits on every held word, plus one revnode per segment
        segments = max(1, words_per_domain // 512)
        return domains * (words_per_domain // 8
                          + segments * REVNODE_BYTES)

    def extras(self) -> dict:
        return {"revnode_walks": self.revnode_walks,
                "linear_moves": self.linear_moves,
                "revcache_hit_rate": round(
                    self.revcache.hits
                    / max(self.revcache.hits + self.revcache.misses, 1), 4)}


class CapacityScheme(ProtectionScheme):
    """Capacity-style cryptographically-MACed (PAC-like) pointers."""

    name = "capacity-mac"

    def __init__(self, costs: CostModel | None = None,
                 cache_bytes: int = 128 * 1024, tlb_entries: int = 64,
                 verified_entries: int = 64):
        super().__init__(costs)
        self.cache = SimpleCache(total_bytes=cache_bytes)
        self.tlb = Lookaside(tlb_entries)
        #: pointers already MAC-verified under the current key, keyed
        #: by (domain, object) — a verified pointer stays cheap until
        #: it leaves the table
        self.verified = Lookaside(verified_entries)
        self.mac_verifies = 0
        self.mac_signs = 0

    def access(self, ref: MemRef) -> int:
        cycles = self.costs.cache_hit
        # authenticity check: recompute the MAC under the domain's key
        # unless this pointer was verified recently
        if not self.verified.probe((ref.pid, ref.segment)):
            cycles += self.costs.capacity_mac_verify
            self.mac_verifies += 1
        if not self.cache.probe(ref.vaddr, space=0):
            cycles += self.costs.cache_miss_penalty
            if not self.tlb.probe(ref.vaddr // PAGE_BYTES):
                cycles += self.costs.tlb_walk
        return cycles

    def switch(self, pid: int) -> int:
        if pid == self.current_pid:
            return 0
        return self.costs.capacity_key_switch

    def handoff(self, pointers: int, crossed: bool) -> int:
        # a pointer minted for one domain fails the MAC under another
        # domain's key: crossing hand-offs strip and re-sign
        if not crossed:
            return 0
        self.mac_signs += pointers
        return pointers * self.costs.capacity_mac_sign

    def _revoke_cost(self, pages: int, segments: int) -> int:
        # rotate the victim's key: every pointer signed under it fails
        # verification from now on.  Monitor-mediated (a trap), and the
        # verified-pointer table can no longer be trusted.
        self.verified.flush()
        return (self.costs.trap_entry + self.costs.capacity_key_rotate
                + self.costs.trap_return)

    def share_cost_entries(self, pages: int, processes: int) -> int:
        return processes  # one signed pointer per sharer

    def memory_overhead_bytes(self, domains: int,
                              words_per_domain: int) -> int:
        # the headline win: no tag bit, no tables — the MAC rides in
        # the pointer's unused high bits; state is one key per domain
        return domains * KEY_BYTES

    def extras(self) -> dict:
        return {"mac_verifies": self.mac_verifies,
                "mac_signs": self.mac_signs,
                "verified_hit_rate": round(
                    self.verified.hits
                    / max(self.verified.hits + self.verified.misses, 1), 4)}


class UninitCapScheme(ProtectionScheme):
    """Uninitialized capabilities: write-before-read permission flow."""

    name = "uninit-caps"

    def __init__(self, costs: CostModel | None = None,
                 cache_bytes: int = 128 * 1024, tlb_entries: int = 64):
        super().__init__(costs)
        self.cache = SimpleCache(total_bytes=cache_bytes)
        self.tlb = Lookaside(tlb_entries)
        #: word addresses known initialized (the paper tracks a linear
        #: frontier per capability; per-word tracking is the sparse
        #: upper bound of that — every first write is a promotion)
        self._written: set[int] = set()
        self.init_promotes = 0
        self.uninit_reads = 0

    def access(self, ref: MemRef) -> int:
        word = ref.vaddr & ~7
        if ref.write:
            if word not in self._written:
                # first write: promote the word past the init frontier
                # (the U-permission state transition)
                self._written.add(word)
                self.init_promotes += 1
                return self._memory_path(ref) + self.costs.uninit_promote
        elif word not in self._written:
            # a read below the frontier is refused by the same
            # issue-site comparator that checks bounds: no cycles, but
            # the program sees a fault instead of leaked garbage
            self.uninit_reads += 1
        return self._memory_path(ref)

    def _memory_path(self, ref: MemRef) -> int:
        cycles = self.costs.cache_hit
        if not self.cache.probe(ref.vaddr, space=0):
            cycles += self.costs.cache_miss_penalty
            if not self.tlb.probe(ref.vaddr // PAGE_BYTES):
                cycles += self.costs.tlb_walk
        return cycles

    def switch(self, pid: int) -> int:
        return 0  # guarded-pointer machine: zero-cost switching

    def share_cost_entries(self, pages: int, processes: int) -> int:
        return processes

    # revocation keeps the guarded-pointer cost (unmap the pages)

    def memory_overhead_bytes(self, domains: int,
                              words_per_domain: int) -> int:
        # tag bits as guarded; the frontier reuses the capability
        # word's offset field, so it stores for free
        return domains * words_per_domain // 8

    def extras(self) -> dict:
        return {"init_promotes": self.init_promotes,
                "uninit_reads": self.uninit_reads,
                # what every zero-on-allocate scheme would have paid to
                # hand these words out safely
                "zero_fill_words_saved": len(self._written)}
