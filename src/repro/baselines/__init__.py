"""The §5 comparison schemes as trace-driven timing models.

``ALL_SCHEMES`` builds one instance of every scheme — benchmarks
iterate it to print cross-scheme tables.  ``battleground_schemes``
builds the nine-scheme E17 roster: the five named §5 rivals, guarded
pointers, and the three modern capability successors from
:mod:`repro.baselines.modern` (docs/BASELINES.md explains the split).
"""

from repro.baselines.asid import AsidPagedScheme
from repro.baselines.base import Lookaside, ProtectionScheme, SchemeMetrics, SimpleCache
from repro.baselines.captable import CapTableScheme
from repro.baselines.domain_page import DomainPageScheme
from repro.baselines.guarded import GuardedPointerScheme
from repro.baselines.modern import CapacityScheme, CapstoneScheme, UninitCapScheme
from repro.baselines.page_group import PageGroupScheme
from repro.baselines.paged import PagedSeparateScheme
from repro.baselines.segmentation import SegmentationScheme
from repro.baselines.sfi import SFIScheme

#: constructors for every §5-era scheme, in the order §5 discusses them
SCHEME_CLASSES = [
    GuardedPointerScheme,
    PagedSeparateScheme,
    AsidPagedScheme,
    DomainPageScheme,
    PageGroupScheme,
    SegmentationScheme,
    CapTableScheme,
    SFIScheme,
]

#: the 2020s capability successors (E17's challengers)
MODERN_SCHEME_CLASSES = [
    CapstoneScheme,
    CapacityScheme,
    UninitCapScheme,
]

#: the nine-scheme E17 battleground: guarded pointers, the five rivals
#: §5 names head-on (paged, ASID, segmentation, capability tables,
#: SFI), and the three modern schemes.  Domain-page and page-group are
#: §5.1 variants kept for E9 but outside the battleground roster.
BATTLEGROUND_CLASSES = [
    GuardedPointerScheme,
    PagedSeparateScheme,
    AsidPagedScheme,
    SegmentationScheme,
    CapTableScheme,
    SFIScheme,
    CapstoneScheme,
    CapacityScheme,
    UninitCapScheme,
]


def all_schemes(costs=None, **kwargs):
    """Fresh instances of every §5-era scheme sharing one cost model."""
    return [cls(costs, **kwargs) for cls in SCHEME_CLASSES]


def battleground_schemes(costs=None, **kwargs):
    """Fresh instances of the nine E17 schemes sharing one cost model."""
    return [cls(costs, **kwargs) for cls in BATTLEGROUND_CLASSES]


__all__ = [
    "AsidPagedScheme",
    "Lookaside",
    "ProtectionScheme",
    "SchemeMetrics",
    "SimpleCache",
    "CapTableScheme",
    "CapacityScheme",
    "CapstoneScheme",
    "DomainPageScheme",
    "GuardedPointerScheme",
    "PageGroupScheme",
    "PagedSeparateScheme",
    "SegmentationScheme",
    "SFIScheme",
    "UninitCapScheme",
    "SCHEME_CLASSES",
    "MODERN_SCHEME_CLASSES",
    "BATTLEGROUND_CLASSES",
    "all_schemes",
    "battleground_schemes",
]
