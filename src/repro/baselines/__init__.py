"""The §5 comparison schemes as trace-driven timing models.

``ALL_SCHEMES`` builds one instance of every scheme — benchmarks
iterate it to print cross-scheme tables.
"""

from repro.baselines.asid import AsidPagedScheme
from repro.baselines.base import Lookaside, ProtectionScheme, SchemeMetrics, SimpleCache
from repro.baselines.captable import CapTableScheme
from repro.baselines.domain_page import DomainPageScheme
from repro.baselines.guarded import GuardedPointerScheme
from repro.baselines.page_group import PageGroupScheme
from repro.baselines.paged import PagedSeparateScheme
from repro.baselines.segmentation import SegmentationScheme
from repro.baselines.sfi import SFIScheme

#: constructors for every scheme, in the order §5 discusses them
SCHEME_CLASSES = [
    GuardedPointerScheme,
    PagedSeparateScheme,
    AsidPagedScheme,
    DomainPageScheme,
    PageGroupScheme,
    SegmentationScheme,
    CapTableScheme,
    SFIScheme,
]


def all_schemes(costs=None, **kwargs):
    """Fresh instances of every scheme sharing one cost model."""
    return [cls(costs, **kwargs) for cls in SCHEME_CLASSES]


__all__ = [
    "AsidPagedScheme",
    "Lookaside",
    "ProtectionScheme",
    "SchemeMetrics",
    "SimpleCache",
    "CapTableScheme",
    "DomainPageScheme",
    "GuardedPointerScheme",
    "PageGroupScheme",
    "PagedSeparateScheme",
    "SegmentationScheme",
    "SFIScheme",
    "SCHEME_CLASSES",
    "all_schemes",
]
