"""HP PA-RISC page-group protection (Lee [18], §5.1).

Access control is per page group: each TLB entry carries a group id
that must match one of four special access-id registers.  Switches are
cheap (reload the four registers; no flushes), but (a) the TLB and the
four comparators sit on *every* access, and (b) a process touching more
than four groups traps to software to rotate the registers — both
disadvantages the paper calls out.  ``ref.segment`` serves as the page
group id.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.baselines.base import Lookaside, ProtectionScheme, SimpleCache
from repro.sim.costs import CostModel
from repro.sim.trace import MemRef

PAGE_BYTES = 4096
GROUP_REGISTERS = 4


class PageGroupScheme(ProtectionScheme):
    name = "page-group"

    def __init__(self, costs: CostModel | None = None,
                 cache_bytes: int = 128 * 1024, tlb_entries: int = 64):
        super().__init__(costs)
        self.cache = SimpleCache(total_bytes=cache_bytes)
        self.tlb = Lookaside(tlb_entries)
        #: LRU contents of the four access-id registers
        self._groups: OrderedDict[int, bool] = OrderedDict()
        #: per-process register contents, restored by the OS at switch
        self._saved: dict[int, OrderedDict] = {}
        self.group_traps = 0

    def _check_group(self, group: int) -> int:
        """Compare against the four registers; software-rotate on miss."""
        if group in self._groups:
            self._groups.move_to_end(group)
            return 0
        self.group_traps += 1
        self.metrics.protection_faults += 1
        self._groups[group] = True
        if len(self._groups) > GROUP_REGISTERS:
            self._groups.popitem(last=False)
        return self.costs.group_miss_trap

    def access(self, ref: MemRef) -> int:
        # the TLB supplies the page-group id, so it is probed on every
        # access (hit overlaps the cache; a miss serialises the walk)
        cycles = self.costs.cache_hit
        if not self.tlb.probe(ref.vaddr // PAGE_BYTES):
            cycles += self.costs.tlb_walk
        cycles += self._check_group(ref.segment)
        if not self.cache.probe(ref.vaddr, space=0):
            cycles += self.costs.cache_miss_penalty
        return cycles

    def switch(self, pid: int) -> int:
        if pid == self.current_pid:
            return 0
        # the OS saves this process's four access-id registers and
        # restores the next one's — cheap, no TLB or cache flush
        if self.current_pid is not None:
            self._saved[self.current_pid] = self._groups
        self._groups = self._saved.get(pid, OrderedDict())
        return self.costs.group_register_reload

    def share_cost_entries(self, pages: int, processes: int) -> int:
        # sharing = access to the same page group: one group id per
        # sharing process (in its register set / protection state), but
        # the group occupies one of only four fast slots per process
        return processes

    def _revoke_cost(self, pages: int, segments: int) -> int:
        # retire the victim's group id from every TLB entry carrying it
        self._saved.pop(self.current_pid, None)
        return (self.costs.trap_entry + pages * self.costs.pte_invalidate
                + self.costs.tlb_flush + self.costs.trap_return)

    def memory_overhead_bytes(self, domains: int,
                              words_per_domain: int) -> int:
        # the shared page table carries group ids; per-domain state is
        # the four saved access-id registers
        from repro.baselines.base import PTE_BYTES
        pages = max(1, -(-words_per_domain * 8 // PAGE_BYTES))
        return domains * (pages * PTE_BYTES + GROUP_REGISTERS * 8)
