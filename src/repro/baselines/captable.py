"""Table-based capabilities (§5.3 — IBM System/38, Intel 432).

Capabilities name objects through a table: every dereference translates
capability → virtual address (capability/object-table lookup, cached),
then virtual → physical.  This is the two-level translation whose
latency "has prevented traditional capabilities from becoming a
widely-used protection method" — and exactly the indirection guarded
pointers delete by putting the segment descriptor inside the pointer.

Sharing is as cheap as with guarded pointers (one capability per
process), so this baseline wins E8 along with guarded pointers and
loses E11 on latency.
"""

from __future__ import annotations

from repro.baselines.base import Lookaside, ProtectionScheme, SimpleCache
from repro.sim.costs import CostModel
from repro.sim.trace import MemRef

PAGE_BYTES = 4096


class CapTableScheme(ProtectionScheme):
    name = "capability-table"

    def __init__(self, costs: CostModel | None = None,
                 cache_bytes: int = 128 * 1024, tlb_entries: int = 64,
                 capcache_entries: int = 32):
        super().__init__(costs)
        self.cache = SimpleCache(total_bytes=cache_bytes)
        self.tlb = Lookaside(tlb_entries)
        self.capcache = Lookaside(capcache_entries)

    def access(self, ref: MemRef) -> int:
        # level 1: capability → virtual address through the object table
        cycles = self.costs.capcache_hit
        if not self.capcache.probe(ref.segment):
            cycles += self.costs.captable_lookup
        # level 2: virtual → physical through the ordinary path
        cycles += self.costs.cache_hit
        if not self.cache.probe(ref.vaddr, space=0):
            cycles += self.costs.cache_miss_penalty
            if not self.tlb.probe(ref.vaddr // PAGE_BYTES):
                cycles += self.costs.tlb_walk
        return cycles

    def switch(self, pid: int) -> int:
        return 0  # capabilities are possessions; no per-process tables to swap

    def share_cost_entries(self, pages: int, processes: int) -> int:
        return processes  # one capability per process

    def _revoke_cost(self, pages: int, segments: int) -> int:
        # the indirection pays off exactly here: kill the object-table
        # entries and every outstanding capability dies at once
        self.capcache.flush()
        return (self.costs.trap_entry
                + segments * self.costs.pte_invalidate
                + self.costs.trap_return)

    def memory_overhead_bytes(self, domains: int,
                              words_per_domain: int) -> int:
        # a global object-table entry per segment (16 B: base, length,
        # rights, generation) plus each domain's c-list entry
        segments = max(1, words_per_domain // 512)
        return domains * segments * (16 + 8)
