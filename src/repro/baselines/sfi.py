"""Software fault isolation (Wahbe et al. [25], §5.4).

The hardware provides only a flat address space; a post-pass inserts
check (or address-sandboxing) instructions before every store and jump
that cannot be proven safe statically — and before loads too, when full
isolation is required.  The memory path itself matches the
guarded-pointer scheme (single space, no flushes); the cost is the
inserted instructions, paid on every dynamic execution of an unsafe
reference, plus the qualitative weakness the paper notes (protection by
toolchain convention, not hardware).
"""

from __future__ import annotations

from repro.baselines.base import Lookaside, ProtectionScheme, SimpleCache
from repro.sim.costs import CostModel
from repro.sim.trace import MemRef

PAGE_BYTES = 4096


class SFIScheme(ProtectionScheme):
    name = "sfi"

    def __init__(self, costs: CostModel | None = None,
                 cache_bytes: int = 128 * 1024, tlb_entries: int = 64,
                 check_reads: bool = False):
        super().__init__(costs)
        self.cache = SimpleCache(total_bytes=cache_bytes)
        self.tlb = Lookaside(tlb_entries)
        #: full isolation (reads checked too) vs basic sandboxing
        self.check_reads = check_reads

    def access(self, ref: MemRef) -> int:
        cycles = 0
        if not ref.statically_safe:
            if ref.write:
                cycles += self.costs.sfi_check_instructions
                self.metrics.check_instructions += self.costs.sfi_check_instructions
            elif self.check_reads:
                cycles += self.costs.sfi_read_check_instructions
                self.metrics.check_instructions += self.costs.sfi_read_check_instructions
        cycles += self.costs.cache_hit
        if not self.cache.probe(ref.vaddr, space=0):
            cycles += self.costs.cache_miss_penalty
            if not self.tlb.probe(ref.vaddr // PAGE_BYTES):
                cycles += self.costs.tlb_walk
        return cycles

    def switch(self, pid: int) -> int:
        return 0  # all fault domains share one address space

    def share_cost_entries(self, pages: int, processes: int) -> int:
        # one address space: read sharing is free; each writer's check
        # masks must admit the shared region (one rule per domain).
        # Cross-domain *write* sharing in Wahbe et al. really goes via
        # RPC, which this count understates — noted in E8's output.
        return processes

    def _revoke_cost(self, pages: int, segments: int) -> int:
        # drop the domain's sandbox masks; no hardware state to walk —
        # but the revoked code keeps running until unmapped, so the
        # kernel still round-trips to tear the region down
        return self.costs.trap_entry + self.costs.trap_return

    def memory_overhead_bytes(self, domains: int,
                              words_per_domain: int) -> int:
        # per-domain sandbox masks/rules only; the real cost (inserted
        # check instructions in every unsafe code page) is charged per
        # access, not stored as protection state
        return domains * 64
