"""Domain-Page protection (Koldinger et al. [17], §5.1).

A single address space with translation and protection separated: the
page table (and TLB) are shared by all processes; each process has a
protection table cached by a Protection Lookaside Buffer that is probed
— in parallel with the cache — on *every* access.  Switches are cheap
(change the domain register), in-cache sharing works, but the scheme
needs the extra PLB hardware, replicated or multi-ported for a
multi-banked cache — the paper's stated disadvantage versus guarded
pointers.
"""

from __future__ import annotations

from repro.baselines.base import Lookaside, ProtectionScheme, SimpleCache
from repro.sim.costs import CostModel
from repro.sim.trace import MemRef

PAGE_BYTES = 4096


class DomainPageScheme(ProtectionScheme):
    name = "domain-page"

    def __init__(self, costs: CostModel | None = None,
                 cache_bytes: int = 128 * 1024, tlb_entries: int = 64,
                 plb_entries: int = 64):
        super().__init__(costs)
        self.cache = SimpleCache(total_bytes=cache_bytes)
        self.tlb = Lookaside(tlb_entries)
        self.plb = Lookaside(plb_entries)

    def access(self, ref: MemRef) -> int:
        cycles = self.costs.cache_hit
        # PLB probe on every access; entries are per (domain, page)
        if not self.plb.probe((ref.pid, ref.vaddr // PAGE_BYTES)):
            cycles += self.costs.plb_walk
        if not self.cache.probe(ref.vaddr, space=0):
            cycles += self.costs.cache_miss_penalty
            if not self.tlb.probe(ref.vaddr // PAGE_BYTES):
                cycles += self.costs.tlb_walk
        return cycles

    def switch(self, pid: int) -> int:
        if pid == self.current_pid:
            return 0
        return self.costs.plb_switch

    # Domain-Page keeps the base class's n×m: each process's protection
    # table needs an entry per shared page (translation is shared, the
    # protection rows are not).

    def _revoke_cost(self, pages: int, segments: int) -> int:
        # drop the victim's protection-table rows; translation (the
        # shared page table) survives, but the PLB must be purged
        self.plb.flush()
        return (self.costs.trap_entry + pages * self.costs.pte_invalidate
                + self.costs.trap_return)

    def memory_overhead_bytes(self, domains: int,
                              words_per_domain: int) -> int:
        # one shared page table plus a protection table per domain
        # (protection rows are half a PTE: rights, no translation)
        from repro.baselines.base import PTE_BYTES
        pages = max(1, -(-words_per_domain * 8 // PAGE_BYTES))
        return domains * pages * (PTE_BYTES + PTE_BYTES // 2)
