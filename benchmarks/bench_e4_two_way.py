"""E4 — Figure 4: two-way protection via return segments."""

from repro.experiments import e4_two_way as e4

from benchmarks.conftest import emit


def test_e4_cost_vs_live_pointers(benchmark):
    points = benchmark(e4.sweep, 8)
    header = f"{'live pointers saved':>20} {'call cycles':>12}"
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(f"{p.save_slots:>20} {p.cycles:>12}")
    marginal = e4.marginal_cost_per_pointer(points)
    lines.append("")
    lines.append(f"marginal cost: {marginal:.1f} cycles per encapsulated pointer "
                 f"(one ST + one LD, no kernel)")
    emit("E4 / Figure 4 — two-way protection cost", "\n".join(lines))
    assert points[-1].cycles > points[0].cycles
    assert 0 < marginal < 20
