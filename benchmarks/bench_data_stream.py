"""The data-path fast-path acceptance benchmark: simulated cycles/s.

Streams loads and stores through one guarded pointer — a memory
operation in nearly every bundle — and compares ``data_fast_path=True``
(access-check memo + translation line memo + flat tagged memory probes)
against ``data_fast_path=False`` (full LEA/permission re-derivation and
a page-table walk on every access).  Both runs must agree on the
simulated cycle count exactly (the memos are timing-model-transparent);
the fast path must be at least twice as fast in wall-clock terms, and
the memo counters must tile the cache's access count exactly.

``tools/run_benchmarks.py`` imports :func:`measure` to record the
numbers into ``BENCH_pr3.json``.
"""

from __future__ import annotations

import time

from repro.core.permissions import Permission
from repro.core.pointer import GuardedPointer
from repro.machine.assembler import assemble
from repro.machine.chip import ChipConfig, MAPChip, RunReason
from repro.mem.allocator import round_up_log2

from benchmarks.conftest import emit

CODE_BASE = 0x10000
DATA_BASE = 0x40000
DATA_BYTES = 4096
ITERATIONS = 6000
MAX_CYCLES = 5_000_000

#: 16 bundles per iteration, every one carrying a load or a store
#: through the same pointer word in r8; the loop bookkeeping rides in
#: the integer slots of the last bundles so the memory unit never idles.
STREAM = """
    movi r1, {iterations}
loop:
    ld r2, r8, 0    | subi r1, r1, 1
    st r2, r8, 8
    ld r3, r8, 16
    st r3, r8, 24
    ld r2, r8, 32
    st r2, r8, 40
    ld r3, r8, 48
    st r3, r8, 56
    ld r2, r8, 64
    st r2, r8, 72
    ld r3, r8, 80
    st r3, r8, 88
    ld r2, r8, 96
    st r2, r8, 104
    ld r3, r8, 112  | beq r1, done
    st r3, r8, 120  | br loop
done:
    halt
"""


def build_chip(fast_path: bool, iterations: int = ITERATIONS) -> MAPChip:
    """A bare chip with the stream program loaded and its data segment
    in r8 (same layout as the fuzzer's ``setup_chip``, minus the
    kernel, so nothing but the stream touches the cache)."""
    program = assemble(STREAM.format(iterations=iterations))
    # superblock pinned off on both sides: this benchmark isolates the
    # data-path memos; bench_superblock.py owns the superblock axis
    chip = MAPChip(ChipConfig(memory_bytes=2 * 1024 * 1024,
                              data_fast_path=fast_path,
                              superblock=False))
    chip.page_table.ensure_mapped(CODE_BASE, max(program.size_bytes, 8))
    for i, word in enumerate(program.encode()):
        chip.memory.store_word(chip.page_table.walk(CODE_BASE + i * 8), word)
    chip.page_table.ensure_mapped(DATA_BASE, DATA_BYTES)
    seglen = max(round_up_log2(max(program.size_bytes, 1)), 3)
    entry = GuardedPointer.make(Permission.EXECUTE_USER, seglen, CODE_BASE)
    data = GuardedPointer.make(Permission.READ_WRITE,
                               round_up_log2(DATA_BYTES), DATA_BASE)
    chip.spawn(entry, regs={8: data.word})
    return chip


def _run(fast_path: bool, iterations: int) -> tuple[MAPChip, int, float]:
    chip = build_chip(fast_path, iterations)
    t0 = time.perf_counter()
    result = chip.run(MAX_CYCLES)
    wall = time.perf_counter() - t0
    assert result.reason == RunReason.HALTED, result.reason
    return chip, result.cycles, wall


def measure(iterations: int = ITERATIONS) -> dict:
    """Time the stream with the fast path off and on; returns the
    comparison plus the memo-counter cross-checks."""
    slow_chip, slow_cycles, slow_wall = _run(False, iterations)
    fast_chip, fast_cycles, fast_wall = _run(True, iterations)

    cache = fast_chip.cache.stats
    accesses = cache.hits + cache.misses
    slow_cache = slow_chip.cache.stats
    checks = {
        # every cache access went through the access-check memo ...
        "check_memo_tiles_accesses":
            fast_chip.check_memo_hits + fast_chip.check_memo_misses
            == accesses,
        # ... and through the translation line memo, exactly once each
        "xlate_memo_tiles_accesses":
            cache.xlate_memo_hits + cache.xlate_memo_misses == accesses,
        # the memos actually answered the traffic (not just missing)
        "memos_mostly_hit":
            fast_chip.check_memo_hits > accesses * 0.99
            and cache.xlate_memo_hits > accesses * 0.99,
        # with the fast path off, no memo is consulted at all
        "off_counters_zero":
            slow_chip.check_memo_hits == slow_chip.check_memo_misses == 0
            and slow_cache.xlate_memo_hits == slow_cache.xlate_memo_misses
            == 0,
    }

    slow_rate = slow_cycles / slow_wall
    fast_rate = fast_cycles / fast_wall
    return {
        "workload": f"data stream ({iterations} iterations x 16 mem ops)",
        "slow_cycles": slow_cycles,
        "slow_wall_s": slow_wall,
        "slow_cycles_per_s": slow_rate,
        "fast_cycles": fast_cycles,
        "fast_wall_s": fast_wall,
        "fast_cycles_per_s": fast_rate,
        "speedup": fast_rate / slow_rate,
        "cycles_equal": slow_cycles == fast_cycles,
        "cache_accesses": accesses,
        "check_memo_hits": fast_chip.check_memo_hits,
        "check_memo_misses": fast_chip.check_memo_misses,
        "xlate_memo_hits": cache.xlate_memo_hits,
        "xlate_memo_misses": cache.xlate_memo_misses,
        "cross_checks": checks,
        "cross_checks_pass": all(checks.values()),
    }


def test_data_stream_speedup(benchmark):
    r = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("data stream — fast path on vs off", "\n".join([
        f"{'path':<10} {'cycles':>9} {'wall (s)':>9} {'cycles/s':>12}",
        "-" * 43,
        f"{'off':<10} {r['slow_cycles']:>9} {r['slow_wall_s']:>9.3f} "
        f"{r['slow_cycles_per_s']:>12,.0f}",
        f"{'on':<10} {r['fast_cycles']:>9} {r['fast_wall_s']:>9.3f} "
        f"{r['fast_cycles_per_s']:>12,.0f}",
        "",
        f"speedup {r['speedup']:.2f}x; cycle counts "
        f"{'identical' if r['cycles_equal'] else 'DIFFER'}; "
        f"memo cross-checks "
        f"{'pass' if r['cross_checks_pass'] else 'FAIL'}",
    ]))
    assert r["cycles_equal"], "the fast path changed the timing model"
    assert r["cross_checks_pass"], r["cross_checks"]
    assert r["speedup"] >= 2.0, f"only {r['speedup']:.2f}x over the slow path"
