"""E5 — Figure 5 / §3: multithreading across protection domains."""

from repro.experiments import e5_multithreading as e5

from benchmarks.conftest import emit


def test_e5_domain_interleaving(benchmark):
    points = benchmark.pedantic(e5.sweep, args=((1, 2, 4),),
                                kwargs={"iterations": 150},
                                rounds=1, iterations=1)
    header = (f"{'config':<22} {'threads':>7} {'cycles':>9} "
              f"{'utilization':>11} {'switch stalls':>13}")
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(f"{p.config:<22} {p.threads:>7} {p.cycles:>9} "
                     f"{p.utilization:>11.3f} {p.switch_stalls:>13}")
    util = e5.utilization_by_config(points)
    lines.append("")
    lines.append("guarded pointers keep the cluster busy regardless of how many")
    lines.append("protection domains are interleaved; a conventional machine's")
    lines.append("utilization collapses — the reason Alewife/Tera restricted")
    lines.append("resident threads to one domain (§1).")
    emit("E5 / Figure 5 — cycle-by-cycle multithreading across domains",
         "\n".join(lines))
    assert util["guarded"][4] > 3 * util["conventional"][4]
