"""E11 — §5.3: table-based capabilities' indirection latency."""

from repro.experiments import e11_captable as e11

from benchmarks.conftest import emit


def test_e11_indirection_latency(benchmark):
    rows = benchmark.pedantic(e11.latency_vs_objects,
                              kwargs={"refs": 6000}, rounds=1, iterations=1)
    header = (f"{'live objects':>12} {'guarded cyc/acc':>16} "
              f"{'captable cyc/acc':>17} {'slowdown':>9} {'capcache miss':>14}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(f"{r.live_objects:>12} {r.guarded_cpa:>16.2f} "
                     f"{r.captable_cpa:>17.2f} {r.slowdown:>9.2f} "
                     f"{r.capcache_miss_rate:>14.2%}")
    storage = e11.storage_comparison()
    lines.append("")
    for k, v in storage.items():
        lines.append(f"{k}: {v}")
    emit("E11 / §5.3 — capability-table indirection vs guarded pointers",
         "\n".join(lines))
    assert rows[-1].slowdown > rows[0].slowdown
