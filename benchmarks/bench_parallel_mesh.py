"""Weak and strong scaling of the sharded mesh engine.

Drives the multi-tenant KV service on a 4x4 mesh under the lockstep
engine and under :class:`~repro.machine.parallel.ParallelMulticomputer`
with 2 and 4 OS worker processes, and reports:

* **strong scaling** — the same schedule at every worker count;
  ``strong_speedup_k = wall_1 / wall_k``;
* **weak scaling** — the schedule grows with the worker count
  (``k x`` requests on ``k`` workers); ``weak_efficiency_k =
  wall_1 / wall_k`` with perfect scaling at 1.0;
* **bit-equality** — the simulated cycle count, the completion counts
  and the full service report must be identical at every worker count
  (the sharded engine's contract).  ``cycles_equal`` failing is a
  correctness bug, never noise.

Wall-clock speedup is a property of the *host*: the window protocol
only overlaps node execution across cores, so ``cores`` rides along in
the result and speedups on a single-core host sit below 1x (the
coordinator still pays pickling + pipe traffic).  See docs/PERF.md §7
for measured figures and the >= 4-core requirement for the paper-style
1.8x at 4 workers.
"""

from __future__ import annotations

import os
import time

from repro.machine.network import MeshShape
from repro.service import ServiceLoadDriver, install_tenants, open_loop
from repro.sim.api import Simulation

from benchmarks.conftest import emit

REQUESTS = 400
TENANTS = 48
SIDE = 4
SEED = 0
MEAN_GAP = 8.0


def _drive(requests: int, tenants: int, side: int, workers: int,
           seed: int = SEED) -> dict:
    """One open-loop service run; returns simulated + wall metrics."""
    sim = Simulation.mesh(MeshShape(side, side, 1), page_bytes=512,
                          memory_bytes=4 * 1024 * 1024, workers=workers)
    try:
        roster = install_tenants(sim, tenants)
        driver = ServiceLoadDriver(sim, roster)
        if workers == 1:
            # parity with the sharded engine's warm-start capture
            # (capture resets the functional memos on the live machine)
            sim.capture_state()
        schedule = open_loop(requests=requests, tenants=tenants,
                             mean_gap=MEAN_GAP, seed=seed)
        t0 = time.perf_counter()
        report = driver.run(schedule)
        wall = time.perf_counter() - t0
        return {"wall_s": wall, "cycles": report.cycles,
                "completed": report.completed, "errors": report.errors,
                "wrong_results": report.wrong_results,
                "report": report.as_dict()}
    finally:
        sim.close()


def measure(requests: int = REQUESTS, tenants: int = TENANTS,
            side: int = SIDE, workers_list: tuple = (1, 2, 4)) -> dict:
    """Strong + weak scaling sweep; every worker count must produce the
    identical simulated run."""
    strong = {w: _drive(requests, tenants, side, w) for w in workers_list}
    base = strong[workers_list[0]]
    out: dict = {
        "workload": f"{requests} requests over {tenants} tenants on a "
                    f"{side}x{side} mesh",
        "cores": os.cpu_count(),
        "cycles": base["cycles"],
        "completed": base["completed"],
        "clean": all(s["errors"] == 0 and s["wrong_results"] == 0
                     for s in strong.values()),
        "cycles_equal": all(s["cycles"] == base["cycles"]
                            for s in strong.values()),
        "reports_equal": all(s["report"] == base["report"]
                             for s in strong.values()),
        "wall_1": base["wall_s"],
    }
    for w in workers_list[1:]:
        out[f"wall_{w}"] = strong[w]["wall_s"]
        out[f"strong_speedup_{w}"] = base["wall_s"] / strong[w]["wall_s"]
    # weak scaling: k x the requests on k workers; the 1-worker strong
    # run is the weak baseline (same per-worker load)
    for w in workers_list[1:]:
        weak = _drive(requests * w, tenants, side, w)
        out[f"weak_wall_{w}"] = weak["wall_s"]
        out[f"weak_efficiency_{w}"] = base["wall_s"] / weak["wall_s"]
        out["clean"] = out["clean"] and weak["errors"] == 0 \
            and weak["wrong_results"] == 0 \
            and weak["completed"] == requests * w
    return out


def test_parallel_mesh_scaling(benchmark):
    r = benchmark.pedantic(
        lambda: measure(requests=120, tenants=24, side=2,
                        workers_list=(1, 2)),
        rounds=1, iterations=1)
    emit("parallel mesh — weak + strong scaling", "\n".join([
        r["workload"] + f"  ({r['cores']} host core(s))",
        f"wall 1w {r['wall_1']:.2f}s  2w {r['wall_2']:.2f}s  "
        f"strong speedup {r['strong_speedup_2']:.2f}x  "
        f"weak efficiency {r['weak_efficiency_2']:.2f}",
        f"simulated cycles {r['cycles']} — identical at every worker "
        f"count: {r['cycles_equal']}",
    ]))
    assert r["cycles_equal"], "worker count changed the simulated run"
    assert r["reports_equal"], "worker count changed the service report"
    assert r["clean"], "service errors or wrong results"
