"""The tracing-overhead benchmark: the observability layer must be
(near-)free when nobody is listening.

Runs a multithreaded load/store workload under five configurations:

* ``disabled`` — ``chip.obs.enabled = False``: every emission site is a
  dead branch (the floor);
* ``default`` — the shipping configuration: flight recorder and latency
  histograms on, no sink attached (``hot`` is false, so per-bundle
  sites cost one attribute load and branch);
* ``requests`` — a span-only collector attached (how
  ``--explain-tail`` listens): the ``spans`` gate is up, per-miss
  events materialize, but the per-bundle path stays dark and
  superblock turbo stays engaged — must stay within the always-on
  noise band;
* ``timeseries`` — a windowed counter sampler polled from a chunked
  run loop, against a matching chunked no-sampler baseline
  (``chunked``) so the chunking itself is priced separately;
* ``traced`` — a :class:`~repro.obs.hub.TraceSession` attached: every
  hot event materializes (the ceiling; only paid while tracing).

All of them must agree on the simulated cycle count exactly — emission
and sampling never touch machine state.  The acceptance check is that
``default`` and ``requests`` are within noise of ``disabled``;
``tools/run_benchmarks.py`` records the numbers into ``BENCH_pr10.json``
and CI runs the quick variant.
"""

from __future__ import annotations

import time

from repro.machine.chip import RunReason
from repro.sim.api import Simulation

from benchmarks.conftest import emit

ITERATIONS = 3000
THREADS = 4
MAX_CYCLES = 5_000_000

WORKER = """
    movi r2, {iterations}
loop:
    ld r3, r1, 0    | subi r2, r2, 1
    st r3, r1, 8
    ld r4, r1, 16
    st r4, r1, 24   | beq r2, done
    br loop
done:
    halt
"""

#: the five configurations measured, in cost order, plus the chunked
#: no-sampler baseline the timeseries config is priced against
CONFIGS = ("disabled", "default", "requests", "chunked", "timeseries",
           "traced")

#: per-call cycle budget for the chunked configurations (the sampler
#: polls at each chunk boundary, like the service driver's drain loop)
CHUNK_CYCLES = 50_000
SAMPLER_WINDOW = 20_000


def _run(config: str, iterations: int) -> tuple[int, float, int]:
    sim = Simulation()
    source = WORKER.format(iterations=iterations)
    entry = sim.load(source)
    for index in range(THREADS):
        data = sim.allocate(4096)
        sim.spawn(entry, cluster=index % 4, regs={1: data.word},
                  stack_bytes=0)
    if config == "disabled":
        sim.chip.obs.enabled = False
    session = sim.trace() if config == "traced" else None
    collector = sim.span_collector() if config == "requests" else None
    sampler = (sim.timeseries(SAMPLER_WINDOW)
               if config == "timeseries" else None)
    t0 = time.perf_counter()
    if config in ("chunked", "timeseries"):
        while True:
            result = sim.run(CHUNK_CYCLES)
            if sampler is not None:
                sampler.poll(sim.now)
            if result.reason == RunReason.HALTED:
                break
        cycles = sim.now
    else:
        result = sim.run(MAX_CYCLES)
        cycles = result.cycles
    wall = time.perf_counter() - t0
    if session is not None:
        session.stop()
    if collector is not None:
        assert collector.drain(), "the span collector saw no events"
    if sampler is not None:
        assert sampler.finish(), "the sampler closed no windows"
    assert result.reason == RunReason.HALTED, result.reason
    events = len(session.events) if session is not None else 0
    return cycles, wall, events


def measure(iterations: int = ITERATIONS) -> dict:
    """Time the workload under every configuration; cycle counts must
    be bit-identical across them."""
    out: dict = {"workload": f"{THREADS} threads x {iterations} "
                             f"load/store iterations"}
    cycles_seen = set()
    for config in CONFIGS:
        cycles, wall, events = _run(config, iterations)
        cycles_seen.add(cycles)
        out[f"{config}_cycles"] = cycles
        out[f"{config}_wall_s"] = wall
        out[f"{config}_cycles_per_s"] = cycles / wall
        if config == "traced":
            out["traced_events"] = events
    out["cycles_equal"] = len(cycles_seen) == 1
    # wall-clock cost of the always-on layer relative to the dead floor
    out["default_overhead"] = (out["default_wall_s"]
                               / out["disabled_wall_s"]) - 1.0
    out["requests_overhead"] = (out["requests_wall_s"]
                                / out["disabled_wall_s"]) - 1.0
    # the sampler against the matching chunked baseline, so the
    # chunked run loop itself is not billed to the sampler
    out["timeseries_overhead"] = (out["timeseries_wall_s"]
                                  / out["chunked_wall_s"]) - 1.0
    out["traced_overhead"] = (out["traced_wall_s"]
                              / out["disabled_wall_s"]) - 1.0
    return out


def test_trace_overhead(benchmark):
    r = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("tracing overhead — disabled .. traced", "\n".join([
        f"{'config':<10} {'cycles':>9} {'wall (s)':>9} {'cycles/s':>12}",
        "-" * 43,
        *(f"{c:<10} {r[f'{c}_cycles']:>9} {r[f'{c}_wall_s']:>9.3f} "
          f"{r[f'{c}_cycles_per_s']:>12,.0f}" for c in CONFIGS),
        "",
        f"default overhead {r['default_overhead']:+.1%}, requests "
        f"{r['requests_overhead']:+.1%}, timeseries "
        f"{r['timeseries_overhead']:+.1%} (vs chunked), traced "
        f"{r['traced_overhead']:+.1%} ({r['traced_events']} events); "
        f"cycle counts "
        f"{'identical' if r['cycles_equal'] else 'DIFFER'}",
    ]))
    assert r["cycles_equal"], "tracing changed the timing model"
    # the always-on layer and the span-only request path must stay
    # within noise of fully-disabled; 25% headroom keeps slow shared
    # CI machines from flaking
    assert r["default_overhead"] < 0.25, \
        f"always-on tracing costs {r['default_overhead']:+.1%}"
    assert r["requests_overhead"] < 0.25, \
        f"span-only recording costs {r['requests_overhead']:+.1%}"
