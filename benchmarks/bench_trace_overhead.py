"""The tracing-overhead benchmark: the observability layer must be
(near-)free when nobody is listening.

Runs a multithreaded load/store workload under three configurations:

* ``disabled`` — ``chip.obs.enabled = False``: every emission site is a
  dead branch (the floor);
* ``default`` — the shipping configuration: flight recorder and latency
  histograms on, no sink attached (``hot`` is false, so per-bundle
  sites cost one attribute load and branch);
* ``traced`` — a :class:`~repro.obs.hub.TraceSession` attached: every
  hot event materializes (the ceiling; only paid while tracing).

All three must agree on the simulated cycle count exactly — emission
never touches machine state.  The acceptance check is that ``default``
is within noise of ``disabled``; ``tools/run_benchmarks.py`` records
the numbers into ``BENCH_pr5.json`` and CI runs the quick variant.
"""

from __future__ import annotations

import time

from repro.machine.chip import RunReason
from repro.sim.api import Simulation

from benchmarks.conftest import emit

ITERATIONS = 3000
THREADS = 4
MAX_CYCLES = 5_000_000

WORKER = """
    movi r2, {iterations}
loop:
    ld r3, r1, 0    | subi r2, r2, 1
    st r3, r1, 8
    ld r4, r1, 16
    st r4, r1, 24   | beq r2, done
    br loop
done:
    halt
"""

#: the three configurations measured, in cost order
CONFIGS = ("disabled", "default", "traced")


def _run(config: str, iterations: int) -> tuple[int, float, int]:
    sim = Simulation()
    source = WORKER.format(iterations=iterations)
    entry = sim.load(source)
    for index in range(THREADS):
        data = sim.allocate(4096)
        sim.spawn(entry, cluster=index % 4, regs={1: data.word},
                  stack_bytes=0)
    if config == "disabled":
        sim.chip.obs.enabled = False
    session = sim.trace() if config == "traced" else None
    t0 = time.perf_counter()
    result = sim.run(MAX_CYCLES)
    wall = time.perf_counter() - t0
    if session is not None:
        session.stop()
    assert result.reason == RunReason.HALTED, result.reason
    events = len(session.events) if session is not None else 0
    return result.cycles, wall, events


def measure(iterations: int = ITERATIONS) -> dict:
    """Time the workload under all three configurations; cycle counts
    must be bit-identical across them."""
    out: dict = {"workload": f"{THREADS} threads x {iterations} "
                             f"load/store iterations"}
    cycles_seen = set()
    for config in CONFIGS:
        cycles, wall, events = _run(config, iterations)
        cycles_seen.add(cycles)
        out[f"{config}_cycles"] = cycles
        out[f"{config}_wall_s"] = wall
        out[f"{config}_cycles_per_s"] = cycles / wall
        if config == "traced":
            out["traced_events"] = events
    out["cycles_equal"] = len(cycles_seen) == 1
    # wall-clock cost of the always-on layer relative to the dead floor
    out["default_overhead"] = (out["default_wall_s"]
                               / out["disabled_wall_s"]) - 1.0
    out["traced_overhead"] = (out["traced_wall_s"]
                              / out["disabled_wall_s"]) - 1.0
    return out


def test_trace_overhead(benchmark):
    r = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("tracing overhead — disabled vs default vs traced", "\n".join([
        f"{'config':<10} {'cycles':>9} {'wall (s)':>9} {'cycles/s':>12}",
        "-" * 43,
        *(f"{c:<10} {r[f'{c}_cycles']:>9} {r[f'{c}_wall_s']:>9.3f} "
          f"{r[f'{c}_cycles_per_s']:>12,.0f}" for c in CONFIGS),
        "",
        f"default overhead {r['default_overhead']:+.1%}, traced "
        f"{r['traced_overhead']:+.1%} ({r['traced_events']} events); "
        f"cycle counts "
        f"{'identical' if r['cycles_equal'] else 'DIFFER'}",
    ]))
    assert r["cycles_equal"], "tracing changed the timing model"
    # the always-on layer must stay within noise of fully-disabled;
    # 25% headroom keeps slow shared CI machines from flaking
    assert r["default_overhead"] < 0.25, \
        f"always-on tracing costs {r['default_overhead']:+.1%}"
