"""Shared helpers for the experiment benchmarks.

Each ``bench_eNN_*.py`` file regenerates one experiment from DESIGN.md
§4: it times the experiment's computational kernel with
pytest-benchmark and prints the result table the paper implies (run
with ``-s`` or read the captured output / bench_output.txt).
"""

import sys

import pytest


def emit(title: str, body: str) -> None:
    """Print a labelled result block so the bench log doubles as the
    experiment record."""
    bar = "=" * 72
    sys.stdout.write(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def record():
    """Accumulates every printed block (handy for tee'd logs)."""
    blocks = []

    def _record(title: str, body: str) -> None:
        blocks.append((title, body))
        emit(title, body)

    return _record
