"""E2 — Figure 2: LEA derivation checks (the masked comparator)."""

from repro.experiments import e2_lea_checks as e2

from benchmarks.conftest import emit


def test_e2_comparator_exactness(benchmark):
    results = benchmark(e2.sweep_all_lengths, 512)
    header = f"{'seglen':>6} {'attempts':>8} {'in-seg':>7} {'accepted':>8} {'faulted':>8} {'exact':>6}"
    lines = [header, "-" * len(header)]
    for r in results:
        lines.append(f"{r.seglen:>6} {r.attempts:>8} {r.in_segment:>7} "
                     f"{r.accepted:>8} {r.faulted:>8} {str(r.exact):>6}")
    emit("E2 / Figure 2 — LEA bounds checking is exact at every segment length",
         "\n".join(lines))
    assert all(r.exact for r in results)


def test_e2_checked_pointer_walk(benchmark):
    # the §2.2 loop: stepping a pointer through an array with checked
    # arithmetic (software strength reduction, no relocation adds)
    steps = benchmark(e2.array_walk, 10_000)
    assert steps == 10_000
