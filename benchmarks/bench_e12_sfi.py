"""E12 — §5.4: software fault isolation's dynamic check overhead."""

from repro.experiments import e12_sfi as e12

from benchmarks.conftest import emit


def test_e12_overhead_sweep(benchmark):
    rows = benchmark.pedantic(e12.overhead_sweep,
                              kwargs={"refs": 8000}, rounds=1, iterations=1)
    header = (f"{'mode':<16} {'safe fraction':>13} {'SFI overhead':>13} "
              f"{'check instrs':>13}")
    lines = [header, "-" * len(header)]
    for r in rows:
        mode = "full isolation" if r.check_reads else "sandboxing"
        lines.append(f"{mode:<16} {r.safe_fraction:>13.2f} "
                     f"{r.overhead:>13.2%} {r.check_instructions:>13}")
    for k, v in e12.qualitative_gap().items():
        lines.append(f"\n{k}: {v}")
    emit("E12 / §5.4 — SFI pays per dynamic reference; guarded pointers don't",
         "\n".join(lines))
    basic = [r for r in rows if not r.check_reads]
    assert basic[0].overhead > basic[-1].overhead > -0.01
