"""E3 — Figure 3: protected subsystem entry vs trap-mediated service."""

from repro.experiments import e3_subsystem_call as e3

from benchmarks.conftest import emit


def test_e3_call_comparison(benchmark):
    costs = benchmark(e3.compare)
    lines = [
        f"{'variant':<28} {'total cycles':>12} {'overhead vs inline':>20}",
        "-" * 62,
        f"{'inline (no boundary)':<28} {costs.inline:>12} {0:>20}",
        f"{'enter pointer (Figure 3)':<28} {costs.enter:>12} {costs.enter_overhead:>20}",
        f"{'kernel trap':<28} {costs.trap:>12} {costs.trap_overhead:>20}",
        "",
        f"protected call is {costs.speedup_vs_trap:.1f}x cheaper than the trap path",
    ]
    emit("E3 / Figure 3 — one-way protected subsystem call", "\n".join(lines))
    assert costs.inline < costs.enter < costs.trap
    assert costs.speedup_vs_trap > 2
