"""E14 — §4.2: sparse software capabilities vs guarded pointers."""

from repro.experiments import e14_sparse_capabilities as e14

from benchmarks.conftest import emit


def test_e14_shrink_cost(benchmark):
    attacks = benchmark.pedantic(e14.shrink_comparison,
                                 kwargs={"live_objects": 1 << 16,
                                         "guesses": 2_000_000},
                                 rounds=1, iterations=1)
    header = (f"{'space':>7} {'live objects':>12} {'guesses':>9} "
              f"{'hits':>6} {'expected':>9}")
    lines = [header, "-" * len(header)]
    for bits, a in attacks.items():
        lines.append(f"{bits:>4}-bit {a.live_objects:>12} {a.guesses:>9} "
                     f"{a.hits:>6} {a.expected_hits:>9.2f}")
    guarded = e14.guarded_attack(guesses=100_000)
    lines += [
        "",
        f"shrinking 64→54 bits makes sparse-capability guessing exactly "
        f"{e14.shrink_factor()}x easier (the paper's 'factor of 1000'),",
        f"but the same brute force against guarded pointers scores "
        f"{guarded.successes}/{guarded.guesses} — every fabricated word "
        f"is a TagFault:",
        "the tag bit replaces sparsity outright (§4.2).",
    ]
    emit("E14 / §4.2 — the address-space opportunity cost, and its answer",
         "\n".join(lines))
    assert attacks[54].expected_hits == attacks[64].expected_hits * 1024
    assert guarded.successes == 0
