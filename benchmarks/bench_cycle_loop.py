"""The hot-path acceptance benchmark: simulated cycles per second.

Compares the reworked run loop (decoded-bundle cache + incremental
scheduler counts + idle fast-forward) against a faithful replica of the
pre-rework loop — which rebuilt ``all_threads()`` lists every cycle and
re-walked/re-decoded every fetch — on the E5 multithreading workload.
Both runs must agree on the simulated cycle count exactly (the
optimizations are timing-model-transparent); the optimized loop must be
at least twice as fast in wall-clock terms.

``tools/run_benchmarks.py`` imports :func:`measure` to record the
numbers into ``BENCH_pr1.json``.
"""

from __future__ import annotations

import time

from repro.experiments.e5_multithreading import WORKER
from repro.machine.chip import ChipConfig, MAPChip
from repro.machine.thread import ThreadState
from repro.runtime.kernel import Kernel

from benchmarks.conftest import emit

THREADS = 4
ITERATIONS = 2000
MAX_CYCLES = 5_000_000


def build_chip(optimized: bool, threads: int = THREADS,
               iterations: int = ITERATIONS) -> MAPChip:
    """The E5 workload: ``threads`` memory-heavy workers on one cluster,
    each in its own protection domain."""
    chip = MAPChip(ChipConfig(
        memory_bytes=4 * 1024 * 1024,
        threads_per_cluster=max(threads, 1),
        decode_cache=optimized,
        idle_fast_forward=optimized,
    ))
    kernel = Kernel(chip)
    source = WORKER.format(iterations=iterations)
    for t in range(threads):
        data = kernel.allocate_segment(4096, eager=True)
        entry = kernel.load_program(source)
        kernel.spawn(entry, domain=t + 1, cluster=0,
                     regs={1: data.word}, stack_bytes=0)
    return chip


def run_legacy(chip: MAPChip, max_cycles: int = MAX_CYCLES) -> int:
    """The pre-rework run loop, verbatim: list comprehensions over every
    resident thread, every cycle, to learn liveness and idleness."""
    start_cycle = chip.now
    idle = 0
    while chip.now - start_cycle < max_cycles:
        live = [t for t in chip.all_threads()
                if t.state not in (ThreadState.HALTED, ThreadState.FAULTED)]
        if not live:
            return chip.now - start_cycle
        issued = 0
        for cluster in chip.clusters:
            if cluster.step(chip.now):
                issued += 1
        chip.now += 1
        chip.stats.cycles += 1
        chip.stats.issued_bundles += issued
        if issued == 0 and all(t.state is not ThreadState.READY
                               for t in chip.all_threads()):
            idle += 1
            if idle > chip.IDLE_LIMIT:
                return chip.now - start_cycle
        else:
            idle = 0
    return max_cycles


def measure(threads: int = THREADS, iterations: int = ITERATIONS) -> dict:
    """Time both loops on identical workloads; returns the comparison."""
    chip = build_chip(False, threads, iterations)
    t0 = time.perf_counter()
    legacy_cycles = run_legacy(chip)
    legacy_wall = time.perf_counter() - t0

    chip = build_chip(True, threads, iterations)
    t0 = time.perf_counter()
    result = chip.run(MAX_CYCLES)
    new_wall = time.perf_counter() - t0

    legacy_rate = legacy_cycles / legacy_wall
    new_rate = result.cycles / new_wall
    return {
        "workload": f"e5 ({threads} threads x {iterations} iterations)",
        "legacy_cycles": legacy_cycles,
        "legacy_wall_s": legacy_wall,
        "legacy_cycles_per_s": legacy_rate,
        "new_cycles": result.cycles,
        "new_wall_s": new_wall,
        "new_cycles_per_s": new_rate,
        "speedup": new_rate / legacy_rate,
        "cycles_equal": legacy_cycles == result.cycles,
        "fetch_hits": chip.fetch_hits,
        "fetch_misses": chip.fetch_misses,
    }


def test_cycle_loop_speedup(benchmark):
    r = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("cycle loop — reworked run loop vs pre-rework replica", "\n".join([
        f"{'loop':<10} {'cycles':>9} {'wall (s)':>9} {'cycles/s':>12}",
        "-" * 43,
        f"{'legacy':<10} {r['legacy_cycles']:>9} {r['legacy_wall_s']:>9.3f} "
        f"{r['legacy_cycles_per_s']:>12,.0f}",
        f"{'reworked':<10} {r['new_cycles']:>9} {r['new_wall_s']:>9.3f} "
        f"{r['new_cycles_per_s']:>12,.0f}",
        "",
        f"speedup {r['speedup']:.2f}x; cycle counts "
        f"{'identical' if r['cycles_equal'] else 'DIFFER'}",
    ]))
    assert r["cycles_equal"], "optimizations changed the timing model"
    assert r["speedup"] >= 2.0, f"only {r['speedup']:.2f}x over the pre-rework loop"
