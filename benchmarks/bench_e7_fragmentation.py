"""E7 — §4.2: fragmentation of power-of-two segments."""

from repro.experiments import e7_fragmentation as e7

from benchmarks.conftest import emit


def test_e7_internal_fragmentation(benchmark):
    rows = benchmark(e7.internal_fragmentation_table, 10_000)
    check = e7.closed_form_check()
    header = (f"{'object size distribution':<26} {'objects':>8} "
              f"{'granted/requested':>18} {'physical waste':>15}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(f"{r.distribution:<26} {r.objects:>8} "
                     f"{r.overhead_factor:>18.3f} {r.physical_waste:>15.2%}")
    lines.append("")
    lines.append(f"closed form (uniform in binade): {check['expected']:.4f}  "
                 f"measured: {check['measured']:.4f}")
    lines.append("worst case is 2.0 (object one byte past a power of two)")
    emit("E7 / §4.2 — internal fragmentation", "\n".join(lines))
    assert all(1.0 <= r.overhead_factor <= 2.0 for r in rows)


def test_e7_external_fragmentation(benchmark):
    results = benchmark.pedantic(e7.external_fragmentation,
                                 kwargs={"order": 16, "steps": 3000,
                                         "seeds": (0, 1, 2)},
                                 rounds=1, iterations=1)
    header = (f"{'allocator':<14} {'seed runs':>9} {'mean frag':>10} "
              f"{'peak frag':>10} {'post-drain frag':>16} {'failures':>9}")
    lines = [header, "-" * len(header)]
    for name, runs in results.items():
        mean = sum(r.mean_fragmentation for r in runs) / len(runs)
        peak = max(r.peak_fragmentation for r in runs)
        final = sum(r.final_fragmentation for r in runs) / len(runs)
        fails = sum(r.failures for r in runs)
        lines.append(f"{name:<14} {len(runs):>9} {mean:>10.3f} "
                     f"{peak:>10.3f} {final:>16.3f} {fails:>9}")
    lines.append("")
    lines.append("the buddy system coalesces back to a single block after churn;")
    lines.append("without coalescing the arena stays shattered (§4.2).")
    emit("E7 / §4.2 — external fragmentation under churn", "\n".join(lines))
    assert all(r.final_fragmentation == 0 for r in results["buddy"])
