"""E1 — Figure 1: the guarded-pointer format (encode/decode)."""

from repro.experiments import e1_pointer_format as e1

from benchmarks.conftest import emit


def test_e1_format_table(benchmark):
    rows = benchmark(e1.format_table)
    budget = e1.bit_budget()
    lines = [f"bit budget: {budget} (total "
             f"{sum(budget.values())} bits + 1 tag)"]
    header = (f"{'pointer':<24} {'perm':<14} {'len':>3} {'word':<20} "
              f"{'segment':<28}")
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        seg = f"[{r.segment_base:#x}, +{r.segment_size:#x})"
        lines.append(f"{r.description:<24} {r.perm:<14} {r.seglen:>3} "
                     f"{r.word_hex:<20} {seg:<28}")
    emit("E1 / Figure 1 — guarded pointer format", "\n".join(lines))
    assert len(rows) == len(e1.REPRESENTATIVE)


def test_e1_roundtrip_throughput(benchmark):
    verified = benchmark(e1.exhaustive_roundtrip, 2048)
    assert verified == 2048
