"""E8 — §5.1: the cost of sharing (protection state and the cache)."""

from repro.experiments import e8_sharing as e8

from benchmarks.conftest import emit


def test_e8_protection_state_entries(benchmark):
    rows = benchmark(e8.entries_grid)
    header = (f"{'pages':>6} {'processes':>9} {'paged PTEs (n*m)':>17} "
              f"{'guarded ptrs (m)':>17} {'ratio':>8}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(f"{r.pages:>6} {r.processes:>9} {r.paged_entries:>17} "
                     f"{r.guarded_entries:>17} {r.ratio:>8.0f}")
    emit("E8 / §5.1 — protection state for sharing", "\n".join(lines))
    assert all(r.ratio == r.pages for r in rows)


def test_e8_entries_all_schemes(benchmark):
    table = benchmark(e8.entries_all_schemes, 256, 8)
    header = f"{'scheme':<20} {'entries (256 pages x 8 procs)':>30}"
    lines = [header, "-" * len(header)]
    for scheme, entries in sorted(table.items(), key=lambda kv: kv[1]):
        lines.append(f"{scheme:<20} {entries:>30}")
    lines.append("")
    lines.append("the page-table-per-process family pays n*m; capability-like")
    lines.append("schemes (incl. segmentation descriptors) pay m. (SFI's m")
    lines.append("understates cross-domain *write* sharing, which is RPC.)")
    emit("E8b / §5 — protection-state entries, all schemes", "\n".join(lines))
    assert table["guarded-pointers"] == 8
    assert table["paged-separate"] == 256 * 8
    assert table["domain-page"] == 256 * 8


def test_e8_in_cache_sharing(benchmark):
    rows = benchmark.pedantic(e8.in_cache_sharing,
                              kwargs={"refs_per_process": 2000},
                              rounds=1, iterations=1)
    header = (f"{'processes':>9} {'guarded misses':>15} {'ASID misses':>12} "
              f"{'guarded cyc':>12} {'ASID cyc':>10}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(f"{r.processes:>9} {r.guarded_misses:>15} "
                     f"{r.asid_misses:>12} {r.guarded_cycles:>12} "
                     f"{r.asid_cycles:>10}")
    lines.append("")
    lines.append("ASID-tagged caches hold one synonym copy per process: misses")
    lines.append("scale with sharers; a single-space virtual cache shares lines.")
    emit("E8 / §5.1 — in-cache sharing", "\n".join(lines))
    assert rows[-1].miss_ratio > 2
