"""The service-traffic benchmark: the multi-tenant KV service under
open-loop load.

Runs :mod:`repro.service` end to end — install tenants round-robin
across a mesh, generate a Poisson/Zipf schedule, drive it with the
open-loop load driver — and reports simulator throughput (wall-clock)
alongside the *simulated* service metrics: requests per kilocycle and
the p50/p99/p999 request-latency percentiles from the
``hist.request_latency`` counters.  The acceptance checks are the
service invariants: every request completes, none faults, every GET
returns a value some PUT wrote, and the machine-wide
``enter_roundtrip`` count equals the number of gateway calls exactly
(one protection-domain round trip per request, zero kernel
crossings).

``tools/run_benchmarks.py`` records the numbers into ``BENCH_pr7.json``
(median + IQR across trials) and CI runs the quick variant.
"""

from __future__ import annotations

import time

from repro.sim.api import Simulation
from repro.service import ServiceLoadDriver, install_tenants, open_loop

from benchmarks.conftest import emit

REQUESTS = 2000
TENANTS = 200
NODES = 4
SEED = 0
MEAN_GAP = 10.0  # cycles between arrivals: 100 requests per kilocycle


def measure(requests: int = REQUESTS, tenants: int = TENANTS,
            nodes: int = NODES, seed: int = SEED,
            arrivals: str = "poisson") -> dict:
    """One full open-loop run; returns service metrics + wall cost."""
    sim = Simulation(nodes=nodes, page_bytes=512,
                     memory_bytes=4 * 1024 * 1024)
    t0 = time.perf_counter()
    roster = install_tenants(sim, tenants)
    install_wall = time.perf_counter() - t0
    driver = ServiceLoadDriver(sim, roster)
    schedule = open_loop(requests=requests, tenants=tenants,
                         mean_gap=MEAN_GAP, seed=seed, arrivals=arrivals)
    t0 = time.perf_counter()
    report = driver.run(schedule)
    drive_wall = time.perf_counter() - t0
    snap = sim.snapshot()
    enter_count = snap["hist.enter_roundtrip.count"]
    return {
        "workload": f"{requests} {arrivals} requests over {tenants} "
                    f"tenants on {nodes} node(s)",
        "completed": report.completed,
        "errors": report.errors,
        "wrong_results": report.wrong_results,
        "cycles": report.cycles,
        "throughput_rpk": report.throughput_rpk,
        "latency_p50": report.latency["p50"],
        "latency_p99": report.latency["p99"],
        "latency_p999": report.latency["p999"],
        "latency_mean": report.latency["mean"],
        "enter_roundtrips": enter_count,
        "enter_exact": enter_count == report.completed,
        "all_completed": report.completed == requests,
        "clean": report.errors == 0 and report.wrong_results == 0,
        "install_wall_s": install_wall,
        "drive_wall_s": drive_wall,
        "requests_per_s": report.completed / drive_wall,
    }


def test_service_traffic(benchmark):
    r = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("service traffic — open-loop multi-tenant KV", "\n".join([
        r["workload"],
        f"completed {r['completed']}  throughput "
        f"{r['throughput_rpk']:.1f} req/kcycle  "
        f"p50 {r['latency_p50']}  p99 {r['latency_p99']}  "
        f"p999 {r['latency_p999']} cycles",
        f"simulator: {r['requests_per_s']:,.0f} requests/s wall "
        f"(install {r['install_wall_s']:.2f}s, drive "
        f"{r['drive_wall_s']:.2f}s)",
    ]))
    assert r["all_completed"], "open-loop run did not drain"
    assert r["clean"], "service produced errors or wrong results"
    assert r["enter_exact"], \
        "enter_roundtrip count diverged from gateway calls"
