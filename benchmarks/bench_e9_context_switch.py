"""E9 — §5.1/§3: context-switch cost across every protection scheme."""

from repro.experiments import e9_context_switch as e9

from benchmarks.conftest import emit


def test_e9_switch_cost_table(benchmark):
    table = benchmark(e9.switch_cost_table)
    header = f"{'scheme':<20} {'cycles per domain switch':>25}"
    lines = [header, "-" * len(header)]
    for scheme, cycles in table.items():
        lines.append(f"{scheme:<20} {cycles:>25}")
    emit("E9 / §5.1 — pure protection work per context switch", "\n".join(lines))
    assert table["guarded-pointers"] == 0


def test_e9_quantum_sweep(benchmark):
    results = benchmark.pedantic(
        e9.sweep,
        kwargs={"quanta": (1, 10, 100, 1000), "refs_per_process": 3000},
        rounds=1, iterations=1)
    schemes = [row.scheme for row in results[0].rows]
    header = f"{'quantum':>8} " + " ".join(f"{s[:12]:>13}" for s in schemes)
    lines = ["total cycles relative to guarded pointers, 4 processes:",
             header, "-" * len(header)]
    for qr in results:
        cells = " ".join(f"{qr.relative(s):>13.2f}" for s in schemes)
        lines.append(f"{qr.quantum:>8} {cells}")
    lines.append("")
    lines.append("at quantum 1 (cycle-by-cycle interleaving) the flush-based")
    lines.append("design collapses; guarded pointers are quantum-insensitive.")
    emit("E9 / §5.1 — multiprogramming cost vs switch granularity",
         "\n".join(lines))
    fine = results[0]
    assert fine.relative("paged-separate") > 3
    assert fine.relative("guarded-pointers") == 1.0


def test_e9_workload_robustness(benchmark):
    results = benchmark.pedantic(
        e9.workload_sweep,
        kwargs={"quantum": 10, "refs_per_process": 2000},
        rounds=1, iterations=1)
    schemes = [row.scheme for row in next(iter(results.values())).rows]
    header = f"{'workload':>14} " + " ".join(f"{s[:12]:>13}" for s in schemes)
    lines = ["total cycles relative to guarded pointers, quantum 10:",
             header, "-" * len(header)]
    for name, qr in results.items():
        cells = " ".join(f"{qr.relative(s):>13.2f}" for s in schemes)
        lines.append(f"{name:>14} {cells}")
    lines.append("")
    lines.append("the ordering holds across locality profiles: guarded")
    lines.append("pointers never lose, and the flush design never wins.")
    emit("E9b / §5.1 — robustness across workloads", "\n".join(lines))
    for qr in results.values():
        assert qr.relative("paged-separate") >= 1.0
        for row in qr.rows:
            assert qr.relative(row.scheme) >= 0.99
