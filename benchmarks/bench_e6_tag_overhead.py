"""E6 — §4.1: tag storage overhead and protection-hardware inventory."""

from repro.experiments import e6_tag_overhead as e6

from benchmarks.conftest import emit


def test_e6_storage_overhead(benchmark):
    rows = benchmark(e6.storage_overhead)
    check = e6.paper_claim_check()
    header = f"{'memory':>12} {'data bits':>14} {'tag bits':>12} {'overhead':>9}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(f"{r.memory_bytes:>12} {r.data_bits:>14} "
                     f"{r.tag_bits:>12} {r.overhead:>9.4%}")
    lines.append("")
    lines.append(f"paper claim: ~1.5%   measured: {check['measured']:.4%} "
                 f"(exactly 1/64)")
    emit("E6 / §4.1 — tag bit storage overhead", "\n".join(lines))
    assert all(abs(r.overhead - 1 / 64) < 1e-12 for r in rows)


def test_e6_hardware_inventory(benchmark):
    inv = benchmark(e6.inventory)
    header = (f"{'scheme':<20} {'tag/word':>8} {'LBs':>4} {'per-bank':>9} "
              f"{'tables':>7} {'critical path':>14}")
    lines = [header, "-" * len(header)]
    for h in inv:
        lines.append(f"{h.scheme:<20} {h.tag_bits_per_word:>8} "
                     f"{h.lookaside_buffers:>4} "
                     f"{str(h.ports_scale_with_banks):>9} "
                     f"{h.tables_in_memory:>7} "
                     f"{str(h.checks_on_critical_path):>14}")
    emit("E6 / §4.1+§5 — protection hardware inventory", "\n".join(lines))
    guarded = next(h for h in inv if h.scheme == "guarded-pointers")
    assert guarded.tables_in_memory == 0
